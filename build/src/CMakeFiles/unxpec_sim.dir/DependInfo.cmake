
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/accuracy.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/accuracy.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/accuracy.cc.o.d"
  "/root/repo/src/analysis/kde.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/kde.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/kde.cc.o.d"
  "/root/repo/src/analysis/perf_report.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/perf_report.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/perf_report.cc.o.d"
  "/root/repo/src/analysis/roc.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/roc.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/roc.cc.o.d"
  "/root/repo/src/analysis/summary.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/summary.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/summary.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/CMakeFiles/unxpec_sim.dir/analysis/table.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/analysis/table.cc.o.d"
  "/root/repo/src/attack/adaptive.cc" "src/CMakeFiles/unxpec_sim.dir/attack/adaptive.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/adaptive.cc.o.d"
  "/root/repo/src/attack/channel.cc" "src/CMakeFiles/unxpec_sim.dir/attack/channel.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/channel.cc.o.d"
  "/root/repo/src/attack/eviction_set.cc" "src/CMakeFiles/unxpec_sim.dir/attack/eviction_set.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/eviction_set.cc.o.d"
  "/root/repo/src/attack/noise.cc" "src/CMakeFiles/unxpec_sim.dir/attack/noise.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/noise.cc.o.d"
  "/root/repo/src/attack/spectre_v1.cc" "src/CMakeFiles/unxpec_sim.dir/attack/spectre_v1.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/spectre_v1.cc.o.d"
  "/root/repo/src/attack/unxpec.cc" "src/CMakeFiles/unxpec_sim.dir/attack/unxpec.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/attack/unxpec.cc.o.d"
  "/root/repo/src/cleanup/cleanup_engine.cc" "src/CMakeFiles/unxpec_sim.dir/cleanup/cleanup_engine.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cleanup/cleanup_engine.cc.o.d"
  "/root/repo/src/cleanup/spec_tracker.cc" "src/CMakeFiles/unxpec_sim.dir/cleanup/spec_tracker.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cleanup/spec_tracker.cc.o.d"
  "/root/repo/src/cpu/assembler.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/assembler.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/assembler.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/isa.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/isa.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/isa.cc.o.d"
  "/root/repo/src/cpu/lsq.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/lsq.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/lsq.cc.o.d"
  "/root/repo/src/cpu/program.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/program.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/program.cc.o.d"
  "/root/repo/src/cpu/rob.cc" "src/CMakeFiles/unxpec_sim.dir/cpu/rob.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/cpu/rob.cc.o.d"
  "/root/repo/src/memory/address_map.cc" "src/CMakeFiles/unxpec_sim.dir/memory/address_map.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/address_map.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/unxpec_sim.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/hierarchy.cc" "src/CMakeFiles/unxpec_sim.dir/memory/hierarchy.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/hierarchy.cc.o.d"
  "/root/repo/src/memory/main_memory.cc" "src/CMakeFiles/unxpec_sim.dir/memory/main_memory.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/main_memory.cc.o.d"
  "/root/repo/src/memory/mshr.cc" "src/CMakeFiles/unxpec_sim.dir/memory/mshr.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/mshr.cc.o.d"
  "/root/repo/src/memory/replacement.cc" "src/CMakeFiles/unxpec_sim.dir/memory/replacement.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/memory/replacement.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/unxpec_sim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/unxpec_sim.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/unxpec_sim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/unxpec_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/sim/stats.cc.o.d"
  "/root/repo/src/workload/synth_spec.cc" "src/CMakeFiles/unxpec_sim.dir/workload/synth_spec.cc.o" "gcc" "src/CMakeFiles/unxpec_sim.dir/workload/synth_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
