# Empty compiler generated dependencies file for unxpec_sim.
# This may be replaced when dependencies are built.
