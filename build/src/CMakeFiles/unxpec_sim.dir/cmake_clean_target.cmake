file(REMOVE_RECURSE
  "libunxpec_sim.a"
)
