file(REMOVE_RECURSE
  "CMakeFiles/fig09_secret_bits.dir/fig09_secret_bits.cc.o"
  "CMakeFiles/fig09_secret_bits.dir/fig09_secret_bits.cc.o.d"
  "fig09_secret_bits"
  "fig09_secret_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_secret_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
