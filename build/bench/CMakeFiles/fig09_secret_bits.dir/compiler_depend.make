# Empty compiler generated dependencies file for fig09_secret_bits.
# This may be replaced when dependencies are built.
