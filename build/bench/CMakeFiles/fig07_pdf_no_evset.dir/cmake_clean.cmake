file(REMOVE_RECURSE
  "CMakeFiles/fig07_pdf_no_evset.dir/fig07_pdf_no_evset.cc.o"
  "CMakeFiles/fig07_pdf_no_evset.dir/fig07_pdf_no_evset.cc.o.d"
  "fig07_pdf_no_evset"
  "fig07_pdf_no_evset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pdf_no_evset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
