# Empty compiler generated dependencies file for fig07_pdf_no_evset.
# This may be replaced when dependencies are built.
