file(REMOVE_RECURSE
  "CMakeFiles/fig08_pdf_evset.dir/fig08_pdf_evset.cc.o"
  "CMakeFiles/fig08_pdf_evset.dir/fig08_pdf_evset.cc.o.d"
  "fig08_pdf_evset"
  "fig08_pdf_evset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pdf_evset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
