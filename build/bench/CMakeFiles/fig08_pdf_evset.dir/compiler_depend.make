# Empty compiler generated dependencies file for fig08_pdf_evset.
# This may be replaced when dependencies are built.
