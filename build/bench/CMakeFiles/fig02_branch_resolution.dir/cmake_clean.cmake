file(REMOVE_RECURSE
  "CMakeFiles/fig02_branch_resolution.dir/fig02_branch_resolution.cc.o"
  "CMakeFiles/fig02_branch_resolution.dir/fig02_branch_resolution.cc.o.d"
  "fig02_branch_resolution"
  "fig02_branch_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_branch_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
