# Empty dependencies file for fig02_branch_resolution.
# This may be replaced when dependencies are built.
