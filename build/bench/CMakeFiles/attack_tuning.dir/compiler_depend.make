# Empty compiler generated dependencies file for attack_tuning.
# This may be replaced when dependencies are built.
