file(REMOVE_RECURSE
  "CMakeFiles/attack_tuning.dir/attack_tuning.cc.o"
  "CMakeFiles/attack_tuning.dir/attack_tuning.cc.o.d"
  "attack_tuning"
  "attack_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
