# Empty dependencies file for attack_tuning.
# This may be replaced when dependencies are built.
