file(REMOVE_RECURSE
  "CMakeFiles/fig06_timing_difference_evset.dir/fig06_timing_difference_evset.cc.o"
  "CMakeFiles/fig06_timing_difference_evset.dir/fig06_timing_difference_evset.cc.o.d"
  "fig06_timing_difference_evset"
  "fig06_timing_difference_evset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_timing_difference_evset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
