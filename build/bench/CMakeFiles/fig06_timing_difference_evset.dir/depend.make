# Empty dependencies file for fig06_timing_difference_evset.
# This may be replaced when dependencies are built.
