file(REMOVE_RECURSE
  "CMakeFiles/fig11_leak_evset.dir/fig11_leak_evset.cc.o"
  "CMakeFiles/fig11_leak_evset.dir/fig11_leak_evset.cc.o.d"
  "fig11_leak_evset"
  "fig11_leak_evset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_leak_evset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
