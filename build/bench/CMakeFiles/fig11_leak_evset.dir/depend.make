# Empty dependencies file for fig11_leak_evset.
# This may be replaced when dependencies are built.
