file(REMOVE_RECURSE
  "CMakeFiles/robustness_noise.dir/robustness_noise.cc.o"
  "CMakeFiles/robustness_noise.dir/robustness_noise.cc.o.d"
  "robustness_noise"
  "robustness_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
