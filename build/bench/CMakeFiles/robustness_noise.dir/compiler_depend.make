# Empty compiler generated dependencies file for robustness_noise.
# This may be replaced when dependencies are built.
