file(REMOVE_RECURSE
  "CMakeFiles/fig10_leak_no_evset.dir/fig10_leak_no_evset.cc.o"
  "CMakeFiles/fig10_leak_no_evset.dir/fig10_leak_no_evset.cc.o.d"
  "fig10_leak_no_evset"
  "fig10_leak_no_evset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_leak_no_evset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
