# Empty compiler generated dependencies file for fig10_leak_no_evset.
# This may be replaced when dependencies are built.
