# Empty dependencies file for fig13_noisy_host.
# This may be replaced when dependencies are built.
