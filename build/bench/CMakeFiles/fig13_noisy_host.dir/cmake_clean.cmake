file(REMOVE_RECURSE
  "CMakeFiles/fig13_noisy_host.dir/fig13_noisy_host.cc.o"
  "CMakeFiles/fig13_noisy_host.dir/fig13_noisy_host.cc.o.d"
  "fig13_noisy_host"
  "fig13_noisy_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_noisy_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
