# Empty compiler generated dependencies file for fig03_timing_difference.
# This may be replaced when dependencies are built.
