file(REMOVE_RECURSE
  "CMakeFiles/fig03_timing_difference.dir/fig03_timing_difference.cc.o"
  "CMakeFiles/fig03_timing_difference.dir/fig03_timing_difference.cc.o.d"
  "fig03_timing_difference"
  "fig03_timing_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_timing_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
