# Empty compiler generated dependencies file for leakage_rate.
# This may be replaced when dependencies are built.
