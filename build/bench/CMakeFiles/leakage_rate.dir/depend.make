# Empty dependencies file for leakage_rate.
# This may be replaced when dependencies are built.
