file(REMOVE_RECURSE
  "CMakeFiles/leakage_rate.dir/leakage_rate.cc.o"
  "CMakeFiles/leakage_rate.dir/leakage_rate.cc.o.d"
  "leakage_rate"
  "leakage_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
