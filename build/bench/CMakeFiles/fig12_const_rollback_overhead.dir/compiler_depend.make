# Empty compiler generated dependencies file for fig12_const_rollback_overhead.
# This may be replaced when dependencies are built.
