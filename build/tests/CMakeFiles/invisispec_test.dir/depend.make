# Empty dependencies file for invisispec_test.
# This may be replaced when dependencies are built.
