file(REMOVE_RECURSE
  "CMakeFiles/invisispec_test.dir/invisispec_test.cc.o"
  "CMakeFiles/invisispec_test.dir/invisispec_test.cc.o.d"
  "invisispec_test"
  "invisispec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invisispec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
