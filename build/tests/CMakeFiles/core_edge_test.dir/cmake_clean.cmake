file(REMOVE_RECURSE
  "CMakeFiles/core_edge_test.dir/core_edge_test.cc.o"
  "CMakeFiles/core_edge_test.dir/core_edge_test.cc.o.d"
  "core_edge_test"
  "core_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
