file(REMOVE_RECURSE
  "CMakeFiles/nomo_test.dir/nomo_test.cc.o"
  "CMakeFiles/nomo_test.dir/nomo_test.cc.o.d"
  "nomo_test"
  "nomo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
