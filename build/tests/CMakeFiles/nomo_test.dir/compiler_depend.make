# Empty compiler generated dependencies file for nomo_test.
# This may be replaced when dependencies are built.
