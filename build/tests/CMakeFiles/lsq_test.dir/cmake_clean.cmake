file(REMOVE_RECURSE
  "CMakeFiles/lsq_test.dir/lsq_test.cc.o"
  "CMakeFiles/lsq_test.dir/lsq_test.cc.o.d"
  "lsq_test"
  "lsq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
