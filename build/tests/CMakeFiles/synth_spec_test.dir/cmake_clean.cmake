file(REMOVE_RECURSE
  "CMakeFiles/synth_spec_test.dir/synth_spec_test.cc.o"
  "CMakeFiles/synth_spec_test.dir/synth_spec_test.cc.o.d"
  "synth_spec_test"
  "synth_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
