# Empty dependencies file for synth_spec_test.
# This may be replaced when dependencies are built.
