# Empty compiler generated dependencies file for spectre_v1_test.
# This may be replaced when dependencies are built.
