file(REMOVE_RECURSE
  "CMakeFiles/spectre_v1_test.dir/spectre_v1_test.cc.o"
  "CMakeFiles/spectre_v1_test.dir/spectre_v1_test.cc.o.d"
  "spectre_v1_test"
  "spectre_v1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectre_v1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
