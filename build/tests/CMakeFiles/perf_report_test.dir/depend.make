# Empty dependencies file for perf_report_test.
# This may be replaced when dependencies are built.
