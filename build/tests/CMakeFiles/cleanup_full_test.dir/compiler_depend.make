# Empty compiler generated dependencies file for cleanup_full_test.
# This may be replaced when dependencies are built.
