file(REMOVE_RECURSE
  "CMakeFiles/cleanup_full_test.dir/cleanup_full_test.cc.o"
  "CMakeFiles/cleanup_full_test.dir/cleanup_full_test.cc.o.d"
  "cleanup_full_test"
  "cleanup_full_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleanup_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
