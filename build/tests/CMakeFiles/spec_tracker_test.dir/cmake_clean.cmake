file(REMOVE_RECURSE
  "CMakeFiles/spec_tracker_test.dir/spec_tracker_test.cc.o"
  "CMakeFiles/spec_tracker_test.dir/spec_tracker_test.cc.o.d"
  "spec_tracker_test"
  "spec_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
