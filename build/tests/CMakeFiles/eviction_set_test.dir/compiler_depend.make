# Empty compiler generated dependencies file for eviction_set_test.
# This may be replaced when dependencies are built.
