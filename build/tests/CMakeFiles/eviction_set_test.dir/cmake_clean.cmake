file(REMOVE_RECURSE
  "CMakeFiles/eviction_set_test.dir/eviction_set_test.cc.o"
  "CMakeFiles/eviction_set_test.dir/eviction_set_test.cc.o.d"
  "eviction_set_test"
  "eviction_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
