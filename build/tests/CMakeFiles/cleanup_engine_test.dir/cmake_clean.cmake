file(REMOVE_RECURSE
  "CMakeFiles/cleanup_engine_test.dir/cleanup_engine_test.cc.o"
  "CMakeFiles/cleanup_engine_test.dir/cleanup_engine_test.cc.o.d"
  "cleanup_engine_test"
  "cleanup_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleanup_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
