file(REMOVE_RECURSE
  "CMakeFiles/delay_on_miss_test.dir/delay_on_miss_test.cc.o"
  "CMakeFiles/delay_on_miss_test.dir/delay_on_miss_test.cc.o.d"
  "delay_on_miss_test"
  "delay_on_miss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_on_miss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
