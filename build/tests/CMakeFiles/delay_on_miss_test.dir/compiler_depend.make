# Empty compiler generated dependencies file for delay_on_miss_test.
# This may be replaced when dependencies are built.
