file(REMOVE_RECURSE
  "CMakeFiles/unxpec_test.dir/unxpec_test.cc.o"
  "CMakeFiles/unxpec_test.dir/unxpec_test.cc.o.d"
  "unxpec_test"
  "unxpec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unxpec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
