# Empty compiler generated dependencies file for unxpec_test.
# This may be replaced when dependencies are built.
