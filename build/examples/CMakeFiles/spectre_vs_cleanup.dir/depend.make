# Empty dependencies file for spectre_vs_cleanup.
# This may be replaced when dependencies are built.
