file(REMOVE_RECURSE
  "CMakeFiles/spectre_vs_cleanup.dir/spectre_vs_cleanup.cpp.o"
  "CMakeFiles/spectre_vs_cleanup.dir/spectre_vs_cleanup.cpp.o.d"
  "spectre_vs_cleanup"
  "spectre_vs_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectre_vs_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
