# Empty compiler generated dependencies file for mitigation_sweep.
# This may be replaced when dependencies are built.
