file(REMOVE_RECURSE
  "CMakeFiles/mitigation_sweep.dir/mitigation_sweep.cpp.o"
  "CMakeFiles/mitigation_sweep.dir/mitigation_sweep.cpp.o.d"
  "mitigation_sweep"
  "mitigation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
