file(REMOVE_RECURSE
  "CMakeFiles/covert_message.dir/covert_message.cpp.o"
  "CMakeFiles/covert_message.dir/covert_message.cpp.o.d"
  "covert_message"
  "covert_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
