# Empty compiler generated dependencies file for covert_message.
# This may be replaced when dependencies are built.
