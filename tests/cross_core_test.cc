/**
 * @file
 * Tests for the cross-core unXpec variant: on the unsafe baseline a
 * receiver core separates the sender's secret bits by probe timing
 * (ROC AUC well above 0.9), while the undo-based defenses plus the
 * coherence engine's dummy-miss/delayed-downgrade semantics close the
 * channel. Also covers the Session plumbing for spec.cores.
 */

#include <gtest/gtest.h>

#include "attack/cross_core.hh"
#include "harness/session.hh"
#include "machine/machine.hh"

namespace unxpec {
namespace {

TEST(CrossCoreAttackTest, UnsafeBaselineLeaksAcrossCores)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    cfg.numCores = 2;
    cfg.seed = 1;
    Machine machine(cfg);
    CrossCoreAttack attack(machine);

    // Secret-1 rounds leave P[64] resident somewhere in the machine
    // (snoop / shared-L2 hit); secret-0 rounds leave it flushed
    // (memory fill). The receiver's two latency distributions must be
    // essentially disjoint.
    const double auc = attack.aucScore(20);
    EXPECT_GT(auc, 0.9);
}

TEST(CrossCoreAttackTest, UnsafeBaselineDecodesBits)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    cfg.numCores = 2;
    cfg.seed = 2;
    Machine machine(cfg);
    CrossCoreAttack attack(machine);

    const double threshold = attack.calibrate(10);
    const std::vector<int> secret = {1, 0, 1, 1, 0, 0, 1, 0};
    const LeakResult result = attack.leak(secret, threshold);
    EXPECT_GE(result.accuracy, 0.9);
}

TEST(CrossCoreAttackTest, CleanupDefenseClosesTheChannel)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.numCores = 2;
    cfg.seed = 3;
    Machine machine(cfg);
    CrossCoreAttack attack(machine);

    // Rollback removes the transient install from L1 and L2 and the
    // engine hides any still-speculative copy: both secrets time as
    // misses, so the classifier degrades to (near) guessing.
    const double auc = attack.aucScore(20);
    EXPECT_LT(auc, 0.75);
    EXPECT_GT(auc, 0.25);
}

TEST(CrossCoreAttackTest, MeasurementsAreDeterministic)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    cfg.numCores = 2;
    cfg.seed = 4;

    auto first_samples = [&] {
        Machine machine(cfg);
        CrossCoreAttack attack(machine);
        return attack.collect(1, 5);
    };
    const auto a = first_samples();
    const auto b = first_samples();
    EXPECT_EQ(a, b);
}

TEST(CrossCoreAttackTest, SessionBuildsTheAttackFromASpec)
{
    ExperimentSpec spec;
    spec.defense = "unsafe";
    spec.attack = "unxpec-xcore";
    spec.cores = 2;
    Session session(spec, 1);
    EXPECT_EQ(session.machine().numCores(), 2u);
    CrossCoreAttack &attack = session.crossCore();
    const double latency = attack.collect(1, 1).front();
    EXPECT_GT(latency, 0.0);
}

TEST(CrossCoreAttackTest, CyclesPerSampleAccumulates)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    cfg.numCores = 2;
    cfg.seed = 5;
    Machine machine(cfg);
    CrossCoreAttack attack(machine);
    EXPECT_EQ(attack.cyclesPerSample(), 0.0);
    attack.collect(0, 2);
    EXPECT_GT(attack.cyclesPerSample(), 0.0);
}

} // namespace
} // namespace unxpec
