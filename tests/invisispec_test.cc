/**
 * @file
 * Tests for the InvisiSpec-style Invisible defense: speculative loads
 * leave no cache trace, squashes are free (so unXpec has nothing to
 * time), commits pay the exposure/validation cost (the Invisible
 * class's overhead the paper's intro cites), and Spectre v1 is
 * defeated.
 */

#include <gtest/gtest.h>

#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

TEST(InvisiSpecTest, InvisibleAccessTouchesNoCacheState)
{
    SystemConfig cfg = SystemConfig::makeInvisiSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessInvisible(0x10000, 100, 1);
    EXPECT_TRUE(record.invisible);
    EXPECT_FALSE(record.l1Installed);
    EXPECT_FALSE(record.l2Installed);
    EXPECT_TRUE(hier.l1d().residentLines().empty());
    EXPECT_TRUE(hier.l2().residentLines().empty());
    EXPECT_EQ(hier.l1d().mshr().inflight(), 0u);
    // Latency still reflects the real path (full miss here).
    EXPECT_EQ(record.latency(), cfg.l1d.hitLatency + cfg.l2.hitLatency +
                                    cfg.memory.accessLatency);
}

TEST(InvisiSpecTest, InvisibleAccessSeesCachedLines)
{
    SystemConfig cfg = SystemConfig::makeInvisiSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto fill = hier.access(0x10000, 100, false, false, 1);
    const auto record = hier.accessInvisible(0x10000, fill.ready + 1, 2);
    EXPECT_TRUE(record.l1Hit);
    EXPECT_EQ(record.latency(), cfg.l1d.hitLatency);
}

TEST(InvisiSpecTest, UnxpecChannelClosed)
{
    // No rollback -> no rollback timing -> the unXpec channel does
    // not exist against Invisible schemes.
    Core core(SystemConfig::makeInvisiSpec());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

TEST(InvisiSpecTest, SpectreDefeated)
{
    Core core(SystemConfig::makeInvisiSpec());
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    EXPECT_FALSE(result.cacheHitSignal);
}

TEST(InvisiSpecTest, TransientLoadLeavesNoResidentLine)
{
    // After an unXpec round with secret 1, the probe lines must be
    // absent from both levels (they only ever lived in the shadow
    // buffer).
    auto resident = [](int secret) {
        Core core(SystemConfig::makeInvisiSpec());
        UnxpecAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

TEST(InvisiSpecTest, CommittedSpeculativeLoadExposesLine)
{
    // A correctly speculated load must become architecturally visible
    // at commit (exposure installs it).
    Core core(SystemConfig::makeInvisiSpec());
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    const Addr bound = b.alloc(64);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 2); // in bounds
    b.li(5, static_cast<std::int64_t>(bound));
    b.li(6, static_cast<std::int64_t>(buf));
    b.clflush(5, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip);   // not taken: the body is the correct path
    b.load(3, 6, 0);     // speculative but correct -> must expose
    b.bind(skip);
    b.halt();
    core.run(b.build());
    EXPECT_TRUE(core.hierarchy().l1d().present(lineAlign(buf),
                                               core.now()));
}

TEST(InvisiSpecTest, ValidationSlowsCommitOnSpeculativeMisses)
{
    // The Invisible class's cost: speculative misses are read twice.
    const Program p =
        SynthSpec::generate(SynthSpec::profile("mcf_r"), 21);
    RunOptions options;
    options.maxInstructions = 30000;

    Core unsafe(SystemConfig::makeUnsafeBaseline());
    const Cycle base = unsafe.run(p, options).cycles;

    Core invisible(SystemConfig::makeInvisiSpec());
    const Cycle protected_cycles = invisible.run(p, options).cycles;

    Core cleanup(SystemConfig::makeDefault());
    const Cycle cleanup_cycles = cleanup.run(p, options).cycles;

    // InvisiSpec costs noticeably more than both the baseline and the
    // Undo scheme — the paper's motivation for Undo defenses.
    EXPECT_GT(static_cast<double>(protected_cycles), 1.05 * base);
    EXPECT_GT(protected_cycles, cleanup_cycles);
}

TEST(InvisiSpecTest, ArchitecturalResultsUnchanged)
{
    // Same program, same answers, regardless of scheme.
    ProgramBuilder b;
    const Addr buf = b.alloc(256);
    for (unsigned i = 0; i < 8; ++i)
        b.initWord64(buf + 8 * i, i * 3 + 1);
    b.li(1, static_cast<std::int64_t>(buf));
    b.li(2, 0);
    b.li(3, 8);
    b.li(4, 0);
    const int top = b.label();
    b.bind(top);
    b.shl(5, 2, 3);
    b.add(5, 5, 1);
    b.load(6, 5, 0);
    b.add(4, 4, 6);
    b.addi(2, 2, 1);
    b.blt(2, 3, top);
    b.halt();
    const Program p = b.build();

    Core invisible(SystemConfig::makeInvisiSpec());
    Core cleanup(SystemConfig::makeDefault());
    EXPECT_EQ(invisible.run(p).reg(4), cleanup.run(p).reg(4));
    EXPECT_EQ(cleanup.run(p).reg(4), 92u);
}

} // namespace
} // namespace unxpec
