/**
 * @file
 * End-to-end tests for the secret-bearing victim programs: the AES
 * T-table and RSA square-and-multiply listings assemble through the
 * text assembler, a planted AES key is recovered in full under the
 * unsafe baseline, undo defenses degrade the recovery, and the
 * FU-contention receiver re-opens the RSA channel under cache-hiding
 * defenses. Everything must be deterministic for a given seed.
 */

#include <gtest/gtest.h>

#include "attack/victim_attack.hh"
#include "cpu/core.hh"
#include "sim/config.hh"

namespace unxpec {
namespace {

/** FIPS-197 example key (appendix A.1). */
constexpr std::array<std::uint8_t, 16> kDemoKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
};

constexpr std::uint64_t kDemoExponent = 0x9e3779b97f4a7c15ull;

unsigned
correctBytes(const AesRecoveryResult &result)
{
    unsigned correct = 0;
    for (unsigned b = 0; b < 16; ++b)
        correct += result.guess[b] == kDemoKey[b];
    return correct;
}

unsigned
correctExponentBits(std::uint64_t guess)
{
    const std::uint64_t wrong = guess ^ kDemoExponent;
    unsigned correct = 64;
    for (unsigned b = 0; b < 64; ++b)
        correct -= (wrong >> b) & 1;
    return correct;
}

AesRecoveryResult
recoverAes(const SystemConfig &base)
{
    SystemConfig cfg = base;
    cfg.seed = 1;
    Core core(cfg);
    VictimAttackConfig vcfg;
    VictimAttack attack(core, vcfg);
    attack.setKey(kDemoKey);
    return attack.recoverAesKey();
}

RsaRecoveryResult
recoverRsa(const SystemConfig &base, bool contention_receiver)
{
    SystemConfig cfg = base;
    cfg.seed = 1;
    Core core(cfg);
    VictimAttackConfig vcfg;
    vcfg.victim.kind = VictimKind::RsaSqMul;
    VictimAttack attack(core, vcfg);
    attack.setExponent(kDemoExponent);
    return attack.recoverExponent(contention_receiver);
}

TEST(VictimListingTest, BothListingsAssemble)
{
    VictimConfig cfg;
    const VictimListing aes = buildVictim(cfg);
    EXPECT_GT(aes.program.size(), 0u);
    EXPECT_NE(aes.source.find("load1"), std::string::npos);
    EXPECT_EQ(aes.trials, cfg.mistrainIterations + 1);
    // The pokable cells the harness depends on.
    for (const char *sym :
         {kAesTableSym, kAesKeySym, kAesPlaintextSym, kAesTableBaseSym,
          kAesFlushSym, kIdxTabSym, kAesProbeOutSym}) {
        EXPECT_NO_FATAL_FAILURE(aes.symbol(sym)) << sym;
    }

    cfg.kind = VictimKind::RsaSqMul;
    const VictimListing rsa = buildVictim(cfg);
    EXPECT_GT(rsa.program.size(), 0u);
    for (const char *sym :
         {kRsaExponentSym, kRsaMulTabSym, kRsaProbeOutSym,
          kRsaContentionOutSym, kIdxTabSym}) {
        EXPECT_NO_FATAL_FAILURE(rsa.symbol(sym)) << sym;
    }
}

TEST(VictimListingTest, TtablesDeriveFromTheSbox)
{
    // T0[0x00]: S[0] = 0x63 -> [2*63, 63, 63, 3*63] = c6 63 63 a5.
    EXPECT_EQ(aesTtableEntry(0, 0), 0xc66363a5u);
    // T1..T3 are byte rotations of T0.
    EXPECT_EQ(aesTtableEntry(1, 0), 0xa5c66363u);
    EXPECT_EQ(aesTtableEntry(2, 0), 0x63a5c663u);
    EXPECT_EQ(aesTtableEntry(3, 0), 0x6363a5c6u);
    EXPECT_EQ(aesSbox()[0x53], 0xed);
}

TEST(VictimRecoveryTest, AesFullKeyUnderUnsafeBaseline)
{
    const AesRecoveryResult result =
        recoverAes(SystemConfig::makeUnsafeBaseline());
    EXPECT_EQ(correctBytes(result), 16u);
    EXPECT_EQ(result.confidentBytes, 16u);
    for (unsigned b = 0; b < 16; ++b)
        EXPECT_GT(result.margin[b], 0.0) << "byte " << b;
}

TEST(VictimRecoveryTest, AesDegradedUnderSafeSpec)
{
    const AesRecoveryResult result =
        recoverAes(SystemConfig::makeSafeSpec());
    EXPECT_LE(correctBytes(result), 8u);
    EXPECT_LE(result.confidentBytes, 8u);
}

TEST(VictimRecoveryTest, RsaExponentUnderUnsafeBaseline)
{
    const RsaRecoveryResult result =
        recoverRsa(SystemConfig::makeUnsafeBaseline(), false);
    EXPECT_TRUE(result.confident);
    EXPECT_EQ(correctExponentBits(result.guess), 64u);
}

TEST(VictimRecoveryTest, RsaContentionReopensUnderSafeSpec)
{
    // SafeSpec hides all speculative cache state: the reload receiver
    // must collapse...
    const RsaRecoveryResult cache =
        recoverRsa(SystemConfig::makeSafeSpec(), false);
    EXPECT_LE(correctExponentBits(cache.guess), 48u);

    // ...but the burst's busy window on a non-pipelined multiplier
    // survives the squash (SpectreRewind), re-opening recovery.
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    cfg.core.mulPipelined = false;
    const RsaRecoveryResult fu = recoverRsa(cfg, true);
    EXPECT_TRUE(fu.confident);
    EXPECT_EQ(correctExponentBits(fu.guess), 64u);
}

TEST(VictimRecoveryTest, RecoveryIsDeterministic)
{
    const AesRecoveryResult a =
        recoverAes(SystemConfig::makeUnsafeBaseline());
    const AesRecoveryResult b =
        recoverAes(SystemConfig::makeUnsafeBaseline());
    EXPECT_EQ(a.guess, b.guess);
    EXPECT_EQ(a.margin, b.margin);

    const RsaRecoveryResult r1 =
        recoverRsa(SystemConfig::makeUnsafeBaseline(), false);
    const RsaRecoveryResult r2 =
        recoverRsa(SystemConfig::makeUnsafeBaseline(), false);
    EXPECT_EQ(r1.guess, r2.guess);
    EXPECT_EQ(r1.stats, r2.stats);
}

} // namespace
} // namespace unxpec
