/**
 * @file
 * Tests of the unXpec attack orchestration: the secret actually
 * decides the latency, leaks decode correctly, instrumentation is
 * coherent, and the defense comparison behaves as the paper claims.
 */

#include <gtest/gtest.h>

#include "attack/channel.hh"
#include "attack/unxpec.hh"

namespace unxpec {
namespace {

TEST(UnxpecTest, SecretOneIsSlower)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const auto zeros = attack.collect(0, 5);
    const auto ones = attack.collect(1, 5);
    for (const double z : zeros) {
        for (const double o : ones)
            EXPECT_LT(z, o);
    }
}

TEST(UnxpecTest, QuietMachineMeasurementsAreStable)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const auto zeros = attack.collect(0, 6);
    for (const double z : zeros)
        EXPECT_EQ(z, zeros.front());
}

TEST(UnxpecTest, DetailReportsRollbackWork)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.inBranchLoads = 3;
    UnxpecAttack attack(core, cfg);
    attack.setSecret(1);
    attack.measureOnce();
    const RoundDetail &detail = attack.lastDetail();
    ASSERT_TRUE(detail.valid);
    EXPECT_EQ(detail.invalidationsL1, 3u);
    EXPECT_EQ(detail.invalidationsL2, 3u);
    EXPECT_GT(detail.cleanupStall, 0u);
    EXPECT_GT(detail.branchResolution, 100u);
}

TEST(UnxpecTest, SecretZeroRollbackIsFree)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const RoundDetail &detail = attack.lastDetail();
    ASSERT_TRUE(detail.valid);
    EXPECT_EQ(detail.cleanupStall, 0u);
    EXPECT_EQ(detail.invalidationsL1, 0u);
}

TEST(UnxpecTest, EvictionSetsForceRestores)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.useEvictionSets = true;
    cfg.inBranchLoads = 2;
    UnxpecAttack attack(core, cfg);
    attack.setSecret(1);
    attack.measureOnce();
    EXPECT_EQ(attack.lastDetail().restores, 2u);
}

TEST(UnxpecTest, LeakDecodesPerfectlyOnQuietMachine)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(4);
    const std::vector<int> secret = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
    const LeakResult result = attack.leak(secret, threshold);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
    EXPECT_EQ(result.guesses, secret);
}

TEST(UnxpecTest, ChannelClosedOnUnsafeBaseline)
{
    // Without rollback there is nothing secret-dependent to time:
    // the unXpec channel only exists against Undo defenses.
    Core core(SystemConfig::makeUnsafeBaseline());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

TEST(UnxpecTest, ConstantTimeRollbackClosesChannel)
{
    Core core(SystemConfig::makeDefault());
    core.cleanup().timing().constantTimeCycles = 65;
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 2.0);
}

TEST(UnxpecTest, CyclesPerSampleAccounted)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    EXPECT_EQ(attack.cyclesPerSample(), 0.0);
    attack.collect(0, 3);
    EXPECT_GT(attack.cyclesPerSample(), 500.0);
}

TEST(UnxpecTest, MoreMistrainingCostsMoreCycles)
{
    Core core_short(SystemConfig::makeDefault());
    UnxpecConfig short_cfg;
    short_cfg.mistrainIterations = 4;
    UnxpecAttack short_attack(core_short, short_cfg);
    short_attack.collect(0, 3);

    Core core_long(SystemConfig::makeDefault());
    UnxpecConfig long_cfg;
    long_cfg.mistrainIterations = 48;
    UnxpecAttack long_attack(core_long, long_cfg);
    long_attack.collect(0, 3);

    EXPECT_GT(long_attack.cyclesPerSample(),
              2 * short_attack.cyclesPerSample());
}

TEST(UnxpecTest, LeakBytesRoundTrip)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(4);
    const std::vector<std::uint8_t> secret = {'u', 'n', 'X', 0x00, 0xFF};
    EXPECT_EQ(attack.leakBytes(secret, threshold), secret);
}

TEST(UnxpecTest, MultiSampleMatchesSingleOnQuietMachine)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(4);
    const std::vector<int> secret = {1, 0, 0, 1, 1};
    const LeakResult multi =
        attack.leakMultiSample(secret, threshold, 3);
    EXPECT_DOUBLE_EQ(multi.accuracy, 1.0);
    EXPECT_EQ(multi.guesses, secret);
}

TEST(UnxpecTest, RejectsDegenerateConfigs)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig no_loads;
    no_loads.inBranchLoads = 0;
    EXPECT_DEATH({ UnxpecAttack attack(core, no_loads); }, "");
}

TEST(UnxpecTest, FuzzyMitigationBlursChannel)
{
    // §VII future work: dummy cleanup noise should reduce the mean
    // separation relative to the deterministic 22 cycles... actually
    // it keeps the mean but adds variance, raising the error rate.
    Core core(SystemConfig::makeDefault());
    core.cleanup().timing().fuzzyMaxCycles = 40;
    UnxpecAttack attack(core);
    const auto zeros = attack.collect(0, 20);
    const auto ones = attack.collect(1, 20);
    // Distributions now overlap: at least one zero-measurement exceeds
    // at least one one-measurement.
    double max_zero = 0.0, min_one = 1e18;
    for (const double z : zeros)
        max_zero = std::max(max_zero, z);
    for (const double o : ones)
        min_one = std::min(min_one, o);
    EXPECT_GT(max_zero, min_one);
}

} // namespace
} // namespace unxpec
