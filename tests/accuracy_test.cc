/**
 * @file
 * Unit tests for channel-quality metrics and leakage-rate arithmetic.
 */

#include <gtest/gtest.h>

#include "analysis/accuracy.hh"

namespace unxpec {
namespace {

TEST(BitChannelReportTest, ConfusionMatrix)
{
    const std::vector<int> secret = {0, 0, 0, 1, 1, 1, 1, 0};
    const std::vector<int> guesses = {0, 1, 0, 1, 1, 0, 1, 0};
    const auto report = BitChannelReport::of(guesses, secret);
    EXPECT_EQ(report.true0, 3u);
    EXPECT_EQ(report.false1, 1u);
    EXPECT_EQ(report.true1, 3u);
    EXPECT_EQ(report.false0, 1u);
    EXPECT_EQ(report.total(), 8u);
    EXPECT_DOUBLE_EQ(report.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(report.errorRate(), 0.25);
    EXPECT_DOUBLE_EQ(report.zeroErrorRate(), 0.25);
    EXPECT_DOUBLE_EQ(report.oneErrorRate(), 0.25);
}

TEST(BitChannelReportTest, PerfectChannel)
{
    const std::vector<int> bits = {0, 1, 1, 0};
    const auto report = BitChannelReport::of(bits, bits);
    EXPECT_DOUBLE_EQ(report.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(report.zeroErrorRate(), 0.0);
}

TEST(BitChannelReportTest, EmptyIsSafe)
{
    const auto report = BitChannelReport::of({}, {});
    EXPECT_DOUBLE_EQ(report.accuracy(), 0.0);
    EXPECT_EQ(report.total(), 0u);
}

TEST(LeakageRateTest, PaperArithmetic)
{
    // The paper: ~140,000 samples/s on a 2 GHz CPU -> one sample every
    // ~14,286 cycles; one sample per bit -> 140 Kbps.
    const double cycles_per_sample = 2e9 / 140000.0;
    EXPECT_NEAR(LeakageRate::samplesPerSecond(cycles_per_sample, 2.0),
                140000.0, 1.0);
    EXPECT_NEAR(LeakageRate::bitsPerSecond(cycles_per_sample, 2.0, 1),
                140000.0, 1.0);
    EXPECT_NEAR(LeakageRate::bitsPerSecond(cycles_per_sample, 2.0, 4),
                35000.0, 1.0);
}

TEST(LeakageRateTest, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(LeakageRate::samplesPerSecond(0.0, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(LeakageRate::bitsPerSecond(100.0, 2.0, 0), 0.0);
}

} // namespace
} // namespace unxpec
