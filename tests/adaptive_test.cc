/**
 * @file
 * Tests for the adaptive decoder, including the end-to-end drift
 * scenario: DVFS-style latency drift defeats the calibrated-once
 * threshold but not the adaptive receiver.
 */

#include <gtest/gtest.h>

#include "attack/adaptive.hh"
#include "attack/channel.hh"
#include "attack/unxpec.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(AdaptiveDecoderTest, MatchesStaticOnStationaryData)
{
    Rng rng(1);
    AdaptiveDecoder adaptive(171.0, 22.0);
    int correct = 0;
    const int bits = 2000;
    for (int i = 0; i < bits; ++i) {
        const int secret = static_cast<int>(rng.range(2));
        const double latency = rng.gaussian(secret ? 182.0 : 160.0, 6.0);
        if (adaptive.decode(latency) == secret)
            ++correct;
    }
    EXPECT_GT(correct, bits * 0.9);
    EXPECT_NEAR(adaptive.mean0(), 160.0, 4.0);
    EXPECT_NEAR(adaptive.mean1(), 182.0, 4.0);
}

TEST(AdaptiveDecoderTest, TracksDriftingBaseline)
{
    Rng rng(2);
    AdaptiveDecoder adaptive(171.0, 22.0);
    const double static_threshold = 171.0;
    int adaptive_correct = 0, static_correct = 0;
    const int bits = 2000;
    for (int i = 0; i < bits; ++i) {
        const double drift = 0.03 * i; // +60 cycles over the run
        const int secret = static_cast<int>(rng.range(2));
        const double latency =
            rng.gaussian((secret ? 182.0 : 160.0) + drift, 6.0);
        if (adaptive.decode(latency) == secret)
            ++adaptive_correct;
        if (CovertChannel::decode(latency, static_threshold) == secret)
            ++static_correct;
    }
    // The fixed threshold collapses to "everything is 1" (~50 %);
    // the adaptive decoder keeps following the midpoint.
    EXPECT_LT(static_correct, bits * 0.70);
    EXPECT_GT(adaptive_correct, bits * 0.85);
}

TEST(AdaptiveDecoderTest, OutlierSpikesDoNotYankBoundary)
{
    AdaptiveDecoder adaptive(171.0, 22.0);
    for (int i = 0; i < 20; ++i) {
        adaptive.decode(160.0);
        adaptive.decode(182.0);
    }
    const double before = adaptive.threshold();
    adaptive.decode(2500.0); // interrupt spike
    EXPECT_LT(adaptive.threshold() - before, 10.0);
}

TEST(AdaptiveDecoderTest, EndToEndDvfsDrift)
{
    // Real pipeline: leak bits while the memory latency creeps up 1
    // cycle every few bits (cumulative +25 ~ a full channel width).
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(6);
    AdaptiveDecoder adaptive(threshold, 22.0);

    Rng rng(7);
    const unsigned base_latency = core.config().memory.accessLatency;
    int adaptive_correct = 0, static_correct = 0;
    const int bits = 100;
    for (int i = 0; i < bits; ++i) {
        core.mem().setAccessLatency(base_latency + i / 4);
        const int secret = static_cast<int>(rng.range(2));
        attack.setSecret(secret);
        const double latency = attack.measureOnce();
        if (adaptive.decode(latency) == secret)
            ++adaptive_correct;
        if (CovertChannel::decode(latency, threshold) == secret)
            ++static_correct;
    }
    EXPECT_GT(adaptive_correct, bits * 0.9);
    EXPECT_GT(adaptive_correct, static_correct);
}

} // namespace
} // namespace unxpec
