/**
 * @file
 * Unit tests for the rollback engine: state effects per mode, timing
 * formula, constant-time and fuzzy countermeasures, logging.
 */

#include <gtest/gtest.h>

#include "cleanup/cleanup_engine.hh"

namespace unxpec {
namespace {

class CleanupEngineTest : public ::testing::Test
{
  protected:
    CleanupEngineTest()
        : cfg_(SystemConfig::makeDefault()), rng_(1), hier_(cfg_, rng_)
    {
    }

    /** Issue a speculative access whose fill lands at its ready cycle. */
    MemAccessRecord specAccess(Addr addr, Cycle now, SeqNum seq)
    {
        return hier_.access(addr, now, false, true, seq);
    }

    CleanupJob jobOf(Cycle squash, std::vector<MemAccessRecord> records)
    {
        return SpecTracker::buildJob(squash, records);
    }

    SystemConfig cfg_;
    Rng rng_;
    MemoryHierarchy hier_;
};

TEST_F(CleanupEngineTest, EmptyJobStallsZero)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const CleanupJob job = jobOf(1000, {});
    EXPECT_EQ(engine.rollback(hier_, job, 0), 1000u);
    EXPECT_EQ(engine.lastStall(), 0u);
}

TEST_F(CleanupEngineTest, SingleLandedLoadCostsTwentyTwo)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const auto record = specAccess(0x10000, 100, 1);
    const CleanupJob job = jobOf(record.ready + 10, {record});
    const Cycle until = engine.rollback(hier_, job, 0);
    EXPECT_EQ(until - job.squashCycle, 22u);
    // State rolled back.
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
    EXPECT_EQ(hier_.l2().probe(record.lineAddr), nullptr);
}

TEST_F(CleanupEngineTest, RestoreAddsTenCycles)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    // Fill an L1 set so a speculative access must evict.
    const unsigned sets = cfg_.l1d.numSets();
    Cycle now = 100;
    for (unsigned i = 0; i < cfg_.l1d.ways; ++i)
        now = hier_.access(0x300000 + i * sets * kLineBytes, now, false,
                           false, i).ready + 1;
    const auto record =
        specAccess(0x300000 + cfg_.l1d.ways * sets * kLineBytes, now, 99);
    ASSERT_TRUE(record.l1VictimValid);
    const CleanupJob job = jobOf(record.ready + 5, {record});
    const Cycle until = engine.rollback(hier_, job, 0);
    EXPECT_EQ(until - job.squashCycle, 32u);
    // Victim back, intruder gone.
    EXPECT_NE(hier_.l1d().probe(record.l1Victim), nullptr);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
}

TEST_F(CleanupEngineTest, UnsafeBaselineLeavesFootprint)
{
    CleanupEngine engine(CleanupMode::UnsafeBaseline, CleanupTiming{},
                         rng_);
    const auto record = specAccess(0x10000, 100, 1);
    const CleanupJob job = jobOf(record.ready + 10, {record});
    const Cycle until = engine.rollback(hier_, job, 0);
    EXPECT_EQ(until, job.squashCycle);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->speculative); // unmarked, but still present
}

TEST_F(CleanupEngineTest, ForL1ModeKeepsL2Line)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1, CleanupTiming{},
                         rng_);
    const auto record = specAccess(0x10000, 100, 1);
    const CleanupJob job = jobOf(record.ready + 10, {record});
    const Cycle until = engine.rollback(hier_, job, 0);
    // Only the L1 walk: trigger (4) + L1 first (4) = 8.
    EXPECT_EQ(until - job.squashCycle, 8u);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
    EXPECT_NE(hier_.l2().probe(record.lineAddr), nullptr);
}

TEST_F(CleanupEngineTest, InflightJobScrubbedCheaply)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const auto record = specAccess(0x10000, 100, 1);
    // Squash before the fill lands.
    const CleanupJob job = jobOf(record.ready - 50, {record});
    ASSERT_EQ(job.inflight.size(), 1u);
    const Cycle until = engine.rollback(hier_, job, 0);
    EXPECT_EQ(until - job.squashCycle,
              static_cast<Cycle>(CleanupTiming{}.mshrCleanCost));
    // The eager install was undone.
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
}

TEST_F(CleanupEngineTest, T4WaitsForOlderLoads)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const auto record = specAccess(0x10000, 100, 1);
    const Cycle squash = record.ready + 10;
    const Cycle older_drain = squash + 40;
    const CleanupJob job = jobOf(squash, {record});
    const Cycle until = engine.rollback(hier_, job, older_drain);
    EXPECT_EQ(until, older_drain + 22);
}

TEST_F(CleanupEngineTest, ConstantTimeFloorsStall)
{
    CleanupTiming timing;
    timing.constantTimeCycles = 45;
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, timing, rng_);
    // Squash with no footprint: still stalls the full constant.
    const CleanupJob empty = jobOf(500, {});
    EXPECT_EQ(engine.rollback(hier_, empty, 0), 545u);
    EXPECT_EQ(
        engine.stats().findCounter("extraCleanupSquashTimeCycles")->value(),
        45u);
}

TEST_F(CleanupEngineTest, ConstantTimeRelaxedWhenWorkExceedsIt)
{
    CleanupTiming timing;
    timing.constantTimeCycles = 25;
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, timing, rng_);
    const auto record = specAccess(0x10000, 100, 1);
    const CleanupJob job = jobOf(record.ready + 10, {record});
    // Natural cost 22 < 25: padded to the constant.
    EXPECT_EQ(engine.rollback(hier_, job, 0) - job.squashCycle, 25u);
    EXPECT_EQ(
        engine.stats().findCounter("extraCleanupSquashTimeCycles")->value(),
        3u);
}

TEST_F(CleanupEngineTest, FuzzyAddsBoundedNoise)
{
    CleanupTiming timing;
    timing.fuzzyMaxCycles = 16;
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, timing, rng_);
    bool varied = false;
    Cycle first_stall = kCycleNever;
    for (int i = 0; i < 32; ++i) {
        const CleanupJob job = jobOf(1000 + i * 100, {});
        const Cycle until = engine.rollback(hier_, job, 0);
        const Cycle stall = until - job.squashCycle;
        EXPECT_LE(stall, 16u);
        if (first_stall == kCycleNever)
            first_stall = stall;
        varied = varied || stall != first_stall;
    }
    EXPECT_TRUE(varied);
}

TEST_F(CleanupEngineTest, DurationFormulaPipelines)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const double one = engine.rollbackDuration(1, 1, 0);
    const double eight = engine.rollbackDuration(8, 8, 0);
    EXPECT_DOUBLE_EQ(one, 22.0);
    // Growth is slow: ~0.5/line on the dominating L2 walk.
    EXPECT_NEAR(eight - one, 3.5, 0.01);
    // Restoration grows much faster.
    const double with_restores = engine.rollbackDuration(8, 8, 8);
    EXPECT_NEAR(with_restores - eight, 10.0 + 7 * 4.2, 0.01);
}

TEST_F(CleanupEngineTest, LogRecordsSquashes)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    engine.enableLog(true);
    const auto record = specAccess(0x10000, 100, 1);
    const CleanupJob job = jobOf(record.ready + 10, {record});
    engine.rollback(hier_, job, 0);
    ASSERT_EQ(engine.log().size(), 1u);
    EXPECT_EQ(engine.log()[0].stall, 22u);
    EXPECT_EQ(engine.log()[0].l1Invalidations, 1u);
    engine.clearLog();
    EXPECT_TRUE(engine.log().empty());
}

TEST_F(CleanupEngineTest, StatsAccumulate)
{
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, CleanupTiming{},
                         rng_);
    const auto r1 = specAccess(0x10000, 100, 1);
    const auto r2 = specAccess(0x20000, 100, 2);
    const Cycle squash = std::max(r1.ready, r2.ready) + 1;
    engine.rollback(hier_, jobOf(squash, {r1, r2}), 0);
    EXPECT_EQ(engine.stats().findCounter("squashes")->value(), 1u);
    EXPECT_EQ(engine.stats().findCounter("invalidationsL1")->value(), 2u);
    EXPECT_EQ(engine.stats().findCounter("invalidationsL2")->value(), 2u);
    EXPECT_GT(engine.stats().findCounter("cycles")->value(), 0u);
}

} // namespace
} // namespace unxpec
