/**
 * @file
 * Unit tests for the key-recovery ranking math: known-latency
 * fixtures must produce an exact candidate order, plaintext evidence
 * must intersect, the bit-splitter must refuse to amplify a closed
 * channel into confident bits, and everything must be deterministic
 * (value-identical across repeated calls — the property the harness
 * relies on for thread- and batch-invariant results).
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/key_recovery.hh"

namespace unxpec {
namespace {

/** All entries miss (~latency 100) except `hot`, which hits (~8). */
ProbeEvidence
evidenceWithHotEntry(std::uint8_t plaintext, unsigned hot,
                     double hit = 8.0, double miss = 100.0)
{
    ProbeEvidence e;
    e.plaintext = plaintext;
    e.entryLatencies.assign(256, miss);
    e.entryLatencies[hot] = hit;
    return e;
}

TEST(RankKeyByteTest, SinglePlaintextPinsTheByte)
{
    // Victim touched entry pt ^ key: key 0x2b under plaintext 0xa5
    // warms entry 0x8e.
    const std::vector<ProbeEvidence> evidence = {
        evidenceWithHotEntry(0xa5, 0xa5 ^ 0x2b)};
    const ByteRanking ranking = rankKeyByte(evidence, 16.0);
    EXPECT_EQ(ranking.best(), 0x2b);
    EXPECT_TRUE(ranking.confident);
    // Exactly one candidate explains the hit: margin is the full
    // hit/miss separation.
    EXPECT_DOUBLE_EQ(ranking.margin, 92.0);
    // Runner-up ties resolve by candidate value: all other 255
    // candidates score identically, so rank 1 is the smallest one.
    EXPECT_EQ(ranking.ranked[1], 0x00);
    EXPECT_EQ(ranking.scores.size(), 256u);
}

TEST(RankKeyByteTest, PlaintextEvidenceIntersects)
{
    // Two plaintexts each pin the same key byte; their combined score
    // doubles the margin for the true byte.
    const std::uint8_t key = 0xcf;
    const std::vector<ProbeEvidence> evidence = {
        evidenceWithHotEntry(0x00, key),
        evidenceWithHotEntry(0x3c, 0x3cu ^ key)};
    const ByteRanking ranking = rankKeyByte(evidence, 16.0);
    EXPECT_EQ(ranking.best(), key);
    EXPECT_DOUBLE_EQ(ranking.margin, 184.0);
}

TEST(RankKeyByteTest, ConflictingEvidenceStaysOrderedAndExact)
{
    // One plaintext saw the true entry, the other saw a spurious hit
    // (e.g. a prefetch): the true byte still wins because only it is
    // hot under both, and the spurious candidate ranks second.
    const std::uint8_t key = 0x7e;
    ProbeEvidence truthful = evidenceWithHotEntry(0x00, key);
    ProbeEvidence noisy = evidenceWithHotEntry(0xa5, 0xa5 ^ key);
    noisy.entryLatencies[0xa5 ^ 0x11] = 8.0; // spurious hit -> cand 0x11
    const ByteRanking ranking =
        rankKeyByte({truthful, noisy}, 16.0);
    EXPECT_EQ(ranking.best(), key);
    EXPECT_EQ(ranking.ranked[1], 0x11);
    EXPECT_DOUBLE_EQ(ranking.scores[1] - ranking.scores[0], 92.0);
}

TEST(RankKeyByteTest, FlatLatenciesAreNotConfident)
{
    // Closed channel: every reload misses. The ranking still exists
    // (ties broken by candidate value -> 0 first) but must not claim
    // confidence.
    ProbeEvidence flat;
    flat.plaintext = 0x42;
    flat.entryLatencies.assign(256, 100.0);
    const ByteRanking ranking = rankKeyByte({flat}, 16.0);
    EXPECT_FALSE(ranking.confident);
    EXPECT_DOUBLE_EQ(ranking.margin, 0.0);
    EXPECT_EQ(ranking.best(), 0x00);
}

TEST(RankKeyByteTest, SmallerTablesFoldCandidates)
{
    // A 16-entry table cannot distinguish candidates that agree in
    // their low 4 bits; the ranking folds through the mask and the
    // smallest aliased candidate ranks first.
    ProbeEvidence e;
    e.plaintext = 0x00;
    e.entryLatencies.assign(16, 100.0);
    e.entryLatencies[0x5] = 10.0;
    const ByteRanking ranking = rankKeyByte({e}, 16.0);
    EXPECT_EQ(ranking.best(), 0x05);
    EXPECT_EQ(ranking.ranked[1], 0x15); // same low nibble, next value
}

TEST(RankKeyByteTest, DeterministicAcrossCalls)
{
    // The exact property the harness leans on for thread/batch
    // invariance: identical latencies -> identical rankings. (Threads
    // never share a ranking call; this pins the value-determinism.)
    const std::vector<ProbeEvidence> evidence = {
        evidenceWithHotEntry(0x17, 0x9a),
        evidenceWithHotEntry(0x88, 0x05)};
    const ByteRanking a = rankKeyByte(evidence, 16.0);
    const ByteRanking b = rankKeyByte(evidence, 16.0);
    EXPECT_EQ(a.ranked, b.ranked);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.margin, b.margin);
}

TEST(RankKeyByteTest, RejectsMalformedEvidence)
{
    EXPECT_EXIT(rankKeyByte({}, 1.0), ::testing::ExitedWithCode(1),
                "no probe evidence");
    ProbeEvidence bad;
    bad.entryLatencies.assign(100, 1.0); // not a power of two
    EXPECT_EXIT(rankKeyByte({bad}, 1.0), ::testing::ExitedWithCode(1),
                "power of two");
    ProbeEvidence a = evidenceWithHotEntry(0, 1);
    ProbeEvidence shorter;
    shorter.entryLatencies.assign(128, 1.0);
    EXPECT_EXIT(rankKeyByte({a, shorter}, 1.0),
                ::testing::ExitedWithCode(1), "mismatched");
}

// --- splitBits ----------------------------------------------------------

TEST(SplitBitsTest, CacheReceiverDecodesFastAsOne)
{
    // Reload latencies: hits (fast) are 1 bits for the cache receiver.
    const std::vector<double> values = {100, 8, 8, 100, 8, 100};
    const BitSplit split = splitBits(values, /*one_is_high=*/false, 8.0);
    EXPECT_TRUE(split.confident);
    EXPECT_DOUBLE_EQ(split.gap, 92.0);
    EXPECT_EQ(split.bits, (std::vector<int>{0, 1, 1, 0, 1, 0}));
}

TEST(SplitBitsTest, ContentionReceiverDecodesSlowAsOne)
{
    // Probe times: a delayed probe (burst happened) is a 1 bit.
    const std::vector<double> values = {30, 90, 30, 90};
    const BitSplit split = splitBits(values, /*one_is_high=*/true, 8.0);
    EXPECT_TRUE(split.confident);
    EXPECT_EQ(split.bits, (std::vector<int>{0, 1, 0, 1}));
    EXPECT_DOUBLE_EQ(split.threshold, 60.0);
}

TEST(SplitBitsTest, ClosedChannelYieldsNoBits)
{
    // All values within noise: refusing to split beats inventing a
    // key from jitter.
    const std::vector<double> values = {50, 51, 50, 52, 51};
    const BitSplit split = splitBits(values, true, 8.0);
    EXPECT_FALSE(split.confident);
    EXPECT_EQ(split.bits, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(SplitBitsTest, DegenerateInputsAreSafe)
{
    EXPECT_FALSE(splitBits({}, true, 1.0).confident);
    EXPECT_FALSE(splitBits({42.0}, true, 1.0).confident);
    EXPECT_EQ(splitBits({42.0}, true, 1.0).bits,
              (std::vector<int>{0}));
}

// --- recoveredBitsPerSecond ---------------------------------------------

TEST(RecoveredRateTest, ScalesWithClockAndCycles)
{
    // 128 bits over 4M cycles at 2 GHz = 64k bits/s.
    EXPECT_DOUBLE_EQ(recoveredBitsPerSecond(128, 4e6, 2.0), 64000.0);
    EXPECT_DOUBLE_EQ(recoveredBitsPerSecond(128, 0.0, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(recoveredBitsPerSecond(0, 1e6, 2.0), 0.0);
}

} // namespace
} // namespace unxpec
