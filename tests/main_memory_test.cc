/**
 * @file
 * Unit tests for the functional backing store and DRAM timing.
 */

#include <gtest/gtest.h>

#include "memory/main_memory.hh"

namespace unxpec {
namespace {

class MainMemoryTest : public ::testing::Test
{
  protected:
    MainMemoryTest() : rng_(1), mem_(MemoryConfig{}, rng_) {}

    Rng rng_;
    MainMemory mem_;
};

TEST_F(MainMemoryTest, UninitializedReadsZero)
{
    EXPECT_EQ(mem_.read8(0x123456), 0u);
    EXPECT_EQ(mem_.read64(0xdeadbeef), 0u);
}

TEST_F(MainMemoryTest, ByteRoundTrip)
{
    mem_.write8(0x1000, 0xAB);
    EXPECT_EQ(mem_.read8(0x1000), 0xABu);
    EXPECT_EQ(mem_.read8(0x1001), 0u);
}

TEST_F(MainMemoryTest, Word64RoundTrip)
{
    mem_.write64(0x2000, 0x0123456789abcdefull);
    EXPECT_EQ(mem_.read64(0x2000), 0x0123456789abcdefull);
}

TEST_F(MainMemoryTest, LittleEndianLayout)
{
    mem_.write64(0x3000, 0x0123456789abcdefull);
    EXPECT_EQ(mem_.read8(0x3000), 0xEFu);
    EXPECT_EQ(mem_.read8(0x3007), 0x01u);
}

TEST_F(MainMemoryTest, PartialSizes)
{
    mem_.write(0x4000, 0xBEEF, 2);
    EXPECT_EQ(mem_.read(0x4000, 2), 0xBEEFu);
    EXPECT_EQ(mem_.read(0x4000, 1), 0xEFu);
    EXPECT_EQ(mem_.read(0x4000, 4), 0xBEEFu);
}

TEST_F(MainMemoryTest, CrossPageAccess)
{
    const Addr boundary = 4096 - 4;
    mem_.write64(boundary, 0x1122334455667788ull);
    EXPECT_EQ(mem_.read64(boundary), 0x1122334455667788ull);
}

TEST_F(MainMemoryTest, ClearForgetsContents)
{
    mem_.write64(0x5000, 7);
    mem_.clear();
    EXPECT_EQ(mem_.read64(0x5000), 0u);
}

TEST_F(MainMemoryTest, FixedLatencyWithoutJitter)
{
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(mem_.accessLatency(), MemoryConfig{}.accessLatency);
}

TEST(MainMemoryJitterTest, JitterVariesLatency)
{
    Rng rng(2);
    MemoryConfig cfg;
    cfg.jitterSigma = 8.0;
    MainMemory mem(cfg, rng);
    double sum = 0.0;
    bool varied = false;
    Cycle first = mem.accessLatency();
    for (int i = 0; i < 500; ++i) {
        const Cycle latency = mem.accessLatency();
        EXPECT_GE(latency, 1u);
        varied = varied || latency != first;
        sum += static_cast<double>(latency);
    }
    EXPECT_TRUE(varied);
    EXPECT_NEAR(sum / 500.0, cfg.accessLatency, 2.0);
}

} // namespace
} // namespace unxpec
