/**
 * @file
 * Edge-case tests of the out-of-order core: nested in-flight branches,
 * back-to-back mispredicts, structural back-pressure (ROB/LSQ full),
 * speculation across loop iterations, and deep dependency chains.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace unxpec {
namespace {

TEST(CoreEdgeTest, NestedBranchesOuterMispredicts)
{
    // Outer branch resolves late (flushed bound) and mispredicts;
    // an inner branch inside the transient region resolved "fine"
    // before that — everything younger than the outer branch must be
    // rolled back regardless.
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    b.initWord64(bound, 10);

    const int skip_outer = b.label();
    const int skip_inner = b.label();
    b.li(1, 50);                               // out of bounds
    b.li(5, static_cast<std::int64_t>(bound));
    b.li(7, 1);
    b.li(8, 2);
    b.clflush(5, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip_outer); // mispredicted taken after resolution
    // Transient region with its own branch:
    b.blt(7, 8, skip_inner); // 1 < 2: taken
    b.li(9, 0xDEAD);
    b.bind(skip_inner);
    b.li(10, 0xBEEF);        // transient write
    b.bind(skip_outer);
    b.halt();

    const RunResult r = core.run(b.build());
    EXPECT_EQ(r.reg(9), 0u);
    EXPECT_EQ(r.reg(10), 0u);
}

TEST(CoreEdgeTest, BackToBackMispredicts)
{
    // A data-dependent branch that alternates direction mispredicts
    // repeatedly; results must still be architecturally exact.
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    b.li(1, 0);  // i
    b.li(2, 64); // limit
    b.li(3, 0);  // taken-count
    b.li(4, 1);
    b.li(6, 0);
    const int top = b.label();
    const int skip = b.label();
    b.bind(top);
    b.and_(5, 1, 4);       // i & 1
    b.beq(5, 6, skip);     // even -> skip
    b.addi(3, 3, 1);       // count odd iterations
    b.bind(skip);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    const RunResult r = core.run(b.build());
    EXPECT_EQ(r.reg(3), 32u);
    EXPECT_GE(core.stats().findCounter("mispredicts")->value(), 8u);
}

TEST(CoreEdgeTest, RobFullBackpressure)
{
    // A long-latency load at the head with hundreds of independent
    // ALU ops behind it: dispatch must stop at ROB capacity and the
    // program must still complete correctly.
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.core.robEntries = 16;
    Core core(cfg);
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.load(2, 5, 0); // cold miss heads the ROB
    b.li(3, 0);
    for (int i = 0; i < 300; ++i)
        b.addi(3, 3, 1);
    b.halt();
    const RunResult r = core.run(b.build());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.reg(3), 300u);
}

TEST(CoreEdgeTest, LsqFullBackpressure)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.core.lsqEntries = 4;
    Core core(cfg);
    ProgramBuilder b;
    const Addr buf = b.alloc(64 * 64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.li(3, 0);
    for (int i = 0; i < 32; ++i) {
        b.load(2, 5, i * 64);
        b.add(3, 3, 2);
    }
    b.halt();
    const RunResult r = core.run(b.build());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.reg(3), 0u); // uninitialized memory reads zero
}

TEST(CoreEdgeTest, DeepDependencyChainIsSerialized)
{
    // N dependent ADDIs take ~N cycles; N independent ones take ~N/4
    // at issue width 4.
    auto run_chain = [](bool dependent) {
        Core core(SystemConfig::makeDefault());
        ProgramBuilder b;
        b.li(1, 0);
        b.li(2, 0);
        b.li(3, 0);
        b.li(4, 0);
        for (int i = 0; i < 200; ++i) {
            if (dependent)
                b.addi(1, 1, 1);
            else
                b.addi(static_cast<RegIndex>(1 + (i % 4)),
                       static_cast<RegIndex>(1 + (i % 4)), 1);
        }
        b.halt();
        const Program p = b.build();
        core.run(p); // warm the I-cache
        return core.run(p).cycles;
    };
    const Cycle serial = run_chain(true);
    const Cycle parallel = run_chain(false);
    EXPECT_GT(serial, parallel + 100);
}

TEST(CoreEdgeTest, SpeculationAcrossLoopIterationsStaysCorrect)
{
    // The loop branch is predicted taken; the final iteration
    // mispredicts and the post-loop code must see the right totals.
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    const Addr buf = b.alloc(8 * 32);
    for (unsigned i = 0; i < 32; ++i)
        b.initWord64(buf + 8 * i, i);
    b.li(1, static_cast<std::int64_t>(buf));
    b.li(2, 0);
    b.li(3, 32);
    b.li(4, 0);
    const int top = b.label();
    b.bind(top);
    b.shl(5, 2, 3);
    b.add(5, 5, 1);
    b.load(6, 5, 0);
    b.add(4, 4, 6);
    b.addi(2, 2, 1);
    b.blt(2, 3, top);
    b.mul(7, 4, 4); // post-loop consumer
    b.halt();
    const RunResult r = core.run(b.build());
    EXPECT_EQ(r.reg(4), 496u);
    EXPECT_EQ(r.reg(7), 496u * 496u);
}

TEST(CoreEdgeTest, MispredictDuringCleanupStallHandledInOrder)
{
    // Two mis-speculating branches in close succession: the second
    // squash can only be detected after the first cleanup stall ends;
    // state must remain consistent.
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    const Addr probe = b.alloc(64 * 4);
    b.initWord64(bound, 10);
    const int skip1 = b.label();
    const int skip2 = b.label();
    b.li(1, 50);
    b.li(5, static_cast<std::int64_t>(bound));
    b.li(6, static_cast<std::int64_t>(probe));
    b.clflush(5, 0);
    b.clflush(6, 0);
    b.clflush(6, 64);
    b.load(2, 5, 0);
    for (int p = 0; p < 20; ++p)
        b.addi(2, 2, 0); // f(N)-style padding: let the fill land
    b.bge(1, 2, skip1);
    b.load(7, 6, 0);   // transient install #1
    b.bind(skip1);
    b.clflush(5, 0);
    b.load(2, 5, 0);
    for (int p = 0; p < 20; ++p)
        b.addi(2, 2, 0);
    b.bge(1, 2, skip2);
    b.load(8, 6, 64);  // transient install #2
    b.bind(skip2);
    b.halt();
    const Program p = b.build();
    // First run fetches code cold (the transient fills may still be
    // inflight at squash and get scrubbed); the warm second run lands
    // both fills, exercising invalidation on both squashes. Reset the
    // predictor so the second run mis-speculates again.
    core.run(p);
    core.predictor().reset();
    const RunResult r = core.run(p);
    EXPECT_TRUE(r.halted);
    // Both transient installs rolled back.
    EXPECT_FALSE(core.hierarchy().l1d().present(lineAlign(probe),
                                                core.now()));
    EXPECT_FALSE(core.hierarchy().l1d().present(lineAlign(probe + 64),
                                                core.now()));
    EXPECT_GE(core.cleanup().stats().findCounter("invalidationsL1")
                  ->value(), 2u);
}

TEST(CoreEdgeTest, EmptyProgramTerminates)
{
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    const RunResult r = core.run(b.build());
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(CoreEdgeTest, BranchToProgramEndTerminates)
{
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    const int end = b.label();
    b.li(1, 1);
    b.li(2, 2);
    b.blt(1, 2, end); // taken, jumps past the last instruction
    b.li(3, 7);       // skipped
    b.bind(end);
    const RunResult r = core.run(b.build());
    EXPECT_EQ(r.reg(3), 0u);
}

} // namespace
} // namespace unxpec
