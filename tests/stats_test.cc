/**
 * @file
 * Unit tests for counters, distributions, and stat groups.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace unxpec {
namespace {

TEST(CounterTest, IncrementAndAdd)
{
    Counter c("c", "desc");
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, MomentsAreCorrect)
{
    Distribution d("d", "");
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(DistributionTest, KeepsSamplesWhenAsked)
{
    Distribution d("d", "", true);
    d.sample(1.0);
    d.sample(2.0);
    ASSERT_EQ(d.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(d.samples()[1], 2.0);
}

TEST(DistributionTest, DropsSamplesByDefault)
{
    Distribution d("d", "");
    d.sample(1.0);
    EXPECT_TRUE(d.samples().empty());
}

TEST(DistributionTest, ResetClearsEverything)
{
    Distribution d("d", "", true);
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_TRUE(d.samples().empty());
}

TEST(StatGroupTest, CounterIsSharedByName)
{
    StatGroup group("grp");
    Counter &a = group.counter("hits");
    Counter &b = group.counter("hits");
    ++a;
    EXPECT_EQ(b.value(), 1u);
    EXPECT_EQ(&a, &b);
}

TEST(StatGroupTest, PrefixAppliedToNames)
{
    StatGroup group("cpu");
    Counter &c = group.counter("sim_ticks");
    EXPECT_EQ(c.name(), "cpu.sim_ticks");
}

TEST(StatGroupTest, FindCounterReturnsNullWhenAbsent)
{
    StatGroup group("g");
    EXPECT_EQ(group.findCounter("nothing"), nullptr);
    group.counter("something");
    EXPECT_NE(group.findCounter("something"), nullptr);
}

TEST(StatGroupTest, ResetAllZeroesCounters)
{
    StatGroup group;
    group.counter("a") += 5;
    group.distribution("d").sample(3.0);
    group.resetAll();
    EXPECT_EQ(group.findCounter("a")->value(), 0u);
    EXPECT_EQ(group.distribution("d").count(), 0u);
}

TEST(StatGroupTest, DumpContainsNamesAndValues)
{
    StatGroup group("sys");
    group.counter("ticks", "total ticks") += 123;
    std::ostringstream oss;
    group.dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("sys.ticks"), std::string::npos);
    EXPECT_NE(text.find("123"), std::string::npos);
    EXPECT_NE(text.find("total ticks"), std::string::npos);
}

} // namespace
} // namespace unxpec
