/**
 * @file
 * The fault-tolerant campaign layer: manifest round-trips (including
 * non-finite values), checkpoint/resume bit-identity, watchdog
 * censoring with deterministic retry seeds, crash-isolated shard
 * workers, and the injected-crash → resume → identical-result loop the
 * CI smoke job exercises end to end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/result_sink.hh"
#include "harness/campaign.hh"
#include "harness/session.hh"
#include "harness/trial_runner.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::string
tmpPath(const std::string &name)
{
    return "/tmp/unxpec_campaign_test_" + name;
}

/**
 * Deterministic pure-computation trial: metrics and samples are a
 * function of the trial seed only, so any execution strategy (serial,
 * parallel, sharded, resumed) must reproduce them bit-exactly.
 */
TrialOutput
pureTrial(const TrialContext &ctx)
{
    Rng rng(ctx.seed);
    TrialOutput out;
    out.metric("value", static_cast<double>(rng.next() % 100000) / 7.0);
    out.samples("samples",
                {static_cast<double>(rng.next() % 1000),
                 static_cast<double>(rng.next() % 1000)});
    return out;
}

std::vector<ExperimentSpec>
twoSpecs()
{
    std::vector<ExperimentSpec> specs(2);
    specs[0].label = "a";
    specs[0].params = {{"x", 1.0}};
    specs[1].label = "b";
    specs[1].params = {{"x", 2.0}};
    return specs;
}

std::string
resultJson(const ExperimentResult &result)
{
    std::ostringstream os;
    writeJson(os, result);
    return os.str();
}

// --- retry seed derivation ----------------------------------------------

TEST(RetrySeedTest, AttemptZeroMatchesDeriveSeed)
{
    EXPECT_EQ(Rng::deriveRetrySeed(42, 7, 0), Rng::deriveSeed(42, 7));
}

TEST(RetrySeedTest, AttemptsAreDistinctFromAllFirstAttemptStreams)
{
    // Retry seeds live in a salted namespace: no retry may collide with
    // any first-attempt stream, or a retried trial would silently
    // duplicate another trial's randomness.
    std::vector<std::uint64_t> first;
    for (std::uint64_t stream = 0; stream < 256; ++stream)
        first.push_back(Rng::deriveSeed(42, stream));
    for (unsigned attempt = 1; attempt <= 3; ++attempt) {
        const std::uint64_t seed = Rng::deriveRetrySeed(42, 7, attempt);
        for (const std::uint64_t other : first)
            EXPECT_NE(seed, other);
    }
    EXPECT_NE(Rng::deriveRetrySeed(42, 7, 1),
              Rng::deriveRetrySeed(42, 7, 2));
}

// --- manifest round-trip ------------------------------------------------

TEST(CampaignJournalTest, RoundTripsEntriesBitExactly)
{
    const std::string path = tmpPath("roundtrip.jsonl");
    const CampaignHeader header{"fig_test", 42, 2, 3};

    CampaignEntry first;
    first.job = 0;
    first.seed = 0xdeadbeefcafef00dull; // needs full 64-bit round-trip
    first.attempt = 2;
    first.censored = true;
    first.censorReason = "cycle-limit+host, \"quoted\"\nnewline";
    first.metrics = {{"delta", 1.0 / 3.0}, {"nan_metric", kNaN}};
    first.series = {{"samples", {0.1, kInf, -kInf, 2.5e-308}}};

    CampaignEntry second;
    second.job = 5;
    second.seed = 7;
    second.metrics = {{"delta", 23.0}};

    {
        CampaignJournal journal(path, header);
        journal.append(first);
        journal.append(second);
    }

    const CampaignManifest manifest = loadCampaignManifest(path);
    EXPECT_EQ(manifest.header.experiment, "fig_test");
    EXPECT_EQ(manifest.header.masterSeed, 42u);
    EXPECT_EQ(manifest.header.specs, 2u);
    EXPECT_EQ(manifest.header.reps, 3u);
    ASSERT_EQ(manifest.entries.size(), 2u);

    const CampaignEntry &a = manifest.entries.at(0);
    EXPECT_EQ(a.seed, first.seed);
    EXPECT_EQ(a.attempt, 2u);
    EXPECT_TRUE(a.censored);
    EXPECT_EQ(a.censorReason, first.censorReason);
    ASSERT_EQ(a.metrics.size(), 2u);
    EXPECT_EQ(a.metrics[0].first, "delta");
    // Bit-exact double round-trip, not approximate.
    EXPECT_EQ(a.metrics[0].second, 1.0 / 3.0);
    EXPECT_TRUE(std::isnan(a.metrics[1].second));
    ASSERT_EQ(a.series.size(), 1u);
    ASSERT_EQ(a.series[0].second.size(), 4u);
    EXPECT_EQ(a.series[0].second[0], 0.1);
    EXPECT_EQ(a.series[0].second[1], kInf);
    EXPECT_EQ(a.series[0].second[2], -kInf);
    EXPECT_EQ(a.series[0].second[3], 2.5e-308);

    EXPECT_EQ(manifest.entries.at(5).metrics[0].second, 23.0);
    std::remove(path.c_str());
}

TEST(CampaignJournalTest, NoTmpFileLeftBehind)
{
    const std::string path = tmpPath("atomic.jsonl");
    {
        CampaignJournal journal(path, {"fig", 1, 1, 1});
        journal.append({});
    }
    // flush = write tmp + rename; after it returns only the manifest
    // exists.
    EXPECT_TRUE(std::ifstream(path).good());
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(CampaignManifestTest, RejectsForeignManifest)
{
    const std::string path = tmpPath("foreign.jsonl");
    {
        CampaignJournal journal(path, {"fig_test", 42, 2, 3});
        journal.flush();
    }
    const CampaignManifest manifest = loadCampaignManifest(path);
    // Wrong master seed: splicing these entries would be silent data
    // corruption, so it must die loudly.
    EXPECT_EXIT(
        requireCompatibleManifest(manifest, {"fig_test", 43, 2, 3}, path),
        testing::ExitedWithCode(1), "master seed");
    EXPECT_EXIT(
        requireCompatibleManifest(manifest, {"fig_test", 42, 2, 4}, path),
        testing::ExitedWithCode(1), "shape");
    EXPECT_EXIT(
        requireCompatibleManifest(manifest, {"other_fig", 42, 2, 3}, path),
        testing::ExitedWithCode(1), "experiment");
    std::remove(path.c_str());
}

// --- checkpoint / resume ------------------------------------------------

TEST(CampaignResumeTest, ResumeSkipsJournaledTrialsAndMatchesByteForByte)
{
    const std::string manifest = tmpPath("resume.jsonl");
    const std::vector<ExperimentSpec> specs = twoSpecs();

    // Reference: uninterrupted run, no campaign machinery at all.
    TrialRunner plain(1);
    const std::string reference = resultJson(
        plain.runAll("fig_test", "d", specs, 3, 42, pureTrial));

    // Journaled run.
    TrialRunner journaled(1);
    CampaignConfig config;
    config.manifestPath = manifest;
    config.experiment = "fig_test";
    journaled.setCampaign(config);
    const std::string full = resultJson(
        journaled.runAll("fig_test", "d", specs, 3, 42, pureTrial));
    EXPECT_EQ(full, reference);

    // Simulate a mid-campaign kill: keep the header and the first 3 of
    // 6 journaled trials, exactly what an atomic-rename flush leaves.
    {
        std::ifstream in(manifest);
        std::string line;
        std::vector<std::string> lines;
        while (std::getline(in, line))
            lines.push_back(line);
        ASSERT_EQ(lines.size(), 7u); // header + 6 trials
        std::ofstream out(manifest, std::ios::trunc);
        for (std::size_t i = 0; i < 4; ++i)
            out << lines[i] << "\n";
    }

    // Resume: the 3 journaled trials are spliced, 3 are recomputed,
    // and the aggregate is byte-identical to the uninterrupted run.
    std::size_t executed = 0;
    TrialRunner resumed(1);
    config.resumePath = manifest;
    resumed.setCampaign(config);
    const std::string after = resultJson(resumed.runAll(
        "fig_test", "d", specs, 3, 42, [&](const TrialContext &ctx) {
            ++executed;
            return pureTrial(ctx);
        }));
    EXPECT_EQ(executed, 3u);
    EXPECT_EQ(after, reference);

    // The re-journaled manifest is complete again: a second resume
    // recomputes nothing.
    executed = 0;
    TrialRunner again(1);
    again.setCampaign(config);
    const std::string twice = resultJson(again.runAll(
        "fig_test", "d", specs, 3, 42, [&](const TrialContext &ctx) {
            ++executed;
            return pureTrial(ctx);
        }));
    EXPECT_EQ(executed, 0u);
    EXPECT_EQ(twice, reference);
    std::remove(manifest.c_str());
}

// --- watchdogs and retries ----------------------------------------------

TEST(CampaignWatchdogTest, CycleBudgetCensorsTrialAndExcludesMetrics)
{
    // A 50-cycle budget is far below any real unXpec round, so every
    // trial trips it; the row must carry censored counts and no metric
    // poisoned by truncated measurements.
    std::vector<ExperimentSpec> specs(1);
    specs[0].label = "tiny-budget";

    TrialRunner runner(1);
    CampaignConfig config;
    config.trialTimeoutCycles = 50;
    runner.setCampaign(config);

    const ExperimentResult result = runner.runAll(
        "fig_test", "d", specs, 2, 42, [](const TrialContext &ctx) {
            Session session(ctx);
            session.unxpec().measureOnce();
            TrialOutput out;
            out.metric("delta", 1.0);
            return out;
        });

    const ResultRow &row = result.row(0);
    EXPECT_EQ(row.censoredTrials, 2u);
    EXPECT_EQ(row.trials, 0u);
    EXPECT_EQ(row.missingTrials, 0u);
    EXPECT_EQ(row.metric("delta"), nullptr);
    // Censored trials finished (they were not lost), so the result is
    // complete — just thinner than planned.
    EXPECT_FALSE(result.incomplete);
}

TEST(CampaignWatchdogTest, RetriesUseDerivedSeedsAndAreCounted)
{
    std::vector<ExperimentSpec> specs(1);
    specs[0].label = "flaky";

    TrialRunner runner(1);
    CampaignConfig config;
    config.retries = 3;
    runner.setCampaign(config);

    // The trial censors itself (via the runner's control channel) on
    // attempts 0 and 1 and succeeds on attempt 2 — a stand-in for a
    // trial that times out under transient conditions.
    std::vector<std::uint64_t> seeds_seen;
    const auto outputs = runner.run(
        specs, 1, 42, [&](const TrialContext &ctx) {
            seeds_seen.push_back(ctx.seed);
            if (seeds_seen.size() <= 2)
                ctx.control->censored = true;
            return pureTrial(ctx);
        });

    ASSERT_EQ(seeds_seen.size(), 3u);
    EXPECT_EQ(seeds_seen[0], Rng::deriveRetrySeed(42, 0, 0));
    EXPECT_EQ(seeds_seen[1], Rng::deriveRetrySeed(42, 0, 1));
    EXPECT_EQ(seeds_seen[2], Rng::deriveRetrySeed(42, 0, 2));

    const TrialOutput &out = outputs[0][0];
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.censored);
    EXPECT_EQ(out.attempt, 2u);
    EXPECT_EQ(out.seedUsed, seeds_seen[2]);
}

TEST(CampaignWatchdogTest, ExhaustedRetriesLeaveTrialCensored)
{
    std::vector<ExperimentSpec> specs(1);
    TrialRunner runner(1);
    CampaignConfig config;
    config.retries = 1;
    runner.setCampaign(config);

    unsigned calls = 0;
    const auto outputs =
        runner.run(specs, 1, 42, [&](const TrialContext &ctx) {
            ++calls;
            ctx.control->censored = true;
            ctx.control->censorReason = "always-bad";
            return pureTrial(ctx);
        });
    EXPECT_EQ(calls, 2u); // first attempt + one retry
    EXPECT_TRUE(outputs[0][0].censored);
    EXPECT_EQ(outputs[0][0].censorReason, "always-bad");
}

// --- crash-isolated shards ----------------------------------------------

TEST(CampaignShardTest, ShardedRunMatchesLocalByteForByte)
{
    const std::string manifest = tmpPath("shards.jsonl");
    const std::vector<ExperimentSpec> specs = twoSpecs();

    TrialRunner plain(1);
    const std::string reference = resultJson(
        plain.runAll("fig_test", "d", specs, 3, 42, pureTrial));

    TrialRunner sharded(1);
    CampaignConfig config;
    config.manifestPath = manifest;
    config.experiment = "fig_test";
    config.shards = 3;
    sharded.setCampaign(config);
    const std::string result = resultJson(
        sharded.runAll("fig_test", "d", specs, 3, 42, pureTrial));
    EXPECT_EQ(result, reference);

    // The shard journals were merged into the manifest and removed.
    const CampaignManifest merged = loadCampaignManifest(manifest);
    EXPECT_EQ(merged.entries.size(), 6u);
    EXPECT_FALSE(std::ifstream(manifest + ".shard0").good());
    std::remove(manifest.c_str());
}

TEST(CampaignShardTest, CrashedShardsAreRelaunchedAndFinish)
{
    const std::string manifest = tmpPath("crash.jsonl");
    const std::vector<ExperimentSpec> specs = twoSpecs();

    TrialRunner plain(1);
    const std::string reference = resultJson(
        plain.runAll("fig_test", "d", specs, 3, 42, pureTrial));

    // Every shard worker aborts after journaling 2 trials; with 2
    // shards x 3 trials and a retry budget, the relaunched workers
    // resume from their shard journals and finish the range.
    ASSERT_EQ(setenv("UNXPEC_CRASH_AFTER_TRIALS", "2", 1), 0);
    TrialRunner sharded(1);
    CampaignConfig config;
    config.manifestPath = manifest;
    config.experiment = "fig_test";
    config.shards = 2;
    config.retries = 3;
    sharded.setCampaign(config);
    const ExperimentResult result =
        sharded.runAll("fig_test", "d", specs, 3, 42, pureTrial);
    unsetenv("UNXPEC_CRASH_AFTER_TRIALS");

    EXPECT_FALSE(result.incomplete);
    EXPECT_EQ(resultJson(result), reference);
    std::remove(manifest.c_str());
}

TEST(CampaignShardTest, ExhaustedShardDegradesGracefullyThenResumes)
{
    const std::string manifest = tmpPath("degrade.jsonl");
    const std::vector<ExperimentSpec> specs = twoSpecs();

    TrialRunner plain(1);
    const std::string reference = resultJson(
        plain.runAll("fig_test", "d", specs, 3, 42, pureTrial));

    // No retries: each shard dies after 1 journaled trial and stays
    // dead. The campaign must degrade gracefully — partial rows,
    // missing counts, incomplete flag — instead of crashing or
    // fabricating data.
    ASSERT_EQ(setenv("UNXPEC_CRASH_AFTER_TRIALS", "1", 1), 0);
    TrialRunner sharded(1);
    CampaignConfig config;
    config.manifestPath = manifest;
    config.experiment = "fig_test";
    config.shards = 2;
    config.retries = 0;
    sharded.setCampaign(config);
    const ExperimentResult partial =
        sharded.runAll("fig_test", "d", specs, 3, 42, pureTrial);
    unsetenv("UNXPEC_CRASH_AFTER_TRIALS");

    EXPECT_TRUE(partial.incomplete);
    unsigned done = 0, missing = 0;
    for (const ResultRow &row : partial.rows) {
        done += row.trials;
        missing += row.missingTrials;
    }
    EXPECT_EQ(done, 2u);    // one per shard before the abort
    EXPECT_EQ(missing, 4u);
    EXPECT_NE(resultJson(partial).find("\"incomplete\": true"),
              std::string::npos);

    // Resume the wreckage without crash injection: the journaled
    // trials are reused and the final result matches the reference
    // byte for byte.
    TrialRunner resumed(1);
    config.resumePath = manifest;
    config.retries = 0;
    resumed.setCampaign(config);
    const ExperimentResult fixed =
        resumed.runAll("fig_test", "d", specs, 3, 42, pureTrial);
    EXPECT_FALSE(fixed.incomplete);
    EXPECT_EQ(resultJson(fixed), reference);
    std::remove(manifest.c_str());
}

} // namespace
} // namespace unxpec
