/**
 * @file
 * Unit tests for the ROC analysis of the covert channel.
 */

#include <gtest/gtest.h>

#include "analysis/roc.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(RocTest, PerfectSeparationHasUnitAuc)
{
    const std::vector<double> zeros = {150, 152, 155};
    const std::vector<double> ones = {180, 182, 185};
    const RocCurve curve = RocCurve::of(zeros, ones);
    EXPECT_NEAR(curve.auc(), 1.0, 1e-9);
    const RocPoint best = curve.best();
    EXPECT_DOUBLE_EQ(best.tpr, 1.0);
    EXPECT_DOUBLE_EQ(best.fpr, 0.0);
    EXPECT_GE(best.threshold, 155.0);
    EXPECT_LT(best.threshold, 180.0);
}

TEST(RocTest, IdenticalDistributionsNearChance)
{
    Rng rng(1);
    std::vector<double> zeros, ones;
    for (int i = 0; i < 3000; ++i) {
        zeros.push_back(rng.gaussian(170, 10));
        ones.push_back(rng.gaussian(170, 10));
    }
    EXPECT_NEAR(RocCurve::of(zeros, ones).auc(), 0.5, 0.03);
}

TEST(RocTest, CurveEndsAtCorners)
{
    const RocCurve curve = RocCurve::of({1, 2, 3}, {2, 3, 4});
    ASSERT_GE(curve.points().size(), 2u);
    EXPECT_DOUBLE_EQ(curve.points().front().tpr, 0.0);
    EXPECT_DOUBLE_EQ(curve.points().front().fpr, 0.0);
    EXPECT_DOUBLE_EQ(curve.points().back().tpr, 1.0);
    EXPECT_DOUBLE_EQ(curve.points().back().fpr, 1.0);
}

TEST(RocTest, AucTracksSeparation)
{
    Rng rng(2);
    auto auc_for_delta = [&rng](double delta) {
        std::vector<double> zeros, ones;
        for (int i = 0; i < 2000; ++i) {
            zeros.push_back(rng.gaussian(160, 9));
            ones.push_back(rng.gaussian(160 + delta, 9));
        }
        return RocCurve::of(zeros, ones).auc();
    };
    const double auc22 = auc_for_delta(22); // the plain channel
    const double auc32 = auc_for_delta(32); // with eviction sets
    EXPECT_GT(auc22, 0.90);
    EXPECT_GT(auc32, auc22);
}

TEST(RocTest, MonotoneTprAlongCurve)
{
    Rng rng(3);
    std::vector<double> zeros, ones;
    for (int i = 0; i < 500; ++i) {
        zeros.push_back(rng.gaussian(160, 9));
        ones.push_back(rng.gaussian(182, 9));
    }
    const RocCurve curve = RocCurve::of(zeros, ones);
    for (std::size_t i = 1; i < curve.points().size(); ++i) {
        EXPECT_GE(curve.points()[i].tpr, curve.points()[i - 1].tpr);
        EXPECT_GE(curve.points()[i].fpr, curve.points()[i - 1].fpr);
    }
}

} // namespace
} // namespace unxpec
