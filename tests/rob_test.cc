/**
 * @file
 * Unit tests for the reorder buffer.
 */

#include <gtest/gtest.h>

#include "cpu/rob.hh"

namespace unxpec {
namespace {

RobEntry
makeEntry(SeqNum seq, Opcode op = Opcode::ADD)
{
    RobEntry entry;
    entry.seq = seq;
    entry.inst.op = op;
    return entry;
}

TEST(RobTest, PushPopFifoOrder)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0));
    rob.push(makeEntry(1));
    EXPECT_EQ(rob.front().seq, 0u);
    rob.popFront();
    EXPECT_EQ(rob.front().seq, 1u);
}

TEST(RobTest, CapacityTracked)
{
    ReorderBuffer rob(2);
    EXPECT_FALSE(rob.full());
    rob.push(makeEntry(0));
    rob.push(makeEntry(1));
    EXPECT_TRUE(rob.full());
    rob.popFront();
    EXPECT_FALSE(rob.full());
}

TEST(RobTest, FindBySeqIsExact)
{
    ReorderBuffer rob(8);
    for (SeqNum s = 10; s < 15; ++s)
        rob.push(makeEntry(s));
    // ReorderBuffer numbering starts wherever the caller starts it —
    // but must stay consecutive.
    ASSERT_NE(rob.find(12), nullptr);
    EXPECT_EQ(rob.find(12)->seq, 12u);
    EXPECT_EQ(rob.find(9), nullptr);
    EXPECT_EQ(rob.find(15), nullptr);
    rob.popFront();
    EXPECT_EQ(rob.find(10), nullptr);
    EXPECT_NE(rob.find(11), nullptr);
}

TEST(RobTest, SquashRemovesYoungerOnly)
{
    ReorderBuffer rob(8);
    for (SeqNum s = 0; s < 6; ++s)
        rob.push(makeEntry(s));
    const auto squashed = rob.squashYoungerThan(2);
    ASSERT_EQ(squashed.size(), 3u);
    // Oldest-first ordering of the squashed entries.
    EXPECT_EQ(squashed[0].seq, 3u);
    EXPECT_EQ(squashed[2].seq, 5u);
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_NE(rob.find(2), nullptr);
    EXPECT_EQ(rob.find(3), nullptr);
}

TEST(RobTest, SquashYoungestIsNoop)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0));
    rob.push(makeEntry(1));
    EXPECT_TRUE(rob.squashYoungerThan(1).empty());
    EXPECT_EQ(rob.size(), 2u);
}

TEST(RobTest, OlderUnresolvedBranchDetection)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::ADD));
    RobEntry branch = makeEntry(1, Opcode::BLT);
    rob.push(branch);
    rob.push(makeEntry(2, Opcode::LOAD));

    EXPECT_TRUE(rob.olderUnresolvedBranch(2));
    EXPECT_FALSE(rob.olderUnresolvedBranch(1));
    rob.markDone(*rob.find(1));
    EXPECT_FALSE(rob.olderUnresolvedBranch(2));
}

TEST(RobTest, JmpIsNotCondBranchForSpeculation)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::JMP));
    rob.push(makeEntry(1, Opcode::LOAD));
    EXPECT_FALSE(rob.olderUnresolvedBranch(1));
}

} // namespace
} // namespace unxpec
