/**
 * @file
 * The lock-step batch kernel and its load-bearing property: a
 * TrialRunner with --batch W produces output bit-identical to the
 * serial runner for every W — the batch only changes the execution
 * schedule, never the results. Also covers the zero-alloc steady
 * state: warm pooled trials must not touch the heap (this binary
 * links unxpec_alloc_gauge, which hooks global operator new/delete).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/batch_runner.hh"
#include "harness/session.hh"
#include "harness/trial_runner.hh"
#include "sim/alloc_gauge.hh"

namespace unxpec {
namespace {

std::string
tmpPath(const std::string &name)
{
    return "/tmp/unxpec_batch_runner_test_" + name;
}

/**
 * A sweep whose points do genuinely different amounts of work, so the
 * trials of one batch finish at different cycle counts and the batch
 * kernel has to retire lanes at different times.
 */
std::vector<ExperimentSpec>
mixedSweep()
{
    std::vector<ExperimentSpec> specs;
    for (unsigned loads : {1u, 4u, 8u}) {
        ExperimentSpec spec;
        spec.label = "loads=" + std::to_string(loads);
        spec.noise = "evaluation";
        spec.attackCfg.inBranchLoads = loads;
        // Vary the mistrain count too: cycle counts then differ by
        // thousands of cycles between lanes of the same batch.
        spec.attackCfg.mistrainIterations = 4 + 4 * loads;
        specs.push_back(std::move(spec));
    }
    return specs;
}

TrialOutput
attackTrial(const TrialContext &ctx)
{
    Session session(ctx);
    UnxpecAttack &attack = session.unxpec();
    attack.setSecret(0);
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    const double one = attack.measureOnce();
    TrialOutput out;
    out.metric("delta", one - zero);
    out.metric("lat1", one);
    out.metric("seed_echo", static_cast<double>(ctx.seed & 0xffff));
    return out;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].label, b.rows[i].label);
        EXPECT_EQ(a.rows[i].values("delta"), b.rows[i].values("delta"));
        EXPECT_EQ(a.rows[i].values("lat1"), b.rows[i].values("lat1"));
        EXPECT_EQ(a.rows[i].values("seed_echo"),
                  b.rows[i].values("seed_echo"));
    }
}

// --- bit-identity across batch widths -----------------------------------

TEST(BatchRunnerTest, BatchedEqualsSerialAcrossWidths)
{
    const auto specs = mixedSweep();
    TrialRunner serial(1);
    const ExperimentResult base =
        serial.runAll("t", "", specs, 4, 9001, attackTrial);
    for (unsigned width : {1u, 2u, 8u}) {
        TrialRunner batched(1);
        batched.setBatch(width);
        const ExperimentResult got =
            batched.runAll("t", "", specs, 4, 9001, attackTrial);
        SCOPED_TRACE("batch width " + std::to_string(width));
        expectIdentical(base, got);
    }
}

TEST(BatchRunnerTest, BatchedEqualsSerialWithThreads)
{
    // --batch composes with --threads: each worker runs its own
    // lock-step batch, and the preallocated result slots still make
    // the aggregate bit-identical.
    const auto specs = mixedSweep();
    TrialRunner serial(1);
    TrialRunner batched(3);
    batched.setBatch(4);
    expectIdentical(serial.runAll("t", "", specs, 4, 7, attackTrial),
                    batched.runAll("t", "", specs, 4, 7, attackTrial));
}

TEST(BatchRunnerTest, PartialFinalGroup)
{
    // 1 spec x 5 reps with width 4: the second group holds a single
    // trial, which the runner executes inline (no fiber switch).
    ExperimentSpec spec;
    spec.noise = "evaluation";
    TrialRunner serial(1);
    TrialRunner batched(1);
    batched.setBatch(4);
    expectIdentical(serial.runAll("t", "", {spec}, 5, 3, attackTrial),
                    batched.runAll("t", "", {spec}, 5, 3, attackTrial));
}

// --- watchdog censoring inside a batch ----------------------------------

TEST(BatchRunnerTest, WatchdogCensorsInBatch)
{
    // A simulated-cycle budget low enough that every trial trips it:
    // batched attempt 0 must censor exactly like the serial runner,
    // and the serial retries (same derived retry seeds) must match too.
    const auto specs = mixedSweep();
    CampaignConfig campaign;
    campaign.trialTimeoutCycles = 2000;
    campaign.retries = 1;

    TrialRunner serial(1);
    serial.setCampaign(campaign);
    const auto base = serial.run(specs, 3, 11, attackTrial);

    TrialRunner batched(1);
    batched.setCampaign(campaign);
    batched.setBatch(4);
    const auto got = batched.run(specs, 3, 11, attackTrial);

    ASSERT_EQ(base.size(), got.size());
    bool saw_censored = false;
    for (std::size_t s = 0; s < base.size(); ++s) {
        ASSERT_EQ(base[s].size(), got[s].size());
        for (std::size_t r = 0; r < base[s].size(); ++r) {
            const TrialOutput &a = base[s][r];
            const TrialOutput &b = got[s][r];
            EXPECT_EQ(a.censored, b.censored);
            EXPECT_EQ(a.censorReason, b.censorReason);
            EXPECT_EQ(a.attempt, b.attempt);
            EXPECT_EQ(a.seedUsed, b.seedUsed);
            EXPECT_EQ(a.metrics, b.metrics);
            saw_censored = saw_censored || a.censored;
        }
    }
    EXPECT_TRUE(saw_censored);
}

// --- resume splicing into a batched run ---------------------------------

TEST(BatchRunnerTest, ResumeSplicesIntoBatchedRun)
{
    const auto specs = mixedSweep();
    const std::string manifest = tmpPath("resume.jsonl");
    std::remove(manifest.c_str());

    // Journal a full campaign at the same lock-step width the resumed
    // run will use (resume refuses a width mismatch).
    CampaignConfig campaign;
    campaign.manifestPath = manifest;
    campaign.experiment = "t";
    TrialRunner first(1);
    first.setBatch(4);
    first.setCampaign(campaign);
    const auto base = first.run(specs, 3, 13, attackTrial);

    // Drop the last journal lines so the resumed run has real work
    // left: the batched runner must splice the journaled trials and
    // recompute only the missing ones, bit-identically.
    {
        std::vector<std::string> lines;
        {
            std::ifstream in(manifest);
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
        }
        ASSERT_GT(lines.size(), 4u);
        std::ofstream out(manifest, std::ios::trunc);
        for (std::size_t i = 0; i + 3 < lines.size(); ++i)
            out << lines[i] << "\n";
    }

    CampaignConfig resume = campaign;
    resume.resumePath = manifest;
    TrialRunner batched(1);
    batched.setCampaign(resume);
    batched.setBatch(4);
    const auto got = batched.run(specs, 3, 13, attackTrial);

    ASSERT_EQ(base.size(), got.size());
    for (std::size_t s = 0; s < base.size(); ++s) {
        for (std::size_t r = 0; r < base[s].size(); ++r) {
            EXPECT_EQ(base[s][r].metrics, got[s][r].metrics);
            EXPECT_TRUE(got[s][r].completed);
        }
    }
    std::remove(manifest.c_str());
}

// --- resume validates the manifest's batch width and spec order ----------

namespace resume_guard {

/** Journal a full width-2 campaign and return its manifest path. */
std::string
journalWidthTwoCampaign(const std::string &name,
                        const std::vector<ExperimentSpec> &specs)
{
    const std::string manifest = tmpPath(name);
    std::remove(manifest.c_str());
    CampaignConfig campaign;
    campaign.manifestPath = manifest;
    campaign.experiment = "t";
    TrialRunner first(1);
    first.setBatch(2);
    first.setCampaign(campaign);
    first.run(specs, 2, 13, attackTrial);
    return manifest;
}

TrialRunner
resumingRunner(const std::string &manifest, unsigned batch)
{
    CampaignConfig resume;
    resume.resumePath = manifest;
    resume.experiment = "t";
    TrialRunner second(1);
    second.setBatch(batch);
    second.setCampaign(resume);
    return second;
}

} // namespace resume_guard

TEST(BatchRunnerTest, ResumeRefusesMismatchedBatchWidth)
{
    // Splicing trials journaled under one lock-step width into a run
    // using another silently mixes censoring regimes (the host
    // watchdog times a trial's share of its group) — must be fatal,
    // not silent.
    const auto specs = mixedSweep();
    const std::string manifest =
        resume_guard::journalWidthTwoCampaign("width.jsonl", specs);
    TrialRunner second = resume_guard::resumingRunner(manifest, 4);
    EXPECT_DEATH(second.run(specs, 2, 13, attackTrial),
                 "manifest batch width 2 != campaign batch width 4");
    std::remove(manifest.c_str());
}

TEST(BatchRunnerTest, ResumeRefusesPermutedSpecs)
{
    // Job indices are spec_index * reps + rep: a permuted spec list
    // passes the shape check (same counts) but would splice every
    // journaled trial into the wrong row.
    const auto specs = mixedSweep();
    const std::string manifest =
        resume_guard::journalWidthTwoCampaign("permuted.jsonl", specs);
    auto permuted = specs;
    std::reverse(permuted.begin(), permuted.end());
    TrialRunner second = resume_guard::resumingRunner(manifest, 2);
    EXPECT_DEATH(second.run(permuted, 2, 13, attackTrial), "spec digest");
    std::remove(manifest.c_str());
}

TEST(BatchRunnerTest, LegacyManifestWithoutProvenanceStillResumes)
{
    // Manifests written before the batch / spec_digest fields existed
    // carry neither; resume treats 0 as "not recorded" and only the
    // seed/shape/experiment checks apply.
    const auto specs = mixedSweep();
    const std::string manifest =
        resume_guard::journalWidthTwoCampaign("legacy.jsonl", specs);
    {
        std::vector<std::string> lines;
        {
            std::ifstream in(manifest);
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
        }
        ASSERT_FALSE(lines.empty());
        EXPECT_NE(lines[0].find("\"batch\""), std::string::npos);
        std::ofstream out(manifest, std::ios::trunc);
        out << "{\"schema\":\"unxpec-campaign-v1\",\"experiment\":\"t\","
               "\"master_seed\":13,\"specs\":"
            << specs.size() << ",\"reps\":2}\n";
        for (std::size_t i = 1; i < lines.size(); ++i)
            out << lines[i] << "\n";
    }
    TrialRunner serial(1);
    const auto base = serial.run(specs, 2, 13, attackTrial);
    TrialRunner second = resume_guard::resumingRunner(manifest, 4);
    const auto got = second.run(specs, 2, 13, attackTrial);
    ASSERT_EQ(base.size(), got.size());
    for (std::size_t s = 0; s < base.size(); ++s) {
        for (std::size_t r = 0; r < base[s].size(); ++r)
            EXPECT_EQ(base[s][r].metrics, got[s][r].metrics);
    }
    std::remove(manifest.c_str());
}

// --- the kernel itself ---------------------------------------------------

TEST(BatchRunnerTest, RunsEveryBodyOnce)
{
    BatchRunner batch(3);
    std::vector<int> ran(8, 0);
    std::vector<BatchRunner::TrialBody> bodies;
    for (int i = 0; i < 8; ++i)
        bodies.push_back([&ran, i](RunYield *) { ran[i] += 1; });
    batch.run(bodies);
    EXPECT_EQ(ran, std::vector<int>(8, 1));
}

TEST(BatchRunnerTest, PropagatesBodyExceptions)
{
    if (!BatchRunner::lockStepAvailable())
        GTEST_SKIP() << "fiber kernel disabled in this build";
    BatchRunner batch(2);
    std::vector<BatchRunner::TrialBody> bodies;
    bodies.push_back([](RunYield *) {});
    bodies.push_back(
        [](RunYield *) { throw std::runtime_error("lane failed"); });
    EXPECT_THROW(batch.run(bodies), std::runtime_error);
}

// --- zero-alloc steady state --------------------------------------------

TEST(BatchRunnerTest, SteadyStateTrialsAreHeapAllocFree)
{
    // After warm-up, a pooled trial's simulation — mistraining, the
    // transient window, squash + rollback, the measured round — must
    // not touch the heap: every per-cycle structure lives in the
    // Core's arena or reserved buffers. The envelope measured here is
    // the attack execution on a warm pooled Machine; per-trial
    // bookkeeping outside it (spec copies, result slots, journals) is
    // the runner's and is bounded per trial, not per cycle.
    ExperimentSpec spec;
    spec.noise = "evaluation";
    CorePool pool;
    TrialControl control;

    auto runTrial = [&](std::uint64_t seed) {
        TrialContext ctx{spec};
        ctx.seed = seed;
        ctx.pool = &pool;
        ctx.control = &control;
        Session session(ctx);
        UnxpecAttack &attack = session.unxpec();
        attack.setSecret(1);
        return attack.measureOnce();
    };

    runTrial(1); // cold: builds Machine + attack, first-touch pages
    runTrial(2); // warm-up rep: remaining lazy init settles

    const AllocStats before = allocGaugeRead();
    double sink = 0.0;
    for (std::uint64_t seed = 3; seed < 8; ++seed)
        sink += runTrial(seed);
    const AllocStats after = allocGaugeRead();
    EXPECT_GT(sink, 0.0);
    EXPECT_EQ(after.allocs - before.allocs, 0u)
        << "steady-state trials allocated "
        << (after.allocs - before.allocs) << " times ("
        << (after.bytes - before.bytes) << " bytes)";
}

TEST(BatchRunnerTest, GaugeCountsAllocations)
{
    // Sanity-check the hook itself so the zero above is meaningful. A
    // direct ::operator new call cannot be elided the way an unused
    // new-expression can (N3664).
    const AllocStats before = allocGaugeRead();
    void *p = ::operator new(64);
    const AllocStats after = allocGaugeRead();
    ::operator delete(p);
    EXPECT_GE(after.allocs - before.allocs, 1u);
    EXPECT_GE(after.bytes - before.bytes, 64u);
}

} // namespace
} // namespace unxpec
