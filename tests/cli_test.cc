/**
 * @file
 * CLI error-path tests for the shared harness front end
 * (harness/cli.hh). Every malformed invocation must fail through
 * fatal() — exit code 1 with a clear "fatal: ..." diagnostic on stderr
 * — never crash, hang, or silently misparse. Exercised as gtest death
 * tests so the exit path itself (not just the message formatting) is
 * what is verified.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/cli.hh"

namespace unxpec {
namespace {

/** Run cli.parse() over a brace-list of arguments (argv[0] included). */
template <std::size_t N>
HarnessOptions
parseArgs(const HarnessCli &cli, const char *(&&argv)[N])
{
    return cli.parse(static_cast<int>(N), const_cast<char **>(argv));
}

HarnessCli
makeCli()
{
    HarnessCli cli("cli_test", "CLI error-path test harness");
    cli.scaleOption("problem size", 16);
    return cli;
}

// --- numeric flags ------------------------------------------------------

TEST(CliErrorTest, NonNumericRepsIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--reps", "ten"}),
                ::testing::ExitedWithCode(1),
                "fatal: --reps expects a non-negative integer, got 'ten'");
}

TEST(CliErrorTest, ZeroRepsIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--reps", "0"}),
                ::testing::ExitedWithCode(1), "fatal: --reps must be >= 1");
}

TEST(CliErrorTest, NegativeRepsIsFatal)
{
    // '-' is not a digit: a negative count must be rejected as
    // non-numeric rather than wrapping around through strtoull.
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--reps", "-3"}),
                ::testing::ExitedWithCode(1),
                "fatal: --reps expects a non-negative integer, got '-3'");
}

TEST(CliErrorTest, NonNumericSeedIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--seed", "0x12"}),
                ::testing::ExitedWithCode(1),
                "fatal: --seed expects a non-negative integer, got '0x12'");
}

TEST(CliErrorTest, NonNumericThreadsIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--threads", "many"}),
                ::testing::ExitedWithCode(1),
                "fatal: --threads expects a non-negative integer, "
                "got 'many'");
}

TEST(CliErrorTest, NonNumericScaleIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--scale", "big"}),
                ::testing::ExitedWithCode(1),
                "fatal: --scale expects a non-negative integer, got 'big'");
}

// --- registry lookups ---------------------------------------------------

TEST(CliErrorTest, UnknownModeIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--mode", "quantum"}),
                ::testing::ExitedWithCode(1),
                "fatal: unknown --mode 'quantum' \\(see --list-modes\\)");
}

TEST(CliErrorTest, UnknownNoiseIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--noise", "brownian"}),
                ::testing::ExitedWithCode(1),
                "fatal: unknown --noise 'brownian' \\(see --list-modes\\)");
}

TEST(CliErrorTest, KnownModeStillParses)
{
    // Guard against the error path over-matching: the registry names
    // used across the bench programs must keep working.
    const HarnessCli cli = makeCli();
    const HarnessOptions opt =
        parseArgs(cli, {"cli_test", "--mode", "unsafe"});
    EXPECT_EQ(opt.mode, "unsafe");
}

// --- trace categories ---------------------------------------------------

TEST(CliErrorTest, MalformedTraceCategoriesIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli,
                          {"cli_test", "--trace-categories", "cpu,bogus"}),
                ::testing::ExitedWithCode(1),
                "fatal: unknown trace category 'bogus' \\(expected cpu, "
                "cache, cleanup, branch, coherence, or all\\)");
}

TEST(CliErrorTest, ValidTraceCategoriesParse)
{
    const HarnessCli cli = makeCli();
    const HarnessOptions opt =
        parseArgs(cli, {"cli_test", "--trace-categories", "cpu,cache"});
    EXPECT_NE(opt.traceCategories, 0u);
}

// --- machine width ------------------------------------------------------

TEST(CliErrorTest, CoresParses)
{
    const HarnessCli cli = makeCli();
    const HarnessOptions opt = parseArgs(cli, {"cli_test", "--cores", "4"});
    EXPECT_EQ(opt.cores, 4u);
}

TEST(CliErrorTest, ZeroCoresIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--cores", "0"}),
                ::testing::ExitedWithCode(1),
                "fatal: --cores must be in \\[1, 16\\]");
}

TEST(CliErrorTest, OversizedCoresIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--cores", "17"}),
                ::testing::ExitedWithCode(1),
                "fatal: --cores must be in \\[1, 16\\]");
}

// --- lock-step batching -------------------------------------------------

TEST(CliErrorTest, BatchParses)
{
    const HarnessCli cli = makeCli();
    EXPECT_EQ(parseArgs(cli, {"cli_test"}).batch, 1u);
    EXPECT_EQ(parseArgs(cli, {"cli_test", "--batch", "8"}).batch, 8u);
}

TEST(CliErrorTest, ZeroBatchIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--batch", "0"}),
                ::testing::ExitedWithCode(1),
                "fatal: --batch must be in \\[1, 64\\]");
}

TEST(CliErrorTest, OversizedBatchIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--batch", "65"}),
                ::testing::ExitedWithCode(1),
                "fatal: --batch must be in \\[1, 64\\]");
}

// --- crash-isolated shards ----------------------------------------------

TEST(CliErrorTest, ShardsParse)
{
    const HarnessCli cli = makeCli();
    EXPECT_EQ(parseArgs(cli, {"cli_test"}).shards, 1u);
    EXPECT_EQ(parseArgs(cli, {"cli_test", "--shards", "3", "--campaign",
                              "/tmp/unxpec_cli_test.jsonl"})
                  .shards,
              3u);
}

TEST(CliErrorTest, ZeroShardsIsFatal)
{
    // 0 shard workers would mean a campaign that executes nothing;
    // reject at parse time instead of hanging in waitpid downstream.
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--shards", "0"}),
                ::testing::ExitedWithCode(1),
                "fatal: --shards must be >= 1");
}

TEST(CliErrorTest, ShardsWithoutCampaignIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--shards", "2"}),
                ::testing::ExitedWithCode(1),
                "fatal: --shards requires --campaign PATH");
}

// --- argument shape -----------------------------------------------------

TEST(CliErrorTest, MissingValueIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--seed"}),
                ::testing::ExitedWithCode(1),
                "fatal: --seed expects a value \\(see --help\\)");
}

TEST(CliErrorTest, UnknownArgumentIsFatal)
{
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "--frobnicate"}),
                ::testing::ExitedWithCode(1),
                "fatal: unknown argument '--frobnicate'");
}

TEST(CliErrorTest, StrayPositionalAfterScaleIsFatal)
{
    // Only one positional scale is accepted; a second one is an error,
    // not a silent overwrite.
    const HarnessCli cli = makeCli();
    EXPECT_EXIT(parseArgs(cli, {"cli_test", "42", "43"}),
                ::testing::ExitedWithCode(1),
                "fatal: unknown argument '43'");
}

// --- matrix flag --------------------------------------------------------

TEST(CliErrorTest, MatrixFlagParses)
{
    const HarnessCli cli = makeCli();
    EXPECT_FALSE(parseArgs(cli, {"cli_test"}).matrix);
    EXPECT_TRUE(parseArgs(cli, {"cli_test", "--matrix"}).matrix);
}

// --- registry listing ---------------------------------------------------

/** The "  name" entry lines under `section` in a --list-modes dump. */
std::vector<std::string>
sectionEntries(const std::string &text, const std::string &section)
{
    std::vector<std::string> names;
    std::istringstream is(text);
    std::string line;
    bool inside = false;
    while (std::getline(is, line)) {
        if (line == section + ":") {
            inside = true;
            continue;
        }
        if (!inside)
            continue;
        if (!line.empty() && line[0] != ' ')
            break; // next section header
        if (line.rfind("  ", 0) == 0 && line.rfind("      ", 0) != 0)
            names.push_back(line.substr(2));
    }
    return names;
}

TEST(ListModesTest, RegistriesPrintSorted)
{
    // Goldenability: registration order moves whenever a TU adds an
    // entry, so the listing must be name-sorted instead.
    std::ostringstream oss;
    printRegistries(oss);
    for (const char *section :
         {"defenses (--mode)", "noise profiles (--noise)",
          "attack variants"}) {
        const auto names = sectionEntries(oss.str(), section);
        ASSERT_FALSE(names.empty()) << section;
        EXPECT_TRUE(std::is_sorted(names.begin(), names.end()))
            << section;
    }
}

TEST(ListModesTest, ListsTheDefenseZooAndBothReceiverFamilies)
{
    std::ostringstream oss;
    printRegistries(oss);
    const auto defenses =
        sectionEntries(oss.str(), "defenses (--mode)");
    for (const char *name :
         {"unsafe", "cleanup_l1l2", "invisispec", "delay_on_miss",
          "safespec", "specbox", "cachesquash"}) {
        EXPECT_NE(std::find(defenses.begin(), defenses.end(), name),
                  defenses.end())
            << name;
    }
    const auto attacks = sectionEntries(oss.str(), "attack variants");
    for (const char *name :
         {"unxpec-probe", "contention", "victim-aes", "victim-rsa"}) {
        EXPECT_NE(std::find(attacks.begin(), attacks.end(), name),
                  attacks.end())
            << name;
    }
}

} // namespace
} // namespace unxpec
