/**
 * @file
 * NoMo way partitioning (§III-A): a Prime+Probe attempt by an SMT
 * sibling fails when the L1 is partitioned and succeeds when it is
 * not — the reason CleanupSpec composes NoMo with its rollback.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace unxpec {
namespace {

CacheConfig
l1Config(unsigned reserved_ways)
{
    CacheConfig cfg;
    cfg.name = "l1d";
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.repl = ReplPolicy::LRU;
    cfg.nomoReservedWays = reserved_ways;
    return cfg;
}

/** Prime a set for `domain`, then have the other domain touch the
 *  same set; @return how many primed lines survived. */
unsigned
primeAndProbe(Cache &cache, unsigned attacker_domain,
              unsigned victim_domain, unsigned victim_lines)
{
    const unsigned sets = cache.config().numSets();
    const Addr prime_base = 0x100000;
    const Addr victim_base = 0x900000;

    // PRIME: attacker fills everything it can in set 0.
    std::vector<Addr> primed;
    Cycle when = 0;
    for (unsigned i = 0; i < cache.config().ways; ++i) {
        const Addr addr = prime_base + i * sets * kLineBytes;
        const FillResult fill =
            cache.install(addr, when++, false, kSeqNone, attacker_domain);
        (void)fill;
        primed.push_back(addr);
    }

    // VICTIM: accesses `victim_lines` conflicting lines.
    for (unsigned i = 0; i < victim_lines; ++i) {
        cache.install(victim_base + i * sets * kLineBytes, when++, false,
                      kSeqNone, victim_domain);
    }

    // PROBE: count surviving attacker lines.
    unsigned survivors = 0;
    for (const Addr addr : primed) {
        if (cache.probe(addr) != nullptr)
            ++survivors;
    }
    return survivors;
}

TEST(NomoTest, UnpartitionedPrimeAndProbeLeaks)
{
    Rng rng(1);
    Cache cache(l1Config(0), rng, 0);
    const unsigned survivors = primeAndProbe(cache, 0, 0, 3);
    // Three victim fills displaced three primed lines: the attacker
    // counts evictions and learns the victim's set usage.
    EXPECT_EQ(survivors, cache.config().ways - 3);
}

TEST(NomoTest, PartitionedPrimeAndProbeBlind)
{
    Rng rng(2);
    Cache cache(l1Config(2), rng, 0);
    // Attacker (domain 0) can only prime 6 ways; the victim
    // (domain 1) lives in the 2 reserved ways.
    const unsigned survivors = primeAndProbe(cache, 0, 1, 2);
    // Every attacker line survives: the probe learns nothing.
    EXPECT_EQ(survivors, cache.config().ways -
                             cache.config().nomoReservedWays);
}

TEST(NomoTest, VictimOverflowStaysInItsPartition)
{
    Rng rng(3);
    Cache cache(l1Config(2), rng, 0);
    // Victim touches more lines than its partition holds: it evicts
    // its own lines, never the attacker's.
    const unsigned survivors = primeAndProbe(cache, 0, 1, 6);
    EXPECT_EQ(survivors, 6u);
}

TEST(NomoTest, DomainsSeeDistinctWays)
{
    Rng rng(4);
    Cache cache(l1Config(2), rng, 0);
    const unsigned sets = cache.config().numSets();
    std::set<unsigned> attacker_ways, victim_ways;
    for (unsigned i = 0; i < 12; ++i) {
        attacker_ways.insert(
            cache.install(0x100000 + i * sets * kLineBytes, i, false,
                          kSeqNone, 0).way);
        victim_ways.insert(
            cache.install(0x900000 + i * sets * kLineBytes, i, false,
                          kSeqNone, 1).way);
    }
    for (const unsigned way : attacker_ways)
        EXPECT_LT(way, 6u);
    for (const unsigned way : victim_ways)
        EXPECT_GE(way, 6u);
}

} // namespace
} // namespace unxpec
