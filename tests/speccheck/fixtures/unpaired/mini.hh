/** speccheck fixture: an unpaired UNXPEC_SPEC_STATE mutation.
 *
 * poke() mutates speculative state but is neither annotated as a
 * transition/rollback nor reachable from one — speccheck must report
 * an unpaired-spec-mutation finding at its write site.
 */
#pragma once

enum class CleanupMode {
    UnsafeBaseline,
    Cleanup_FOR_L1,
};

namespace unxpec {

struct MiniLine {
    UNXPEC_SPEC_STATE bool speculative = false;
};

class MiniCache {
  public:
    UNXPEC_TRANSITION("spec")
    void install(unsigned way);

    UNXPEC_ROLLBACK("*")
    void squash(unsigned way);

    // Rogue helper: flips speculative state behind the annotation
    // contract's back.
    void poke(unsigned way);

  private:
    MiniLine lines_[4];
};

}  // namespace unxpec
