// speccheck fixture body: poke() is the contract violation.
#include "mini.hh"

namespace unxpec {

void
MiniCache::install(unsigned way)
{
    lines_[way].speculative = true;
}

void
MiniCache::squash(unsigned way)
{
    lines_[way].speculative = false;
}

void
MiniCache::poke(unsigned way)
{
    lines_[way].speculative = true;  // unpaired: not under a transition
}

}  // namespace unxpec
