/** speccheck fixture: fully paired speculative state (must pass).
 *
 * Not compiled by the build — parsed only by scripts/speccheck in the
 * fixture tests (tests/speccheck/run_fixtures.py).  The UNXPEC_*
 * macros are consumed textually, so no include of annotate.hh is
 * needed here.
 */
#pragma once

enum class CleanupMode {
    UnsafeBaseline,
    Cleanup_FOR_L1,
};

namespace unxpec {

struct MiniLine {
    UNXPEC_SPEC_STATE bool speculative = false;
    UNXPEC_SPEC_STATE unsigned installer = 0;
    int committedData = 0;
};

class MiniCache {
  public:
    UNXPEC_TRANSITION("spec")
    void install(unsigned way);

    UNXPEC_ROLLBACK("*")
    void squash(unsigned way);

  private:
    MiniLine lines_[4];
};

}  // namespace unxpec
