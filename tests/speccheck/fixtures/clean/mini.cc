// speccheck fixture body: every speculative write has a matching
// restore in the rollback closure, for every mode.
#include "mini.hh"

namespace unxpec {

void
MiniCache::install(unsigned way)
{
    lines_[way].speculative = true;
    lines_[way].installer = way;
}

void
MiniCache::squash(unsigned way)
{
    lines_[way].speculative = false;
    lines_[way].installer = 0;
}

}  // namespace unxpec
