/** speccheck fixture: a defense squash path missing one field.
 *
 * install() marks both speculative and installer; squash() restores
 * only speculative.  The Cleanup_FOR_L1 undo-set therefore lacks
 * MiniLine::installer and speccheck must fail the coverage gate for
 * that mode (UnsafeBaseline stays exempt).
 */
#pragma once

enum class CleanupMode {
    UnsafeBaseline,
    Cleanup_FOR_L1,
};

namespace unxpec {

struct MiniLine {
    UNXPEC_SPEC_STATE bool speculative = false;
    UNXPEC_SPEC_STATE unsigned installer = 0;
};

class MiniCache {
  public:
    UNXPEC_TRANSITION("spec")
    void install(unsigned way);

    UNXPEC_ROLLBACK("Cleanup_FOR_L1")
    void squash(unsigned way);

  private:
    MiniLine lines_[4];
};

}  // namespace unxpec
