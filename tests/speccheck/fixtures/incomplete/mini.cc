// speccheck fixture body: the rollback forgets installer — the exact
// residue-after-squash bug class the undo-completeness gate exists
// to catch.
#include "mini.hh"

namespace unxpec {

void
MiniCache::install(unsigned way)
{
    lines_[way].speculative = true;
    lines_[way].installer = way;
}

void
MiniCache::squash(unsigned way)
{
    lines_[way].speculative = false;
    // BUG (intentional): installer is left behind.
}

}  // namespace unxpec
