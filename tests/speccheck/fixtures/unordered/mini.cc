// speccheck fixture body: the walk order leaks into the result.
#include "mini.hh"

namespace unxpec {

long
MiniStats::sum() const
{
    long acc = 0;
    for (const auto &kv : table_)
        acc += kv.second * static_cast<long>(acc + 1);
    return acc;
}

}  // namespace unxpec
