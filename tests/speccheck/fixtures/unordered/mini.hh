/** speccheck fixture: nondeterministic unordered-container walk.
 *
 * sum() range-iterates a std::unordered_map, whose order varies with
 * the hash seed / libstdc++ version — speccheck's determinism check
 * must report an unordered-iteration finding.
 */
#pragma once

#include <unordered_map>

enum class CleanupMode {
    UnsafeBaseline,
};

namespace unxpec {

class MiniStats {
  public:
    long sum() const;

  private:
    std::unordered_map<int, long> table_;
};

}  // namespace unxpec
