#!/usr/bin/env python3
"""Fixture tests for scripts/speccheck (registered as a ctest).

Each fixture under tests/speccheck/fixtures/ is a tiny annotated
source tree with one known property; the test asserts that speccheck
reports exactly that property:

* clean      — fully paired state, exit 0, no findings;
* unpaired   — rogue mutation outside any transition/rollback;
* incomplete — squash path missing one field (undo-completeness);
* unordered  — nondeterministic unordered_map walk.

A final case runs speccheck over the real src/ tree and requires a
clean result, so a regression that silently breaks the gate (or new
unbaselined residue state) fails ctest, not just CI.

Run from the repo root:  python3 tests/speccheck/run_fixtures.py
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
FIXTURES = os.path.join("tests", "speccheck", "fixtures")
EMPTY_BASELINE = os.path.join(FIXTURES, "empty_baseline.json")


def run_speccheck(*extra: str):
    cmd = [
        sys.executable, "scripts/speccheck",
        "--frontend", "builtin", "--no-cache", *extra,
    ]
    proc = subprocess.run(
        cmd, cwd=REPO, capture_output=True, text=True, check=False
    )
    return proc.returncode, proc.stdout + proc.stderr


def fixture(name: str, *extra: str):
    return run_speccheck(
        "--src", os.path.join(FIXTURES, name),
        "--baseline", EMPTY_BASELINE, *extra,
    )


FAILURES = []


def check(label: str, cond: bool, context: str = ""):
    if cond:
        print(f"ok   {label}")
    else:
        FAILURES.append(label)
        print(f"FAIL {label}")
        if context:
            print(context)


def main() -> int:
    code, out = fixture("clean")
    check("clean fixture exits 0", code == 0, out)
    check("clean fixture has no findings", "no findings" in out, out)

    code, out = fixture("unpaired")
    check("unpaired fixture exits 1", code == 1, out)
    check(
        "unpaired mutation is reported",
        "unpaired-spec-mutation" in out
        and "MiniCache::poke" in out
        and "MiniLine::speculative" in out,
        out,
    )

    code, out = fixture("incomplete")
    check("incomplete fixture exits 1", code == 1, out)
    check(
        "missing undo field is reported for the gated mode",
        "undo-completeness" in out
        and "[Cleanup_FOR_L1]" in out
        and "MiniLine::installer" in out,
        out,
    )
    check(
        "restored field is not reported",
        "MiniLine::speculative is never restored" not in out,
        out,
    )
    check(
        "UnsafeBaseline stays exempt",
        "[UnsafeBaseline] speculative write-set" not in out,
        out,
    )

    code, out = fixture("unordered")
    check("unordered fixture exits 1", code == 1, out)
    check(
        "unordered walk is reported",
        "determinism:unordered-iteration" in out, out,
    )

    code, out = run_speccheck("--selftest")
    check("frontend selftests pass", code == 0, out)

    code, out = run_speccheck()
    check("real src/ tree is clean", code == 0, out)

    print(
        f"speccheck fixtures: "
        f"{'FAILED' if FAILURES else 'all passed'}"
    )
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
