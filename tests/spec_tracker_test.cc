/**
 * @file
 * Unit tests for the speculative-footprint tracker.
 */

#include <gtest/gtest.h>

#include "cleanup/spec_tracker.hh"

namespace unxpec {
namespace {

MemAccessRecord
makeRecord(Addr line, Cycle ready, bool l1_installed, bool l2_installed,
           bool victim_valid = false)
{
    MemAccessRecord record;
    record.lineAddr = line;
    record.ready = ready;
    record.l1Installed = l1_installed;
    record.l2Installed = l2_installed;
    record.l1VictimValid = victim_valid;
    if (victim_valid)
        record.l1Victim = line + 0x100000;
    return record;
}

TEST(SpecTrackerTest, HitsProduceEmptyJob)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 50, false, false),
        makeRecord(0x2000, 60, false, false),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_TRUE(job.empty());
    EXPECT_EQ(job.l1Invalidations, 0u);
    EXPECT_EQ(job.restoreCount(), 0u);
}

TEST(SpecTrackerTest, LandedInstallCounted)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 90, true, true),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.landed.size(), 1u);
    EXPECT_TRUE(job.inflight.empty());
    EXPECT_EQ(job.l1Invalidations, 1u);
    EXPECT_EQ(job.l2Invalidations, 1u);
}

TEST(SpecTrackerTest, InflightSeparated)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 90, true, true),   // landed
        makeRecord(0x2000, 150, true, true),  // still in flight
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.landed.size(), 1u);
    EXPECT_EQ(job.inflight.size(), 1u);
    EXPECT_EQ(job.l1Invalidations, 1u);
}

TEST(SpecTrackerTest, BoundaryFillAtSquashCycleCountsAsLanded)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 100, true, true),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.landed.size(), 1u);
}

TEST(SpecTrackerTest, VictimsBecomeRestores)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 90, true, true, /*victim=*/true),
        makeRecord(0x2000, 90, true, true, /*victim=*/false),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.restoreCount(), 1u);
    EXPECT_EQ(job.restores[0].l1Victim, 0x1000u + 0x100000);
}

TEST(SpecTrackerTest, InflightVictimNotRestored)
{
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 200, true, true, /*victim=*/true),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.restoreCount(), 0u);
    EXPECT_EQ(job.inflight.size(), 1u);
}

TEST(SpecTrackerTest, L2OnlyInstall)
{
    // An L1-merged access that installed only in L2 (possible when the
    // L1 copy came from another requester).
    std::vector<MemAccessRecord> records = {
        makeRecord(0x1000, 90, false, true),
    };
    const CleanupJob job = SpecTracker::buildJob(100, records);
    EXPECT_EQ(job.l1Invalidations, 0u);
    EXPECT_EQ(job.l2Invalidations, 1u);
}

} // namespace
} // namespace unxpec
