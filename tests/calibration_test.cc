/**
 * @file
 * Calibration pins: the full-system attack must reproduce the paper's
 * headline timing numbers on the default (Table I) configuration.
 * These tests run the actual attack programs on the simulated core —
 * if a timing-model change shifts the channel, they fail.
 */

#include <gtest/gtest.h>

#include "attack/unxpec.hh"
#include "sim/config.hh"

namespace unxpec {
namespace {

double
meanDelta(Core &core, const UnxpecConfig &cfg, unsigned reps = 3)
{
    UnxpecAttack attack(core, cfg);
    double zeros = 0.0, ones = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        attack.setSecret(0);
        zeros += attack.measureOnce();
    }
    for (unsigned i = 0; i < reps; ++i) {
        attack.setSecret(1);
        ones += attack.measureOnce();
    }
    return (ones - zeros) / reps;
}

TEST(CalibrationTest, SingleLoadDeltaIsTwentyTwoCycles)
{
    Core core(SystemConfig::makeDefault());
    EXPECT_NEAR(meanDelta(core, UnxpecConfig{}), 22.0, 1.0);
}

TEST(CalibrationTest, EvictionSetDeltaIsThirtyTwoCycles)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.useEvictionSets = true;
    EXPECT_NEAR(meanDelta(core, cfg), 32.0, 1.0);
}

TEST(CalibrationTest, DeltaGrowsSlowlyWithoutEvictionSets)
{
    // Paper Fig. 3: 22 -> ~25 cycles over 1..8 squashed loads.
    Core core1(SystemConfig::makeDefault());
    UnxpecConfig one;
    const double delta1 = meanDelta(core1, one);

    Core core8(SystemConfig::makeDefault());
    UnxpecConfig eight;
    eight.inBranchLoads = 8;
    const double delta8 = meanDelta(core8, eight);

    EXPECT_GT(delta8, delta1);
    EXPECT_LT(delta8 - delta1, 8.0);
}

TEST(CalibrationTest, DeltaGrowsSteeplyWithEvictionSets)
{
    // Paper Fig. 6: 32 -> ~64 cycles over 1..8 squashed loads.
    Core core1(SystemConfig::makeDefault());
    UnxpecConfig one;
    one.useEvictionSets = true;
    const double delta1 = meanDelta(core1, one);

    Core core8(SystemConfig::makeDefault());
    UnxpecConfig eight;
    eight.useEvictionSets = true;
    eight.inBranchLoads = 8;
    const double delta8 = meanDelta(core8, eight);

    EXPECT_GT(delta8, delta1 + 20.0);
    EXPECT_NEAR(delta8, 64.0, 8.0);
}

TEST(CalibrationTest, ObservedLatencyInPaperRange)
{
    // Fig. 7's x-axis spans 130..250 cycles; the quiet-machine means
    // must land inside it.
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core, UnxpecConfig{});
    attack.setSecret(0);
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    const double one = attack.measureOnce();
    EXPECT_GT(zero, 130.0);
    EXPECT_LT(one, 250.0);
}

TEST(CalibrationTest, BranchResolutionConstantAcrossSecrets)
{
    // §IV-A observation one: T1-T2 does not depend on the secret.
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core, UnxpecConfig{});
    attack.setSecret(0);
    attack.measureOnce();
    attack.measureOnce();
    const Cycle res0 = attack.lastDetail().branchResolution;
    attack.setSecret(1);
    attack.measureOnce();
    const Cycle res1 = attack.lastDetail().branchResolution;
    EXPECT_NEAR(static_cast<double>(res0), static_cast<double>(res1), 2.0);
}

TEST(CalibrationTest, BranchResolutionLinearInConditionAccesses)
{
    // §IV-A observation two: T1-T2 grows linearly with f(N) depth.
    double res[3];
    for (unsigned c = 1; c <= 3; ++c) {
        Core core(SystemConfig::makeDefault());
        UnxpecConfig cfg;
        cfg.conditionAccesses = c;
        UnxpecAttack attack(core, cfg);
        attack.setSecret(1);
        attack.measureOnce();
        attack.measureOnce();
        res[c - 1] = static_cast<double>(attack.lastDetail().branchResolution);
    }
    const double step1 = res[1] - res[0];
    const double step2 = res[2] - res[1];
    EXPECT_GT(step1, 50.0);
    EXPECT_NEAR(step1, step2, 6.0);
}

TEST(CalibrationTest, ConstantRollbackOverheadBandMatchesPaper)
{
    // §VI-E: the per-squash extra stall is exactly the constant when
    // nothing needs rolling back.
    Core core(SystemConfig::makeDefault());
    CleanupTiming &timing = core.cleanup().timing();
    timing.constantTimeCycles = 65;

    UnxpecAttack attack(core, UnxpecConfig{});
    attack.setSecret(0);
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    const double one = attack.measureOnce();
    // Constant-time rollback hides the channel: both secrets observe
    // the same (long) stall.
    EXPECT_NEAR(one - zero, 0.0, 2.0);
    EXPECT_EQ(attack.lastDetail().cleanupStall, 65u);
}

} // namespace
} // namespace unxpec
