/**
 * @file
 * The event-tracing layer (sim/trace.hh): ring-buffer mechanics,
 * category parsing and masking, the Chrome trace_event exporter, the
 * golden rollback sequence for the unXpec round (rollback spans only
 * when secret=1 — the paper's timing channel made visible), and the
 * guarantee that per-trial traces from a parallel TrialRunner are
 * byte-identical to serial ones.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "harness/session.hh"
#include "harness/spec.hh"
#include "harness/trial_runner.hh"
#include "sim/trace.hh"

namespace unxpec {
namespace {

TEST(TraceRing, OverwritesOldestAndCountsDrops)
{
    Tracer tracer(kTraceCatAll, 4);
    for (Cycle c = 1; c <= 6; ++c)
        tracer.instantAt(c, TraceKind::Commit, c);

    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.capacity(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);

    const std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, static_cast<Cycle>(i + 3));

    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(TraceRing, QueryFiltersByWindowAndKind)
{
    Tracer tracer;
    tracer.instantAt(10, TraceKind::Issue, 1);
    tracer.instantAt(20, TraceKind::Commit, 1);
    tracer.instantAt(30, TraceKind::Commit, 2);
    tracer.span(TraceKind::RollbackEnd, 42, 22);

    const TraceQuery query(tracer);
    EXPECT_EQ(query.eventsBetween(15, 35).size(), 2u);
    EXPECT_EQ(query.count(TraceKind::Commit), 2u);
    EXPECT_EQ(query.count(TraceKind::Commit, 25, kCycleNever), 1u);
    const auto ends = query.ofKind(TraceKind::RollbackEnd);
    ASSERT_EQ(ends.size(), 1u);
    EXPECT_EQ(ends[0].cycle, 42u);
    EXPECT_EQ(ends[0].dur, 22u);
}

TEST(TraceCategories, ParseAndFormat)
{
    EXPECT_EQ(parseTraceCategories(""), 0u);
    EXPECT_EQ(parseTraceCategories("all"), kTraceCatAll);
    EXPECT_EQ(parseTraceCategories("cpu"), kTraceCatCpu);
    EXPECT_EQ(parseTraceCategories("cpu,cleanup"),
              kTraceCatCpu | kTraceCatCleanup);
    EXPECT_EQ(parseTraceCategories("cache,branch"),
              kTraceCatCache | kTraceCatBranch);
    EXPECT_EQ(traceCategoriesToString(kTraceCatCpu | kTraceCatCleanup),
              "cpu,cleanup");
    EXPECT_EQ(parseTraceCategories(
                  traceCategoriesToString(kTraceCatAll)),
              kTraceCatAll);
}

TEST(TraceCategories, MaskGatesRecording)
{
    if (!kTraceEnabled)
        GTEST_SKIP() << "built with UNXPEC_TRACE=OFF";
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    cfg.seed = 7;
    Core core(cfg);
    Tracer tracer(kTraceCatCleanup);
    core.setEventTrace(&tracer);

    UnxpecAttack attack(core);
    attack.setSecret(1);
    attack.measureOnce();

    const TraceQuery query(tracer);
    EXPECT_EQ(query.count(TraceKind::Commit), 0u);
    EXPECT_EQ(query.count(TraceKind::CacheMiss), 0u);
    EXPECT_EQ(query.count(TraceKind::BranchResolve), 0u);
    EXPECT_GT(query.count(TraceKind::RollbackEnd), 0u);
}

TEST(TraceGolden, RollbackSpanOnlyForSecretOne)
{
    if (!kTraceEnabled)
        GTEST_SKIP() << "built with UNXPEC_TRACE=OFF";
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    cfg.seed = 42;
    Core core(cfg);
    Tracer tracer;
    core.setEventTrace(&tracer);
    UnxpecAttack attack(core);

    // secret=0: the transient loads hit the pre-loaded P[0]; the squash
    // has no footprint, so the measured round contains no rollback
    // events at all. That absence *is* the unXpec channel.
    attack.setSecret(0);
    const double lat0 = attack.measureOnce();
    const RoundDetail d0 = attack.lastDetail();
    ASSERT_TRUE(d0.valid);
    {
        const TraceQuery query(tracer);
        const Cycle end = d0.t0 + static_cast<Cycle>(lat0);
        EXPECT_EQ(query.count(TraceKind::RollbackBegin, d0.t0, end), 0u);
        EXPECT_EQ(query.count(TraceKind::RollbackEnd, d0.t0, end), 0u);
        // The mis-speculation itself still happened and was traced.
        EXPECT_GT(query.count(TraceKind::Squash, d0.t0, end), 0u);
    }

    // secret=1: the transient loads install flushed lines; the rollback
    // invalidates them and its stall appears as one span whose length
    // matches the instrumented cleanupStall.
    tracer.clear();
    attack.setSecret(1);
    const double lat1 = attack.measureOnce();
    const RoundDetail d1 = attack.lastDetail();
    ASSERT_TRUE(d1.valid);
    EXPECT_GT(d1.cleanupStall, 0u);

    const TraceQuery query(tracer);
    const Cycle end = d1.t0 + static_cast<Cycle>(lat1);
    EXPECT_EQ(query.count(TraceKind::RollbackBegin, d1.t0, end), 1u);
    const auto ends = query.ofKind(TraceKind::RollbackEnd, d1.t0, end);
    ASSERT_EQ(ends.size(), 1u);
    EXPECT_EQ(ends[0].dur, d1.cleanupStall);

    // Invalidation events match the instrumented per-level counts.
    std::size_t l1 = 0;
    std::size_t l2 = 0;
    for (const TraceEvent &event :
         query.ofKind(TraceKind::RollbackInvalidate, d1.t0, end)) {
        if (event.flags & kTraceFlagL1)
            ++l1;
        if (event.flags & kTraceFlagL2)
            ++l2;
    }
    EXPECT_EQ(l1, d1.invalidationsL1);
    EXPECT_EQ(l2, d1.invalidationsL2);

    // Ordering within the squash group: begin <= work <= end.
    const auto begin = query.ofKind(TraceKind::RollbackBegin, d1.t0, end);
    ASSERT_EQ(begin.size(), 1u);
    EXPECT_LE(begin[0].cycle, ends[0].cycle);
    EXPECT_EQ(ends[0].cycle - ends[0].dur, begin[0].cycle);
}

TEST(TraceChrome, WriterEmitsValidStructure)
{
    Tracer tracer;
    tracer.instantAt(5, TraceKind::Dispatch, 1, kAddrInvalid, 100);
    tracer.span(TraceKind::CacheFill, 10, 40, 2, 0x1000, 0, 1);
    tracer.span(TraceKind::RollbackEnd, 64, 22);

    std::ostringstream os;
    writeChromeTrace(os, {{"trial", tracer.events()}});
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
    EXPECT_NE(json.find("\"fill\""), std::string::npos);
    // RollbackEnd is rendered as a span covering [cycle - dur, cycle].
    EXPECT_NE(json.find("{\"name\":\"rollback\",\"cat\":\"cleanup\","
                        "\"ph\":\"X\",\"ts\":42,\"dur\":22"),
              std::string::npos);
    // Braces and brackets balance (cheap well-formedness check).
    long braces = 0;
    long brackets = 0;
    for (const char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(TraceChrome, RingWrapEmitsTruncationMarker)
{
    // Overflow a 4-slot ring: 6 events recorded, the 2 oldest lost.
    // The export must say so — a wrapped trace that silently poses as
    // complete would hide exactly the rollback prologue an analyst is
    // looking for.
    Tracer tracer(kTraceCatAll, 4);
    for (Cycle c = 1; c <= 6; ++c)
        tracer.instantAt(c, TraceKind::Commit, c);

    TraceProcess process;
    process.name = "wrapped";
    process.events = tracer.events();
    process.dropped = tracer.dropped();

    std::ostringstream os;
    writeChromeTrace(os, {process});
    const std::string json = os.str();

    // Process-scoped instant marker at the retained window's start
    // (first surviving event is cycle 3), carrying the drop count.
    EXPECT_NE(json.find("\"name\":\"trace-truncated\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":3,\"s\":\"p\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
}

TEST(TraceChrome, NoTruncationMarkerWithoutWrap)
{
    Tracer tracer(kTraceCatAll, 8);
    tracer.instantAt(1, TraceKind::Commit, 1);

    TraceProcess process;
    process.name = "complete";
    process.events = tracer.events();
    process.dropped = tracer.dropped();

    std::ostringstream os;
    writeChromeTrace(os, {process});
    EXPECT_EQ(os.str().find("trace-truncated"), std::string::npos);
}

TEST(TracePaths, PerTrialNamesAreUnique)
{
    EXPECT_EQ(perTrialTracePath("out.json", 0, 1), "out.s0.r1.json");
    EXPECT_EQ(perTrialTracePath("a/b.c/out.json", 2, 0),
              "a/b.c/out.s2.r0.json");
    EXPECT_EQ(perTrialTracePath("a.dir/out", 1, 3), "a.dir/out.s1.r3");
    EXPECT_EQ(perTrialTracePath("out", 0, 0), "out.s0.r0");
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(TraceRunner, WrappedTrialTraceCarriesMarker)
{
    if (!kTraceEnabled)
        GTEST_SKIP() << "built with UNXPEC_TRACE=OFF";
    // Drive the wrap through the runner: a tiny per-trial ring capacity
    // (TraceConfig::capacity) guarantees a real trial overflows it, and
    // the exported file must carry the truncation marker end to end.
    std::vector<ExperimentSpec> specs(1);
    specs[0].label = "wrap";

    const std::string path = "/tmp/unxpec_trace_wrap_test.json";
    TrialRunner runner(1);
    TraceConfig trace;
    trace.path = path;
    trace.capacity = 8; // any real trial records far more than 8 events
    runner.setTrace(trace);
    runner.run(specs, 1, 42, [](const TrialContext &ctx) {
        Session session(ctx);
        session.unxpec().measureOnce();
        return TrialOutput{};
    });

    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"name\":\"trace-truncated\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceRunner, ParallelTracesMatchSerialByteForByte)
{
    if (!kTraceEnabled)
        GTEST_SKIP() << "built with UNXPEC_TRACE=OFF";
    std::vector<ExperimentSpec> specs(2);
    specs[0].label = "loads=1";
    specs[1].label = "loads=2";
    specs[1].attackCfg.inBranchLoads = 2;

    const TrialFn fn = [](const TrialContext &ctx) {
        Session session(ctx);
        UnxpecAttack &attack = session.unxpec();
        attack.setSecret(1);
        TrialOutput out;
        out.metric("latency", attack.measureOnce());
        return out;
    };

    const std::string dir = ::testing::TempDir();
    const unsigned reps = 2;

    TrialRunner serial(1);
    serial.setTrace({dir + "/serial.json", kTraceCatAll, true});
    serial.run(specs, reps, 7, fn);

    TrialRunner parallel(4);
    parallel.setTrace({dir + "/parallel.json", kTraceCatAll, true});
    parallel.run(specs, reps, 7, fn);

    for (std::size_t spec = 0; spec < specs.size(); ++spec) {
        for (unsigned rep = 0; rep < reps; ++rep) {
            const std::string a = slurp(
                perTrialTracePath(dir + "/serial.json", spec, rep));
            const std::string b = slurp(
                perTrialTracePath(dir + "/parallel.json", spec, rep));
            EXPECT_FALSE(a.empty());
            EXPECT_EQ(a, b) << "spec " << spec << " rep " << rep;
        }
    }
}

TEST(TraceRunner, MergedFileHasOneProcessPerTrial)
{
    if (!kTraceEnabled)
        GTEST_SKIP() << "built with UNXPEC_TRACE=OFF";
    std::vector<ExperimentSpec> specs(1);
    specs[0].label = "loads=1";

    const TrialFn fn = [](const TrialContext &ctx) {
        Session session(ctx);
        UnxpecAttack &attack = session.unxpec();
        attack.setSecret(1);
        TrialOutput out;
        out.metric("latency", attack.measureOnce());
        return out;
    };

    const std::string path = ::testing::TempDir() + "/merged.json";
    TrialRunner runner(2);
    runner.setTrace({path, kTraceCatCleanup, false});
    runner.run(specs, 2, 7, fn);

    const std::string json = slurp(path);
    EXPECT_NE(json.find("loads=1 rep=0 seed="), std::string::npos);
    EXPECT_NE(json.find("loads=1 rep=1 seed="), std::string::npos);
    EXPECT_NE(json.find("\"rollback\""), std::string::npos);
}

} // namespace
} // namespace unxpec
