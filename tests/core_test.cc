/**
 * @file
 * End-to-end tests of the out-of-order core: architectural
 * correctness of every opcode, branch speculation and recovery,
 * timing ordering of fences/rdtscp, and run options.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace unxpec {
namespace {

RunResult
runProgram(Core &core, const Program &p)
{
    return core.run(p);
}

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : core_(SystemConfig::makeDefault()) {}

    Core core_;
};

TEST_F(CoreTest, AluOpcodes)
{
    ProgramBuilder b;
    b.li(1, 12);
    b.li(2, 5);
    b.add(3, 1, 2);   // 17
    b.sub(4, 1, 2);   // 7
    b.mul(5, 1, 2);   // 60
    b.and_(6, 1, 2);  // 4
    b.or_(7, 1, 2);   // 13
    b.xor_(8, 1, 2);  // 9
    b.shl(9, 2, 3);   // 40
    b.shr(10, 1, 2);  // 3
    b.addi(11, 1, -2); // 10
    b.mov(12, 5);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.reg(3), 17u);
    EXPECT_EQ(r.reg(4), 7u);
    EXPECT_EQ(r.reg(5), 60u);
    EXPECT_EQ(r.reg(6), 4u);
    EXPECT_EQ(r.reg(7), 13u);
    EXPECT_EQ(r.reg(8), 9u);
    EXPECT_EQ(r.reg(9), 40u);
    EXPECT_EQ(r.reg(10), 3u);
    EXPECT_EQ(r.reg(11), 10u);
    EXPECT_EQ(r.reg(12), 60u);
}

TEST_F(CoreTest, LoadStoreRoundTrip)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(1, static_cast<std::int64_t>(buf));
    b.li(2, 0x1234567890ull);
    b.store(1, 0, 2);
    b.load(3, 1, 0);
    b.load(4, 1, 0, 1); // low byte
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_EQ(r.reg(3), 0x1234567890ull);
    EXPECT_EQ(r.reg(4), 0x90u);
    EXPECT_EQ(core_.mem().read64(buf), 0x1234567890ull);
}

TEST_F(CoreTest, LoadSeesInitialData)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.initWord64(buf, 777);
    b.li(1, static_cast<std::int64_t>(buf));
    b.load(2, 1, 0);
    b.halt();
    EXPECT_EQ(runProgram(core_, b.build()).reg(2), 777u);
}

TEST_F(CoreTest, StoreToLoadForwarding)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(1, static_cast<std::int64_t>(buf));
    b.li(2, 99);
    b.store(1, 0, 2);
    b.load(3, 1, 0); // must see 99 via forwarding or memory
    b.halt();
    EXPECT_EQ(runProgram(core_, b.build()).reg(3), 99u);
}

TEST_F(CoreTest, BranchTakenAndNotTaken)
{
    ProgramBuilder b;
    const int taken = b.label();
    b.li(1, 1);
    b.li(2, 2);
    b.blt(1, 2, taken); // taken
    b.li(3, 111);       // skipped
    b.bind(taken);
    b.li(4, 222);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_EQ(r.reg(3), 0u);
    EXPECT_EQ(r.reg(4), 222u);
}

TEST_F(CoreTest, SignedComparisons)
{
    ProgramBuilder b;
    const int neg_lt = b.label();
    const int done = b.label();
    b.li(1, -5);
    b.li(2, 3);
    b.blt(1, 2, neg_lt); // -5 < 3 signed
    b.li(3, 0);
    b.jmp(done);
    b.bind(neg_lt);
    b.li(3, 1);
    b.bind(done);
    b.halt();
    EXPECT_EQ(runProgram(core_, b.build()).reg(3), 1u);
}

TEST_F(CoreTest, LoopExecutesCorrectCount)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 0);
    b.li(3, 100);
    const int top = b.label();
    b.bind(top);
    b.add(2, 2, 1);
    b.addi(1, 1, 1);
    b.blt(1, 3, top);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_EQ(r.reg(2), 4950u); // sum 0..99
}

TEST_F(CoreTest, MispredictRestoresArchitecturalState)
{
    // A mispredicted branch must not let wrong-path writes commit.
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 50);                               // index, out of bounds
    b.li(5, static_cast<std::int64_t>(bound));
    b.clflush(5, 0);                           // slow branch resolution
    b.load(2, 5, 0);                           // bound = 10
    b.bge(1, 2, skip);                         // taken (50 >= 10)
    b.li(3, 0xBAD);                            // transient only
    b.bind(skip);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_EQ(r.reg(3), 0u) << "wrong-path write leaked to arch state";
}

TEST_F(CoreTest, TransientStoreNeverReachesMemory)
{
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    const Addr victim = b.alloc(64);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 50);
    b.li(5, static_cast<std::int64_t>(bound));
    b.li(6, static_cast<std::int64_t>(victim));
    b.li(7, 0xEF11);
    b.clflush(5, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip);
    b.store(6, 0, 7); // transient store
    b.bind(skip);
    b.halt();
    runProgram(core_, b.build());
    EXPECT_EQ(core_.mem().read64(victim), 0u);
}

TEST_F(CoreTest, RdtscpMonotonicAndOrdered)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.rdtscp(1);
    b.li(5, static_cast<std::int64_t>(buf));
    b.load(2, 5, 0); // cold miss ~ memory latency
    b.rdtscp(3);     // must wait for the load
    b.sub(4, 3, 1);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    const Cycle memory_latency =
        core_.config().memory.accessLatency;
    EXPECT_GT(r.reg(4), memory_latency);
}

TEST_F(CoreTest, CachedLoadMeasuresFast)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.load(2, 5, 0); // warm it
    b.fence();
    b.rdtscp(1);
    b.and_(6, 1, 0); // dependency: r0 is always 0
    b.add(7, 5, 6);
    b.load(2, 7, 0); // hit
    b.rdtscp(3);
    b.sub(4, 3, 1);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_LT(r.reg(4), 20u);
}

TEST_F(CoreTest, ClflushForcesNextMiss)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.load(2, 5, 0);
    b.clflush(5, 0);
    b.fence();
    b.rdtscp(1);
    b.and_(6, 1, 0);
    b.add(7, 5, 6);
    b.load(2, 7, 0); // miss again
    b.rdtscp(3);
    b.sub(4, 3, 1);
    b.halt();
    const RunResult r = runProgram(core_, b.build());
    EXPECT_GT(r.reg(4), core_.config().memory.accessLatency);
}

TEST_F(CoreTest, MaxInstructionsStopsRun)
{
    ProgramBuilder b;
    b.li(1, 0);
    const int top = b.label();
    b.bind(top);
    b.addi(1, 1, 1);
    b.jmp(top);
    RunOptions options;
    options.maxInstructions = 500;
    const RunResult r = core_.run(b.build(), options);
    EXPECT_FALSE(r.halted);
    EXPECT_GE(r.instructions, 500u);
    EXPECT_LT(r.instructions, 510u);
}

TEST_F(CoreTest, WarmupCyclesRecorded)
{
    ProgramBuilder b;
    b.li(1, 0);
    const int top = b.label();
    b.bind(top);
    b.addi(1, 1, 1);
    b.jmp(top);
    RunOptions options;
    options.maxInstructions = 1000;
    options.warmupInstructions = 200;
    const RunResult r = core_.run(b.build(), options);
    EXPECT_GT(r.warmupCycles, 0u);
    EXPECT_LT(r.warmupCycles, r.cycles);
}

TEST_F(CoreTest, ProgramWithoutHaltTerminates)
{
    ProgramBuilder b;
    b.li(1, 5);
    b.addi(1, 1, 1);
    const RunResult r = runProgram(core_, b.build());
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.reg(1), 6u);
}

TEST_F(CoreTest, MicroarchPersistsAcrossRuns)
{
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.fence();
    b.rdtscp(1);
    b.and_(6, 1, 0);
    b.add(7, 5, 6);
    b.load(2, 7, 0);
    b.rdtscp(3);
    b.sub(4, 3, 1);
    b.halt();
    const Program p = b.build();
    const RunResult cold = core_.run(p);
    const RunResult warm = core_.run(p);
    EXPECT_GT(cold.reg(4), warm.reg(4));
    EXPECT_LT(warm.reg(4), 20u);

    RunOptions reset;
    reset.resetMicroarch = true;
    const RunResult cold_again = core_.run(p, reset);
    EXPECT_GT(cold_again.reg(4), core_.config().memory.accessLatency);
}

TEST_F(CoreTest, StatsCountCommitsAndBranches)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 10);
    const int top = b.label();
    b.bind(top);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    core_.run(b.build());
    EXPECT_GE(core_.stats().findCounter("committedInsts")->value(), 23u);
    EXPECT_GE(core_.stats().findCounter("branches")->value(), 10u);
    EXPECT_GE(core_.stats().findCounter("mispredicts")->value(), 1u);
}

TEST_F(CoreTest, InterruptNoiseInflatesRuntime)
{
    ProgramBuilder quiet_prog;
    quiet_prog.li(1, 0);
    quiet_prog.li(2, 2000);
    const int top = quiet_prog.label();
    quiet_prog.bind(top);
    quiet_prog.addi(1, 1, 1);
    quiet_prog.blt(1, 2, top);
    quiet_prog.halt();
    const Program p = quiet_prog.build();

    Core quiet(SystemConfig::makeDefault());
    Core noisy(SystemConfig::makeDefault());
    noisy.setInterruptNoise(0.01, 50, 100);
    const RunResult rq = quiet.run(p);
    const RunResult rn = noisy.run(p);
    EXPECT_GT(rn.cycles, rq.cycles + 100);
}

} // namespace
} // namespace unxpec
