/**
 * @file
 * Tests for the SpectreRewind-style FU contention receiver: the
 * non-pipelined multiplier model itself (CoreConfig::mulPipelined),
 * the channel's existence under cache-hiding defenses (the matrix's
 * headline point — "invisible to the cache" is not "invisible"), the
 * pipelined negative control, and determinism.
 */

#include <gtest/gtest.h>

#include "analysis/roc.hh"
#include "attack/contention.hh"
#include "cpu/core.hh"

namespace unxpec {
namespace {

Cycle
runTwoIndependentMuls(bool pipelined)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    cfg.core.mulPipelined = pipelined;
    Core core(cfg);
    ProgramBuilder b;
    b.li(1, 3);
    b.li(2, 5);
    b.mul(3, 1, 2);
    b.mul(4, 2, 1);
    b.add(5, 3, 4);
    b.halt();
    return core.run(b.build()).cycles;
}

TEST(MulPipelineTest, NonPipelinedMultiplierSerializes)
{
    const Cycle pipelined = runTwoIndependentMuls(true);
    const Cycle serialized = runTwoIndependentMuls(false);
    // Two independent MULs overlap on a pipelined FU and queue on a
    // non-pipelined one, which accepts one op per mulLatency cycles:
    // the second MUL starts a full latency later.
    SystemConfig cfg;
    EXPECT_EQ(serialized, pipelined + cfg.core.mulLatency);
}

TEST(MulPipelineTest, DefaultCoreIsPipelined)
{
    // Bit-identical guard: every pre-existing config must keep the
    // pipelined multiplier, or all the figure goldens would move.
    EXPECT_TRUE(SystemConfig().core.mulPipelined);
    EXPECT_TRUE(SystemConfig::makeUnsafeBaseline().core.mulPipelined);
    EXPECT_TRUE(SystemConfig::makeSafeSpec().core.mulPipelined);
}

TEST(ContentionTest, ChannelOpenUnderCacheHidingDefense)
{
    // SafeSpec leaves no speculative cache state at all — and the
    // contention receiver reads the secret anyway, through the
    // multiplier's busy window surviving the squash.
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    cfg.core.mulPipelined = false;
    Core core(cfg);
    ContentionAttack attack(core);
    const auto zeros = attack.collect(0, 6);
    const auto ones = attack.collect(1, 6);
    double dz = 0.0, d1 = 0.0;
    for (const double v : zeros)
        dz += v;
    for (const double v : ones)
        d1 += v;
    const double delta = d1 / ones.size() - dz / zeros.size();
    EXPECT_GT(delta, 5.0);
    EXPECT_EQ(RocCurve::of(zeros, ones).auc(), 1.0);
}

TEST(ContentionTest, ChannelOpenUnderUndoDefense)
{
    SystemConfig cfg = SystemConfig::makeDefault(); // Cleanup_FOR_L1L2
    cfg.core.mulPipelined = false;
    Core core(cfg);
    ContentionAttack attack(core);
    const auto zeros = attack.collect(0, 6);
    const auto ones = attack.collect(1, 6);
    EXPECT_EQ(RocCurve::of(zeros, ones).auc(), 1.0);
}

TEST(ContentionTest, PipelinedMultiplierIsTheNegativeControl)
{
    // Same program, pipelined FU: no busy window survives the squash,
    // so the two classes are indistinguishable.
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Core core(cfg);
    ContentionAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 1.0);
}

TEST(ContentionTest, CacheFootprintIsSecretIndependent)
{
    // The channel is cache-free by construction: no flush in the
    // round, every load warm, so the resident set cannot depend on
    // the secret even on the unsafe baseline.
    auto resident = [](int secret) {
        SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
        cfg.core.mulPipelined = false;
        Core core(cfg);
        ContentionAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

TEST(ContentionTest, DeterministicAcrossFreshCores)
{
    auto run = [] {
        SystemConfig cfg = SystemConfig::makeSafeSpec();
        cfg.core.mulPipelined = false;
        cfg.seed = 11;
        Core core(cfg);
        ContentionAttack attack(core);
        auto samples = attack.collect(1, 4);
        const auto zeros = attack.collect(0, 4);
        samples.insert(samples.end(), zeros.begin(), zeros.end());
        return samples;
    };
    EXPECT_EQ(run(), run());
}

TEST(ContentionTest, CyclesPerSampleAccounted)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    cfg.core.mulPipelined = false;
    Core core(cfg);
    ContentionAttack attack(core);
    EXPECT_EQ(attack.cyclesPerSample(), 0.0);
    attack.collect(0, 2);
    EXPECT_GT(attack.cyclesPerSample(), 0.0);
}

} // namespace
} // namespace unxpec
