/**
 * @file
 * Unit tests for the structured result sink: row/metric accessors and
 * the JSON/CSV emitters benches expose through --json/--csv.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "analysis/result_sink.hh"

namespace unxpec {
namespace {

ExperimentResult
sampleResult()
{
    ExperimentResult result;
    result.experiment = "fig_test";
    result.description = "test experiment";
    result.masterSeed = 7;
    result.reps = 2;
    result.threads = 1;
    result.mode = "cleanup_l1l2";

    ResultRow row;
    row.label = "loads=1";
    row.params = {{"loads", 1.0}};
    row.metrics.emplace_back("delta",
                             MetricSeries::of({22.0, 24.0}));
    result.rows.push_back(row);

    ResultRow other;
    other.label = "loads=2";
    other.params = {{"loads", 2.0}};
    other.metrics.emplace_back("delta",
                               MetricSeries::of({23.0, 25.0}));
    result.rows.push_back(other);
    return result;
}

TEST(MetricSeriesTest, SummarizesValues)
{
    const MetricSeries series = MetricSeries::of({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(series.summary.mean, 2.0);
    EXPECT_EQ(series.values.size(), 3u);
}

TEST(ResultRowTest, Accessors)
{
    const ExperimentResult result = sampleResult();
    const ResultRow &row = result.row(0);
    EXPECT_DOUBLE_EQ(row.mean("delta"), 23.0);
    EXPECT_DOUBLE_EQ(row.param("loads"), 1.0);
    EXPECT_DOUBLE_EQ(row.param("missing", -1.0), -1.0);
    EXPECT_EQ(row.metric("nope"), nullptr);
}

TEST(ResultRowTest, RowAtMatchesCoordinates)
{
    const ExperimentResult result = sampleResult();
    EXPECT_DOUBLE_EQ(result.rowAt({{"loads", 2.0}}).mean("delta"), 24.0);
}

TEST(WriteJsonTest, ContainsSchemaAndData)
{
    std::ostringstream os;
    writeJson(os, sampleResult());
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"unxpec-experiment-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"experiment\": \"fig_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"master_seed\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"incomplete\": false"), std::string::npos);
    EXPECT_NE(json.find("\"loads\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"mean\": 23"), std::string::npos);
    EXPECT_NE(json.find("\"values\": [22, 24]"), std::string::npos);
    // v2 trial accounting rides on every row.
    EXPECT_NE(json.find("\"censored_trials\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"missing_trials\": 0"), std::string::npos);
    // Balanced braces/brackets — a cheap structural validity check on
    // top of the CI smoke test's real `python3 -m json.tool` parse.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(WriteJsonTest, ValuesCanBeOmitted)
{
    std::ostringstream os;
    writeJson(os, sampleResult(), false);
    EXPECT_EQ(os.str().find("\"values\""), std::string::npos);
}

TEST(WriteJsonTest, NonFiniteBecomesNull)
{
    ExperimentResult result = sampleResult();
    result.rows[0].metrics[0].second.values[0] =
        std::numeric_limits<double>::quiet_NaN();
    result.rows[0].metrics[0].second.summary.mean =
        std::numeric_limits<double>::infinity();
    std::ostringstream os;
    writeJson(os, result);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"mean\": null"), std::string::npos);
    EXPECT_NE(json.find("\"values\": [null, 24]"), std::string::npos);
    // No bare non-finite tokens leak into the JSON (the "nonfinite"
    // count key is quoted, so scan for value-position tokens).
    EXPECT_EQ(json.find(": nan"), std::string::npos);
    EXPECT_EQ(json.find(": inf"), std::string::npos);
    EXPECT_EQ(json.find(": -inf"), std::string::npos);
    EXPECT_EQ(json.find(" nan,"), std::string::npos);
    EXPECT_EQ(json.find(" inf,"), std::string::npos);
}

TEST(WriteJsonTest, ReportsNonFiniteSkipCount)
{
    ExperimentResult result = sampleResult();
    result.rows[0].metrics[0].second = MetricSeries::of(
        {22.0, std::numeric_limits<double>::quiet_NaN(), 24.0});
    std::ostringstream os;
    writeJson(os, result);
    const std::string json = os.str();
    // Two finite samples counted, one NaN skipped and reported.
    EXPECT_NE(json.find("\"count\": 2, \"nonfinite\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"mean\": 23"), std::string::npos);
}

TEST(WriteCsvTest, OneLinePerRow)
{
    std::ostringstream os;
    writeCsv(os, sampleResult());
    const std::string csv = os.str();
    EXPECT_NE(
        csv.find("label,loads,trials,censored_trials,retried_trials,"
                 "missing_trials,delta:mean,delta:stddev,delta:count"),
        std::string::npos);
    EXPECT_NE(csv.find("loads=1,1,0,0,0,0,23,"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3); // header + 2
}

TEST(WriteCsvTest, NonFiniteBecomesEmptyCell)
{
    ExperimentResult result = sampleResult();
    result.rows[0].metrics[0].second.summary.mean =
        std::numeric_limits<double>::quiet_NaN();
    result.rows[0].metrics[0].second.summary.stddev =
        std::numeric_limits<double>::infinity();
    std::ostringstream os;
    writeCsv(os, result);
    const std::string csv = os.str();
    // mean and stddev cells are empty, count (2) still present.
    EXPECT_NE(csv.find("loads=1,1,0,0,0,0,,,2"), std::string::npos);
    EXPECT_EQ(csv.find("nan"), std::string::npos);
    EXPECT_EQ(csv.find("inf"), std::string::npos);
}

TEST(WriteCsvTest, QuotesEmbeddedSeparators)
{
    ExperimentResult result = sampleResult();
    result.rows[0].label = "a,b";
    result.rows[1].label = "say \"hi\"\nthere";
    std::ostringstream os;
    writeCsv(os, result);
    const std::string csv = os.str();
    // RFC-4180 quoting: wrap in quotes, double any embedded quote;
    // embedded newlines stay inside the quoted cell.
    EXPECT_NE(csv.find("\"a,b\",1,"), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\nthere\",2,"),
              std::string::npos);
}

TEST(WriteCsvTest, QuotesMetricNamesInHeader)
{
    ExperimentResult result = sampleResult();
    result.rows[0].metrics[0].first = "delta,ns";
    result.rows[1].metrics[0].first = "delta,ns";
    std::ostringstream os;
    writeCsv(os, result);
    EXPECT_NE(os.str().find("\"delta,ns:mean\""), std::string::npos);
}

TEST(LocaleIndependenceTest, ArtifactsIgnoreGlobalNumericLocale)
{
    // A de_DE-style locale renders 1234.5 as "1.234,5" — decimal comma
    // and digit grouping, both of which corrupt JSON and CSV. The
    // writers must pin the classic locale no matter what the global
    // locale (LC_NUMERIC=de_DE) says.
    std::locale de;
    try {
        de = std::locale("de_DE.UTF-8");
    } catch (const std::runtime_error &) {
        GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
    }
    const std::locale prev = std::locale::global(de);

    ExperimentResult result = sampleResult();
    result.rows[0].metrics[0].second = MetricSeries::of({1234.5, 1236.5});

    std::ostringstream json_os; // inherits the de_DE global locale
    writeJson(json_os, result);
    std::ostringstream csv_os;
    writeCsv(csv_os, result);
    std::locale::global(prev);

    const std::string json = json_os.str();
    EXPECT_NE(json.find("\"mean\": 1235.5"), std::string::npos);
    EXPECT_EQ(json.find("1.235,5"), std::string::npos);
    EXPECT_EQ(json.find("1235,5"), std::string::npos);

    const std::string csv = csv_os.str();
    EXPECT_NE(csv.find(",1235.5,"), std::string::npos);
    EXPECT_EQ(csv.find("1235,5"), std::string::npos);
}

TEST(EmitArtifactsTest, WritesRequestedFiles)
{
    const ExperimentResult result = sampleResult();
    const std::string json_path = "/tmp/unxpec_result_sink_test.json";
    const std::string csv_path = "/tmp/unxpec_result_sink_test.csv";
    std::ostringstream status;
    EXPECT_TRUE(emitArtifacts(result, json_path, csv_path, status));
    EXPECT_NE(status.str().find(json_path), std::string::npos);

    std::ifstream json(json_path);
    ASSERT_TRUE(json.good());
    std::stringstream buf;
    buf << json.rdbuf();
    EXPECT_NE(buf.str().find("unxpec-experiment-v2"), std::string::npos);
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

} // namespace
} // namespace unxpec
