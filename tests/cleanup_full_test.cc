/**
 * @file
 * Tests of the hypothetical Cleanup_FULL mode (L2 restoration) and
 * predictor-robustness of the attack: both probe corners the paper
 * reasons about — CleanupSpec rejects L2 restoration for cost (§III-A)
 * and the attack does not depend on a specific predictor.
 */

#include <gtest/gtest.h>

#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

TEST(CleanupFullTest, L2VictimRestored)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupMode = CleanupMode::Cleanup_FULL;
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    CleanupEngine engine(CleanupMode::Cleanup_FULL, cfg.cleanupTiming,
                         rng);

    // Fill one L2 set completely with committed lines, then displace
    // one with a speculative fill.
    Cycle now = 100;
    const unsigned target_set = hier.l2().setOf(0x800000);
    std::vector<Addr> conflicting;
    Addr candidate = 0x800000;
    while (conflicting.size() < cfg.l2.ways) {
        if (hier.l2().setOf(candidate) == target_set) {
            conflicting.push_back(candidate);
            now = hier.access(candidate, now, false, false,
                              conflicting.size()).ready + 1;
        }
        candidate += kLineBytes;
    }
    // Find another conflicting line for the speculative intruder.
    Addr intruder = candidate;
    while (hier.l2().setOf(intruder) != target_set)
        intruder += kLineBytes;
    const auto record = hier.access(intruder, now, false, true, 99);
    ASSERT_TRUE(record.l2VictimValid);

    const CleanupJob job =
        SpecTracker::buildJob(record.ready + 5, {record});
    engine.rollback(hier, job, 0);

    EXPECT_EQ(hier.l2().probe(record.lineAddr), nullptr);
    EXPECT_NE(hier.l2().probe(record.l2Victim), nullptr);
}

TEST(CleanupFullTest, FullRestorationCostsMore)
{
    const CleanupTiming timing;
    Rng rng(1);
    CleanupEngine engine(CleanupMode::Cleanup_FULL, timing, rng);
    const double without = engine.rollbackDuration(1, 1, 1, 0);
    const double with_l2 = engine.rollbackDuration(1, 1, 1, 1);
    EXPECT_DOUBLE_EQ(with_l2 - without, timing.restoreL2First);
    // Eight L2 restores cost more than a DRAM access — exactly why
    // CleanupSpec never restores L2.
    EXPECT_GT(engine.rollbackDuration(8, 8, 8, 8) -
                  engine.rollbackDuration(8, 8, 8, 0),
              100.0);
}

TEST(CleanupFullTest, ChannelAtLeastAsWideAsL1L2)
{
    // More rollback work can only widen the secret-dependent timing
    // difference (the paper's core insight taken to its limit).
    auto delta = [](CleanupMode mode) {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupMode = mode;
        Core core(cfg);
        UnxpecConfig ucfg;
        ucfg.useEvictionSets = true;
        UnxpecAttack attack(core, ucfg);
        attack.setSecret(0);
        attack.measureOnce();
        const double zero = attack.measureOnce();
        attack.setSecret(1);
        attack.measureOnce();
        const double one = attack.measureOnce();
        return one - zero;
    };
    EXPECT_GE(delta(CleanupMode::Cleanup_FULL),
              delta(CleanupMode::Cleanup_FOR_L1L2));
}

TEST(PredictorRobustnessTest, AttackWorksWithGshare)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.core.predictor = PredictorKind::Gshare;
    Core core(cfg);
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 22.0, 3.0);
}

TEST(PredictorRobustnessTest, GshareConfiguredCoreStillCorrect)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.core.predictor = PredictorKind::Gshare;
    Core core(cfg);
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 0);
    b.li(3, 50);
    const int top = b.label();
    b.bind(top);
    b.add(2, 2, 1);
    b.addi(1, 1, 1);
    b.blt(1, 3, top);
    b.halt();
    EXPECT_EQ(core.run(b.build()).reg(2), 1225u);
}

} // namespace
} // namespace unxpec
