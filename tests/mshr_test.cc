/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "memory/mshr.hh"

namespace unxpec {
namespace {

TEST(MshrTest, AllocateAndFind)
{
    MshrFile file(4);
    file.allocate(0x1000, 50, true, 7);
    const MshrEntry *entry = file.find(0x1000);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->readyCycle, 50u);
    EXPECT_TRUE(entry->speculative);
    EXPECT_EQ(entry->installer, 7u);
    EXPECT_EQ(file.find(0x2000), nullptr);
}

TEST(MshrTest, FullBackpressure)
{
    MshrFile file(2);
    file.allocate(0x0, 10, false, 0);
    EXPECT_FALSE(file.full());
    file.allocate(0x40, 20, false, 1);
    EXPECT_TRUE(file.full());
}

TEST(MshrTest, ReleaseRetiresCompletedFills)
{
    MshrFile file(4);
    file.allocate(0x0, 10, false, 0);
    file.allocate(0x40, 20, false, 1);
    file.release(15);
    EXPECT_EQ(file.inflight(), 1u);
    EXPECT_EQ(file.find(0x0), nullptr);
    EXPECT_NE(file.find(0x40), nullptr);
}

TEST(MshrTest, ReleaseIsInclusive)
{
    MshrFile file(4);
    file.allocate(0x0, 10, false, 0);
    file.release(10);
    EXPECT_EQ(file.inflight(), 0u);
}

TEST(MshrTest, SquashDropsEntry)
{
    MshrFile file(4);
    file.allocate(0x0, 10, false, 0);
    EXPECT_TRUE(file.squash(0x0));
    EXPECT_FALSE(file.squash(0x0));
    EXPECT_EQ(file.inflight(), 0u);
}

TEST(MshrTest, EarliestReady)
{
    MshrFile file(4);
    EXPECT_EQ(file.earliestReady(), kCycleNever);
    file.allocate(0x0, 30, false, 0);
    file.allocate(0x40, 20, false, 1);
    file.allocate(0x80, 40, false, 2);
    EXPECT_EQ(file.earliestReady(), 20u);
}

TEST(MshrTest, VictimBookkeeping)
{
    MshrFile file(4);
    MshrEntry &entry = file.allocate(0x1000, 99, true, 3);
    entry.victimLine = 0x2000;
    entry.victimValid = true;
    entry.victimDirty = true;
    const MshrEntry *found = file.find(0x1000);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->victimLine, 0x2000u);
    EXPECT_TRUE(found->victimValid);
    EXPECT_TRUE(found->victimDirty);
}

TEST(MshrTest, ClearEmptiesFile)
{
    MshrFile file(2);
    file.allocate(0x0, 10, false, 0);
    file.clear();
    EXPECT_EQ(file.inflight(), 0u);
    EXPECT_FALSE(file.full());
}

} // namespace
} // namespace unxpec
