/**
 * @file
 * Unit tests for opcode classification and disassembly.
 */

#include <gtest/gtest.h>

#include "cpu/isa.hh"

namespace unxpec {
namespace {

TEST(IsaTest, LoadStoreClassification)
{
    EXPECT_TRUE(isLoad(Opcode::LOAD));
    EXPECT_FALSE(isLoad(Opcode::STORE));
    EXPECT_TRUE(isStore(Opcode::STORE));
    EXPECT_FALSE(isStore(Opcode::LOAD));
}

TEST(IsaTest, MemClassIncludesFenceAndFlush)
{
    EXPECT_TRUE(isMem(Opcode::LOAD));
    EXPECT_TRUE(isMem(Opcode::STORE));
    EXPECT_TRUE(isMem(Opcode::CLFLUSH));
    EXPECT_TRUE(isMem(Opcode::FENCE));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_FALSE(isMem(Opcode::RDTSCP));
}

TEST(IsaTest, BranchClassification)
{
    for (const Opcode op :
         {Opcode::BLT, Opcode::BGE, Opcode::BEQ, Opcode::BNE}) {
        EXPECT_TRUE(isCondBranch(op));
        EXPECT_TRUE(isBranch(op));
    }
    EXPECT_FALSE(isCondBranch(Opcode::JMP));
    EXPECT_TRUE(isBranch(Opcode::JMP));
    EXPECT_FALSE(isBranch(Opcode::ADD));
}

TEST(IsaTest, RegisterWriters)
{
    EXPECT_TRUE(writesReg(Opcode::LI));
    EXPECT_TRUE(writesReg(Opcode::LOAD));
    EXPECT_TRUE(writesReg(Opcode::RDTSCP));
    EXPECT_FALSE(writesReg(Opcode::STORE));
    EXPECT_FALSE(writesReg(Opcode::BLT));
    EXPECT_FALSE(writesReg(Opcode::FENCE));
    EXPECT_FALSE(writesReg(Opcode::CLFLUSH));
}

TEST(IsaTest, SourceOperands)
{
    EXPECT_TRUE(readsRs1(Opcode::LOAD));
    EXPECT_FALSE(readsRs2(Opcode::LOAD));
    EXPECT_TRUE(readsRs1(Opcode::STORE));
    EXPECT_TRUE(readsRs2(Opcode::STORE));
    EXPECT_TRUE(readsRs1(Opcode::BLT));
    EXPECT_TRUE(readsRs2(Opcode::BLT));
    EXPECT_FALSE(readsRs1(Opcode::LI));
    EXPECT_FALSE(readsRs1(Opcode::RDTSCP));
    EXPECT_TRUE(readsRs1(Opcode::CLFLUSH));
    EXPECT_FALSE(readsRs2(Opcode::CLFLUSH));
}

TEST(IsaTest, EveryOpcodeHasAName)
{
    for (int op = 0; op <= static_cast<int>(Opcode::RDTSCP); ++op) {
        EXPECT_STRNE(opcodeName(static_cast<Opcode>(op)), "?");
    }
}

TEST(IsaTest, DisassembleLoad)
{
    Instruction inst;
    inst.op = Opcode::LOAD;
    inst.rd = 3;
    inst.rs1 = 4;
    inst.imm = 64;
    inst.size = 8;
    EXPECT_EQ(disassemble(inst), "load8 r3, [r4+64]");
}

TEST(IsaTest, DisassembleBranch)
{
    Instruction inst;
    inst.op = Opcode::BGE;
    inst.rs1 = 1;
    inst.rs2 = 2;
    inst.target = 17;
    EXPECT_EQ(disassemble(inst), "bge r1, r2, @17");
}

} // namespace
} // namespace unxpec
