/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 95);
}

TEST(RngTest, ReseedResetsStream)
{
    Rng rng(7);
    const std::uint64_t first = rng.next();
    rng.next();
    rng.next();
    rng.seed(7);
    EXPECT_EQ(rng.next(), first);
}

TEST(RngTest, RangeStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(RngTest, RangeCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(100.0, 5.0);
    EXPECT_NEAR(sum / n, 100.0, 0.3);
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngTest, ChanceFrequency)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

} // namespace
} // namespace unxpec
