/**
 * @file
 * Unit tests for LRU and Random replacement, including the NoMo-style
 * allowed-way masking.
 */

#include <gtest/gtest.h>

#include <set>

#include "memory/replacement.hh"

namespace unxpec {
namespace {

TEST(LruTest, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(4, 4);
    for (unsigned way = 0; way < 4; ++way)
        lru.fill(0, way);
    lru.touch(0, 0); // way 1 becomes the oldest
    EXPECT_EQ(lru.victim(0, 0xF), 1u);
}

TEST(LruTest, FillCountsAsUse)
{
    LruPolicy lru(1, 3);
    lru.fill(0, 0);
    lru.fill(0, 1);
    lru.fill(0, 2);
    lru.fill(0, 0); // refreshed
    EXPECT_EQ(lru.victim(0, 0x7), 1u);
}

TEST(LruTest, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.fill(0, 0);
    lru.fill(0, 1);
    lru.fill(1, 1);
    lru.fill(1, 0);
    EXPECT_EQ(lru.victim(0, 0x3), 0u);
    EXPECT_EQ(lru.victim(1, 0x3), 1u);
}

TEST(LruTest, RespectsAllowedMask)
{
    LruPolicy lru(1, 4);
    lru.fill(0, 0);
    lru.fill(0, 1);
    lru.fill(0, 2);
    lru.fill(0, 3);
    // Way 0 is the LRU way but not allowed.
    EXPECT_EQ(lru.victim(0, 0b1110), 1u);
}

TEST(RandomTest, OnlyPicksAllowedWays)
{
    Rng rng(1);
    RandomPolicy random(1, 8, rng);
    for (int i = 0; i < 200; ++i) {
        const unsigned way = random.victim(0, 0b00111100);
        EXPECT_GE(way, 2u);
        EXPECT_LE(way, 5u);
    }
}

TEST(RandomTest, CoversAllAllowedWays)
{
    Rng rng(2);
    RandomPolicy random(1, 8, rng);
    std::set<unsigned> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(random.victim(0, 0xFF));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, RoughlyUniform)
{
    Rng rng(3);
    RandomPolicy random(1, 4, rng);
    unsigned counts[4] = {0, 0, 0, 0};
    const int trials = 8000;
    for (int i = 0; i < trials; ++i)
        ++counts[random.victim(0, 0xF)];
    for (const unsigned count : counts)
        EXPECT_NEAR(count, trials / 4.0, trials * 0.05);
}

TEST(FactoryTest, CreatesRequestedPolicy)
{
    Rng rng(4);
    auto lru = ReplacementPolicy::create(ReplPolicy::LRU, 2, 2, rng);
    auto rnd = ReplacementPolicy::create(ReplPolicy::Random, 2, 2, rng);
    EXPECT_NE(dynamic_cast<LruPolicy *>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<RandomPolicy *>(rnd.get()), nullptr);
}

} // namespace
} // namespace unxpec
