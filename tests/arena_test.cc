/**
 * @file
 * The monotonic arena and the fixed-capacity ring queue built on it —
 * the storage layer behind the zero-alloc steady state (DESIGN.md
 * §13): alignment, chunk growth, reset-for-reuse, and the ring's
 * wrap-around/iteration semantics the ROB and decode queue rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/arena.hh"
#include "sim/ring_queue.hh"

namespace unxpec {
namespace {

// --- arena ---------------------------------------------------------------

TEST(ArenaTest, AlignsEveryAllocation)
{
    Arena arena(1024);
    for (std::size_t align : {1u, 2u, 8u, 16u, 64u}) {
        void *p = arena.allocate(3, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
}

TEST(ArenaTest, GrowsByChunksAndOversized)
{
    Arena arena(256);
    EXPECT_EQ(arena.chunkCount(), 0u);
    arena.allocate(200, 8);
    EXPECT_EQ(arena.chunkCount(), 1u);
    arena.allocate(200, 8); // does not fit the remainder: second chunk
    EXPECT_EQ(arena.chunkCount(), 2u);
    // A request larger than the chunk size gets a dedicated chunk.
    void *big = arena.allocate(4096, 8);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(arena.chunkCount(), 3u);
    EXPECT_GE(arena.bytesReserved(), 256u + 256u + 4096u);
}

TEST(ArenaTest, ResetRetainsChunksAndReplaysSequence)
{
    Arena arena(512);
    std::vector<void *> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(arena.allocate(100, 8));
    const std::size_t chunks = arena.chunkCount();
    const std::size_t reserved = arena.bytesReserved();

    arena.reset();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.bytesReserved(), reserved);

    // The same allocation sequence lands on the same addresses — the
    // property that lets a pooled Core's reset be heap-free.
    std::vector<void *> second;
    for (int i = 0; i < 8; ++i)
        second.push_back(arena.allocate(100, 8));
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.chunkCount(), chunks);
}

TEST(ArenaTest, ZeroByteRequestsAreDistinctAndValid)
{
    Arena arena;
    void *a = arena.allocate(0, 1);
    void *b = arena.allocate(0, 1);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
}

TEST(ArenaTest, AllocatorAdapterRoundTrips)
{
    Arena arena;
    const ArenaAllocator<int> alloc(&arena);
    ArenaVector<int> v(alloc);
    v.reserve(64);
    const std::size_t used = arena.bytesAllocated();
    EXPECT_GE(used, 64 * sizeof(int));
    for (int i = 0; i < 64; ++i)
        v.push_back(i);
    // Filling reserved capacity must not touch the arena again.
    EXPECT_EQ(arena.bytesAllocated(), used);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 63 * 64 / 2);
}

TEST(ArenaTest, NullArenaAllocatorFallsBackToHeap)
{
    ArenaVector<int> v; // default ArenaAllocator: global new/delete
    v.assign(100, 7);
    EXPECT_EQ(v[99], 7);
}

// --- ring queue ----------------------------------------------------------

TEST(RingQueueTest, FifoAcrossWrapAround)
{
    Arena arena;
    RingQueue<int> q(4, &arena);
    // Force several wraps: push 3 / pop 2 repeatedly.
    std::vector<int> popped;
    int next = 0;
    for (int round = 0; round < 5; ++round) {
        while (q.size() < 3)
            q.push_back(next++);
        popped.push_back(q.front());
        q.pop_front();
        popped.push_back(q.front());
        q.pop_front();
    }
    while (!q.empty()) {
        popped.push_back(q.front());
        q.pop_front();
    }
    std::vector<int> expect(popped.size());
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(popped, expect);
}

TEST(RingQueueTest, IndexAndIterationMatchInsertionOrder)
{
    RingQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push_back(10 + i);
    q.pop_front();
    q.pop_front();
    q.push_back(16);
    q.push_back(17); // head_ > 0, content wraps
    ASSERT_EQ(q.size(), 6u);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], 12 + static_cast<int>(i));
    int expect = 12;
    for (const int v : q)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(q.front(), 12);
    EXPECT_EQ(q.back(), 17);
}

TEST(RingQueueTest, PopBackAndTruncate)
{
    RingQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push_back(i);
    q.pop_back();
    EXPECT_EQ(q.back(), 4);
    q.truncate(2);
    ASSERT_EQ(q.size(), 2u);
    EXPECT_EQ(q[0], 0);
    EXPECT_EQ(q[1], 1);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, NoArenaTouchAfterConstruction)
{
    Arena arena;
    RingQueue<int> q(16, &arena);
    const std::size_t used = arena.bytesAllocated();
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 16; ++i)
            q.push_back(i);
        q.clear();
    }
    EXPECT_EQ(arena.bytesAllocated(), used);
}

} // namespace
} // namespace unxpec
