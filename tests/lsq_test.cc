/**
 * @file
 * Unit tests for load/store queue ordering policy.
 */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

namespace unxpec {
namespace {

RobEntry
makeEntry(SeqNum seq, Opcode op)
{
    RobEntry entry;
    entry.seq = seq;
    entry.inst.op = op;
    return entry;
}

RobEntry
makeStore(SeqNum seq, Addr addr, std::uint64_t value, unsigned size,
          bool done)
{
    RobEntry entry = makeEntry(seq, Opcode::STORE);
    entry.effAddr = addr;
    entry.storeValue = value;
    entry.inst.size = static_cast<std::uint8_t>(size);
    entry.done = done;
    return entry;
}

TEST(LsqTest, LoadProceedsWithNoOlderStores)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::LOAD));
    const auto gate = LoadStoreQueue::gateLoad(rob, 0, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Proceed);
}

TEST(LsqTest, UnresolvedOlderStoreBlocksLoad)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0, 0, 8, /*done=*/false));
    rob.push(makeEntry(1, Opcode::LOAD));
    const auto gate = LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Blocked);
}

TEST(LsqTest, CoveringStoreForwards)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0x1000, 0xdeadbeef12345678ull, 8, true));
    rob.push(makeEntry(1, Opcode::LOAD));
    const auto gate = LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Forward);
    EXPECT_EQ(gate.forwardValue, 0xdeadbeef12345678ull);
}

TEST(LsqTest, ForwardSubsetWithShiftAndMask)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0x1000, 0xdeadbeef12345678ull, 8, true));
    rob.push(makeEntry(1, Opcode::LOAD));
    // Little-endian: bytes 2..3 of 0x...12345678 are 0x34, 0x12.
    const auto gate = LoadStoreQueue::gateLoad(rob, 1, 0x1002, 2);
    EXPECT_EQ(gate.gate, LoadGate::Forward);
    EXPECT_EQ(gate.forwardValue, 0x1234ull);
}

TEST(LsqTest, PartialOverlapBlocks)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0x1004, 0xffff, 8, true));
    rob.push(makeEntry(1, Opcode::LOAD));
    // Load [0x1000, 0x1008) overlaps the store's first half only.
    const auto gate = LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Blocked);
}

TEST(LsqTest, DisjointStoreIgnored)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0x2000, 7, 8, true));
    rob.push(makeEntry(1, Opcode::LOAD));
    const auto gate = LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Proceed);
}

TEST(LsqTest, LatestOlderStoreWins)
{
    ReorderBuffer rob(8);
    rob.push(makeStore(0, 0x1000, 1, 8, true));
    rob.push(makeStore(1, 0x1000, 2, 8, true));
    rob.push(makeEntry(2, Opcode::LOAD));
    const auto gate = LoadStoreQueue::gateLoad(rob, 2, 0x1000, 8);
    EXPECT_EQ(gate.gate, LoadGate::Forward);
    EXPECT_EQ(gate.forwardValue, 2u);
}

TEST(LsqTest, PendingFenceBlocksLoad)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::FENCE));
    rob.push(makeEntry(1, Opcode::LOAD));
    EXPECT_EQ(LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8).gate,
              LoadGate::Blocked);
    rob.markDone(*rob.find(0));
    EXPECT_EQ(LoadStoreQueue::gateLoad(rob, 1, 0x1000, 8).gate,
              LoadGate::Proceed);
}

TEST(LsqTest, FenceWaitsForOlderMemOps)
{
    ReorderBuffer rob(8);
    RobEntry load = makeEntry(0, Opcode::LOAD);
    rob.push(load);
    rob.push(makeEntry(1, Opcode::FENCE));
    EXPECT_FALSE(LoadStoreQueue::fenceReady(rob, 1));
    rob.markDone(*rob.find(0));
    EXPECT_TRUE(LoadStoreQueue::fenceReady(rob, 1));
}

TEST(LsqTest, FenceIgnoresAluOps)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::MUL)); // not done, but not memory
    rob.push(makeEntry(1, Opcode::FENCE));
    EXPECT_TRUE(LoadStoreQueue::fenceReady(rob, 1));
}

TEST(LsqTest, OlderLoadsDrainCycle)
{
    ReorderBuffer rob(8);
    RobEntry l0 = makeEntry(0, Opcode::LOAD);
    l0.issued = true;
    l0.readyCycle = 500;
    rob.push(l0);
    RobEntry l1 = makeEntry(1, Opcode::LOAD);
    l1.issued = true;
    l1.done = true; // already finished: excluded
    l1.readyCycle = 900;
    rob.push(l1);
    rob.push(makeEntry(2, Opcode::BGE));
    EXPECT_EQ(LoadStoreQueue::olderLoadsDrainCycle(rob, 2), 500u);
    // Nothing older than seq 0.
    EXPECT_EQ(LoadStoreQueue::olderLoadsDrainCycle(rob, 0), 0u);
}

TEST(LsqTest, OccupancyCountsMemOps)
{
    ReorderBuffer rob(8);
    rob.push(makeEntry(0, Opcode::LOAD));
    rob.push(makeEntry(1, Opcode::ADD));
    rob.push(makeEntry(2, Opcode::STORE));
    rob.push(makeEntry(3, Opcode::FENCE));
    EXPECT_EQ(LoadStoreQueue::occupancy(rob), 3u);
}

} // namespace
} // namespace unxpec
