/**
 * @file
 * Unit tests for the composed L1I/L1D/L2/DRAM hierarchy: latency
 * composition, MSHR merging, flush, speculative install bookkeeping,
 * and the cleanup-support operations (invalidate/restore/undo).
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace unxpec {
namespace {

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : cfg_(SystemConfig::makeDefault()), rng_(1), hier_(cfg_, rng_)
    {
    }

    Cycle l1Hit() const { return cfg_.l1d.hitLatency; }
    Cycle l2Hit() const { return cfg_.l2.hitLatency; }
    Cycle dram() const { return cfg_.memory.accessLatency; }

    SystemConfig cfg_;
    Rng rng_;
    MemoryHierarchy hier_;
};

TEST_F(HierarchyTest, ColdMissGoesToDram)
{
    const auto record = hier_.access(0x10000, 100, false, false, 1);
    EXPECT_FALSE(record.l1Hit);
    EXPECT_FALSE(record.l2Hit);
    EXPECT_TRUE(record.l1Installed);
    EXPECT_TRUE(record.l2Installed);
    EXPECT_EQ(record.ready, 100 + l1Hit() + l2Hit() + dram());
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    const auto miss = hier_.access(0x10000, 100, false, false, 1);
    const auto hit = hier_.access(0x10000, miss.ready + 1, false, false, 2);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_FALSE(hit.l1Installed);
    EXPECT_EQ(hit.latency(), l1Hit());
}

TEST_F(HierarchyTest, L2HitAfterL1Invalidate)
{
    const auto miss = hier_.access(0x10000, 100, false, false, 1);
    hier_.l1d().invalidate(lineAlign(0x10000));
    const auto l2hit = hier_.access(0x10000, miss.ready + 1, false, false,
                                    2);
    EXPECT_FALSE(l2hit.l1Hit);
    EXPECT_TRUE(l2hit.l2Hit);
    EXPECT_TRUE(l2hit.l1Installed);
    EXPECT_FALSE(l2hit.l2Installed);
    EXPECT_EQ(l2hit.latency(), l1Hit() + l2Hit());
}

TEST_F(HierarchyTest, SameLineAccessesMergeInMshr)
{
    const auto first = hier_.access(0x10000, 100, false, false, 1);
    // Second access while the fill is in flight.
    const auto merged = hier_.access(0x10000, 110, false, false, 2);
    EXPECT_TRUE(merged.merged);
    EXPECT_FALSE(merged.l1Installed);
    EXPECT_EQ(merged.ready, first.ready);
}

TEST_F(HierarchyTest, SubLineOffsetsShareOneLine)
{
    hier_.access(0x10000, 100, false, false, 1);
    const auto hit = hier_.access(0x10020, 300, false, false, 2);
    EXPECT_TRUE(hit.l1Hit);
}

TEST_F(HierarchyTest, WriteDirtiesL1)
{
    hier_.access(0x10000, 100, true, false, 1);
    const CacheLine *line = hier_.l1d().probe(lineAlign(0x10000));
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->dirty);
}

TEST_F(HierarchyTest, FlushRemovesFromAllLevels)
{
    const auto miss = hier_.access(0x10000, 100, true, false, 1);
    const bool dirty = hier_.flushLine(0x10000);
    EXPECT_TRUE(dirty);
    (void)miss;
    EXPECT_EQ(hier_.l1d().probe(lineAlign(0x10000)), nullptr);
    EXPECT_EQ(hier_.l2().probe(lineAlign(0x10000)), nullptr);
    // Subsequent access is a full miss again.
    const auto again = hier_.access(0x10000, 10000, false, false, 2);
    EXPECT_EQ(again.latency(), l1Hit() + l2Hit() + dram());
}

TEST_F(HierarchyTest, FlushCleanLineReportsNotDirty)
{
    hier_.access(0x10000, 100, false, false, 1);
    EXPECT_FALSE(hier_.flushLine(0x10000));
}

TEST_F(HierarchyTest, SpeculativeInstallMarkedAndCommitted)
{
    const auto record = hier_.access(0x10000, 100, false, true, 5);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->speculative);
    hier_.commitInstall(record);
    EXPECT_FALSE(hier_.l1d().probe(record.lineAddr)->speculative);
    EXPECT_FALSE(hier_.l2().probe(record.lineAddr)->speculative);
}

TEST_F(HierarchyTest, CleanupInvalidateRemovesTransientLine)
{
    const auto record = hier_.access(0x10000, 100, false, true, 5);
    EXPECT_TRUE(hier_.cleanupInvalidateL1(record));
    EXPECT_TRUE(hier_.cleanupInvalidateL2(record));
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
    EXPECT_EQ(hier_.l2().probe(record.lineAddr), nullptr);
}

TEST_F(HierarchyTest, CleanupRestorePutsVictimBack)
{
    // Fill one L1 set completely, then displace a line with a
    // speculative fill and restore it.
    const unsigned sets = cfg_.l1d.numSets();
    std::vector<Addr> fillers;
    Cycle now = 100;
    for (unsigned i = 0; i < cfg_.l1d.ways; ++i) {
        const Addr addr = 0x100000 + i * sets * kLineBytes;
        fillers.push_back(lineAlign(addr));
        now = hier_.access(addr, now, false, false, i).ready + 1;
    }
    const Addr intruder = 0x100000 + cfg_.l1d.ways * sets * kLineBytes;
    const auto record = hier_.access(intruder, now, false, true, 99);
    ASSERT_TRUE(record.l1VictimValid);

    hier_.cleanupInvalidateL1(record);
    hier_.cleanupRestoreL1(record, record.ready + 10);
    EXPECT_NE(hier_.l1d().probe(record.l1Victim), nullptr);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
}

TEST_F(HierarchyTest, UndoInflightErasesEagerInstall)
{
    const auto record = hier_.access(0x10000, 100, false, true, 5);
    // Squash "before" the fill lands.
    hier_.undoInflight(record);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr), nullptr);
    EXPECT_EQ(hier_.l2().probe(record.lineAddr), nullptr);
    EXPECT_EQ(hier_.l1d().mshr().find(record.lineAddr), nullptr);
}

TEST_F(HierarchyTest, FetchPathInstallsIntoL1I)
{
    const Addr pc_addr = 0x400000;
    const Cycle cold = hier_.fetchReady(pc_addr, 100);
    EXPECT_GT(cold, 100 + cfg_.l1i.hitLatency);
    const Cycle warm = hier_.fetchReady(pc_addr, cold + 1);
    EXPECT_EQ(warm, cold + 1 + cfg_.l1i.hitLatency);
}

TEST_F(HierarchyTest, FetchInflightDoesNotDuplicate)
{
    const Addr pc_addr = 0x400000;
    hier_.fetchReady(pc_addr, 100);
    hier_.fetchReady(pc_addr, 101); // still filling
    unsigned copies = 0;
    for (const Addr line : hier_.l1i().residentLines()) {
        if (line == lineAlign(pc_addr))
            ++copies;
    }
    EXPECT_EQ(copies, 1u);
}

TEST_F(HierarchyTest, ResetCachesPreservesMemory)
{
    hier_.mem().write64(0x10000, 1234);
    hier_.access(0x10000, 100, false, false, 1);
    hier_.resetCaches();
    EXPECT_TRUE(hier_.l1d().residentLines().empty());
    EXPECT_EQ(hier_.mem().read64(0x10000), 1234u);
}

TEST_F(HierarchyTest, MshrBackpressureDelaysNewMiss)
{
    // Saturate the L1 MSHRs with distinct lines.
    const unsigned capacity = cfg_.l1d.mshrs;
    Cycle expected_first_ready = 0;
    for (unsigned i = 0; i <= capacity; ++i) {
        const auto record =
            hier_.access(0x200000 + i * 8192, 100 + i, false, false, i);
        if (i == 0)
            expected_first_ready = record.ready;
        if (i == capacity) {
            // The overflow miss cannot start before an entry frees.
            EXPECT_GE(record.ready,
                      expected_first_ready + cfg_.l2.hitLatency);
        }
    }
}

} // namespace
} // namespace unxpec
