/**
 * @file
 * The logging hot-path contract (sim/log.hh): a warn/inform/debugLog
 * call below the current verbosity threshold must not format its
 * arguments — the level check happens before the ostringstream is
 * built, so a filtered debugLog in a per-access loop costs one load
 * and branch, not a string allocation.
 */

#include <gtest/gtest.h>

#include <ostream>

#include "sim/log.hh"

namespace unxpec {
namespace {

/** Counts how many times it is streamed — i.e. formatted. */
struct FormatProbe
{
    mutable int streamed = 0;
};

std::ostream &
operator<<(std::ostream &os, const FormatProbe &probe)
{
    ++probe.streamed;
    return os << "probe";
}

/** Restores the global log level on scope exit. */
class LogLevelFixture : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }

  private:
    LogLevel saved_ = LogLevel::Warn;
};

using LogTest = LogLevelFixture;

TEST_F(LogTest, FilteredMessagesAreNeverFormatted)
{
    setLogLevel(LogLevel::Warn);
    FormatProbe probe;
    debugLog("value=", probe);
    inform("value=", probe);
    EXPECT_EQ(probe.streamed, 0);

    setLogLevel(LogLevel::Quiet);
    warn("value=", probe);
    EXPECT_EQ(probe.streamed, 0);
}

TEST_F(LogTest, PassingMessagesFormatOnce)
{
    setLogLevel(LogLevel::Debug);
    FormatProbe probe;
    ::testing::internal::CaptureStderr();
    debugLog("value=", probe);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(probe.streamed, 1);
    EXPECT_NE(err.find("probe"), std::string::npos);
}

TEST_F(LogTest, ThresholdOrdering)
{
    setLogLevel(LogLevel::Inform);
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Inform));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));

    setLogLevel(LogLevel::Quiet);
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
}

} // namespace
} // namespace unxpec
