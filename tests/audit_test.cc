/**
 * @file
 * Tests for the microarchitectural invariant auditor (sim/audit.hh).
 * Every auditor must (a) stay silent on legitimately evolved state and
 * (b) fire on deliberately corrupted state: a stale ROB side-list
 * entry, a desynced or duplicated cache tag, an LRU stamp collision,
 * an inconsistent MSHR entry, and an incomplete rollback. Corruption
 * that the public API correctly refuses to produce is injected through
 * the AuditTap friend hooks below.
 */

#include <gtest/gtest.h>

#include "cleanup/cleanup_engine.hh"
#include "cleanup/spec_tracker.hh"
#include "cpu/core.hh"
#include "cpu/rob.hh"
#include "memory/cache.hh"
#include "memory/coherence.hh"
#include "memory/hierarchy.hh"
#include "sim/audit.hh"

namespace unxpec {

/** Test-only corruption hooks (friend of the audited classes). */
struct AuditTap
{
    /** Plant a stale seq in the unissued side list (funnel bypass). */
    static void
    injectUnissued(ReorderBuffer &rob, SeqNum seq)
    {
        rob.unissued_.push_back(seq);
    }

    /** Overwrite a raw tag slot, desyncing the SoA mirror. */
    static void
    smashTag(Cache &cache, unsigned set, unsigned way, Addr line_addr)
    {
        cache.tags_[static_cast<std::size_t>(set) * cache.cfg_.ways + way] =
            line_addr;
    }

    /** LRU stamp of (set, way), via the cache's private state. */
    static std::uint64_t
    stamp(const Cache &cache, unsigned set, unsigned way)
    {
        return cache.repl_.auditStamp(set, way);
    }

    /** Force (set, way) to a chosen LRU stamp. */
    static void
    smashStamp(Cache &cache, unsigned set, unsigned way, std::uint64_t value)
    {
        cache.repl_
            .stamps_[static_cast<std::size_t>(set) * cache.cfg_.ways + way] =
            value;
    }
};

namespace {

CacheConfig
lruConfig()
{
    CacheConfig cfg;
    cfg.name = "audit-test";
    cfg.sizeBytes = 4 * 1024; // 16 sets x 4 ways
    cfg.ways = 4;
    cfg.hitLatency = 2;
    cfg.mshrs = 4;
    cfg.repl = ReplPolicy::LRU;
    return cfg;
}

RobEntry
aluEntry(SeqNum seq)
{
    RobEntry entry;
    entry.seq = seq;
    entry.inst.op = Opcode::ADD;
    return entry;
}

// --- period knob ------------------------------------------------------

TEST(AuditPeriod, SetAndClampToOne)
{
    const Cycle saved = audit::period();
    audit::setPeriod(128);
    EXPECT_EQ(audit::period(), 128u);
    audit::setPeriod(0); // zero would mean "audit never": clamp to 1
    EXPECT_EQ(audit::period(), 1u);
    audit::setPeriod(saved);
}

// --- ROB --------------------------------------------------------------

TEST(RobAudit, CleanOnLegitimateState)
{
    ReorderBuffer rob(8);
    rob.push(aluEntry(0));
    rob.push(aluEntry(1));
    rob.markIssued(*rob.find(0));
    EXPECT_NO_THROW(rob.auditInvariants(1));
}

TEST(RobAudit, DetectsStaleSideListEntry)
{
    ReorderBuffer rob(8);
    rob.push(aluEntry(0));
    rob.push(aluEntry(1));
    AuditTap::injectUnissued(rob, 7); // seq 7 was never dispatched
    EXPECT_THROW(rob.auditInvariants(1), AuditError);
}

TEST(RobAudit, DetectsIssueFunnelBypass)
{
    ReorderBuffer rob(8);
    rob.push(aluEntry(0));
    rob.push(aluEntry(1));
    // Flipping the flag directly leaves seq 0 on the unissued list —
    // exactly the desync markIssued() exists to prevent.
    rob.find(0)->issued = true;
    EXPECT_THROW(rob.auditInvariants(1), AuditError);
}

TEST(RobAudit, CleanAcrossSquash)
{
    ReorderBuffer rob(8);
    for (SeqNum seq = 0; seq < 6; ++seq) {
        RobEntry entry = aluEntry(seq);
        if (seq == 2)
            entry.inst.op = Opcode::BEQ;
        rob.push(std::move(entry));
    }
    rob.squashYoungerThan(2);
    EXPECT_NO_THROW(rob.auditInvariants(1));
}

// --- Cache ------------------------------------------------------------

TEST(CacheAudit, CleanAfterInstallsAndEvictions)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    const unsigned sets = cache.config().numSets();
    // Overfill one set so evictions and LRU churn both happen.
    for (unsigned i = 0; i < 6; ++i)
        cache.install(0x4000 + i * sets * kLineBytes, 0, false, kSeqNone);
    cache.touch(0x4000 + 5 * sets * kLineBytes);
    EXPECT_NO_THROW(cache.auditInvariants(10));
}

TEST(CacheAudit, DetectsTagMirrorDesync)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    const FillResult fill = cache.install(0x4000, 0, false, kSeqNone);
    AuditTap::smashTag(cache, fill.set, fill.way, 0x8000);
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

TEST(CacheAudit, DetectsDuplicateTagInSet)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    const FillResult fill = cache.install(0x4000, 0, false, kSeqNone);
    // A second copy of the same line in another way is a ghost line:
    // probe() can only ever reach the first one.
    cache.installAt(fill.set, fill.way + 1, 0x4000, false, 0);
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

TEST(CacheAudit, DetectsLruStampCollision)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    const unsigned sets = cache.config().numSets();
    const FillResult a = cache.install(0x4000, 0, false, kSeqNone);
    const FillResult b =
        cache.install(0x4000 + sets * kLineBytes, 0, false, kSeqNone);
    ASSERT_EQ(a.set, b.set);
    AuditTap::smashStamp(cache, b.set, b.way,
                         AuditTap::stamp(cache, a.set, a.way));
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

TEST(CacheAudit, DetectsSpeculativeMshrEntryWithoutInstaller)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    cache.mshr().allocate(0x4000, 100, true, kSeqNone);
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

TEST(CacheAudit, DetectsZeroTargetMshrEntry)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    MshrEntry &entry = cache.mshr().allocate(0x4000, 100, false, kSeqNone);
    entry.targets = 0;
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

TEST(CacheAudit, AcceptsInFlightFillWithMatchingMshrEntry)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    cache.install(0x4000, 100, true, 3);
    cache.mshr().allocate(0x4000, 100, true, 3);
    EXPECT_NO_THROW(cache.auditInvariants(1)); // fill lands at 100 > 1
}

TEST(CacheAudit, DetectsInFlightFillWithMismatchedMshrEntry)
{
    Rng rng(1);
    Cache cache(lruConfig(), rng, 0);
    cache.install(0x4000, 100, true, 3);
    cache.mshr().allocate(0x4000, 55, true, 3); // arrival desynced
    EXPECT_THROW(cache.auditInvariants(1), AuditError);
}

// --- rollback completeness -------------------------------------------

class RollbackAuditTest : public ::testing::Test
{
  protected:
    RollbackAuditTest()
        : cfg_(SystemConfig::makeDefault()), rng_(1), hier_(cfg_, rng_)
    {
    }

    SystemConfig cfg_;
    Rng rng_;
    MemoryHierarchy hier_;
};

TEST_F(RollbackAuditTest, DetectsLeftoverSpeculativeLine)
{
    // A speculative install by (squashed) seq 10 that nobody undoes.
    hier_.access(0x4000, 0, false, true, 10);
    EXPECT_THROW(hier_.auditRollbackComplete(5, 0), AuditError);
}

TEST_F(RollbackAuditTest, PassesAfterRealCleanup)
{
    const MemAccessRecord record = hier_.access(0x4000, 0, false, true, 10);
    const Cycle squash = record.ready + 1; // fill landed: T5 path
    const CleanupJob job = SpecTracker::buildJob(squash, {record});
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, cfg_.cleanupTiming,
                         rng_);
    engine.rollback(hier_, job, 0);
    EXPECT_NO_THROW(hier_.auditRollbackComplete(5, squash));
    EXPECT_NO_THROW(hier_.auditInvariants(squash));
}

TEST_F(RollbackAuditTest, PassesForOlderInFlightSpeculation)
{
    // Speculative install by seq 3, older than the squashed branch at
    // seq 5: it survives the squash and must not trip the audit.
    hier_.access(0x4000, 0, false, true, 3);
    EXPECT_NO_THROW(hier_.auditRollbackComplete(5, 0));
}

TEST_F(RollbackAuditTest, CheckpointProvesRollbackRestoredTagState)
{
    const CacheCheckpoint before = CacheCheckpoint::capture(hier_.l1d());
    const MemAccessRecord record = hier_.access(0x4000, 0, false, true, 10);
    const Cycle squash = record.ready + 1;
    const CleanupJob job = SpecTracker::buildJob(squash, {record});
    CleanupEngine engine(CleanupMode::Cleanup_FOR_L1L2, cfg_.cleanupTiming,
                         rng_);
    engine.rollback(hier_, job, 0);
    EXPECT_NO_THROW(before.verifyRestored(hier_.l1d(), squash));
}

TEST_F(RollbackAuditTest, CheckpointDetectsIncompleteRollback)
{
    const CacheCheckpoint before = CacheCheckpoint::capture(hier_.l1d());
    const MemAccessRecord record = hier_.access(0x4000, 0, false, true, 10);
    const Cycle squash = record.ready + 1;
    const CleanupJob job = SpecTracker::buildJob(squash, {record});
    // The unsafe baseline deliberately skips the undo: the transient
    // footprint persists — which is exactly what the checkpoint (and
    // the unXpec receiver) can see.
    CleanupEngine engine(CleanupMode::UnsafeBaseline, cfg_.cleanupTiming,
                         rng_);
    engine.rollback(hier_, job, 0);
    EXPECT_THROW(before.verifyRestored(hier_.l1d(), squash), AuditError);
}

// --- coherence invariants --------------------------------------------

/** Two hierarchies sharing one L2 through an engine (Machine wiring). */
class CoherenceAuditTest : public ::testing::Test
{
  protected:
    CoherenceAuditTest()
        : cfg_(SystemConfig::makeDefault()), rng0_(1), rng1_(2),
          h0_(cfg_, rng0_), h1_(cfg_, rng1_), engine_(cfg_)
    {
        h1_.bindShared(&h0_.l2(), &h0_.mem());
        h0_.setCoherence(&engine_, 0);
        h1_.setCoherence(&engine_, 1);
    }

    SystemConfig cfg_;
    Rng rng0_;
    Rng rng1_;
    MemoryHierarchy h0_;
    MemoryHierarchy h1_;
    CoherenceEngine engine_;
};

TEST_F(CoherenceAuditTest, CleanAfterCommittedSharing)
{
    const auto a = h0_.access(0x4000, 0, false, false, 1);
    h1_.access(0x4000, a.ready + 1, false, false, 2);
    EXPECT_NO_THROW(engine_.auditInvariants(a.ready + 2));
}

TEST_F(CoherenceAuditTest, DetectsTwoOwnersOfOneLine)
{
    const auto a = h0_.access(0x4000, 0, false, false, 1);
    const auto b = h1_.access(0x4000, a.ready + 1, false, false, 2);
    // Both copies are S now; forcing them back to E fakes the
    // two-owners state the snoop protocol exists to prevent.
    h0_.l1d().probeMutable(a.lineAddr)->coh = CohState::Exclusive;
    h1_.l1d().probeMutable(b.lineAddr)->coh = CohState::Exclusive;
    EXPECT_THROW(engine_.auditInvariants(b.ready + 1), AuditError);
}

TEST_F(CoherenceAuditTest, DetectsOwnerCoexistingWithSharer)
{
    const auto a = h0_.access(0x4000, 0, false, false, 1);
    const auto b = h1_.access(0x4000, a.ready + 1, false, false, 2);
    h0_.l1d().probeMutable(a.lineAddr)->coh = CohState::Modified;
    EXPECT_THROW(engine_.auditInvariants(b.ready + 1), AuditError);
}

TEST_F(CoherenceAuditTest, DetectsInclusionViolation)
{
    const auto a = h0_.access(0x4000, 0, false, false, 1);
    // Dropping the shared-L2 copy behind the engine's back leaves an
    // L1 line with no L2 backing — the state backInvalidate prevents.
    h0_.l2().invalidate(a.lineAddr);
    EXPECT_THROW(engine_.auditInvariants(a.ready + 1), AuditError);
}

TEST_F(CoherenceAuditTest, DetectsStalePendingDowngrade)
{
    // A remote probe on a speculative copy defers the downgrade...
    const auto install = h0_.access(0x4000, 0, false, true, 7);
    h1_.access(0x4000, install.ready + 1, false, false, 8);
    CacheLine *owner = h0_.l1d().probeMutable(install.lineAddr);
    ASSERT_NE(owner, nullptr);
    ASSERT_TRUE(owner->pendingDowngrade);
    // ...and commit clears it. Clearing only the speculative marking
    // (a botched commitSpeculative) leaves the stale bit the audit
    // exists to catch.
    owner->speculative = false;
    owner->installer = kSeqNone;
    EXPECT_THROW(engine_.auditInvariants(install.ready + 2), AuditError);
    // The real commit path leaves no stale bit.
    owner->speculative = true;
    owner->installer = 7;
    h0_.commitInstall(install);
    EXPECT_NO_THROW(engine_.auditInvariants(install.ready + 2));
}

TEST_F(CoherenceAuditTest, CacheAuditRejectsPendingDowngradeWithoutOwnerState)
{
    const auto install = h0_.access(0x4000, 0, false, true, 7);
    h1_.access(0x4000, install.ready + 1, false, false, 8);
    CacheLine *owner = h0_.l1d().probeMutable(install.lineAddr);
    ASSERT_NE(owner, nullptr);
    ASSERT_TRUE(owner->pendingDowngrade);
    // A pending downgrade on a line that is not even M/E is nonsense.
    owner->coh = CohState::Shared;
    EXPECT_THROW(h0_.l1d().auditInvariants(install.ready + 2), AuditError);
}

// --- whole machine ----------------------------------------------------

TEST(CoreAudit, CleanAfterSpeculativeRunWithSquashes)
{
    Core core(SystemConfig::makeDefault());
    // The classic transient-execution shape: a slow-resolving bound
    // check mispredicted around a wrong-path write (core_test.cc).
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 50);
    b.li(5, static_cast<std::int64_t>(bound));
    b.clflush(5, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip);
    b.li(3, 0xBAD);
    b.bind(skip);
    b.halt();
    core.run(b.build());
    EXPECT_NO_THROW(core.auditInvariants());
}

} // namespace
} // namespace unxpec
