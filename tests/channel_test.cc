/**
 * @file
 * Unit tests for covert-channel calibration and decoding.
 */

#include <gtest/gtest.h>

#include "attack/channel.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(ChannelTest, ThresholdSeparatesDisjointClasses)
{
    const std::vector<double> zeros = {150, 152, 155, 158};
    const std::vector<double> ones = {180, 182, 185, 190};
    const double threshold =
        CovertChannel::calibrateThreshold(zeros, ones);
    EXPECT_GE(threshold, 158.0);
    EXPECT_LT(threshold, 180.0);
    for (const double z : zeros)
        EXPECT_EQ(CovertChannel::decode(z, threshold), 0);
    for (const double o : ones)
        EXPECT_EQ(CovertChannel::decode(o, threshold), 1);
}

TEST(ChannelTest, ThresholdMinimizesErrorOnOverlap)
{
    Rng rng(1);
    std::vector<double> zeros, ones;
    for (int i = 0; i < 2000; ++i) {
        zeros.push_back(rng.gaussian(160, 9));
        ones.push_back(rng.gaussian(182, 9));
    }
    const double threshold =
        CovertChannel::calibrateThreshold(zeros, ones);
    // The optimum of two equal-variance gaussians is the midpoint.
    EXPECT_NEAR(threshold, 171.0, 4.0);
}

TEST(ChannelTest, DecodeBoundary)
{
    EXPECT_EQ(CovertChannel::decode(100.0, 100.0), 0);
    EXPECT_EQ(CovertChannel::decode(100.1, 100.0), 1);
}

TEST(ChannelTest, MajorityVote)
{
    EXPECT_EQ(CovertChannel::decodeMajority({90, 110, 120}, 100), 1);
    EXPECT_EQ(CovertChannel::decodeMajority({90, 95, 120}, 100), 0);
    // Even split favors 0.
    EXPECT_EQ(CovertChannel::decodeMajority({90, 120}, 100), 0);
}

TEST(ChannelTest, AccuracyComputation)
{
    const std::vector<int> guesses = {1, 0, 1, 1};
    const std::vector<int> secret = {1, 0, 0, 1};
    EXPECT_DOUBLE_EQ(CovertChannel::accuracy(guesses, secret), 0.75);
}

TEST(ChannelTest, MultiSampleBeatsSingleSampleOnNoisyChannel)
{
    // §VI-D third point: more samples per secret suppress noise.
    Rng rng(2);
    const double threshold = 171.0;
    int single_correct = 0, multi_correct = 0;
    const int bits = 500;
    for (int i = 0; i < bits; ++i) {
        const int secret = static_cast<int>(rng.range(2));
        const double mean = secret ? 182.0 : 160.0;
        std::vector<double> samples;
        for (int s = 0; s < 5; ++s)
            samples.push_back(rng.gaussian(mean, 15));
        if (CovertChannel::decode(samples[0], threshold) == secret)
            ++single_correct;
        if (CovertChannel::decodeMajority(samples, threshold) == secret)
            ++multi_correct;
    }
    EXPECT_GT(multi_correct, single_correct);
}

} // namespace
} // namespace unxpec
