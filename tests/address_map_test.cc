/**
 * @file
 * Unit tests for modulo and CEASER-style set indexing.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "memory/address_map.hh"

namespace unxpec {
namespace {

TEST(ModuloIndexTest, UsesLineNumberModSets)
{
    ModuloIndex index(64);
    EXPECT_EQ(index.set(0), 0u);
    EXPECT_EQ(index.set(64), 1u);
    EXPECT_EQ(index.set(64 * 64), 0u);
    EXPECT_EQ(index.set(64 * 65), 1u);
}

TEST(ModuloIndexTest, OffsetBitsIrrelevant)
{
    ModuloIndex index(64);
    EXPECT_EQ(index.set(lineAlign(0x12345)), index.set(lineAlign(0x1237f)));
}

TEST(CeaserIndexTest, PermutationIsBijective)
{
    CeaserIndex index(2048, 0x1234);
    std::set<std::uint64_t> images;
    for (std::uint64_t line = 0; line < 4096; ++line)
        images.insert(index.permute(line));
    EXPECT_EQ(images.size(), 4096u);
}

TEST(CeaserIndexTest, KeyChangesMapping)
{
    CeaserIndex a(2048, 1);
    CeaserIndex b(2048, 2);
    unsigned differing = 0;
    for (Addr line = 0; line < 512; ++line) {
        if (a.set(line << kLineShift) != b.set(line << kLineShift))
            ++differing;
    }
    EXPECT_GT(differing, 400u);
}

TEST(CeaserIndexTest, BreaksContiguousSetPattern)
{
    // Consecutive lines map to consecutive sets under modulo but
    // should scatter under CEASER.
    CeaserIndex ceaser(2048, 0xabcd);
    unsigned consecutive = 0;
    for (Addr line = 0; line + 1 < 256; ++line) {
        const unsigned a = ceaser.set(line << kLineShift);
        const unsigned b = ceaser.set((line + 1) << kLineShift);
        if ((a + 1) % 2048 == b)
            ++consecutive;
    }
    EXPECT_LT(consecutive, 8u);
}

TEST(CeaserIndexTest, SetsRoughlyBalanced)
{
    CeaserIndex ceaser(64, 0x5555);
    std::map<unsigned, unsigned> counts;
    const unsigned lines = 64 * 64;
    for (Addr line = 0; line < lines; ++line)
        ++counts[ceaser.set(line << kLineShift)];
    for (const auto &[set, count] : counts) {
        EXPECT_GT(count, 64u / 3);
        EXPECT_LT(count, 64u * 3);
    }
}

TEST(FactoryTest, CreatesRequestedIndex)
{
    auto modulo = IndexFunction::create(IndexPolicy::Modulo, 64, 0);
    auto ceaser = IndexFunction::create(IndexPolicy::Ceaser, 64, 1);
    EXPECT_NE(dynamic_cast<ModuloIndex *>(modulo.get()), nullptr);
    EXPECT_NE(dynamic_cast<CeaserIndex *>(ceaser.get()), nullptr);
}

TEST(CeaserIndexTest, DeterministicForSameKey)
{
    CeaserIndex a(2048, 77);
    CeaserIndex b(2048, 77);
    for (Addr line = 0; line < 256; ++line)
        EXPECT_EQ(a.set(line << kLineShift), b.set(line << kLineShift));
}

} // namespace
} // namespace unxpec
