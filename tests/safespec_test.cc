/**
 * @file
 * Tests for the SafeSpec defense (shadow L1 for speculative fills):
 * the ShadowL1 buffer itself, the accessSafeSpec hierarchy path
 * (speculative fills never touch cache tags, replacement state, or the
 * MSHR), free promotion at commit, and the attack-level consequence —
 * squash discards cost nothing, so the unXpec rollback-timing channel
 * does not exist.
 */

#include <gtest/gtest.h>

#include "attack/unxpec.hh"
#include "cleanup/safespec.hh"
#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

// --- ShadowL1 unit tests ------------------------------------------------

TEST(ShadowL1Test, FillAndFind)
{
    ShadowL1 shadow;
    EXPECT_EQ(shadow.find(0x1000), nullptr);
    shadow.fill(0x1000, 50, 7);
    const ShadowL1::Entry *entry = shadow.find(0x1000);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->readyCycle, 50u);
    EXPECT_EQ(entry->installer, 7u);
    EXPECT_EQ(shadow.occupancy(), 1u);
    EXPECT_EQ(shadow.fills(), 1u);
}

TEST(ShadowL1Test, PromoteAndDiscardRemove)
{
    ShadowL1 shadow;
    shadow.fill(0x1000, 10, 1);
    shadow.fill(0x2000, 20, 2);
    EXPECT_TRUE(shadow.promote(0x1000));
    EXPECT_FALSE(shadow.promote(0x1000));
    EXPECT_TRUE(shadow.discard(0x2000));
    EXPECT_FALSE(shadow.discard(0x2000));
    EXPECT_EQ(shadow.occupancy(), 0u);
    EXPECT_EQ(shadow.promotes(), 1u);
    EXPECT_EQ(shadow.discards(), 1u);
}

TEST(ShadowL1Test, FifoDropsOldestWhenFull)
{
    ShadowL1 shadow;
    for (unsigned i = 0; i < ShadowL1::kEntries; ++i)
        shadow.fill(0x1000 + i * 0x40, i, i);
    EXPECT_EQ(shadow.occupancy(), ShadowL1::kEntries);
    // One more displaces the oldest (slot 0), nothing else.
    shadow.fill(0x9000, 99, 99);
    EXPECT_EQ(shadow.occupancy(), ShadowL1::kEntries);
    EXPECT_EQ(shadow.find(0x1000), nullptr);
    EXPECT_NE(shadow.find(0x1040), nullptr);
    EXPECT_NE(shadow.find(0x9000), nullptr);
}

TEST(ShadowL1Test, ClearResetsEntriesAndCounters)
{
    ShadowL1 shadow;
    shadow.fill(0x1000, 10, 1);
    shadow.promote(0x1000);
    shadow.fill(0x2000, 20, 2);
    shadow.clear();
    EXPECT_EQ(shadow.occupancy(), 0u);
    EXPECT_EQ(shadow.find(0x2000), nullptr);
    // Counters zero too: Core::reset must be bit-identical to fresh
    // construction, including every statistic.
    EXPECT_EQ(shadow.fills(), 0u);
    EXPECT_EQ(shadow.promotes(), 0u);
    EXPECT_EQ(shadow.discards(), 0u);
}

// --- hierarchy path -----------------------------------------------------

TEST(SafeSpecTest, SpeculativeMissTouchesNoCacheState)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessSafeSpec(0x10000, 100, 1);
    EXPECT_TRUE(record.shadow);
    EXPECT_FALSE(record.l1Installed);
    EXPECT_FALSE(record.l2Installed);
    EXPECT_TRUE(hier.l1d().residentLines().empty());
    EXPECT_TRUE(hier.l2().residentLines().empty());
    EXPECT_EQ(hier.l1d().mshr().inflight(), 0u);
    EXPECT_EQ(hier.shadow().occupancy(), 1u);
    // Full-miss latency: the shadow fill still travels the real path.
    EXPECT_EQ(record.latency(), cfg.l1d.hitLatency + cfg.l2.hitLatency +
                                    cfg.memory.accessLatency);
}

TEST(SafeSpecTest, CommittedHitServedInPlace)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto fill = hier.access(0x10000, 100, false, false, 1);
    const auto record = hier.accessSafeSpec(0x10000, fill.ready + 1, 2);
    EXPECT_TRUE(record.l1Hit);
    EXPECT_FALSE(record.shadow);
    EXPECT_EQ(record.latency(), cfg.l1d.hitLatency);
}

TEST(SafeSpecTest, SecondSpeculativeLoadMergesWithShadowFill)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    hier.accessSafeSpec(0x10000, 100, 1);
    const auto merged = hier.accessSafeSpec(0x10000, 101, 2);
    EXPECT_TRUE(merged.shadow);
    EXPECT_TRUE(merged.merged);
    EXPECT_EQ(hier.shadow().occupancy(), 1u);
}

TEST(SafeSpecTest, CommitPromotesIntoCaches)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessSafeSpec(0x10000, 100, 1);
    hier.commitShadow(record, record.ready + 1);
    EXPECT_EQ(hier.shadow().occupancy(), 0u);
    EXPECT_TRUE(hier.l1d().present(record.lineAddr, record.ready + 2));
    EXPECT_TRUE(hier.l2().present(record.lineAddr, record.ready + 2));
}

TEST(SafeSpecTest, DiscardLeavesNothingForTheAuditor)
{
    SystemConfig cfg = SystemConfig::makeSafeSpec();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessSafeSpec(0x10000, 100, 5);
    EXPECT_TRUE(hier.discardShadow(record));
    EXPECT_FALSE(hier.discardShadow(record));
    EXPECT_EQ(hier.shadow().occupancy(), 0u);
    // Rollback completeness: nothing speculative survives a squash of
    // everything younger than branch seq 4.
    EXPECT_NO_THROW(hier.auditRollbackComplete(4, 101));
}

// --- attack level -------------------------------------------------------

TEST(SafeSpecTest, UnxpecChannelClosed)
{
    Core core(SystemConfig::makeSafeSpec());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

TEST(SafeSpecTest, TransientFootprintIsSecretIndependent)
{
    auto resident = [](int secret) {
        Core core(SystemConfig::makeSafeSpec());
        UnxpecAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

TEST(SafeSpecTest, CheaperThanInvisiSpecOnWorkloads)
{
    // SafeSpec's selling point vs the Invisible class: commit promotion
    // is free, so no validation re-read tax.
    const Program p = SynthSpec::generate(SynthSpec::profile("mcf_r"), 21);
    RunOptions options;
    options.maxInstructions = 30000;

    Core safespec(SystemConfig::makeSafeSpec());
    const Cycle safespec_cycles = safespec.run(p, options).cycles;

    Core invisible(SystemConfig::makeInvisiSpec());
    const Cycle invisispec_cycles = invisible.run(p, options).cycles;

    EXPECT_LT(safespec_cycles, invisispec_cycles);
}

} // namespace
} // namespace unxpec
