/**
 * @file
 * Cross-module integration tests: full attack rounds end-to-end, the
 * Spectre-vs-unXpec contrast, leak of long bit strings under noise,
 * and leakage-rate sanity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "attack/channel.hh"
#include "attack/noise.hh"
#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "analysis/accuracy.hh"

namespace unxpec {
namespace {

TEST(IntegrationTest, UnxpecLeaksWhereSpectreFails)
{
    // The paper's whole premise in one test: on a CleanupSpec machine
    // the classic cache covert channel is closed, but the rollback
    // *timing* channel is wide open.
    Core core(SystemConfig::makeDefault());

    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    EXPECT_FALSE(spectre.leakByte().cacheHitSignal);

    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(4);
    const std::vector<int> secret = {1, 0, 1, 1, 0, 1, 0, 0};
    const LeakResult result = attack.leak(secret, threshold);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

TEST(IntegrationTest, LongLeakUnderEvaluationNoise)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(100);

    Rng rng(2024);
    std::vector<int> secret;
    for (int i = 0; i < 200; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    const LeakResult result = attack.leak(secret, threshold);
    // Paper: 86.7 % with one sample per bit. Require comfortably
    // above chance here (small sample size).
    EXPECT_GT(result.accuracy, 0.75);
}

TEST(IntegrationTest, EvictionSetsImproveNoisyAccuracy)
{
    auto run_variant = [](bool evset) {
        SystemConfig cfg = SystemConfig::makeDefault();
        const NoiseProfile noise = NoiseProfile::evaluation();
        noise.applyTo(cfg);
        Core core(cfg);
        noise.applyTo(core);
        UnxpecConfig ucfg;
        ucfg.useEvictionSets = evset;
        UnxpecAttack attack(core, ucfg);
        const double threshold = attack.calibrate(120);
        Rng rng(7);
        std::vector<int> secret;
        for (int i = 0; i < 250; ++i)
            secret.push_back(static_cast<int>(rng.range(2)));
        return attack.leak(secret, threshold).accuracy;
    };
    const double plain = run_variant(false);
    const double optimized = run_variant(true);
    EXPECT_GT(optimized, plain - 0.02); // at least comparable
    EXPECT_GT(optimized, 0.85);
}

TEST(IntegrationTest, LeakageRateOrderOfMagnitude)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    attack.collect(0, 5);
    attack.collect(1, 5);
    const double rate_kbps = LeakageRate::bitsPerSecond(
        attack.cyclesPerSample(), core.config().clockGHz) / 1000.0;
    // The paper reports 140 Kbps with its (heavier) round structure;
    // our leaner default round should be the same order or faster.
    EXPECT_GT(rate_kbps, 100.0);
    EXPECT_LT(rate_kbps, 5000.0);
}

TEST(IntegrationTest, RollbackKeepsEvictionSetsPrimedAcrossRounds)
{
    // §VI-B: priming once suffices in a quiet machine because the
    // rollback itself restores the primed lines. Alternating secrets
    // must decode perfectly without re-priming.
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.useEvictionSets = true;
    UnxpecAttack attack(core, cfg);
    const double threshold = attack.calibrate(4);
    for (int round = 0; round < 10; ++round) {
        const int secret = round % 2;
        attack.setSecret(secret);
        const double latency = attack.measureOnce();
        EXPECT_EQ(CovertChannel::decode(latency, threshold), secret)
            << "round " << round;
        if (secret == 1) {
            EXPECT_GE(attack.lastDetail().restores, 1u);
        }
    }
}

TEST(IntegrationTest, CleanupForL1ChannelSmallerButPresent)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupMode = CleanupMode::Cleanup_FOR_L1;
    Core core(cfg);
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    const double delta = one - zero;
    EXPECT_GT(delta, 4.0);   // channel still exists...
    EXPECT_LT(delta, 22.0);  // ...but smaller than Cleanup_FOR_L1L2
}

TEST(IntegrationTest, StatsDumpHasArtifactCounters)
{
    Core core(SystemConfig::makeDefault());
    UnxpecAttack attack(core);
    attack.collect(1, 2);
    std::ostringstream oss;
    core.stats().dump(oss);
    core.cleanup().stats().dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("cpu.sim_ticks"), std::string::npos);
    EXPECT_NE(text.find("cleanup.extraCleanupSquashTimeCycles"),
              std::string::npos);
    EXPECT_NE(text.find("cleanup.restores"), std::string::npos);
}

TEST(IntegrationTest, FuzzyMitigationDegradesAccuracyAtLowCost)
{
    // The paper's §VII sketch: random dummy cleanup should hurt the
    // attacker more cheaply than constant-time rollback.
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupTiming.fuzzyMaxCycles = 60;
    Core core(cfg);
    UnxpecAttack attack(core);
    const double threshold = attack.calibrate(60);
    Rng rng(5);
    std::vector<int> secret;
    for (int i = 0; i < 200; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    const LeakResult result = attack.leak(secret, threshold);
    EXPECT_LT(result.accuracy, 0.85); // attack noticeably degraded
}

} // namespace
} // namespace unxpec
