/**
 * @file
 * Tests of the text assembler: syntax coverage, labels, data
 * directives, round-trip against Program::listing(), and execution of
 * assembled programs on the core.
 */

#include <gtest/gtest.h>

#include "cpu/assembler.hh"
#include "cpu/core.hh"

namespace unxpec {
namespace {

TEST(AssemblerTest, BasicArithmeticProgramRuns)
{
    const Program p = Assembler::assemble(R"(
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        addi r4, r3, -2
        halt
    )");
    Core core(SystemConfig::makeDefault());
    const RunResult r = core.run(p);
    EXPECT_EQ(r.reg(3), 42u);
    EXPECT_EQ(r.reg(4), 40u);
}

TEST(AssemblerTest, LabelsAndLoops)
{
    const Program p = Assembler::assemble(R"(
        li r1, 0
        li r2, 0
        li r3, 10
    loop:
        add r2, r2, r1
        addi r1, r1, 1
        blt r1, r3, loop
        halt
    )");
    Core core(SystemConfig::makeDefault());
    EXPECT_EQ(core.run(p).reg(2), 45u);
}

TEST(AssemblerTest, ForwardBranchTargets)
{
    const Program p = Assembler::assemble(R"(
        li r1, 1
        li r2, 2
        blt r1, r2, skip
        li r3, 111
    skip:
        li r4, 222
        halt
    )");
    Core core(SystemConfig::makeDefault());
    const RunResult r = core.run(p);
    EXPECT_EQ(r.reg(3), 0u);
    EXPECT_EQ(r.reg(4), 222u);
}

TEST(AssemblerTest, DataDirectivesAndMemoryOps)
{
    std::map<std::string, Addr> symbols;
    const Program p = Assembler::assemble(R"(
        .data buf 64
        .word buf 0 1000
        .byte buf 8 0x2a
        li r1, buf
        load8 r2, [r1+0]
        load1 r3, [r1+8]
        addi r2, r2, 1
        store8 [r1+16], r2
        halt
    )", symbols);
    ASSERT_TRUE(symbols.count("buf"));

    Core core(SystemConfig::makeDefault());
    const RunResult r = core.run(p);
    EXPECT_EQ(r.reg(2), 1001u);
    EXPECT_EQ(r.reg(3), 0x2au);
    EXPECT_EQ(core.mem().read64(symbols["buf"] + 16), 1001u);
}

TEST(AssemblerTest, CommentsAndWhitespaceIgnored)
{
    const Program p = Assembler::assemble(R"(
        ; a comment-only line
        li r1, 3   # trailing comment

        halt       ; done
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(AssemblerTest, NumericTargetsMatchListingSyntax)
{
    const Program p = Assembler::assemble(R"(
        li r1, 1
        li r2, 2
        blt r1, r2, @4
        li r3, 111
        halt
    )");
    EXPECT_EQ(p.at(2).target, 4);
}

TEST(AssemblerTest, ListingRoundTrip)
{
    // Assemble, list, re-assemble the listing: identical encodings.
    const Program original = Assembler::assemble(R"(
        .data buf 64
        li r1, buf
        li r2, 0
    loop:
        load8 r3, [r1+0]
        clflush [r1+0]
        fence
        rdtscp r4
        addi r2, r2, 1
        li r5, 3
        blt r2, r5, loop
        store8 [r1+8], r4
        jmp end
        nop
    end:
        halt
    )");
    const Program reparsed = Assembler::assemble(original.listing());
    ASSERT_EQ(original.size(), reparsed.size());
    for (std::size_t pc = 0; pc < original.size(); ++pc) {
        EXPECT_EQ(disassemble(original.at(pc)),
                  disassemble(reparsed.at(pc)))
            << "at pc " << pc;
    }
}

TEST(AssemblerTest, FullAttackGadgetExecutes)
{
    // A hand-written Spectre-style gadget in assembly, run against
    // CleanupSpec: the transient install must be rolled back.
    std::map<std::string, Addr> symbols;
    const Program p = Assembler::assemble(R"(
        .data bound 64
        .data probe 64
        .word bound 0 10
        li r1, 50            ; out-of-bounds index
        li r5, bound
        li r6, probe
        clflush [r5+0]
        load8 r2, [r5+0]
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        addi r2, r2, 0
        bge r1, r2, skip
        load8 r7, [r6+0]     ; transient
    skip:
        halt
    )", symbols);

    Core core(SystemConfig::makeDefault());
    core.run(p);
    core.predictor().reset();
    core.run(p); // warm I-cache round actually exercises the install
    EXPECT_FALSE(core.hierarchy().l1d().present(
        lineAlign(symbols["probe"]), core.now()));
    EXPECT_GE(
        core.cleanup().stats().findCounter("invalidationsL1")->value(),
        1u);
}

TEST(AssemblerDeathTest, RejectsBadSyntax)
{
    EXPECT_DEATH({ Assembler::assemble("frobnicate r1, r2"); },
                 "unknown mnemonic");
    EXPECT_DEATH({ Assembler::assemble("li r99, 1"); }, "register");
    EXPECT_DEATH({ Assembler::assemble("blt r1, r2, nowhere"); },
                 "unknown label");
    EXPECT_DEATH({ Assembler::assemble("load8 r1, r2"); }, "expected");
    EXPECT_DEATH({ Assembler::assemble(".word nothing 0 1"); },
                 "unknown data symbol");
}

} // namespace
} // namespace unxpec
