/**
 * @file
 * Tests for the CacheSquash defense (squash propagates into the MSHR
 * and cancels in-flight fills) and the SpecBox defense (label-based
 * isolation with a zero-cost flash clear). Covers the MshrFile::cancel
 * primitive, the accessCacheSquash hierarchy path, cancellation racing
 * the rollback auditor, SpecBox's label visibility under cross-core
 * probes, and both defenses' closed unXpec channel.
 */

#include <gtest/gtest.h>

#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "memory/mshr.hh"

namespace unxpec {
namespace {

// --- MshrFile::cancel unit tests ----------------------------------------

TEST(MshrCancelTest, CancelsSpeculativeEntryByInstaller)
{
    MshrFile file(4);
    file.allocate(0x1000, 50, true, 7);
    EXPECT_TRUE(file.cancel(0x1000, 7));
    EXPECT_FALSE(file.cancel(0x1000, 7));
    EXPECT_EQ(file.inflight(), 0u);
}

TEST(MshrCancelTest, WrongInstallerIsUntouched)
{
    // A fill parked by an older (surviving) load must not be cancelled
    // by a younger squashed one that merged with it.
    MshrFile file(4);
    file.allocate(0x1000, 50, true, 3);
    EXPECT_FALSE(file.cancel(0x1000, 9));
    EXPECT_EQ(file.inflight(), 1u);
    EXPECT_NE(file.find(0x1000), nullptr);
}

TEST(MshrCancelTest, NonSpeculativeEntryIsUntouched)
{
    MshrFile file(4);
    file.allocate(0x1000, 50, false, 7);
    EXPECT_FALSE(file.cancel(0x1000, 7));
    EXPECT_EQ(file.inflight(), 1u);
}

// --- hierarchy path -----------------------------------------------------

TEST(CacheSquashTest, SpeculativeMissParksInMshrOnly)
{
    SystemConfig cfg = SystemConfig::makeCacheSquash();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessCacheSquash(0x10000, 100, 1);
    EXPECT_TRUE(record.mshrOnly);
    EXPECT_FALSE(record.l1Installed);
    EXPECT_FALSE(record.l2Installed);
    EXPECT_TRUE(hier.l1d().residentLines().empty());
    EXPECT_TRUE(hier.l2().residentLines().empty());
    EXPECT_EQ(hier.l1d().mshr().inflight(), 1u);
}

TEST(CacheSquashTest, SecondSpeculativeLoadMergesWithParkedFill)
{
    SystemConfig cfg = SystemConfig::makeCacheSquash();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    hier.accessCacheSquash(0x10000, 100, 1);
    const auto merged = hier.accessCacheSquash(0x10000, 101, 2);
    EXPECT_TRUE(merged.merged);
    EXPECT_EQ(hier.l1d().mshr().inflight(), 1u);
}

TEST(CacheSquashTest, SquashCancelsAndSatisfiesTheAuditor)
{
    SystemConfig cfg = SystemConfig::makeCacheSquash();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessCacheSquash(0x10000, 100, 5);
    EXPECT_TRUE(hier.cancelPendingFill(record));
    EXPECT_FALSE(hier.cancelPendingFill(record));
    EXPECT_EQ(hier.l1d().mshr().inflight(), 0u);
    // The auditor's MSHR clause: after the squash of everything
    // younger than branch seq 4, no speculative entry may remain —
    // cancellation is exactly what makes this pass mid-flight
    // (readyCycle 100+ is still in the future at audit time).
    EXPECT_NO_THROW(hier.auditRollbackComplete(4, 101));
}

TEST(CacheSquashTest, CommitInstallsParkedFill)
{
    SystemConfig cfg = SystemConfig::makeCacheSquash();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.accessCacheSquash(0x10000, 100, 1);
    hier.commitPendingFill(record, record.ready + 1);
    EXPECT_TRUE(hier.l1d().present(record.lineAddr, record.ready + 2));
    EXPECT_TRUE(hier.l2().present(record.lineAddr, record.ready + 2));
    EXPECT_EQ(hier.l1d().mshr().inflight(), 0u);
}

TEST(CacheSquashTest, UnxpecChannelClosed)
{
    Core core(SystemConfig::makeCacheSquash());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

// --- SpecBox ------------------------------------------------------------

TEST(SpecBoxTest, SpeculativeLineHiddenFromCrossCoreProbe)
{
    // Label isolation: a speculatively installed line must read as a
    // dummy miss to another core until the installer commits.
    SystemConfig cfg = SystemConfig::makeSpecBox();
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    const auto record = hier.access(0x10000, 100, false, true, 5);
    const auto probe = hier.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_TRUE(probe.dummyMiss);

    // Once committed, the label clears and the line is visible.
    hier.commitInstall(record);
    const auto after = hier.crossCoreRead(0x10000, record.ready + 2);
    EXPECT_TRUE(after.hit);
    EXPECT_FALSE(after.dummyMiss);
}

TEST(SpecBoxTest, SquashInvalidatesLabeledLinesEverywhere)
{
    // The flash clear still removes the footprint from both levels —
    // it just charges no stall for doing so.
    auto resident = [](int secret) {
        Core core(SystemConfig::makeSpecBox());
        UnxpecAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

TEST(SpecBoxTest, UnxpecChannelClosed)
{
    // SpecBox does the full rollback walk but charges zero cycles (the
    // flash clear): nothing secret-dependent to time.
    Core core(SystemConfig::makeSpecBox());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

} // namespace
} // namespace unxpec
