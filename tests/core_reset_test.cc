/**
 * @file
 * Core::reset must be indistinguishable from fresh construction: a
 * pooled Core reused across trials (TrialRunner) has to produce
 * bit-identical results to a Core built from scratch with the same
 * seed, on both the attack workload (which exercises the rng-driven
 * Random L1 replacement and keyed CEASER L2 index of the default
 * defense) and the SPEC-synth workloads (which exercise the predictor,
 * ROB, LSQ, and the backing store).
 */

#include <gtest/gtest.h>

#include <vector>

#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "harness/session.hh"
#include "harness/trial_runner.hh"
#include "sim/config.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

/** Attack latency trace for a fresh Core(cfg). */
std::vector<double>
attackTrace(Core &core, unsigned rounds)
{
    UnxpecAttack attack(core);
    std::vector<double> trace;
    for (unsigned i = 0; i < rounds; ++i) {
        attack.setSecret(static_cast<int>(i & 1));
        trace.push_back(attack.measureOnce());
    }
    return trace;
}

TEST(CoreResetTest, AttackTraceMatchesFreshConstruction)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 42;
    Core fresh(cfg);
    const std::vector<double> expected = attackTrace(fresh, 6);

    // Dirty a Core under a different seed, then reset to 42: every
    // rng draw, CEASER key, and replacement decision must replay.
    SystemConfig other = cfg;
    other.seed = 7;
    Core reused(other);
    attackTrace(reused, 3);
    reused.reset(42);
    EXPECT_EQ(attackTrace(reused, 6), expected);

    // And again: reset is idempotent across arbitrary reuse.
    reused.reset(42);
    EXPECT_EQ(attackTrace(reused, 6), expected);
}

/** Run a capped SPEC-synth program and keep the full result. */
RunResult
synthRun(Core &core, const std::string &profile)
{
    const Program program =
        SynthSpec::generate(SynthSpec::profile(profile), 1, 500);
    RunOptions options;
    options.maxInstructions = 20000;
    return core.run(program, options);
}

TEST(CoreResetTest, SynthWorkloadMatchesFreshConstruction)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 99;
    Core fresh(cfg);
    const RunResult expected = synthRun(fresh, "x264_r");

    SystemConfig other = cfg;
    other.seed = 3;
    Core reused(other);
    synthRun(reused, "mcf_r"); // different program, different seed
    reused.reset(99);
    const RunResult got = synthRun(reused, "x264_r");

    EXPECT_EQ(got.cycles, expected.cycles);
    EXPECT_EQ(got.instructions, expected.instructions);
    EXPECT_EQ(got.regs, expected.regs);
    EXPECT_EQ(got.halted, expected.halted);
}

TEST(CoreResetTest, StatsAndMicroarchStateMatchFreshConstruction)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 17;
    Core fresh(cfg);
    synthRun(fresh, "gcc_r");

    SystemConfig other = cfg;
    other.seed = 1234;
    Core reused(other);
    attackTrace(reused, 2);
    reused.reset(17);
    synthRun(reused, "gcc_r");

    EXPECT_EQ(reused.hierarchy().l1d().hits().value(),
              fresh.hierarchy().l1d().hits().value());
    EXPECT_EQ(reused.hierarchy().l1d().misses().value(),
              fresh.hierarchy().l1d().misses().value());
    EXPECT_EQ(reused.hierarchy().l2().misses().value(),
              fresh.hierarchy().l2().misses().value());
    EXPECT_EQ(reused.hierarchy().l1d().residentLines(),
              fresh.hierarchy().l1d().residentLines());
    EXPECT_EQ(reused.hierarchy().l2().residentLines(),
              fresh.hierarchy().l2().residentLines());
    EXPECT_EQ(reused.now(), fresh.now());
}

// --- TrialRunner pooling ------------------------------------------------

TrialOutput
deltaTrial(const TrialContext &ctx)
{
    Session session(ctx);
    UnxpecAttack &attack = session.unxpec();
    attack.setSecret(0);
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    const double one = attack.measureOnce();
    TrialOutput out;
    out.metric("delta", one - zero);
    out.metric("zero", zero);
    return out;
}

std::vector<ExperimentSpec>
poolSweep()
{
    std::vector<ExperimentSpec> specs;
    for (unsigned loads : {1u, 2u}) {
        ExperimentSpec spec;
        spec.label = "loads=" + std::to_string(loads);
        spec.attackCfg.inBranchLoads = loads;
        specs.push_back(std::move(spec));
    }
    return specs;
}

TEST(CorePoolTest, PooledParallelMatchesFreshSerial)
{
    const auto specs = poolSweep();

    TrialRunner fresh_serial(1);
    fresh_serial.reuseCores(false); // the old fresh-Core-per-trial path
    const ExperimentResult baseline =
        fresh_serial.runAll("t", "", specs, 4, 2024, deltaTrial);

    TrialRunner pooled_serial(1);
    TrialRunner pooled_parallel(4);
    const ExperimentResult serial =
        pooled_serial.runAll("t", "", specs, 4, 2024, deltaTrial);
    const ExperimentResult parallel =
        pooled_parallel.runAll("t", "", specs, 4, 2024, deltaTrial);

    ASSERT_EQ(serial.rows.size(), baseline.rows.size());
    ASSERT_EQ(parallel.rows.size(), baseline.rows.size());
    for (std::size_t i = 0; i < baseline.rows.size(); ++i) {
        for (const char *metric : {"delta", "zero"}) {
            EXPECT_EQ(serial.rows[i].values(metric),
                      baseline.rows[i].values(metric));
            EXPECT_EQ(parallel.rows[i].values(metric),
                      baseline.rows[i].values(metric));
        }
    }
}

TEST(CorePoolTest, PoolKeepsOneCorePerSpec)
{
    CorePool pool;
    ExperimentSpec spec;
    const SystemConfig a = Session::configFor(spec, 1);
    const SystemConfig b = Session::configFor(spec, 2);

    Machine &first = pool.acquire(0, a);
    Machine &second = pool.acquire(0, b);
    EXPECT_EQ(&first, &second); // same machine, new seed: reused
    EXPECT_EQ(second.core().config().seed, 2u);
    EXPECT_EQ(pool.size(), 1u);

    // A genuinely different machine rebuilds instead of resetting.
    SystemConfig bigger = a;
    bigger.l1d.sizeBytes *= 2;
    Machine &third = pool.acquire(0, bigger);
    EXPECT_NE(&third, &second);
    EXPECT_EQ(pool.size(), 1u);

    pool.acquire(1, a);
    EXPECT_EQ(pool.size(), 2u);
}

} // namespace
} // namespace unxpec
