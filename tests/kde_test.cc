/**
 * @file
 * Unit tests for kernel density estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/kde.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(KdeTest, BandwidthPositiveAndScalesWithSpread)
{
    const std::vector<double> tight = {10, 10.5, 11, 10.2, 10.8, 10.4};
    std::vector<double> wide;
    for (const double v : tight)
        wide.push_back(v * 20);
    const double bw_tight = Kde::silvermanBandwidth(tight);
    const double bw_wide = Kde::silvermanBandwidth(wide);
    EXPECT_GT(bw_tight, 0.0);
    EXPECT_GT(bw_wide, bw_tight);
}

TEST(KdeTest, DensityPeaksAtSampleMass)
{
    const std::vector<double> samples = {100, 100, 100, 100, 200};
    const double bw = 5.0;
    EXPECT_GT(Kde::evaluate(samples, bw, 100),
              Kde::evaluate(samples, bw, 200));
    EXPECT_GT(Kde::evaluate(samples, bw, 200),
              Kde::evaluate(samples, bw, 150));
}

TEST(KdeTest, DensityIntegratesToOne)
{
    Rng rng(1);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.gaussian(170, 10));
    const auto curve = Kde::curve(samples, 100, 240, 281);
    double integral = 0.0;
    const double step = curve.x[1] - curve.x[0];
    for (const double d : curve.density)
        integral += d * step;
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, CurveGridIsRegular)
{
    const std::vector<double> samples = {1, 2, 3};
    const auto curve = Kde::curve(samples, 0, 10, 11);
    ASSERT_EQ(curve.x.size(), 11u);
    EXPECT_DOUBLE_EQ(curve.x.front(), 0.0);
    EXPECT_DOUBLE_EQ(curve.x.back(), 10.0);
    EXPECT_DOUBLE_EQ(curve.x[1] - curve.x[0], 1.0);
}

TEST(KdeTest, RecoversGaussianMode)
{
    Rng rng(2);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i)
        samples.push_back(rng.gaussian(160, 8));
    const auto curve = Kde::curve(samples, 120, 200, 161);
    double best_x = 0, best_d = -1;
    for (std::size_t i = 0; i < curve.x.size(); ++i) {
        if (curve.density[i] > best_d) {
            best_d = curve.density[i];
            best_x = curve.x[i];
        }
    }
    EXPECT_NEAR(best_x, 160.0, 3.0);
}

TEST(KdeTest, EmptySamplesYieldZeroDensity)
{
    EXPECT_DOUBLE_EQ(Kde::evaluate({}, 1.0, 5.0), 0.0);
}

} // namespace
} // namespace unxpec
