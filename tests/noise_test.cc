/**
 * @file
 * Unit tests for the noise profiles.
 */

#include <gtest/gtest.h>

#include "attack/noise.hh"
#include "cpu/core.hh"

namespace unxpec {
namespace {

TEST(NoiseTest, QuietProfileIsSilent)
{
    const NoiseProfile quiet = NoiseProfile::quiet();
    EXPECT_EQ(quiet.interruptProbPerCycle, 0.0);
    EXPECT_EQ(quiet.dramJitterSigma, 0.0);
}

TEST(NoiseTest, EvaluationProfileHasBothComponents)
{
    const NoiseProfile eval = NoiseProfile::evaluation();
    EXPECT_GT(eval.interruptProbPerCycle, 0.0);
    EXPECT_GT(eval.dramJitterSigma, 0.0);
    EXPECT_GT(eval.interruptStallMax, eval.interruptStallMin);
}

TEST(NoiseTest, NoisyHostLouderThanEvaluation)
{
    const NoiseProfile eval = NoiseProfile::evaluation();
    const NoiseProfile host = NoiseProfile::noisyHost();
    EXPECT_GT(host.interruptProbPerCycle, eval.interruptProbPerCycle);
    EXPECT_GT(host.dramJitterSigma, eval.dramJitterSigma);
}

TEST(NoiseTest, ApplyToConfigSetsJitter)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    NoiseProfile::evaluation().applyTo(cfg);
    EXPECT_DOUBLE_EQ(cfg.memory.jitterSigma,
                     NoiseProfile::evaluation().dramJitterSigma);
}

TEST(NoiseTest, AppliedNoiseSlowsExecution)
{
    ProgramBuilder b;
    b.li(1, 0);
    b.li(2, 3000);
    const int top = b.label();
    b.bind(top);
    b.addi(1, 1, 1);
    b.blt(1, 2, top);
    b.halt();
    const Program p = b.build();

    Core quiet(SystemConfig::makeDefault());
    const Cycle base = quiet.run(p).cycles;

    Core noisy(SystemConfig::makeDefault());
    NoiseProfile profile = NoiseProfile::noisyHost();
    profile.interruptProbPerCycle = 0.02; // force events in a short run
    profile.applyTo(noisy);
    EXPECT_GT(noisy.run(p).cycles, base);
}

} // namespace
} // namespace unxpec
