/**
 * @file
 * Tests for the §II-B in-window protections: MESI-ish state tracking,
 * dummy-miss service for cross-core hits on speculative lines, and
 * delayed M/E->S downgrades.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace unxpec {
namespace {

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest()
        : cfg_(SystemConfig::makeDefault()), rng_(1), hier_(cfg_, rng_)
    {
    }

    SystemConfig cfg_;
    Rng rng_;
    MemoryHierarchy hier_;
};

TEST_F(CoherenceTest, CleanFillIsExclusive)
{
    const auto record = hier_.access(0x10000, 100, false, false, 1);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->coh, CohState::Exclusive);
}

TEST_F(CoherenceTest, WriteUpgradesToModified)
{
    const auto record = hier_.access(0x10000, 100, true, false, 1);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh,
              CohState::Modified);
}

TEST_F(CoherenceTest, CrossCoreReadDowngradesCommittedLine)
{
    const auto record = hier_.access(0x10000, 100, true, false, 1);
    const auto probe = hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_TRUE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
    EXPECT_EQ(probe.observed, CohState::Shared);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh, CohState::Shared);
}

TEST_F(CoherenceTest, SpeculativeLineServedAsDummyMiss)
{
    const auto record = hier_.access(0x10000, 100, true, true, 7);
    const auto probe = hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_FALSE(probe.hit);
    EXPECT_TRUE(probe.dummyMiss);
    // Miss latency: the prober cannot tell the line is present.
    EXPECT_EQ(probe.ready - (record.ready + 1),
              cfg_.l1d.hitLatency + cfg_.l2.hitLatency +
                  cfg_.memory.accessLatency);
    // And the downgrade was NOT applied.
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh,
              CohState::Modified);
}

TEST_F(CoherenceTest, DelayedDowngradeAppliedAtCommit)
{
    const auto record = hier_.access(0x10000, 100, true, true, 7);
    hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_TRUE(hier_.l1d().probe(record.lineAddr)->pendingDowngrade);
    hier_.commitInstall(record);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    EXPECT_EQ(line->coh, CohState::Shared);
    EXPECT_FALSE(line->pendingDowngrade);
}

TEST_F(CoherenceTest, UnsafeBaselineLeaksSpeculativeHit)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    Rng rng(2);
    MemoryHierarchy unsafe(cfg, rng);
    const auto record = unsafe.access(0x10000, 100, false, true, 7);
    const auto probe = unsafe.crossCoreRead(0x10000, record.ready + 1);
    // No protection: the speculative line is visible immediately.
    EXPECT_TRUE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
}

TEST_F(CoherenceTest, AbsentLineIsAnHonestMiss)
{
    const auto probe = hier_.crossCoreRead(0x77000, 100);
    EXPECT_FALSE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
    EXPECT_EQ(probe.observed, CohState::Invalid);
}

TEST_F(CoherenceTest, ProbeTimingHidesSpeculativePresence)
{
    // The attacker-facing property: probing a speculative line and
    // probing an absent line take exactly the same time.
    const auto record = hier_.access(0x10000, 100, false, true, 7);
    const Cycle when = record.ready + 1;
    const auto spec_probe = hier_.crossCoreRead(0x10000, when);
    const auto absent_probe = hier_.crossCoreRead(0x99000, when);
    EXPECT_EQ(spec_probe.ready - when, absent_probe.ready - when);
}

} // namespace
} // namespace unxpec
