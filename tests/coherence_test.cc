/**
 * @file
 * Tests for the §II-B in-window protections: MESI-ish state tracking,
 * dummy-miss service for cross-core hits on speculative lines, and
 * delayed M/E->S downgrades — first over the single-hierarchy compat
 * shim (probeHierarchy), then over the real CoherenceEngine with two
 * hierarchies sharing one L2 (the full MESI transition table).
 */

#include <gtest/gtest.h>

#include "memory/coherence.hh"
#include "memory/hierarchy.hh"

namespace unxpec {
namespace {

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest()
        : cfg_(SystemConfig::makeDefault()), rng_(1), hier_(cfg_, rng_)
    {
    }

    SystemConfig cfg_;
    Rng rng_;
    MemoryHierarchy hier_;
};

TEST_F(CoherenceTest, CleanFillIsExclusive)
{
    const auto record = hier_.access(0x10000, 100, false, false, 1);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->coh, CohState::Exclusive);
}

TEST_F(CoherenceTest, WriteUpgradesToModified)
{
    const auto record = hier_.access(0x10000, 100, true, false, 1);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh,
              CohState::Modified);
}

TEST_F(CoherenceTest, CrossCoreReadDowngradesCommittedLine)
{
    const auto record = hier_.access(0x10000, 100, true, false, 1);
    const auto probe = hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_TRUE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
    EXPECT_EQ(probe.observed, CohState::Shared);
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh, CohState::Shared);
}

TEST_F(CoherenceTest, SpeculativeLineServedAsDummyMiss)
{
    const auto record = hier_.access(0x10000, 100, true, true, 7);
    const auto probe = hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_FALSE(probe.hit);
    EXPECT_TRUE(probe.dummyMiss);
    // Miss latency: the prober cannot tell the line is present.
    EXPECT_EQ(probe.ready - (record.ready + 1),
              cfg_.l1d.hitLatency + cfg_.l2.hitLatency +
                  cfg_.memory.accessLatency);
    // And the downgrade was NOT applied.
    EXPECT_EQ(hier_.l1d().probe(record.lineAddr)->coh,
              CohState::Modified);
}

TEST_F(CoherenceTest, DelayedDowngradeAppliedAtCommit)
{
    const auto record = hier_.access(0x10000, 100, true, true, 7);
    hier_.crossCoreRead(0x10000, record.ready + 1);
    EXPECT_TRUE(hier_.l1d().probe(record.lineAddr)->pendingDowngrade);
    hier_.commitInstall(record);
    const CacheLine *line = hier_.l1d().probe(record.lineAddr);
    EXPECT_EQ(line->coh, CohState::Shared);
    EXPECT_FALSE(line->pendingDowngrade);
}

TEST_F(CoherenceTest, UnsafeBaselineLeaksSpeculativeHit)
{
    SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    Rng rng(2);
    MemoryHierarchy unsafe(cfg, rng);
    const auto record = unsafe.access(0x10000, 100, false, true, 7);
    const auto probe = unsafe.crossCoreRead(0x10000, record.ready + 1);
    // No protection: the speculative line is visible immediately.
    EXPECT_TRUE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
}

TEST_F(CoherenceTest, AbsentLineIsAnHonestMiss)
{
    const auto probe = hier_.crossCoreRead(0x77000, 100);
    EXPECT_FALSE(probe.hit);
    EXPECT_FALSE(probe.dummyMiss);
    EXPECT_EQ(probe.observed, CohState::Invalid);
}

TEST_F(CoherenceTest, ProbeTimingHidesSpeculativePresence)
{
    // The attacker-facing property: probing a speculative line and
    // probing an absent line take exactly the same time.
    const auto record = hier_.access(0x10000, 100, false, true, 7);
    const Cycle when = record.ready + 1;
    const auto spec_probe = hier_.crossCoreRead(0x10000, when);
    const auto absent_probe = hier_.crossCoreRead(0x99000, when);
    EXPECT_EQ(spec_probe.ready - when, absent_probe.ready - when);
}

// --- CoherenceEngine: two hierarchies sharing one L2 --------------------

/**
 * Two MemoryHierarchy instances wired the way Machine wires them:
 * core 1 binds core 0's L2/memory and both attach one engine. Drives
 * the real snoop path through MemoryHierarchy::access.
 */
class EngineTest : public ::testing::Test
{
  protected:
    explicit EngineTest(SystemConfig cfg = SystemConfig::makeDefault())
        : cfg_(cfg), rng0_(1), rng1_(2), h0_(cfg_, rng0_),
          h1_(cfg_, rng1_), engine_(cfg_)
    {
        h1_.bindShared(&h0_.l2(), &h0_.mem());
        h0_.setCoherence(&engine_, 0);
        h1_.setCoherence(&engine_, 1);
    }

    /** Committed (non-speculative) read; returns the access record. */
    MemAccessRecord read(MemoryHierarchy &h, Addr addr)
    {
        const auto record = h.access(addr, now_, false, false, seq_++);
        now_ = std::max(now_, record.ready) + 1;
        return record;
    }

    /** Committed (non-speculative) write. */
    MemAccessRecord write(MemoryHierarchy &h, Addr addr)
    {
        const auto record = h.access(addr, now_, true, false, seq_++);
        now_ = std::max(now_, record.ready) + 1;
        return record;
    }

    /** Speculative access (write = false unless stated). */
    MemAccessRecord spec(MemoryHierarchy &h, Addr addr, bool write = false)
    {
        const auto record = h.access(addr, now_, write, true, seq_++);
        now_ = std::max(now_, record.ready) + 1;
        return record;
    }

    CohState stateIn(MemoryHierarchy &h, Addr line)
    {
        const CacheLine *slot = h.l1d().probe(line);
        return slot == nullptr ? CohState::Invalid : slot->coh;
    }

    SystemConfig cfg_;
    Rng rng0_;
    Rng rng1_;
    MemoryHierarchy h0_;
    MemoryHierarchy h1_;
    CoherenceEngine engine_;
    SeqNum seq_ = 1;
    Cycle now_ = 100;
};

constexpr Addr kLine = 0x10000;

// --- MESI transition table: local column --------------------------------

TEST_F(EngineTest, InvalidLocalReadFillsExclusive)
{
    read(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Exclusive);
}

TEST_F(EngineTest, InvalidLocalWriteAllocatesModified)
{
    write(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
}

TEST_F(EngineTest, ExclusiveLocalReadStaysExclusive)
{
    read(h0_, kLine);
    const auto again = read(h0_, kLine);
    EXPECT_TRUE(again.l1Hit);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Exclusive);
}

TEST_F(EngineTest, ExclusiveLocalWriteUpgradesToModified)
{
    read(h0_, kLine);
    write(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
}

TEST_F(EngineTest, ModifiedLocalAccessesStayModified)
{
    write(h0_, kLine);
    read(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
    write(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
}

TEST_F(EngineTest, SharedLocalReadStaysShared)
{
    read(h0_, kLine);
    read(h1_, kLine); // E -> S on both
    const auto again = read(h0_, kLine);
    EXPECT_TRUE(again.l1Hit);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Shared);
}

TEST_F(EngineTest, SharedLocalWriteInvalidatesOtherSharers)
{
    read(h0_, kLine);
    read(h1_, kLine);
    ASSERT_EQ(stateIn(h1_, kLine), CohState::Shared);
    write(h1_, kLine); // S -> M upgrade on core 1
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Modified);
    EXPECT_EQ(h0_.l1d().probe(kLine), nullptr);
}

// --- MESI transition table: remote column -------------------------------

TEST_F(EngineTest, ExclusiveRemoteReadSharesBothCopies)
{
    read(h0_, kLine);
    const auto remote = read(h1_, kLine);
    EXPECT_TRUE(remote.servedBySnoop);
    EXPECT_EQ(remote.snoopOwner, 0u);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Shared);
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Shared);
}

TEST_F(EngineTest, ModifiedRemoteReadSharesBothCopies)
{
    write(h0_, kLine);
    const auto remote = read(h1_, kLine);
    EXPECT_TRUE(remote.servedBySnoop);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Shared);
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Shared);
}

TEST_F(EngineTest, SharedRemoteReadLeavesSharers)
{
    read(h0_, kLine);
    read(h1_, kLine);
    // A third read from core 0 hits locally; both stay S.
    read(h0_, kLine);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Shared);
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Shared);
}

TEST_F(EngineTest, ExclusiveRemoteWriteInvalidates)
{
    read(h0_, kLine);
    write(h1_, kLine);
    EXPECT_EQ(h0_.l1d().probe(kLine), nullptr);
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Modified);
}

TEST_F(EngineTest, ModifiedRemoteWriteInvalidates)
{
    write(h0_, kLine);
    write(h1_, kLine);
    EXPECT_EQ(h0_.l1d().probe(kLine), nullptr);
    EXPECT_EQ(stateIn(h1_, kLine), CohState::Modified);
}

TEST_F(EngineTest, SharedRemoteWriteInvalidatesEverySharer)
{
    read(h0_, kLine);
    read(h1_, kLine);
    write(h0_, kLine); // upgrade through invalidateRemote
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
    EXPECT_EQ(h1_.l1d().probe(kLine), nullptr);
}

// --- MESI transition table: eviction column -----------------------------

TEST_F(EngineTest, SharedL2EvictionBackInvalidatesAllL1Copies)
{
    read(h0_, kLine);
    read(h1_, kLine);
    engine_.backInvalidate(kLine);
    EXPECT_EQ(h0_.l1d().probe(kLine), nullptr);
    EXPECT_EQ(h1_.l1d().probe(kLine), nullptr);
}

TEST_F(EngineTest, FlushIsMachineWide)
{
    read(h0_, kLine);
    read(h1_, kLine);
    h0_.flushLine(kLine);
    EXPECT_EQ(h0_.l1d().probe(kLine), nullptr);
    EXPECT_EQ(h1_.l1d().probe(kLine), nullptr);
    EXPECT_EQ(h0_.l2().probe(kLine), nullptr);
}

// --- defense semantics on the engine path -------------------------------

TEST_F(EngineTest, SpeculativeRemoteHitIsDummyMiss)
{
    const auto install = spec(h0_, kLine);
    const auto probe = read(h1_, kLine);
    EXPECT_TRUE(probe.dummyMiss);
    EXPECT_FALSE(probe.servedBySnoop);
    // Nothing was installed on the prober's side...
    EXPECT_FALSE(probe.l1Installed);
    EXPECT_EQ(h1_.l1d().probe(kLine), nullptr);
    // ...and the owner kept its state, with the downgrade deferred.
    const CacheLine *owner = h0_.l1d().probe(install.lineAddr);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->coh, CohState::Exclusive);
    EXPECT_TRUE(owner->pendingDowngrade);
}

TEST_F(EngineTest, DummyMissTimingMatchesHonestMiss)
{
    spec(h0_, kLine);
    const Cycle when = now_;
    const auto hidden = h1_.access(kLine, when, false, false, seq_++);
    const auto honest = h1_.access(0x99000, when, false, false, seq_++);
    ASSERT_TRUE(hidden.dummyMiss);
    ASSERT_FALSE(honest.l2Hit);
    EXPECT_EQ(hidden.latency(), honest.latency());
}

TEST_F(EngineTest, DelayedDowngradeAppliedAtCommit)
{
    const auto install = spec(h0_, kLine);
    read(h1_, kLine); // dummy miss; downgrade deferred
    h0_.commitInstall(install);
    const CacheLine *owner = h0_.l1d().probe(install.lineAddr);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->coh, CohState::Shared);
    EXPECT_FALSE(owner->pendingDowngrade);
}

TEST_F(EngineTest, SquashedSpeculativeReadUndoesDowngrade)
{
    write(h0_, kLine); // committed M owner
    const auto transient = spec(h1_, kLine);
    ASSERT_TRUE(transient.snoopDowngrade);
    EXPECT_EQ(transient.snoopOwner, 0u);
    EXPECT_EQ(transient.snoopPrevState, CohState::Modified);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Shared);
    // CleanupSpec rollback gives the owner its pre-snoop state back.
    h1_.undoSnoopDowngrade(transient);
    EXPECT_EQ(stateIn(h0_, kLine), CohState::Modified);
}

TEST_F(EngineTest, CrossCoreReadShimGoesThroughEngine)
{
    spec(h0_, kLine);
    // The shim on core 1 issues a probe *from* core 0, which sees only
    // the shared L2's speculative copy: still hidden.
    const auto probe = h1_.crossCoreRead(kLine, now_);
    EXPECT_FALSE(probe.hit);
    EXPECT_TRUE(probe.dummyMiss);
}

TEST_F(EngineTest, EngineAuditAcceptsLegitimateSharing)
{
    read(h0_, kLine);
    read(h1_, kLine);
    write(h0_, 0x20000);
    EXPECT_NO_THROW(engine_.auditInvariants(now_));
}

/** Same wiring, protections off: the channel the defenses close. */
class UnsafeEngineTest : public EngineTest
{
  protected:
    UnsafeEngineTest() : EngineTest(SystemConfig::makeUnsafeBaseline()) {}
};

TEST_F(UnsafeEngineTest, SpeculativeRemoteHitIsServed)
{
    spec(h0_, kLine);
    const auto probe = read(h1_, kLine);
    EXPECT_FALSE(probe.dummyMiss);
    EXPECT_TRUE(probe.servedBySnoop);
    // The unprotected machine leaks presence: the prober's latency is
    // an L2-hit fill, far below a memory fill.
    EXPECT_TRUE(probe.l2Hit);
}

} // namespace
} // namespace unxpec
