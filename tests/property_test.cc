/**
 * @file
 * Property-based (parameterized) suites over the simulator's central
 * invariants:
 *  - the security property: after a CleanupSpec rollback the L1/L2
 *    contents are bit-for-bit independent of the secret, while the
 *    unsafe baseline provably leaks;
 *  - the relaxed constant-time floor holds on every squash;
 *  - cache structural invariants under random access streams;
 *  - constant-time overhead grows monotonically with the constant.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "attack/unxpec.hh"
#include "memory/cache.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

// --------------------------------------------------------------------
// Security property: cache state after a round is secret-independent
// under CleanupSpec and secret-dependent on the unsafe baseline.
// --------------------------------------------------------------------

using FootprintParams = std::tuple<unsigned /*loads*/, bool /*evsets*/>;

class RollbackFootprintTest
    : public ::testing::TestWithParam<FootprintParams>
{
};

std::vector<Addr>
residentAfterRound(CleanupMode mode, int secret, unsigned loads,
                   bool evsets, int level)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupMode = mode;
    Core core(cfg);
    UnxpecConfig ucfg;
    ucfg.inBranchLoads = loads;
    ucfg.useEvictionSets = evsets;
    UnxpecAttack attack(core, ucfg);
    attack.setSecret(secret);
    attack.measureOnce();
    return level == 1 ? core.hierarchy().l1d().residentLines()
                      : core.hierarchy().l2().residentLines();
}

TEST_P(RollbackFootprintTest, CleanupSpecLeavesNoSecretDependentState)
{
    const auto [loads, evsets] = GetParam();
    for (int level = 1; level <= 2; ++level) {
        const auto zero = residentAfterRound(
            CleanupMode::Cleanup_FOR_L1L2, 0, loads, evsets, level);
        const auto one = residentAfterRound(
            CleanupMode::Cleanup_FOR_L1L2, 1, loads, evsets, level);
        EXPECT_EQ(zero, one) << "level L" << level << " diverges";
    }
}

TEST_P(RollbackFootprintTest, UnsafeBaselineLeaksFootprint)
{
    const auto [loads, evsets] = GetParam();
    const auto zero = residentAfterRound(CleanupMode::UnsafeBaseline, 0,
                                         loads, evsets, 1);
    const auto one = residentAfterRound(CleanupMode::UnsafeBaseline, 1,
                                        loads, evsets, 1);
    EXPECT_NE(zero, one)
        << "the unprotected cache should retain the transient installs";
}

INSTANTIATE_TEST_SUITE_P(
    FootprintSweep, RollbackFootprintTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FootprintParams> &param_info) {
        return "loads" + std::to_string(std::get<0>(param_info.param)) +
               (std::get<1>(param_info.param) ? "_evset" : "_plain");
    });

// --------------------------------------------------------------------
// Determinism: identical seeds and programs give identical
// measurements on fresh cores — the bedrock every calibration test
// stands on.
// --------------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(DeterminismTest, FreshCoresAgreeExactly)
{
    const bool evsets = GetParam();
    auto run_once = [evsets]() {
        Core core(SystemConfig::makeDefault());
        UnxpecConfig cfg;
        cfg.useEvictionSets = evsets;
        UnxpecAttack attack(core, cfg);
        std::vector<double> trace;
        for (const int secret : {0, 1, 1, 0, 1}) {
            attack.setSecret(secret);
            trace.push_back(attack.measureOnce());
        }
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Variants, DeterminismTest, ::testing::Bool());

// --------------------------------------------------------------------
// Invisible schemes leave no secret-dependent footprint either — the
// full defense taxonomy passes the same functional contract.
// --------------------------------------------------------------------

class InvisibleFootprintTest
    : public ::testing::TestWithParam<CleanupMode>
{
};

TEST_P(InvisibleFootprintTest, NoSecretDependentState)
{
    const CleanupMode mode = GetParam();
    auto resident = [mode](int secret) {
        SystemConfig cfg = SystemConfig::makeInvisiSpec();
        cfg.cleanupMode = mode;
        Core core(cfg);
        UnxpecAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

INSTANTIATE_TEST_SUITE_P(Schemes, InvisibleFootprintTest,
                         ::testing::Values(CleanupMode::InvisiSpec,
                                           CleanupMode::DelayOnMiss,
                                           CleanupMode::Cleanup_FULL));

// --------------------------------------------------------------------
// Constant-time floor: with an XX-cycle constant, every logged squash
// stalls at least XX cycles — the defense's defining guarantee.
// --------------------------------------------------------------------

class ConstantTimeFloorTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConstantTimeFloorTest, EverySquashStallsAtLeastTheConstant)
{
    const unsigned constant = GetParam();
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupTiming.constantTimeCycles = constant;
    Core core(cfg);
    core.cleanup().enableLog(true);

    const Program p = SynthSpec::generate(
        SynthSpec::profile("deepsjeng_r"), 3);
    RunOptions options;
    options.maxInstructions = 8000;
    core.run(p, options);

    const auto &log = core.cleanup().log();
    ASSERT_GT(log.size(), 10u) << "workload produced too few squashes";
    for (const SquashLog &entry : log)
        EXPECT_GE(entry.stall, constant);
}

INSTANTIATE_TEST_SUITE_P(ConstSweep, ConstantTimeFloorTest,
                         ::testing::Values(25u, 30u, 35u, 45u, 65u));

// --------------------------------------------------------------------
// Cache structural invariants under random access streams.
// --------------------------------------------------------------------

using CacheParams = std::tuple<ReplPolicy, IndexPolicy, unsigned /*ways*/>;

class CacheInvariantTest : public ::testing::TestWithParam<CacheParams>
{
};

TEST_P(CacheInvariantTest, OccupancyAndUniquenessHold)
{
    const auto [repl, index, ways] = GetParam();
    CacheConfig cfg;
    cfg.name = "prop";
    cfg.ways = ways;
    cfg.sizeBytes = 16 * ways * kLineBytes; // 16 sets
    cfg.repl = repl;
    cfg.index = index;
    Rng rng(99);
    Cache cache(cfg, rng, 0x1234);

    Rng stream(7);
    for (int i = 0; i < 4000; ++i) {
        const Addr line = stream.range(256) << kLineShift;
        if (cache.probe(line) != nullptr) {
            cache.touch(line);
        } else {
            cache.install(line, i, stream.chance(0.3), i);
        }
        if (stream.chance(0.05))
            cache.invalidate(stream.range(256) << kLineShift);
    }

    // No set exceeds its ways; no duplicate resident lines; every
    // resident line probes back to itself.
    for (unsigned set = 0; set < cfg.numSets(); ++set)
        EXPECT_LE(cache.setOccupancy(set), cfg.ways);
    const auto resident = cache.residentLines();
    for (std::size_t i = 1; i < resident.size(); ++i)
        EXPECT_LT(resident[i - 1], resident[i]);
    for (const Addr line : resident) {
        const CacheLine *hit = cache.probe(line);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->lineAddr, line);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CacheSweep, CacheInvariantTest,
    ::testing::Combine(::testing::Values(ReplPolicy::LRU,
                                         ReplPolicy::Random),
                       ::testing::Values(IndexPolicy::Modulo,
                                         IndexPolicy::Ceaser),
                       ::testing::Values(2u, 4u, 8u)));

// --------------------------------------------------------------------
// Timing-channel presence across the attack parameter grid.
// --------------------------------------------------------------------

using ChannelParams = std::tuple<unsigned /*loads*/, unsigned /*fN*/>;

class ChannelPresenceTest : public ::testing::TestWithParam<ChannelParams>
{
};

TEST_P(ChannelPresenceTest, SecretDependentDeltaExists)
{
    const auto [loads, accesses] = GetParam();
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.inBranchLoads = loads;
    cfg.conditionAccesses = accesses;
    UnxpecAttack attack(core, cfg);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_GT(one - zero, 15.0);
    EXPECT_LT(one - zero, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    ChannelSweep, ChannelPresenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u)));

// --------------------------------------------------------------------
// Overhead monotonicity in the constant-time parameter.
// --------------------------------------------------------------------

class OverheadMonotonicTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OverheadMonotonicTest, LongerConstantNeverCheaper)
{
    const Program p =
        SynthSpec::generate(SynthSpec::profile(GetParam()), 11);
    RunOptions options;
    options.maxInstructions = 15000;

    Cycle previous = 0;
    for (const unsigned constant : {0u, 25u, 45u, 65u}) {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupTiming.constantTimeCycles = constant;
        Core core(cfg);
        const Cycle cycles = core.run(p, options).cycles;
        EXPECT_GE(cycles + 50, previous)
            << "const=" << constant << " got cheaper";
        previous = cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(WorkloadSweep, OverheadMonotonicTest,
                         ::testing::Values("mcf_r", "leela_r", "xz_r",
                                           "imagick_r"));

} // namespace
} // namespace unxpec
