/**
 * @file
 * Tests for the Machine layer: single-core equivalence to a bare Core
 * (the byte-identity contract behind tests/golden), deterministic
 * per-core seed derivation, machine-wide reset, clock sync, the
 * cycle-interleaved scheduler, and CorePool reuse of whole Machines.
 */

#include <gtest/gtest.h>

#include "cpu/program.hh"
#include "harness/session.hh"
#include "machine/machine.hh"

namespace unxpec {
namespace {

/** A small loop with memory traffic: 10 iterations, then HALT. */
Program
loopProgram(Addr stride = 0)
{
    ProgramBuilder b;
    const Addr data = b.alloc(kLineBytes * 11);
    b.initWord64(data, 42);
    b.li(1, static_cast<std::int64_t>(data));
    b.li(4, 10);
    b.li(5, 0);
    const int top = b.label();
    b.bind(top);
    b.load(2, 1, static_cast<std::int64_t>(stride));
    b.addi(5, 5, 1);
    b.blt(5, 4, top);
    b.halt();
    return b.build();
}

TEST(MachineTest, SingleCoreHasNoEngine)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    Machine machine(cfg);
    EXPECT_EQ(machine.numCores(), 1u);
    EXPECT_EQ(machine.coherence(), nullptr);
}

TEST(MachineTest, SingleCoreMachineMatchesBareCore)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 5;
    const Program program = loopProgram();

    Machine machine(cfg);
    const RunResult via_machine = machine.run(program);

    Core bare(cfg);
    const RunResult via_core = bare.run(program);

    EXPECT_EQ(via_machine.cycles, via_core.cycles);
    EXPECT_EQ(via_machine.instructions, via_core.instructions);
    EXPECT_EQ(via_machine.halted, via_core.halted);
    EXPECT_EQ(via_machine.regs, via_core.regs);
}

TEST(MachineTest, MultiCoreBuildsEngineAndDerivedSeeds)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 7;
    cfg.numCores = 3;
    Machine machine(cfg);
    EXPECT_EQ(machine.numCores(), 3u);
    ASSERT_NE(machine.coherence(), nullptr);
    EXPECT_EQ(machine.coherence()->numCores(), 3u);
    // Core 0 keeps the machine seed; the others derive distinct ones.
    EXPECT_EQ(machine.core(0).config().seed, 7u);
    EXPECT_NE(machine.core(1).config().seed, 7u);
    EXPECT_NE(machine.core(2).config().seed,
              machine.core(1).config().seed);
    // Shared levels: every core's L2 is core 0's L2.
    EXPECT_EQ(&machine.core(1).hierarchy().l2(),
              &machine.core(0).hierarchy().l2());
    EXPECT_EQ(&machine.core(2).hierarchy().mem(),
              &machine.core(0).hierarchy().mem());
    EXPECT_TRUE(machine.core(0).hierarchy().ownsShared());
    EXPECT_FALSE(machine.core(1).hierarchy().ownsShared());
}

TEST(MachineTest, RunOnIsDeterministic)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 11;
    cfg.numCores = 2;
    const Program a = loopProgram();
    const Program b = loopProgram(kLineBytes);

    auto run_both = [&](Machine &machine) {
        const RunResult ra = machine.runOn(0, a);
        const RunResult rb = machine.runOn(1, b);
        return std::make_pair(ra, rb);
    };

    Machine first(cfg);
    Machine second(cfg);
    const auto [fa, fb] = run_both(first);
    const auto [sa, sb] = run_both(second);
    EXPECT_EQ(fa.cycles, sa.cycles);
    EXPECT_EQ(fb.cycles, sb.cycles);
    EXPECT_EQ(fa.regs, sa.regs);
    EXPECT_EQ(fb.regs, sb.regs);
    EXPECT_TRUE(fb.halted);
}

TEST(MachineTest, RunOnSyncsTheTargetClock)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.numCores = 2;
    const Program program = loopProgram();
    Machine machine(cfg);
    machine.runOn(0, program);
    const Cycle after_first = machine.core(0).now();
    EXPECT_GT(after_first, 0u);
    // The second core starts at or after the first core's clock, so
    // its reads observe every older fill as landed.
    machine.runOn(1, program);
    EXPECT_GE(machine.core(1).now(), after_first);
}

TEST(MachineTest, SyncClocksNeverMovesBackwards)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.numCores = 2;
    Machine machine(cfg);
    machine.runOn(0, loopProgram());
    const Cycle c0 = machine.core(0).now();
    machine.syncClocks();
    EXPECT_EQ(machine.core(0).now(), c0);
    EXPECT_EQ(machine.core(1).now(), c0);
}

TEST(MachineTest, RunInterleavedCompletesEveryProgram)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 13;
    cfg.numCores = 2;
    const Program a = loopProgram();
    const Program b = loopProgram(kLineBytes * 2);

    Machine machine(cfg);
    const auto results =
        machine.runInterleaved({&a, &b});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].halted);
    EXPECT_TRUE(results[1].halted);
    EXPECT_GT(results[0].instructions, 0u);
    EXPECT_GT(results[1].instructions, 0u);

    // Deterministic: a second machine reproduces the interleaving.
    Machine again(cfg);
    const auto repeat = again.runInterleaved({&a, &b});
    EXPECT_EQ(results[0].cycles, repeat[0].cycles);
    EXPECT_EQ(results[1].cycles, repeat[1].cycles);
    EXPECT_EQ(results[0].regs, repeat[0].regs);
    EXPECT_EQ(results[1].regs, repeat[1].regs);
}

TEST(MachineTest, RunInterleavedSkipsIdleCores)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.numCores = 2;
    const Program a = loopProgram();
    Machine machine(cfg);
    const auto results = machine.runInterleaved({&a, nullptr});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].halted);
    EXPECT_FALSE(results[1].halted);
    EXPECT_EQ(results[1].instructions, 0u);
}

TEST(MachineTest, ResetReproducesFreshConstruction)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 17;
    cfg.numCores = 2;
    const Program program = loopProgram();

    Machine machine(cfg);
    machine.runOn(0, program);
    machine.runOn(1, program);
    machine.reset(cfg.seed);
    const RunResult after_reset = machine.runOn(0, program);

    Machine fresh(cfg);
    const RunResult from_fresh = fresh.runOn(0, program);
    EXPECT_EQ(after_reset.cycles, from_fresh.cycles);
    EXPECT_EQ(after_reset.regs, from_fresh.regs);
}

TEST(MachineTest, WholeMachineAuditPassesAfterSharing)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.numCores = 2;
    const Program program = loopProgram();
    Machine machine(cfg);
    machine.runOn(0, program);
    machine.runOn(1, program);
    EXPECT_NO_THROW(machine.auditInvariants());
}

TEST(MachineTest, CorePoolReusesMachinesBitIdentically)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.seed = 19;
    cfg.numCores = 2;
    const Program program = loopProgram();

    CorePool pool;
    Machine &first = pool.acquire(0, cfg);
    const RunResult r1 = first.runOn(0, program);
    EXPECT_EQ(pool.size(), 1u);

    // Same spec, same seed, reacquired: the pooled machine is reset
    // and reproduces the run bit-for-bit.
    Machine &second = pool.acquire(0, cfg);
    EXPECT_EQ(&first, &second);
    const RunResult r2 = second.runOn(0, program);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.regs, r2.regs);

    // A different core count is a genuinely different machine.
    SystemConfig wider = cfg;
    wider.numCores = 4;
    Machine &third = pool.acquire(0, wider);
    EXPECT_EQ(third.numCores(), 4u);
}

} // namespace
} // namespace unxpec
