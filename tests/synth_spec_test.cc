/**
 * @file
 * Tests of the synthetic SPEC-like workload generators.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

TEST(SynthSpecTest, SuiteHasTwelveNamedBenchmarks)
{
    const auto suite = SynthSpec::suite();
    EXPECT_EQ(suite.size(), 12u);
    bool has_mcf = false, has_imagick = false;
    for (const auto &profile : suite) {
        if (profile.name == "mcf_r")
            has_mcf = true;
        if (profile.name == "imagick_r")
            has_imagick = true;
    }
    EXPECT_TRUE(has_mcf);
    EXPECT_TRUE(has_imagick);
}

TEST(SynthSpecTest, ProfileLookup)
{
    EXPECT_EQ(SynthSpec::profile("leela_r").name, "leela_r");
    EXPECT_DEATH({ SynthSpec::profile("nonexistent"); }, "");
}

TEST(SynthSpecTest, GenerationIsDeterministic)
{
    const auto profile = SynthSpec::profile("gcc_r");
    const Program a = SynthSpec::generate(profile, 42);
    const Program b = SynthSpec::generate(profile, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t pc = 0; pc < a.size(); ++pc)
        EXPECT_EQ(disassemble(a.at(pc)), disassemble(b.at(pc)));
}

TEST(SynthSpecTest, SeedChangesSchedule)
{
    const auto profile = SynthSpec::profile("gcc_r");
    const Program a = SynthSpec::generate(profile, 1);
    const Program b = SynthSpec::generate(profile, 2);
    bool differs = a.size() != b.size();
    for (std::size_t pc = 0; !differs && pc < a.size(); ++pc)
        differs = disassemble(a.at(pc)) != disassemble(b.at(pc));
    EXPECT_TRUE(differs);
}

TEST(SynthSpecTest, RunsForRequestedInstructionCount)
{
    Core core(SystemConfig::makeUnsafeBaseline());
    const Program p = SynthSpec::generate(SynthSpec::profile("x264_r"), 7);
    RunOptions options;
    options.maxInstructions = 20000;
    const RunResult r = core.run(p, options);
    EXPECT_GE(r.instructions, 20000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(SynthSpecTest, BranchyProfileMispredictsMore)
{
    RunOptions options;
    options.maxInstructions = 30000;

    Core branchy_core(SystemConfig::makeUnsafeBaseline());
    const Program branchy =
        SynthSpec::generate(SynthSpec::profile("leela_r"), 7);
    branchy_core.run(branchy, options);
    const double branchy_mpki =
        1000.0 *
        branchy_core.stats().findCounter("mispredicts")->value() / 30000;

    Core calm_core(SystemConfig::makeUnsafeBaseline());
    const Program calm =
        SynthSpec::generate(SynthSpec::profile("imagick_r"), 7);
    calm_core.run(calm, options);
    const double calm_mpki =
        1000.0 *
        calm_core.stats().findCounter("mispredicts")->value() / 30000;

    EXPECT_GT(branchy_mpki, 5 * calm_mpki);
    EXPECT_GT(branchy_mpki, 8.0);
    EXPECT_LT(calm_mpki, 3.0);
}

TEST(SynthSpecTest, LargeWorkingSetMissesMoreInL2)
{
    // In steady state a small working set is L2-resident (compulsory
    // misses only) while mcf's 8 MB stream keeps missing in the 2 MB
    // L2. Run long enough for the compulsory phase to wash out.
    RunOptions options;
    options.maxInstructions = 300000;

    Core big_core(SystemConfig::makeUnsafeBaseline());
    big_core.run(SynthSpec::generate(SynthSpec::profile("mcf_r"), 7),
                 options);
    const auto big_misses =
        big_core.hierarchy().l2().stats().findCounter("misses");

    Core small_core(SystemConfig::makeUnsafeBaseline());
    small_core.run(
        SynthSpec::generate(SynthSpec::profile("exchange2_r"), 7),
        options);
    const auto small_misses =
        small_core.hierarchy().l2().stats().findCounter("misses");

    ASSERT_NE(big_misses, nullptr);
    ASSERT_NE(small_misses, nullptr);
    EXPECT_GT(big_misses->value(), 3 * small_misses->value() / 2);
}

TEST(SynthSpecTest, ConstantTimeRollbackSlowsBranchyWorkload)
{
    const Program p = SynthSpec::generate(SynthSpec::profile("leela_r"), 7);
    RunOptions options;
    options.maxInstructions = 30000;

    Core plain(SystemConfig::makeDefault());
    const Cycle base = plain.run(p, options).cycles;

    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupTiming.constantTimeCycles = 65;
    Core constant(cfg);
    const Cycle padded = constant.run(p, options).cycles;

    EXPECT_GT(static_cast<double>(padded), 1.3 * base);
}

} // namespace
} // namespace unxpec
