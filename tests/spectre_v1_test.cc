/**
 * @file
 * Tests of the Spectre-v1 baseline: leaks on the unsafe baseline,
 * defeated by CleanupSpec — the motivation for unXpec.
 */

#include <gtest/gtest.h>

#include "attack/spectre_v1.hh"

namespace unxpec {
namespace {

TEST(SpectreV1Test, LeaksByteOnUnsafeBaseline)
{
    Core core(SystemConfig::makeUnsafeBaseline());
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    EXPECT_EQ(result.guessedByte, 42);
    EXPECT_TRUE(result.cacheHitSignal);
}

TEST(SpectreV1Test, LeaksDifferentBytes)
{
    Core core(SystemConfig::makeUnsafeBaseline());
    SpectreV1 spectre(core);
    for (const std::uint8_t secret : {7, 99, 200, 255}) {
        spectre.setSecretByte(secret);
        const SpectreResult result = spectre.leakByte();
        EXPECT_EQ(result.guessedByte, secret);
    }
}

TEST(SpectreV1Test, DefeatedByCleanupSpec)
{
    Core core(SystemConfig::makeDefault());
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    // The transient install was rolled back: no probe entry shows a
    // cache hit, so the Flush+Reload receiver learns nothing.
    EXPECT_FALSE(result.cacheHitSignal);
}

TEST(SpectreV1Test, DefeatedByCleanupL1WithRandomizedL2)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    cfg.cleanupMode = CleanupMode::Cleanup_FOR_L1;
    Core core(cfg);
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    // L1 copy invalidated; the L2 copy remains but an L2 hit is still
    // far from an L1 hit... the Flush+Reload threshold here is "below
    // memory", so the L2 residue is visible: Cleanup_FOR_L1 relies on
    // L2 index randomization to stop *eviction-based* L2 attacks, not
    // Flush+Reload on the probe line itself. Document that residue.
    EXPECT_EQ(result.guessedByte, 42);
}

TEST(SpectreV1Test, ProbeLatenciesSeparateHitFromMiss)
{
    Core core(SystemConfig::makeUnsafeBaseline());
    SpectreV1 spectre(core);
    spectre.setSecretByte(123);
    const SpectreResult result = spectre.leakByte();
    const double hit = result.probeLatencies[123];
    double others = 0.0;
    unsigned count = 0;
    for (unsigned j = 1; j < result.probeLatencies.size(); ++j) {
        if (j == 123)
            continue;
        others += result.probeLatencies[j];
        ++count;
    }
    EXPECT_LT(hit * 5, others / count);
}

TEST(SpectreV1Test, RepeatedLeaksStayCorrect)
{
    Core core(SystemConfig::makeUnsafeBaseline());
    SpectreV1 spectre(core);
    for (int round = 0; round < 3; ++round) {
        const std::uint8_t secret =
            static_cast<std::uint8_t>(17 + round * 40);
        spectre.setSecretByte(secret);
        EXPECT_EQ(spectre.leakByte().guessedByte, secret);
    }
}

} // namespace
} // namespace unxpec
