/**
 * @file
 * Tests that the default configuration reproduces Table I.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"

namespace unxpec {
namespace {

TEST(ConfigTest, TableOneGeometry)
{
    const SystemConfig cfg = SystemConfig::makeDefault();
    EXPECT_DOUBLE_EQ(cfg.clockGHz, 2.0);
    EXPECT_EQ(cfg.core.robEntries, 192u);

    EXPECT_EQ(cfg.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1i.ways, 4u);
    EXPECT_EQ(cfg.l1i.numSets(), 128u);

    EXPECT_EQ(cfg.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1d.ways, 8u);
    EXPECT_EQ(cfg.l1d.numSets(), 64u);

    EXPECT_EQ(cfg.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.l2.ways, 16u);
    EXPECT_EQ(cfg.l2.numSets(), 2048u);

    // 50 ns at 2 GHz.
    EXPECT_EQ(cfg.memory.accessLatency, 100u);
}

TEST(ConfigTest, CleanupSpecPoliciesOnByDefault)
{
    const SystemConfig cfg = SystemConfig::makeDefault();
    EXPECT_EQ(cfg.cleanupMode, CleanupMode::Cleanup_FOR_L1L2);
    EXPECT_EQ(cfg.l1d.repl, ReplPolicy::Random);
    EXPECT_EQ(cfg.l2.index, IndexPolicy::Ceaser);
}

TEST(ConfigTest, UnsafeBaselineDisablesProtections)
{
    const SystemConfig cfg = SystemConfig::makeUnsafeBaseline();
    EXPECT_EQ(cfg.cleanupMode, CleanupMode::UnsafeBaseline);
    EXPECT_EQ(cfg.l1d.repl, ReplPolicy::LRU);
    EXPECT_EQ(cfg.l2.index, IndexPolicy::Modulo);
}

TEST(ConfigTest, NoisyHostIsSlowerAndJittery)
{
    const SystemConfig host = SystemConfig::makeNoisyHost();
    const SystemConfig base = SystemConfig::makeDefault();
    EXPECT_GT(host.memory.accessLatency, base.memory.accessLatency);
    EXPECT_GT(host.memory.jitterSigma, 0.0);
}

TEST(ConfigTest, CleanupTimingDefaultsMatchHeadlineNumbers)
{
    const CleanupTiming t;
    // One landed transient load in Cleanup_FOR_L1L2:
    // trigger + max(L1 walk, L2 walk) = 4 + 18 = 22 cycles.
    EXPECT_DOUBLE_EQ(t.mshrCleanCost + t.invFirstL2, 22.0);
    // Plus one restoration: 32 cycles.
    EXPECT_DOUBLE_EQ(t.mshrCleanCost + t.invFirstL2 + t.restoreFirst, 32.0);
}

TEST(ConfigTest, ModeNames)
{
    EXPECT_STREQ(toString(CleanupMode::UnsafeBaseline), "UnsafeBaseline");
    EXPECT_STREQ(toString(CleanupMode::Cleanup_FOR_L1), "Cleanup_FOR_L1");
    EXPECT_STREQ(toString(CleanupMode::Cleanup_FOR_L1L2),
                 "Cleanup_FOR_L1L2");
}

TEST(ConfigTest, ValidateAcceptsAllPresets)
{
    SystemConfig::makeDefault().validate();
    SystemConfig::makeUnsafeBaseline().validate();
    SystemConfig::makeInvisiSpec().validate();
    SystemConfig::makeDelayOnMiss().validate();
    SystemConfig::makeNoisyHost().validate();
}

TEST(ConfigDeathTest, ValidateRejectsBadGeometry)
{
    SystemConfig bad_ways = SystemConfig::makeDefault();
    bad_ways.l1d.ways = 0;
    EXPECT_DEATH({ bad_ways.validate(); }, "ways");

    SystemConfig bad_size = SystemConfig::makeDefault();
    bad_size.l2.sizeBytes = 1000; // not a multiple of ways x 64
    EXPECT_DEATH({ bad_size.validate(); }, "multiple");

    SystemConfig bad_nomo = SystemConfig::makeDefault();
    bad_nomo.l1d.nomoReservedWays = 8;
    EXPECT_DEATH({ bad_nomo.validate(); }, "NoMo");

    SystemConfig bad_width = SystemConfig::makeDefault();
    bad_width.core.issueWidth = 0;
    EXPECT_DEATH({ bad_width.validate(); }, "width");
}

TEST(ConfigTest, PrintMentionsEveryModule)
{
    std::ostringstream oss;
    SystemConfig::makeDefault().print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("Processor"), std::string::npos);
    EXPECT_NE(text.find("L1 I cache"), std::string::npos);
    EXPECT_NE(text.find("L1 D cache"), std::string::npos);
    EXPECT_NE(text.find("L2 cache"), std::string::npos);
    EXPECT_NE(text.find("Memory"), std::string::npos);
}

} // namespace
} // namespace unxpec
