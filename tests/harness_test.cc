/**
 * @file
 * Unit tests for the experiment harness: seed derivation, registry
 * lookups, session construction, and — the load-bearing property —
 * TrialRunner results that are bit-identical at any thread count.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <set>

#include "cpu/assembler.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "harness/trial_runner.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

// --- seed derivation ----------------------------------------------------

TEST(DeriveSeedTest, StableAcrossCalls)
{
    EXPECT_EQ(Rng::deriveSeed(1, 0), Rng::deriveSeed(1, 0));
    EXPECT_EQ(Rng::deriveSeed(12345, 7), Rng::deriveSeed(12345, 7));
}

TEST(DeriveSeedTest, MatchesSplitMixStream)
{
    // deriveSeed(master, k) must be the k-th output of a SplitMix64
    // stream seeded with `master`, so per-trial seeds are as
    // statistically independent as the generator itself.
    std::uint64_t state = 42;
    auto splitmix = [&state] {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(Rng::deriveSeed(42, k), splitmix());
}

TEST(DeriveSeedTest, DistinctAcrossStreamsAndMasters)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t master : {0ull, 1ull, 2ull, 999ull}) {
        for (std::uint64_t stream = 0; stream < 64; ++stream)
            seen.insert(Rng::deriveSeed(master, stream));
    }
    EXPECT_EQ(seen.size(), 4u * 64u);
}

// --- registries ---------------------------------------------------------

TEST(RegistryTest, KnownDefenses)
{
    for (const char *name :
         {"unsafe", "cleanup_l1", "cleanup_l1l2", "cleanup_full",
          "invisispec", "delay_on_miss", "noisy_host", "cleanup_const65",
          "cleanup_fuzzy40"}) {
        EXPECT_TRUE(knownDefense(name)) << name;
    }
    EXPECT_FALSE(knownDefense("no-such-defense"));
}

TEST(RegistryTest, DefenseFactoriesConfigure)
{
    EXPECT_EQ(makeDefense("unsafe").cleanupMode,
              CleanupMode::UnsafeBaseline);
    EXPECT_EQ(makeDefense("cleanup_l1l2").cleanupMode,
              CleanupMode::Cleanup_FOR_L1L2);
    EXPECT_EQ(makeDefense("cleanup_const65").cleanupTiming
                  .constantTimeCycles,
              65u);
}

TEST(RegistryTest, KnownNoisesAndAttacks)
{
    EXPECT_TRUE(knownNoise("quiet"));
    EXPECT_TRUE(knownNoise("evaluation"));
    EXPECT_TRUE(knownNoise("noisy_host"));
    EXPECT_FALSE(knownNoise("hurricane"));

    EXPECT_TRUE(knownAttack("unxpec"));
    EXPECT_TRUE(knownAttack("unxpec-evset"));
    EXPECT_TRUE(knownAttack("spectre_v1"));
    EXPECT_FALSE(knownAttack("meltdown"));

    UnxpecConfig cfg;
    applyAttackVariant("unxpec-evset", cfg);
    EXPECT_TRUE(cfg.useEvictionSets);
}

TEST(RegistryTest, CustomRegistration)
{
    registerDefense("test_tiny_l1", "test-only defense", [] {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.l1d.sizeBytes = 16 * 1024;
        return cfg;
    });
    ASSERT_TRUE(knownDefense("test_tiny_l1"));
    EXPECT_EQ(makeDefense("test_tiny_l1").l1d.sizeBytes, 16u * 1024u);
}

// --- session ------------------------------------------------------------

TEST(SessionTest, ConfigForAppliesSpec)
{
    ExperimentSpec spec;
    spec.defense = "cleanup_l1l2";
    spec.tweak = [](SystemConfig &cfg) {
        cfg.cleanupTiming.constantTimeCycles = 33;
    };
    const SystemConfig cfg = Session::configFor(spec, 77);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_EQ(cfg.cleanupMode, CleanupMode::Cleanup_FOR_L1L2);
    EXPECT_EQ(cfg.cleanupTiming.constantTimeCycles, 33u);
}

TEST(SessionTest, VariantReachesAttack)
{
    ExperimentSpec spec;
    spec.attack = "unxpec-wide";
    Session session(spec, 1);
    EXPECT_TRUE(session.unxpec().config().useEvictionSets);
    EXPECT_EQ(session.unxpec().config().inBranchLoads, 8u);
}

// --- attack determinism -------------------------------------------------

TEST(DeterminismTest, MeasureOnceSequenceRepeats)
{
    ExperimentSpec spec;
    spec.noise = "evaluation"; // jitter active: the hard case
    auto sequence = [&spec] {
        Session session(spec, 2024);
        UnxpecAttack &attack = session.unxpec();
        std::vector<double> values;
        for (int secret : {0, 1, 1, 0, 1}) {
            attack.setSecret(secret);
            values.push_back(attack.measureOnce());
        }
        return values;
    };
    EXPECT_EQ(sequence(), sequence());
}

// --- trial runner -------------------------------------------------------

std::vector<ExperimentSpec>
smallSweep()
{
    std::vector<ExperimentSpec> specs;
    for (unsigned loads : {1u, 2u, 3u}) {
        ExperimentSpec spec;
        spec.label = "loads=" + std::to_string(loads);
        spec.noise = "evaluation";
        spec.attackCfg.inBranchLoads = loads;
        spec.with("loads", loads);
        specs.push_back(std::move(spec));
    }
    return specs;
}

TrialOutput
deltaTrial(const TrialContext &ctx)
{
    Session session(ctx);
    UnxpecAttack &attack = session.unxpec();
    attack.setSecret(0);
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    const double one = attack.measureOnce();
    TrialOutput out;
    out.metric("delta", one - zero);
    out.metric("seed_echo", static_cast<double>(ctx.seed & 0xffff));
    return out;
}

TEST(TrialRunnerTest, SerialEqualsParallel)
{
    const auto specs = smallSweep();
    TrialRunner serial(1);
    TrialRunner parallel(4);
    const ExperimentResult a =
        serial.runAll("t", "", specs, 3, 9001, deltaTrial);
    const ExperimentResult b =
        parallel.runAll("t", "", specs, 3, 9001, deltaTrial);

    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].label, b.rows[i].label);
        EXPECT_EQ(a.rows[i].values("delta"), b.rows[i].values("delta"));
        EXPECT_EQ(a.rows[i].values("seed_echo"),
                  b.rows[i].values("seed_echo"));
    }
}

TEST(TrialRunnerTest, RepsGetDistinctSeeds)
{
    TrialRunner runner(2);
    const ExperimentResult result =
        runner.runAll("t", "", smallSweep(), 4, 5, deltaTrial);
    for (const ResultRow &row : result.rows) {
        const std::vector<double> &seeds = row.values("seed_echo");
        EXPECT_EQ(std::set<double>(seeds.begin(), seeds.end()).size(),
                  seeds.size());
    }
}

TEST(TrialRunnerTest, MasterSeedChangesResults)
{
    TrialRunner runner(2);
    ExperimentSpec spec;
    spec.noise = "evaluation";
    const auto a = runner.runAll("t", "", {spec}, 2, 1, deltaTrial);
    const auto b = runner.runAll("t", "", {spec}, 2, 2, deltaTrial);
    EXPECT_NE(a.rows[0].values("seed_echo"), b.rows[0].values("seed_echo"));
}

TEST(TrialRunnerTest, AggregatesSeriesInRepOrder)
{
    TrialRunner runner(4);
    ExperimentSpec spec;
    const ExperimentResult result = runner.runAll(
        "t", "", {spec}, 5, 1, [](const TrialContext &ctx) {
            TrialOutput out;
            out.samples("rep", {static_cast<double>(ctx.rep)});
            return out;
        });
    EXPECT_EQ(result.rows[0].values("rep"),
              (std::vector<double>{0, 1, 2, 3, 4}));
}

// --- cycle-limit safety valve -------------------------------------------

TEST(RunOptionsTest, CycleLimitDiagnostic)
{
    // An infinite loop must trip the cycle budget and come back with
    // the partial-result flag set instead of hanging or dying.
    Core core(makeDefense("unsafe"));
    const Program program = Assembler::assemble(R"(
        li r2, 0
        li r3, 1
    loop:
        blt r2, r3, loop
        halt
    )");
    RunOptions options;
    options.maxCycles = 5000;
    const RunResult result = core.run(program, options);
    EXPECT_TRUE(result.cycleLimitReached);
    EXPECT_GE(result.cycles, 5000u);
    EXPECT_EQ(RunOptions{}.maxCycles, RunOptions::kDefaultMaxCycles);
}

// --- CLI ----------------------------------------------------------------

TEST(HarnessCliTest, ParsesSharedFlags)
{
    HarnessCli cli("test", "test");
    cli.scaleOption("size", 10);
    const char *argv[] = {"test",     "--reps", "7",      "--seed",
                          "99",       "--threads", "3",   "--mode",
                          "unsafe",   "--json", "/tmp/x.json", "42"};
    const HarnessOptions opt =
        cli.parse(static_cast<int>(std::size(argv)),
                  const_cast<char **>(argv));
    EXPECT_EQ(opt.reps, 7u);
    EXPECT_EQ(opt.seed, 99u);
    EXPECT_EQ(opt.threads, 3u);
    EXPECT_EQ(opt.mode, "unsafe");
    EXPECT_EQ(opt.jsonPath, "/tmp/x.json");
    EXPECT_EQ(opt.scale, 42u);

    const ExperimentSpec spec = cli.baseSpec(opt);
    EXPECT_EQ(spec.defense, "unsafe");
}

} // namespace
} // namespace unxpec
