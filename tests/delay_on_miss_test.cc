/**
 * @file
 * Tests for the delay-on-miss Invisible defense (Sakalis et al.,
 * ISCA'19; paper §II-B): speculative L1 hits are served, speculative
 * misses wait for resolution — no transient install ever happens, so
 * both Spectre v1 and unXpec come up empty.
 */

#include <gtest/gtest.h>

#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

TEST(DelayOnMissTest, NoTransientInstall)
{
    auto resident = [](int secret) {
        Core core(SystemConfig::makeDelayOnMiss());
        UnxpecAttack attack(core);
        attack.setSecret(secret);
        attack.measureOnce();
        return core.hierarchy().l1d().residentLines();
    };
    EXPECT_EQ(resident(0), resident(1));
}

TEST(DelayOnMissTest, UnxpecChannelClosed)
{
    Core core(SystemConfig::makeDelayOnMiss());
    UnxpecAttack attack(core);
    attack.setSecret(0);
    attack.measureOnce();
    const double zero = attack.measureOnce();
    attack.setSecret(1);
    attack.measureOnce();
    const double one = attack.measureOnce();
    EXPECT_NEAR(one - zero, 0.0, 3.0);
}

TEST(DelayOnMissTest, SpectreDefeated)
{
    Core core(SystemConfig::makeDelayOnMiss());
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    EXPECT_FALSE(spectre.leakByte().cacheHitSignal);
}

TEST(DelayOnMissTest, CorrectPathLoadsEventuallyServe)
{
    // A correctly speculated miss is merely delayed, not dropped: the
    // program result is exact and the line lands after resolution.
    Core core(SystemConfig::makeDelayOnMiss());
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    const Addr bound = b.alloc(64);
    b.initWord64(buf, 4242);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 2); // in bounds: the body is the correct path
    b.li(5, static_cast<std::int64_t>(bound));
    b.li(6, static_cast<std::int64_t>(buf));
    b.clflush(5, 0);
    b.clflush(6, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip);
    b.load(3, 6, 0); // speculative miss: delayed, then served
    b.bind(skip);
    b.halt();
    const RunResult r = core.run(b.build());
    EXPECT_EQ(r.reg(3), 4242u);
    EXPECT_TRUE(core.hierarchy().l1d().present(lineAlign(buf),
                                               core.now()));
}

TEST(DelayOnMissTest, SpeculativeHitsStillFast)
{
    // The scheme's selling point: L1 hits under speculation proceed,
    // so hit-heavy code barely slows down.
    const Program p =
        SynthSpec::generate(SynthSpec::profile("x264_r"), 5);
    RunOptions options;
    options.maxInstructions = 20000;

    Core unsafe(SystemConfig::makeUnsafeBaseline());
    const Cycle base = unsafe.run(p, options).cycles;
    Core delayed(SystemConfig::makeDelayOnMiss());
    const Cycle protected_cycles = delayed.run(p, options).cycles;
    EXPECT_LT(static_cast<double>(protected_cycles), 1.25 * base);
}

TEST(DelayOnMissTest, MissHeavyCodePaysDelay)
{
    const Program p =
        SynthSpec::generate(SynthSpec::profile("mcf_r"), 5);
    RunOptions options;
    options.maxInstructions = 20000;

    Core unsafe(SystemConfig::makeUnsafeBaseline());
    const Cycle base = unsafe.run(p, options).cycles;
    Core delayed(SystemConfig::makeDelayOnMiss());
    const Cycle protected_cycles = delayed.run(p, options).cycles;
    EXPECT_GT(protected_cycles, base);
}

} // namespace
} // namespace unxpec
