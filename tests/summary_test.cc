/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include "analysis/summary.hh"

namespace unxpec {
namespace {

TEST(SummaryTest, BasicMoments)
{
    const Summary s = Summary::of({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummaryTest, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(Summary::of({1, 2, 3}).median, 2.0);
    EXPECT_DOUBLE_EQ(Summary::of({1, 2, 3, 4}).median, 2.5);
}

TEST(SummaryTest, PercentileInterpolation)
{
    const std::vector<double> v = {10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.375), 25.0);
}

TEST(SummaryTest, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(Summary::percentile({50, 10, 30, 20, 40}, 0.5), 30.0);
}

TEST(SummaryTest, EmptyInputSafe)
{
    const Summary s = Summary::of({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(Summary::percentile({}, 0.5), 0.0);
}

TEST(SummaryTest, SingleSample)
{
    const Summary s = Summary::of({42});
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 42.0);
}

} // namespace
} // namespace unxpec
