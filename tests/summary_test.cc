/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/summary.hh"

namespace unxpec {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SummaryTest, BasicMoments)
{
    const Summary s = Summary::of({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummaryTest, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(Summary::of({1, 2, 3}).median, 2.0);
    EXPECT_DOUBLE_EQ(Summary::of({1, 2, 3, 4}).median, 2.5);
}

TEST(SummaryTest, PercentileInterpolation)
{
    const std::vector<double> v = {10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(Summary::percentile(v, 0.375), 25.0);
}

TEST(SummaryTest, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(Summary::percentile({50, 10, 30, 20, 40}, 0.5), 30.0);
}

TEST(SummaryTest, EmptyInputSafe)
{
    const Summary s = Summary::of({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(Summary::percentile({}, 0.5), 0.0);
}

TEST(SummaryTest, SingleSample)
{
    const Summary s = Summary::of({42});
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 42.0);
}

TEST(SummaryTest, NonFiniteSamplesSkippedAndCounted)
{
    // A trial that divides by zero or overflows must not poison the
    // whole aggregate: the stats cover the finite subset and the
    // skipped samples are reported, not silently swallowed.
    const Summary s = Summary::of({2.0, kNaN, 4.0, kInf, 6.0, -kInf});
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.nonfinite, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 4.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 6.0);
    EXPECT_DOUBLE_EQ(s.median, 4.0);
}

TEST(SummaryTest, AllNonFiniteYieldsNaNStats)
{
    // Samples existed but none were usable: stats are NaN (rendered as
    // null/empty by the sinks), never a fabricated 0.
    const Summary s = Summary::of({kNaN, kInf});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.nonfinite, 2u);
    EXPECT_TRUE(std::isnan(s.mean));
    EXPECT_TRUE(std::isnan(s.median));
}

TEST(SummaryTest, PercentileSkipsNonFinite)
{
    EXPECT_DOUBLE_EQ(Summary::percentile({kNaN, 10, 30, 20}, 0.5), 20.0);
    EXPECT_TRUE(std::isnan(Summary::percentile({kNaN, kInf}, 0.5)));
}

} // namespace
} // namespace unxpec
