/**
 * @file
 * Unit tests for eviction-set construction: direct congruence and the
 * Vila-style group-testing reduction, including its expected failure
 * to minimize against a randomized-replacement cache.
 */

#include <gtest/gtest.h>

#include <set>

#include "attack/eviction_set.hh"
#include "memory/cache.hh"

namespace unxpec {
namespace {

CacheConfig
l1Config(ReplPolicy repl)
{
    CacheConfig cfg;
    cfg.name = "l1d";
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.repl = repl;
    return cfg;
}

TEST(EvictionSetTest, DirectAddressesAreCongruent)
{
    const unsigned sets = 64;
    const Addr target = 0x12340;
    const auto addrs = EvictionSet::direct(target, sets, 8, 0x800000);
    EXPECT_EQ(addrs.size(), 8u);
    const Addr target_set = lineNumber(lineAlign(target)) % sets;
    std::set<Addr> unique;
    for (const Addr addr : addrs) {
        EXPECT_EQ(lineNumber(addr) % sets, target_set);
        EXPECT_NE(lineAlign(addr), lineAlign(target));
        unique.insert(lineAlign(addr));
    }
    EXPECT_EQ(unique.size(), 8u);
}

TEST(EvictionSetTest, DirectAddressesStartAtPool)
{
    const auto addrs = EvictionSet::direct(0x0, 64, 4, 0x800000);
    for (const Addr addr : addrs)
        EXPECT_GE(addr, 0x800000u);
}

TEST(EvictionSetTest, DirectSetEvictsTargetInLruCache)
{
    Rng rng(1);
    Cache cache(l1Config(ReplPolicy::LRU), rng, 0);
    const Addr target = 0x12340;
    cache.install(lineAlign(target), 0, false, kSeqNone);
    const auto addrs = EvictionSet::direct(
        target, cache.config().numSets(), cache.config().ways, 0x800000);
    Cycle when = 1;
    for (const Addr addr : addrs)
        cache.install(lineAlign(addr), when++, false, kSeqNone);
    EXPECT_EQ(cache.probe(lineAlign(target)), nullptr);
}

TEST(EvictionSetTest, ModelOracleDetectsEviction)
{
    Rng rng(2);
    Cache proto(l1Config(ReplPolicy::LRU), rng, 0);
    const auto oracle = EvictionSet::modelOracle(proto, 7);
    const Addr target = 0x4000;
    const auto congruent = EvictionSet::direct(
        target, proto.config().numSets(), proto.config().ways, 0x800000);
    EXPECT_TRUE(oracle(congruent, target));

    // Addresses in other sets never evict the target.
    std::vector<Addr> harmless;
    for (unsigned i = 0; i < 16; ++i)
        harmless.push_back(0x900000 + (2 * i + 1) * kLineBytes);
    EXPECT_FALSE(oracle(harmless, target));
}

TEST(EvictionSetTest, ReduceFindsMinimalSetUnderLru)
{
    Rng rng(3);
    Cache proto(l1Config(ReplPolicy::LRU), rng, 0);
    const auto oracle = EvictionSet::modelOracle(proto, 11);
    const Addr target = 0x4000;
    const unsigned ways = proto.config().ways;
    const unsigned sets = proto.config().numSets();

    // Large candidate pool: congruent lines mixed with noise lines.
    std::vector<Addr> pool = EvictionSet::direct(target, sets, ways * 3,
                                                 0x800000);
    for (unsigned i = 0; i < 64; ++i)
        pool.push_back(0xa00000 + i * kLineBytes);

    const auto minimal = EvictionSet::reduce(pool, target, ways, oracle);
    EXPECT_EQ(minimal.size(), ways);
    // Every survivor must be congruent with the target.
    const Addr target_set = lineNumber(lineAlign(target)) % sets;
    for (const Addr addr : minimal)
        EXPECT_EQ(lineNumber(addr) % sets, target_set);
}

TEST(EvictionSetTest, ReduceFailsOnUselessPool)
{
    Rng rng(4);
    Cache proto(l1Config(ReplPolicy::LRU), rng, 0);
    const auto oracle = EvictionSet::modelOracle(proto, 13);
    std::vector<Addr> pool;
    for (unsigned i = 0; i < 8; ++i)
        pool.push_back(0x900000 + (2 * i + 1) * kLineBytes);
    EXPECT_TRUE(EvictionSet::reduce(pool, 0x4000, 8, oracle).empty());
}

TEST(EvictionSetTest, RandomReplacementResistsMinimalReduction)
{
    // CleanupSpec's random L1 replacement: a minimal (ways-sized) set
    // no longer evicts deterministically, so group-testing cannot
    // shrink that far — the attack instead primes with a direct set.
    Rng rng(5);
    Cache proto(l1Config(ReplPolicy::Random), rng, 0);
    const auto oracle = EvictionSet::modelOracle(proto, 17);
    const Addr target = 0x4000;
    const unsigned ways = proto.config().ways;
    std::vector<Addr> pool = EvictionSet::direct(
        target, proto.config().numSets(), ways * 4, 0x800000);
    const auto reduced = EvictionSet::reduce(pool, target, ways, oracle);
    EXPECT_GT(reduced.size(), ways);
}

} // namespace
} // namespace unxpec
