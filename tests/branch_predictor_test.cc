/**
 * @file
 * Unit tests for the direction predictors, including the mistraining
 * behaviour the attack depends on.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace unxpec {
namespace {

TEST(BimodalTest, StartsWeaklyNotTaken)
{
    BimodalPredictor bp;
    EXPECT_FALSE(bp.predict(0x10));
}

TEST(BimodalTest, SaturatesTaken)
{
    BimodalPredictor bp;
    for (int i = 0; i < 4; ++i)
        bp.update(0x10, true);
    EXPECT_TRUE(bp.predict(0x10));
    // One contrary outcome does not flip a saturated counter.
    bp.update(0x10, false);
    EXPECT_TRUE(bp.predict(0x10));
}

TEST(BimodalTest, MistrainingScenario)
{
    // The unXpec POISON phase: repeated not-taken outcomes keep the
    // out-of-bounds round predicted not-taken (i.e., into the branch
    // body), even right after one taken resolution.
    BimodalPredictor bp;
    for (int i = 0; i < 8; ++i)
        bp.update(0x40, false);
    EXPECT_FALSE(bp.predict(0x40));
    bp.update(0x40, true); // the mis-speculated attack round resolves
    EXPECT_FALSE(bp.predict(0x40));
}

TEST(BimodalTest, DistinctPcsIndependent)
{
    BimodalPredictor bp;
    for (int i = 0; i < 4; ++i)
        bp.update(0x10, true);
    EXPECT_TRUE(bp.predict(0x10));
    EXPECT_FALSE(bp.predict(0x11));
}

TEST(BimodalTest, ResetForgets)
{
    BimodalPredictor bp;
    for (int i = 0; i < 4; ++i)
        bp.update(0x10, true);
    bp.reset();
    EXPECT_FALSE(bp.predict(0x10));
}

TEST(GshareTest, LearnsBiasedBranch)
{
    GsharePredictor gp;
    for (int i = 0; i < 64; ++i)
        gp.update(0x20, true);
    EXPECT_TRUE(gp.predict(0x20));
}

TEST(GshareTest, HistoryAffectsIndex)
{
    GsharePredictor gp(12, 8);
    // Alternate pattern on one PC: global history lets gshare separate
    // the two contexts where bimodal would stay confused.
    for (int i = 0; i < 200; ++i)
        gp.update(0x30, i % 2 == 0);
    // After training, following an even-history update the prediction
    // should track the learned alternation more often than chance.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool actual = i % 2 == 0;
        if (gp.predict(0x30) == actual)
            ++correct;
        gp.update(0x30, actual);
    }
    EXPECT_GT(correct, 60);
}

TEST(GshareTest, ResetClearsHistoryAndTables)
{
    GsharePredictor gp;
    for (int i = 0; i < 16; ++i)
        gp.update(0x50, true);
    gp.reset();
    EXPECT_FALSE(gp.predict(0x50));
}

} // namespace
} // namespace unxpec
