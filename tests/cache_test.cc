/**
 * @file
 * Unit tests for the cache array: install/evict/invalidate/restore,
 * speculative marking, NoMo partitioning, and occupancy invariants.
 */

#include <gtest/gtest.h>

#include <set>

#include "memory/cache.hh"

namespace unxpec {
namespace {

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 4 * 1024; // 16 sets x 4 ways
    cfg.ways = 4;
    cfg.hitLatency = 2;
    cfg.mshrs = 4;
    cfg.repl = ReplPolicy::LRU;
    return cfg;
}

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : rng_(1), cache_(smallConfig(), rng_, 0) {}

    Rng rng_;
    Cache cache_;
};

TEST_F(CacheTest, MissThenHit)
{
    const Addr line = 0x4000;
    EXPECT_EQ(cache_.probe(line), nullptr);
    cache_.install(line, 5, false, kSeqNone);
    ASSERT_NE(cache_.probe(line), nullptr);
    EXPECT_TRUE(cache_.present(line, 5));
    EXPECT_FALSE(cache_.present(line, 4)); // fill not landed yet
}

TEST_F(CacheTest, InstallPrefersInvalidWays)
{
    // 3 lines in the same set: no evictions while ways remain.
    const unsigned sets = cache_.config().numSets();
    for (unsigned i = 0; i < 3; ++i) {
        const FillResult fill =
            cache_.install((0x4000 + i * sets * kLineBytes), 0, false,
                           kSeqNone);
        EXPECT_FALSE(fill.victimValid);
    }
    EXPECT_EQ(cache_.setOccupancy(cache_.setOf(0x4000)), 3u);
}

TEST_F(CacheTest, FullSetEvictsAndReportsVictim)
{
    const unsigned sets = cache_.config().numSets();
    for (unsigned i = 0; i < 4; ++i)
        cache_.install(0x4000 + i * sets * kLineBytes, 0, false, kSeqNone);
    const FillResult fill =
        cache_.install(0x4000 + 4ull * sets * kLineBytes, 0, false,
                       kSeqNone);
    EXPECT_TRUE(fill.victimValid);
    EXPECT_EQ(cache_.setOccupancy(cache_.setOf(0x4000)), 4u);
    // The victim is gone.
    EXPECT_EQ(cache_.probe(fill.victimLine), nullptr);
}

TEST_F(CacheTest, LruVictimSelection)
{
    const unsigned sets = cache_.config().numSets();
    const Addr base = 0x4000;
    for (unsigned i = 0; i < 4; ++i)
        cache_.install(base + i * sets * kLineBytes, 0, false, kSeqNone);
    cache_.touch(base); // protect the oldest
    const FillResult fill =
        cache_.install(base + 4ull * sets * kLineBytes, 0, false, kSeqNone);
    EXPECT_EQ(fill.victimLine, base + 1ull * sets * kLineBytes);
}

TEST_F(CacheTest, InvalidateRemovesLine)
{
    cache_.install(0x4000, 0, false, kSeqNone);
    EXPECT_TRUE(cache_.invalidate(0x4000));
    EXPECT_EQ(cache_.probe(0x4000), nullptr);
    EXPECT_FALSE(cache_.invalidate(0x4000));
}

TEST_F(CacheTest, InvalidateAtChecksAddress)
{
    const FillResult fill = cache_.install(0x4000, 0, false, kSeqNone);
    // Wrong line: refused.
    EXPECT_FALSE(cache_.invalidateAt(fill.set, fill.way, 0x8000));
    EXPECT_TRUE(cache_.invalidateAt(fill.set, fill.way, 0x4000));
}

TEST_F(CacheTest, InstallAtPlacesLineInExactWay)
{
    const FillResult fill = cache_.install(0x4000, 0, true, 9);
    cache_.invalidateAt(fill.set, fill.way, 0x4000);
    cache_.installAt(fill.set, fill.way, 0x8000, true, 3);
    const CacheLine *line = cache_.probe(0x8000);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->dirty);
    EXPECT_FALSE(line->speculative);
}

TEST_F(CacheTest, SpeculativeMarkingAndCommit)
{
    cache_.install(0x4000, 0, true, 42);
    const CacheLine *line = cache_.probe(0x4000);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->speculative);
    EXPECT_EQ(line->installer, 42u);

    // Commit by a different installer is ignored.
    cache_.commitSpeculative(0x4000, 41);
    EXPECT_TRUE(cache_.probe(0x4000)->speculative);

    cache_.commitSpeculative(0x4000, 42);
    EXPECT_FALSE(cache_.probe(0x4000)->speculative);
    EXPECT_EQ(cache_.probe(0x4000)->installer, kSeqNone);
}

TEST_F(CacheTest, MarkDirty)
{
    cache_.install(0x4000, 0, false, kSeqNone);
    EXPECT_FALSE(cache_.probe(0x4000)->dirty);
    cache_.markDirty(0x4000);
    EXPECT_TRUE(cache_.probe(0x4000)->dirty);
}

TEST_F(CacheTest, ResidentLinesSorted)
{
    cache_.install(0x8000, 0, false, kSeqNone);
    cache_.install(0x4000, 0, false, kSeqNone);
    const auto resident = cache_.residentLines();
    ASSERT_EQ(resident.size(), 2u);
    EXPECT_EQ(resident[0], 0x4000u);
    EXPECT_EQ(resident[1], 0x8000u);
}

TEST_F(CacheTest, ResetEmptiesCache)
{
    cache_.install(0x4000, 0, false, kSeqNone);
    cache_.mshr().allocate(0x4000, 10, false, 0);
    cache_.reset();
    EXPECT_TRUE(cache_.residentLines().empty());
    EXPECT_EQ(cache_.mshr().inflight(), 0u);
}

TEST(CacheNomoTest, ReservedWaysNeverUsed)
{
    CacheConfig cfg = smallConfig();
    cfg.nomoReservedWays = 2; // only ways 0-1 usable
    Rng rng(2);
    Cache cache(cfg, rng, 0);
    const unsigned sets = cfg.numSets();
    for (unsigned i = 0; i < 8; ++i) {
        const FillResult fill =
            cache.install(0x4000 + i * sets * kLineBytes, 0, false,
                          kSeqNone);
        EXPECT_LT(fill.way, 2u);
    }
    EXPECT_EQ(cache.setOccupancy(cache.setOf(0x4000)), 2u);
}

TEST(CacheRandomTest, RandomPolicyEvictsVariedWays)
{
    CacheConfig cfg = smallConfig();
    cfg.repl = ReplPolicy::Random;
    Rng rng(3);
    Cache cache(cfg, rng, 0);
    const unsigned sets = cfg.numSets();
    for (unsigned i = 0; i < 4; ++i)
        cache.install(0x4000 + i * sets * kLineBytes, 0, false, kSeqNone);
    std::set<unsigned> victim_ways;
    for (unsigned i = 4; i < 40; ++i) {
        const FillResult fill =
            cache.install(0x4000 + i * sets * kLineBytes, 0, false,
                          kSeqNone);
        EXPECT_TRUE(fill.victimValid);
        victim_ways.insert(fill.way);
    }
    EXPECT_GT(victim_ways.size(), 2u);
}

TEST(CacheStatsTest, HitsAndMissesCounted)
{
    Rng rng(4);
    Cache cache(smallConfig(), rng, 0);
    ++cache.misses();
    cache.install(0x4000, 0, false, kSeqNone);
    ++cache.hits();
    EXPECT_EQ(cache.stats().findCounter("hits")->value(), 1u);
    EXPECT_EQ(cache.stats().findCounter("misses")->value(), 1u);
}

} // namespace
} // namespace unxpec
