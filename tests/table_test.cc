/**
 * @file
 * Unit tests for the text presentation helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/table.hh"

namespace unxpec {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    std::ostringstream oss;
    table.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    // Header rule present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(PrintDensityTest, RendersTwoCurves)
{
    DensityCurve a, b;
    for (int i = 0; i < 40; ++i) {
        a.x.push_back(i);
        b.x.push_back(i);
        a.density.push_back(i < 20 ? i : 40 - i);
        b.density.push_back(i > 10 ? 40 - i : i);
    }
    std::ostringstream oss;
    printDensity(oss, a, "zero", b, "one", 6);
    const std::string text = oss.str();
    EXPECT_NE(text.find("o=zero"), std::string::npos);
    EXPECT_NE(text.find("*=one"), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(PrintDensityTest, MismatchedCurvesHandled)
{
    DensityCurve a, b;
    a.x = {1, 2};
    a.density = {0.1, 0.2};
    std::ostringstream oss;
    printDensity(oss, a, "a", b, "b");
    EXPECT_NE(oss.str().find("unavailable"), std::string::npos);
}

TEST(PrintSeriesTest, OneRowPerPoint)
{
    std::ostringstream oss;
    printSeries(oss, "series", {1, 2, 3}, {10, 20, 30});
    const std::string text = oss.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

} // namespace
} // namespace unxpec
