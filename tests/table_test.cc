/**
 * @file
 * Unit tests for the text presentation helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/matrix_report.hh"
#include "analysis/table.hh"

namespace unxpec {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    std::ostringstream oss;
    table.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    // Header rule present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(PrintDensityTest, RendersTwoCurves)
{
    DensityCurve a, b;
    for (int i = 0; i < 40; ++i) {
        a.x.push_back(i);
        b.x.push_back(i);
        a.density.push_back(i < 20 ? i : 40 - i);
        b.density.push_back(i > 10 ? 40 - i : i);
    }
    std::ostringstream oss;
    printDensity(oss, a, "zero", b, "one", 6);
    const std::string text = oss.str();
    EXPECT_NE(text.find("o=zero"), std::string::npos);
    EXPECT_NE(text.find("*=one"), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(PrintDensityTest, MismatchedCurvesHandled)
{
    DensityCurve a, b;
    a.x = {1, 2};
    a.density = {0.1, 0.2};
    std::ostringstream oss;
    printDensity(oss, a, "a", b, "b");
    EXPECT_NE(oss.str().find("unavailable"), std::string::npos);
}

TEST(PrintSeriesTest, OneRowPerPoint)
{
    std::ostringstream oss;
    printSeries(oss, "series", {1, 2, 3}, {10, 20, 30});
    const std::string text = oss.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

// --- matrix report ------------------------------------------------------

MatrixCell
sampleCell(const std::string &defense, const std::string &receiver,
           double auc, double delta, double overhead, double cps,
           unsigned trials)
{
    MatrixCell cell;
    cell.defense = defense;
    cell.receiver = receiver;
    cell.auc = auc;
    cell.deltaCycles = delta;
    cell.overheadPct = overhead;
    cell.cyclesPerSample = cps;
    cell.trials = trials;
    return cell;
}

MatrixReport
sampleMatrix()
{
    MatrixReport report;
    report.experiment = "matrix_campaign";
    report.masterSeed = 42;
    report.reps = 3;
    report.cells.push_back(
        sampleCell("unsafe", "unxpec", 1.0, -112.0, 0.0, 3871.25, 3));
    report.cells.push_back(
        sampleCell("unsafe", "contention", 0.9875, 18.5, 0.0, 1544.0, 3));
    report.cells.push_back(
        sampleCell("safespec", "unxpec", 0.5, 0.0, 1.03125, 3870.5, 3));
    report.cells.push_back(
        sampleCell("safespec", "contention", 1.0, 18.5, 1.03125, 1544.0,
                   3));
    return report;
}

/** A row with the standard matrix metrics, `reps` trials each. */
ResultRow
matrixRow(const std::string &label, double auc, double workload)
{
    ResultRow row;
    row.label = label;
    row.metrics.emplace_back("auc", MetricSeries::of({auc}));
    row.metrics.emplace_back("delta_cycles", MetricSeries::of({10.0}));
    row.metrics.emplace_back("cycles_per_sample",
                             MetricSeries::of({100.0}));
    row.metrics.emplace_back("workload_cycles",
                             MetricSeries::of({workload}));
    row.trials = 1;
    return row;
}

TEST(MatrixReportTest, JsonRoundTripPreservesEveryCell)
{
    const MatrixReport report = sampleMatrix();
    std::ostringstream oss;
    report.writeJson(oss);
    const MatrixReport back = MatrixReport::fromJsonText(oss.str());

    EXPECT_EQ(back.experiment, report.experiment);
    EXPECT_EQ(back.masterSeed, report.masterSeed);
    EXPECT_EQ(back.reps, report.reps);
    ASSERT_EQ(back.cells.size(), report.cells.size());
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        EXPECT_EQ(back.cells[i].defense, report.cells[i].defense);
        EXPECT_EQ(back.cells[i].receiver, report.cells[i].receiver);
        // max_digits10 formatting: bit-exact doubles after the trip.
        EXPECT_EQ(back.cells[i].auc, report.cells[i].auc);
        EXPECT_EQ(back.cells[i].deltaCycles, report.cells[i].deltaCycles);
        EXPECT_EQ(back.cells[i].overheadPct, report.cells[i].overheadPct);
        EXPECT_EQ(back.cells[i].cyclesPerSample,
                  report.cells[i].cyclesPerSample);
        EXPECT_EQ(back.cells[i].trials, report.cells[i].trials);
    }
}

TEST(MatrixReportTest, JsonCarriesSchemaTag)
{
    std::ostringstream oss;
    sampleMatrix().writeJson(oss);
    EXPECT_NE(oss.str().find("\"unxpec-matrix-v1\""), std::string::npos);
}

TEST(MatrixReportTest, CellLookupAndAxisOrder)
{
    const MatrixReport report = sampleMatrix();
    const MatrixCell *cell = report.cell("safespec", "contention");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->auc, 1.0);
    EXPECT_EQ(report.cell("safespec", "nope"), nullptr);
    EXPECT_EQ(report.defenses(),
              (std::vector<std::string>{"unsafe", "safespec"}));
    EXPECT_EQ(report.receivers(),
              (std::vector<std::string>{"unxpec", "contention"}));
}

TEST(MatrixReportTest, MarkdownListsEveryDefenseRow)
{
    std::ostringstream oss;
    sampleMatrix().writeMarkdown(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("| unsafe "), std::string::npos);
    EXPECT_NE(text.find("| safespec "), std::string::npos);
    EXPECT_NE(text.find("unxpec"), std::string::npos);
    EXPECT_NE(text.find("contention"), std::string::npos);
    // A complete matrix carries no incompleteness note.
    EXPECT_EQ(text.find("incomplete"), std::string::npos);
    EXPECT_EQ(sampleMatrix().incompleteCells(), 0u);
}

TEST(MatrixReportTest, CensoredRowSurvivesAsNullNotFatal)
{
    // A fully-censored cell reports trial accounting but no metrics.
    // fromResult must keep the cell with missing statistics instead of
    // fatal'ing on the absent metric (the old row.mean() crash).
    ExperimentResult result;
    result.experiment = "matrix_campaign";
    result.rows.push_back(matrixRow("unsafe/unxpec", 1.0, 1000.0));
    ResultRow censored;
    censored.label = "safespec/unxpec";
    censored.censoredTrials = 3;
    result.rows.push_back(censored);

    const MatrixReport report = MatrixReport::fromResult(result);
    ASSERT_EQ(report.cells.size(), 2u);
    const MatrixCell *cell = report.cell("safespec", "unxpec");
    ASSERT_NE(cell, nullptr);
    EXPECT_TRUE(std::isnan(cell->auc));
    EXPECT_TRUE(std::isnan(cell->deltaCycles));
    EXPECT_TRUE(std::isnan(cell->overheadPct));
    EXPECT_TRUE(cell->incomplete());
    EXPECT_EQ(report.incompleteCells(), 1u);

    // The complete baseline cell is untouched.
    const MatrixCell *ok = report.cell("unsafe", "unxpec");
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->auc, 1.0);
    EXPECT_EQ(ok->overheadPct, 0.0);
    EXPECT_FALSE(ok->incomplete());

    // JSON renders the missing statistics as null, and the markdown
    // dashes them out with a counted note — no fabricated zeros.
    std::ostringstream json;
    report.writeJson(json);
    EXPECT_NE(json.str().find("\"auc\": null"), std::string::npos);
    std::ostringstream md;
    report.writeMarkdown(md);
    EXPECT_NE(md.str().find("1 cell(s) incomplete"), std::string::npos);
    EXPECT_NE(md.str().find(" - |"), std::string::npos);
}

TEST(MatrixReportTest, MissingUnsafeBaselineNullsOverheadOnly)
{
    // No unsafe row at all: every overhead is uncomputable (null), but
    // the channel statistics stay real numbers.
    ExperimentResult result;
    result.rows.push_back(matrixRow("safespec/unxpec", 0.5, 1030.0));
    result.rows.push_back(matrixRow("specbox/unxpec", 0.5, 1020.0));
    const MatrixReport report = MatrixReport::fromResult(result);
    for (const MatrixCell &cell : report.cells) {
        EXPECT_TRUE(std::isnan(cell.overheadPct)) << cell.defense;
        EXPECT_EQ(cell.auc, 0.5);
        EXPECT_TRUE(cell.incomplete());
    }
}

TEST(MatrixReportTest, NullStatisticsRoundTripThroughJson)
{
    MatrixReport report = sampleMatrix();
    report.cells[2].auc = std::numeric_limits<double>::quiet_NaN();
    report.cells[2].overheadPct =
        std::numeric_limits<double>::quiet_NaN();
    std::ostringstream oss;
    report.writeJson(oss);
    const MatrixReport back = MatrixReport::fromJsonText(oss.str());
    ASSERT_EQ(back.cells.size(), report.cells.size());
    EXPECT_TRUE(std::isnan(back.cells[2].auc));
    EXPECT_TRUE(std::isnan(back.cells[2].overheadPct));
    EXPECT_EQ(back.cells[3].auc, report.cells[3].auc);
    EXPECT_EQ(back.incompleteCells(), 1u);
}

TEST(MatrixReportTest, RecoveredRateIsOptionalPerCell)
{
    // The victim campaign's field: emitted only where finite, so
    // classic matrix artifacts stay byte-identical.
    MatrixReport report = sampleMatrix();
    report.cells[0].recoveredBitsPerSec = 313419.0;
    std::ostringstream oss;
    report.writeJson(oss);
    const std::string json = oss.str();
    EXPECT_EQ(static_cast<int>(json.find("recovered_bits_per_sec") !=
                               std::string::npos),
              1);
    // Exactly one cell carries the field.
    std::size_t count = 0;
    for (std::size_t at = json.find("recovered_bits_per_sec");
         at != std::string::npos;
         at = json.find("recovered_bits_per_sec", at + 1))
        ++count;
    EXPECT_EQ(count, 1u);

    const MatrixReport back = MatrixReport::fromJsonText(json);
    EXPECT_EQ(back.cells[0].recoveredBitsPerSec, 313419.0);
    EXPECT_TRUE(std::isnan(back.cells[1].recoveredBitsPerSec));
    // The optional field never counts toward incompleteness.
    EXPECT_EQ(back.incompleteCells(), 0u);

    // And the markdown gains the rate section only when present.
    std::ostringstream md;
    report.writeMarkdown(md);
    EXPECT_NE(md.str().find("recovery rate"), std::string::npos);
    std::ostringstream mdPlain;
    sampleMatrix().writeMarkdown(mdPlain);
    EXPECT_EQ(mdPlain.str().find("recovery rate"), std::string::npos);
}

TEST(MatrixReportTest, FromResultReadsRecoveredRate)
{
    ExperimentResult result;
    ResultRow row = matrixRow("unsafe/victim-aes", 1.0, 1000.0);
    row.metrics.emplace_back("recovered_bits_per_sec",
                             MetricSeries::of({128000.0}));
    result.rows.push_back(row);
    const MatrixReport report = MatrixReport::fromResult(result);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_EQ(report.cells[0].recoveredBitsPerSec, 128000.0);
    EXPECT_FALSE(report.cells[0].incomplete());
}

} // namespace
} // namespace unxpec
