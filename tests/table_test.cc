/**
 * @file
 * Unit tests for the text presentation helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/matrix_report.hh"
#include "analysis/table.hh"

namespace unxpec {
namespace {

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    std::ostringstream oss;
    table.print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    // Header rule present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(PrintDensityTest, RendersTwoCurves)
{
    DensityCurve a, b;
    for (int i = 0; i < 40; ++i) {
        a.x.push_back(i);
        b.x.push_back(i);
        a.density.push_back(i < 20 ? i : 40 - i);
        b.density.push_back(i > 10 ? 40 - i : i);
    }
    std::ostringstream oss;
    printDensity(oss, a, "zero", b, "one", 6);
    const std::string text = oss.str();
    EXPECT_NE(text.find("o=zero"), std::string::npos);
    EXPECT_NE(text.find("*=one"), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(PrintDensityTest, MismatchedCurvesHandled)
{
    DensityCurve a, b;
    a.x = {1, 2};
    a.density = {0.1, 0.2};
    std::ostringstream oss;
    printDensity(oss, a, "a", b, "b");
    EXPECT_NE(oss.str().find("unavailable"), std::string::npos);
}

TEST(PrintSeriesTest, OneRowPerPoint)
{
    std::ostringstream oss;
    printSeries(oss, "series", {1, 2, 3}, {10, 20, 30});
    const std::string text = oss.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

// --- matrix report ------------------------------------------------------

MatrixReport
sampleMatrix()
{
    MatrixReport report;
    report.experiment = "matrix_campaign";
    report.masterSeed = 42;
    report.reps = 3;
    report.cells.push_back(
        {"unsafe", "unxpec", 1.0, -112.0, 0.0, 3871.25, 3});
    report.cells.push_back(
        {"unsafe", "contention", 0.9875, 18.5, 0.0, 1544.0, 3});
    report.cells.push_back(
        {"safespec", "unxpec", 0.5, 0.0, 1.03125, 3870.5, 3});
    report.cells.push_back(
        {"safespec", "contention", 1.0, 18.5, 1.03125, 1544.0, 3});
    return report;
}

TEST(MatrixReportTest, JsonRoundTripPreservesEveryCell)
{
    const MatrixReport report = sampleMatrix();
    std::ostringstream oss;
    report.writeJson(oss);
    const MatrixReport back = MatrixReport::fromJsonText(oss.str());

    EXPECT_EQ(back.experiment, report.experiment);
    EXPECT_EQ(back.masterSeed, report.masterSeed);
    EXPECT_EQ(back.reps, report.reps);
    ASSERT_EQ(back.cells.size(), report.cells.size());
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        EXPECT_EQ(back.cells[i].defense, report.cells[i].defense);
        EXPECT_EQ(back.cells[i].receiver, report.cells[i].receiver);
        // max_digits10 formatting: bit-exact doubles after the trip.
        EXPECT_EQ(back.cells[i].auc, report.cells[i].auc);
        EXPECT_EQ(back.cells[i].deltaCycles, report.cells[i].deltaCycles);
        EXPECT_EQ(back.cells[i].overheadPct, report.cells[i].overheadPct);
        EXPECT_EQ(back.cells[i].cyclesPerSample,
                  report.cells[i].cyclesPerSample);
        EXPECT_EQ(back.cells[i].trials, report.cells[i].trials);
    }
}

TEST(MatrixReportTest, JsonCarriesSchemaTag)
{
    std::ostringstream oss;
    sampleMatrix().writeJson(oss);
    EXPECT_NE(oss.str().find("\"unxpec-matrix-v1\""), std::string::npos);
}

TEST(MatrixReportTest, CellLookupAndAxisOrder)
{
    const MatrixReport report = sampleMatrix();
    const MatrixCell *cell = report.cell("safespec", "contention");
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->auc, 1.0);
    EXPECT_EQ(report.cell("safespec", "nope"), nullptr);
    EXPECT_EQ(report.defenses(),
              (std::vector<std::string>{"unsafe", "safespec"}));
    EXPECT_EQ(report.receivers(),
              (std::vector<std::string>{"unxpec", "contention"}));
}

TEST(MatrixReportTest, MarkdownListsEveryDefenseRow)
{
    std::ostringstream oss;
    sampleMatrix().writeMarkdown(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("| unsafe "), std::string::npos);
    EXPECT_NE(text.find("| safespec "), std::string::npos);
    EXPECT_NE(text.find("unxpec"), std::string::npos);
    EXPECT_NE(text.find("contention"), std::string::npos);
}

} // namespace
} // namespace unxpec
