/**
 * @file
 * Tests for the derived performance report and the commit trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/perf_report.hh"
#include "cpu/core.hh"
#include "workload/synth_spec.hh"

namespace unxpec {
namespace {

TEST(PerfReportTest, BasicMetricsConsistent)
{
    Core core(SystemConfig::makeDefault());
    const Program p = SynthSpec::generate(SynthSpec::profile("gcc_r"), 3);
    RunOptions options;
    options.maxInstructions = 20000;
    const RunResult r = core.run(p, options);
    const PerfReport report = PerfReport::of(core, r);

    EXPECT_EQ(report.cycles, r.cycles);
    EXPECT_EQ(report.instructions, r.instructions);
    EXPECT_NEAR(report.cpi * report.ipc, 1.0, 1e-9);
    EXPECT_GT(report.cpi, 0.3);
    EXPECT_LT(report.cpi, 20.0);
    EXPECT_GT(report.branchMpki, 1.0);
    EXPECT_GT(report.l1dMissRatePct, 0.0);
    EXPECT_LT(report.l1dMissRatePct, 60.0);
    EXPECT_GT(report.squashes, 10u);
}

TEST(PerfReportTest, CleanupShareNonzeroOnBranchyWorkload)
{
    Core core(SystemConfig::makeDefault());
    core.cleanup().timing().constantTimeCycles = 65;
    const Program p =
        SynthSpec::generate(SynthSpec::profile("leela_r"), 3);
    RunOptions options;
    options.maxInstructions = 20000;
    const RunResult r = core.run(p, options);
    const PerfReport report = PerfReport::of(core, r);
    EXPECT_GT(report.cleanupCyclePct, 10.0);
}

TEST(PerfReportTest, PrintContainsHeadlineRows)
{
    Core core(SystemConfig::makeDefault());
    ProgramBuilder b;
    b.li(1, 1);
    b.halt();
    const RunResult r = core.run(b.build());
    std::ostringstream oss;
    PerfReport::of(core, r).print(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("CPI"), std::string::npos);
    EXPECT_NE(text.find("MPKI"), std::string::npos);
    EXPECT_NE(text.find("cleanup cycles"), std::string::npos);
}

TEST(TraceTest, OneLinePerCommittedInstruction)
{
    Core core(SystemConfig::makeDefault());
    std::ostringstream trace;
    core.setTrace(&trace);
    ProgramBuilder b;
    b.li(1, 5);
    b.addi(2, 1, 3);
    b.mul(3, 1, 2);
    b.halt();
    const RunResult r = core.run(b.build());
    core.setTrace(nullptr);

    const std::string text = trace.str();
    // HALT commits silently; every other instruction traces one line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              static_cast<long>(r.instructions) - 1);
    EXPECT_NE(text.find("li r1, 5 = 5"), std::string::npos);
    EXPECT_NE(text.find("mul r3, r1, r2 = 40"), std::string::npos);
}

TEST(TraceTest, SquashedInstructionsNeverTrace)
{
    Core core(SystemConfig::makeDefault());
    std::ostringstream trace;
    core.setTrace(&trace);
    ProgramBuilder b;
    const Addr bound = b.alloc(64);
    b.initWord64(bound, 10);
    const int skip = b.label();
    b.li(1, 50);
    b.li(5, static_cast<std::int64_t>(bound));
    b.clflush(5, 0);
    b.load(2, 5, 0);
    b.bge(1, 2, skip);
    b.li(3, 0xBAD); // transient only
    b.bind(skip);
    b.halt();
    core.run(b.build());
    EXPECT_EQ(trace.str().find("0xBAD"), std::string::npos);
    EXPECT_EQ(trace.str().find("li r3"), std::string::npos);
}

} // namespace
} // namespace unxpec
