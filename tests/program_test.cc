/**
 * @file
 * Unit tests for the program builder: labels, allocation, data images.
 */

#include <gtest/gtest.h>

#include "cpu/program.hh"
#include "memory/main_memory.hh"
#include "sim/rng.hh"

namespace unxpec {
namespace {

TEST(ProgramBuilderTest, AllocationIsAlignedAndDisjoint)
{
    ProgramBuilder b;
    const Addr a = b.alloc(10);
    const Addr c = b.alloc(100);
    EXPECT_EQ(a % kLineBytes, 0u);
    EXPECT_EQ(c % kLineBytes, 0u);
    EXPECT_GE(c, a + 10);
}

TEST(ProgramBuilderTest, CustomAlignment)
{
    ProgramBuilder b;
    b.alloc(3);
    const Addr a = b.alloc(8, 4096);
    EXPECT_EQ(a % 4096, 0u);
}

TEST(ProgramBuilderTest, ForwardLabelPatched)
{
    ProgramBuilder b;
    const int skip = b.label();
    b.li(1, 0);
    b.beq(1, 1, skip);
    b.addi(1, 1, 1);
    b.bind(skip);
    b.halt();
    const Program p = b.build();
    EXPECT_EQ(p.at(1).target, 3);
}

TEST(ProgramBuilderTest, BackwardLabelPatched)
{
    ProgramBuilder b;
    const int top = b.label();
    b.bind(top);
    b.nop();
    b.jmp(top);
    const Program p = b.build();
    EXPECT_EQ(p.at(1).target, 0);
}

TEST(ProgramBuilderTest, DataImageAppliesToMemory)
{
    ProgramBuilder b;
    const Addr addr = b.alloc(16);
    b.initWord64(addr, 0xfeedfacecafebeefull);
    b.initByte(addr + 8, 0x5A);
    b.halt();
    const Program p = b.build();

    Rng rng(1);
    MainMemory mem(MemoryConfig{}, rng);
    p.loadInitialData(mem);
    EXPECT_EQ(mem.read64(addr), 0xfeedfacecafebeefull);
    EXPECT_EQ(mem.read8(addr + 8), 0x5Au);
}

TEST(ProgramBuilderTest, PcToAddrUsesCodeBase)
{
    EXPECT_EQ(Program::pcToAddr(0), Program::kCodeBase);
    EXPECT_EQ(Program::pcToAddr(3),
              Program::kCodeBase + 3 * Program::kInstBytes);
}

TEST(ProgramBuilderTest, ListingHasOneLinePerInstruction)
{
    ProgramBuilder b;
    b.li(1, 5);
    b.addi(1, 1, 1);
    b.halt();
    const Program p = b.build();
    const std::string listing = p.listing();
    EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 3);
    EXPECT_NE(listing.find("li r1, 5"), std::string::npos);
}

TEST(ProgramBuilderTest, EmittersEncodeFields)
{
    ProgramBuilder b;
    b.load(7, 8, -16, 1);
    b.store(9, 32, 10, 2);
    b.shl(11, 12, 6);
    const Program p = b.build();
    EXPECT_EQ(p.at(0).rd, 7);
    EXPECT_EQ(p.at(0).imm, -16);
    EXPECT_EQ(p.at(0).size, 1);
    EXPECT_EQ(p.at(1).rs2, 10);
    EXPECT_EQ(p.at(1).size, 2);
    EXPECT_EQ(p.at(2).imm, 6);
}

} // namespace
} // namespace unxpec
