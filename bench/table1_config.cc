/**
 * @file
 * Table I: experiment setup. Prints the simulated system configuration
 * and verifies the simulated memory round trip matches the table.
 */

#include <iostream>

#include "cpu/core.hh"
#include "sim/config.hh"

using namespace unxpec;

int
main()
{
    std::cout << "=== Table I: experiment setup ===\n\n";
    const SystemConfig cfg = SystemConfig::makeDefault();
    cfg.print(std::cout);

    // Verify the end-to-end load-miss latency the core actually sees.
    Core core(cfg);
    ProgramBuilder b;
    const Addr buf = b.alloc(64);
    b.li(5, static_cast<std::int64_t>(buf));
    b.rdtscp(1);
    b.and_(6, 1, 0);
    b.add(7, 5, 6);
    b.load(2, 7, 0);
    b.rdtscp(3);
    b.sub(4, 3, 1);
    b.halt();
    const RunResult r = core.run(b.build());

    std::cout << "\nMeasured cold-load round trip: " << r.reg(4)
              << " cycles (DRAM " << cfg.memory.accessLatency
              << " + L2 " << cfg.l2.hitLatency << " + L1 "
              << cfg.l1d.hitLatency << " + pipeline overhead)\n";
    return 0;
}
