/**
 * @file
 * Shared driver for Figures 10 and 11: leak the fixed 1,000-bit secret
 * of Figure 9, one sample per bit. The harness splits the bit string
 * into `--reps` contiguous slices; each trial calibrates its own
 * receiver on its own Core and leaks its slice, and the slices are
 * reassembled in order — so the decoded string (and accuracy) is
 * independent of `--threads`.
 */

#ifndef UNXPEC_BENCH_LEAK_FIGURE_HH
#define UNXPEC_BENCH_LEAK_FIGURE_HH

#include <algorithm>
#include <ostream>

#include "analysis/accuracy.hh"
#include "analysis/summary.hh"
#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "sim/rng.hh"

namespace unxpec {

/** Seed of the Figure-9 secret, shared across Figures 9/10/11. */
inline constexpr std::uint64_t kSecretSeed = 20220402;

/** Per-trial receiver-training samples per secret value. */
inline constexpr unsigned kLeakCalibration = 150;

inline int
runLeakFigure(std::ostream &os, HarnessCli &cli, int argc,
              char **argv, const char *attack_variant,
              const char *title, const char *paper_accuracy)
{
    cli.defaultReps(8)
        .defaultNoise("evaluation")
        .scaleOption("secret bits to leak", 1000);
    const HarnessOptions opt = cli.parse(argc, argv);
    const unsigned bits = static_cast<unsigned>(opt.scale);

    Rng rng(kSecretSeed);
    std::vector<int> secret;
    for (unsigned i = 0; i < bits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));

    ExperimentSpec spec = cli.baseSpec(opt);
    spec.label = "leak";
    spec.attack = attack_variant;
    spec.with("bits", bits);

    const unsigned chunk = (bits + opt.reps - 1) / opt.reps;
    const ExperimentResult result = runExperiment(
        cli, opt, {spec}, [&secret, chunk, bits](const TrialContext &ctx) {
            const unsigned begin = std::min(bits, ctx.rep * chunk);
            const unsigned end = std::min(bits, begin + chunk);
            TrialOutput out;
            if (begin == end)
                return out;

            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            const double threshold = attack.calibrate(kLeakCalibration);
            const std::vector<int> slice(secret.begin() + begin,
                                         secret.begin() + end);
            const LeakResult leak = attack.leak(slice, threshold);

            out.metric("threshold", threshold);
            std::vector<double> guesses(leak.guesses.begin(),
                                        leak.guesses.end());
            out.samples("guess", std::move(guesses));
            out.samples("latency", leak.latencies);
            return out;
        });

    const ResultRow &row = result.row(0);
    const std::vector<double> &guess_values = row.values("guess");
    const std::vector<double> &latencies = row.values("latency");
    std::vector<int> guesses;
    for (const double g : guess_values)
        guesses.push_back(static_cast<int>(g));
    const auto report = BitChannelReport::of(guesses, secret);

    os << "=== " << title << " (" << bits
              << " bits, 1 sample/bit) ===\n\n";
    os << "decode threshold (mean over " << opt.reps
              << " receivers): " << TextTable::num(row.mean("threshold"))
              << " cycles\n\n";
    os << "first 100 bits (secret / guess / latency):\n";
    for (unsigned i = 0; i < std::min<unsigned>(100, bits); ++i) {
        os << "  bit " << i << ": " << secret[i] << " / "
                  << guesses[i] << " / " << latencies[i]
                  << (secret[i] != guesses[i] ? "   <-- error" : "")
                  << "\n";
    }

    const Summary lat = Summary::of(latencies);
    os << "\nobserved latency: mean " << TextTable::num(lat.mean)
              << ", min " << TextTable::num(lat.min) << ", max "
              << TextTable::num(lat.max) << "\n";
    os << "correct bits: " << report.true0 + report.true1 << "/"
              << bits << "\n";
    os << "accuracy: " << TextTable::num(report.accuracy() * 100)
              << " % (paper: " << paper_accuracy << " %)\n";
    os << "per-class error: secret0 "
              << TextTable::num(report.zeroErrorRate() * 100)
              << " %, secret1 "
              << TextTable::num(report.oneErrorRate() * 100) << " %\n";
    return finishExperiment(result, opt);
}

} // namespace unxpec

#endif // UNXPEC_BENCH_LEAK_FIGURE_HH
