/**
 * @file
 * Figure 7: probability density of the sender's observed latency
 * without eviction sets, estimated by KDE over 1,000 samples per
 * secret. Paper: ~22-cycle mean separation, decode threshold 178.
 */

#include <iostream>

#include "pdf_figure.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig07_pdf_no_evset",
                   "Figure 7: latency PDF per secret, no eviction sets");
    return runPdfFigure(std::cout, cli, argc, argv, "unxpec",
                        "Figure 7: latency PDF, no eviction sets", 22,
                        178);
}
