/**
 * @file
 * Figure 7: probability density of the sender's observed latency
 * without eviction sets, estimated by KDE over 1,000 samples per
 * secret. Paper: ~22-cycle mean separation, decode threshold 178.
 */

#include <iostream>

#include "analysis/kde.hh"
#include "analysis/roc.hh"
#include "analysis/summary.hh"
#include "analysis/table.hh"
#include "attack/channel.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    const unsigned samples = argc > 1 ? std::atoi(argv[1]) : 1000;
    std::cout << "=== Figure 7: latency PDF, no eviction sets ("
              << samples << " samples/secret) ===\n\n";

    SystemConfig cfg = SystemConfig::makeDefault();
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecAttack attack(core, UnxpecConfig{});
    const auto zeros = attack.collect(0, samples);
    const auto ones = attack.collect(1, samples);

    const Summary s0 = Summary::of(zeros);
    const Summary s1 = Summary::of(ones);
    const double threshold = CovertChannel::calibrateThreshold(zeros, ones);

    TextTable table({"secret", "mean", "stdev", "median", "p25", "p75"});
    table.addRow({"0", TextTable::num(s0.mean), TextTable::num(s0.stddev),
                  TextTable::num(s0.median), TextTable::num(s0.p25),
                  TextTable::num(s0.p75)});
    table.addRow({"1", TextTable::num(s1.mean), TextTable::num(s1.stddev),
                  TextTable::num(s1.median), TextTable::num(s1.p25),
                  TextTable::num(s1.p75)});
    table.print(std::cout);

    std::cout << "\nmean timing difference: "
              << TextTable::num(s1.mean - s0.mean)
              << " cycles (paper: 22)\n";
    std::cout << "calibrated threshold:   " << TextTable::num(threshold)
              << " (paper: 178)\n";
    const RocCurve roc = RocCurve::of(zeros, ones);
    std::cout << "channel AUC:            "
              << TextTable::num(roc.auc(), 3) << " (0.5 = blind, 1 = "
              << "perfect; best J at threshold "
              << TextTable::num(roc.best().threshold) << ")\n\n";

    const auto curve0 = Kde::curve(zeros, 130, 250, 100);
    const auto curve1 = Kde::curve(ones, 130, 250, 100);
    printDensity(std::cout, curve0, "secret=0", curve1, "secret=1");
    return 0;
}
