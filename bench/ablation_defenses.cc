/**
 * @file
 * Ablation beyond the paper's figures: the whole defense landscape the
 * paper's introduction surveys, on one table. For each scheme —
 * unsafe baseline, InvisiSpec-style Invisible, CleanupSpec (both
 * flavors), and CleanupSpec + constant-time rollback — report:
 *   - does Spectre v1 (Flush+Reload) leak?
 *   - the unXpec secret-dependent timing difference;
 *   - workload overhead vs the unsafe baseline.
 *
 * The paper's narrative falls out of the rows: Invisible defenses are
 * safe from both attacks but slow; Undo is fast but unXpec breaks it;
 * constant-time rollback fixes Undo at Invisible-like cost.
 */

#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "attack/spectre_v1.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "sim/rng.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

bool
spectreLeaks(SystemConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    Core core(cfg);
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    return result.cacheHitSignal && result.guessedByte == 42;
}

double
unxpecDelta(const ExperimentSpec &spec, std::uint64_t seed)
{
    Session session(spec, seed);
    UnxpecAttack &attack = session.unxpec();
    double zeros = 0.0, ones = 0.0;
    for (int r = 0; r < 3; ++r) {
        attack.setSecret(0);
        zeros += attack.measureOnce();
        attack.setSecret(1);
        ones += attack.measureOnce();
    }
    return (ones - zeros) / 3.0;
}

double
workloadOverhead(const SystemConfig &cfg, std::uint64_t seed)
{
    const std::vector<const char *> picks = {"mcf_r", "leela_r", "gcc_r",
                                             "imagick_r"};
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;
    double total = 0.0;
    for (const char *name : picks) {
        const Program p = SynthSpec::generate(SynthSpec::profile(name), 42);
        SystemConfig base_cfg = makeDefense("unsafe");
        base_cfg.seed = seed;
        Core unsafe(base_cfg);
        const RunResult base = unsafe.run(p, options);
        SystemConfig run_cfg = cfg;
        run_cfg.seed = seed;
        Core core(run_cfg);
        const RunResult run = core.run(p, options);
        total += static_cast<double>(run.cycles - run.warmupCycles) /
                 (base.cycles - base.warmupCycles);
    }
    return (total / picks.size() - 1.0) * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("ablation_defenses",
                   "Defense-landscape ablation: Spectre v1, unXpec delta, "
                   "and workload overhead per scheme");
    const HarnessOptions opt = cli.parse(argc, argv);

    const std::vector<std::pair<const char *, const char *>> schemes = {
        {"unsafe", "UnsafeBaseline"},
        {"invisispec", "InvisiSpec (Invisible)"},
        {"delay_on_miss", "DelayOnMiss (Invisible)"},
        {"cleanup_l1", "Cleanup_FOR_L1 (Undo)"},
        {"cleanup_l1l2", "Cleanup_FOR_L1L2 (Undo)"},
        {"cleanup_full", "Cleanup_FULL (hypoth. L2 restore)"},
        {"cleanup_const65", "Cleanup + const-65 rollback"},
        {"cleanup_fuzzy40", "Cleanup + fuzzy<=40 (SVII)"},
    };

    std::vector<ExperimentSpec> specs;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        ExperimentSpec spec = cli.baseSpec(opt);
        spec.label = schemes[i].second;
        spec.defense = schemes[i].first;
        spec.with("scheme", static_cast<double>(i));
        specs.push_back(std::move(spec));
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [](const TrialContext &ctx) {
            // Each probe gets its own sub-seed so adding a probe never
            // perturbs the others.
            const SystemConfig cfg = Session::configFor(
                ctx.spec, Rng::deriveSeed(ctx.seed, 0));
            TrialOutput out;
            out.metric("spectre_leaks",
                       spectreLeaks(cfg, Rng::deriveSeed(ctx.seed, 1))
                           ? 1.0
                           : 0.0);
            out.metric("unxpec_delta",
                       unxpecDelta(ctx.spec, Rng::deriveSeed(ctx.seed, 2)));
            out.metric("workload_overhead_pct",
                       workloadOverhead(cfg, Rng::deriveSeed(ctx.seed, 3)));
            return out;
        });

    std::cout << "=== Defense-landscape ablation ===\n\n";
    TextTable table({"scheme", "Spectre v1", "unXpec delta (cyc)",
                     "workload overhead"});
    for (const ResultRow &row : result.rows) {
        table.addRow({row.label,
                      row.mean("spectre_leaks") > 0.5 ? "LEAKS" : "blocked",
                      TextTable::num(row.mean("unxpec_delta")),
                      TextTable::num(row.mean("workload_overhead_pct")) +
                          "%"});
    }
    table.print(std::cout);

    std::cout << "\nReading guide: Undo schemes stop Spectre cheaply but "
                 "expose the ~22-cycle rollback channel;\nInvisible "
                 "schemes and constant-time rollback close both channels "
                 "at real performance cost.\n(unXpec delta under fuzzy "
                 "noise is a noisy mean: the channel is blurred, not "
                 "shifted.)\n";
    return finishExperiment(result, opt);
}
