/**
 * @file
 * Ablation beyond the paper's figures: the whole defense landscape the
 * paper's introduction surveys, on one table. For each scheme —
 * unsafe baseline, InvisiSpec-style Invisible, CleanupSpec (both
 * flavors), and CleanupSpec + constant-time rollback — report:
 *   - does Spectre v1 (Flush+Reload) leak?
 *   - the unXpec secret-dependent timing difference;
 *   - workload overhead vs the unsafe baseline.
 *
 * The paper's narrative falls out of the rows: Invisible defenses are
 * safe from both attacks but slow; Undo is fast but unXpec breaks it;
 * constant-time rollback fixes Undo at Invisible-like cost.
 */

#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "sim/config.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

bool
spectreLeaks(const SystemConfig &cfg)
{
    Core core(cfg);
    SpectreV1 spectre(core);
    spectre.setSecretByte(42);
    const SpectreResult result = spectre.leakByte();
    return result.cacheHitSignal && result.guessedByte == 42;
}

double
unxpecDelta(const SystemConfig &cfg)
{
    Core core(cfg);
    UnxpecAttack attack(core);
    double zeros = 0.0, ones = 0.0;
    for (int r = 0; r < 3; ++r) {
        attack.setSecret(0);
        zeros += attack.measureOnce();
        attack.setSecret(1);
        ones += attack.measureOnce();
    }
    return (ones - zeros) / 3.0;
}

double
workloadOverhead(const SystemConfig &cfg)
{
    const std::vector<const char *> picks = {"mcf_r", "leela_r", "gcc_r",
                                             "imagick_r"};
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;
    double total = 0.0;
    for (const char *name : picks) {
        const Program p = SynthSpec::generate(SynthSpec::profile(name), 42);
        Core unsafe(SystemConfig::makeUnsafeBaseline());
        const RunResult base = unsafe.run(p, options);
        Core core(cfg);
        const RunResult run = core.run(p, options);
        total += static_cast<double>(run.cycles - run.warmupCycles) /
                 (base.cycles - base.warmupCycles);
    }
    return (total / picks.size() - 1.0) * 100.0;
}

} // namespace

int
main()
{
    std::cout << "=== Defense-landscape ablation ===\n\n";
    TextTable table({"scheme", "Spectre v1", "unXpec delta (cyc)",
                     "workload overhead"});

    struct Row
    {
        const char *name;
        SystemConfig cfg;
    };
    std::vector<Row> rows;
    rows.push_back({"UnsafeBaseline", SystemConfig::makeUnsafeBaseline()});
    rows.push_back({"InvisiSpec (Invisible)",
                    SystemConfig::makeInvisiSpec()});
    rows.push_back({"DelayOnMiss (Invisible)",
                    SystemConfig::makeDelayOnMiss()});
    {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupMode = CleanupMode::Cleanup_FOR_L1;
        rows.push_back({"Cleanup_FOR_L1 (Undo)", cfg});
    }
    rows.push_back({"Cleanup_FOR_L1L2 (Undo)", SystemConfig::makeDefault()});
    {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupMode = CleanupMode::Cleanup_FULL;
        rows.push_back({"Cleanup_FULL (hypoth. L2 restore)", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupTiming.constantTimeCycles = 65;
        rows.push_back({"Cleanup + const-65 rollback", cfg});
    }
    {
        SystemConfig cfg = SystemConfig::makeDefault();
        cfg.cleanupTiming.fuzzyMaxCycles = 40;
        rows.push_back({"Cleanup + fuzzy<=40 (SVII)", cfg});
    }

    for (const Row &row : rows) {
        table.addRow({row.name,
                      spectreLeaks(row.cfg) ? "LEAKS" : "blocked",
                      TextTable::num(unxpecDelta(row.cfg)),
                      TextTable::num(workloadOverhead(row.cfg)) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nReading guide: Undo schemes stop Spectre cheaply but "
                 "expose the ~22-cycle rollback channel;\nInvisible "
                 "schemes and constant-time rollback close both channels "
                 "at real performance cost.\n(unXpec delta under fuzzy "
                 "noise is a noisy mean: the channel is blurred, not "
                 "shifted.)\n";
    return 0;
}
