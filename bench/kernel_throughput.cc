/**
 * @file
 * Hot-path kernel benchmarks with machine-readable output: cache
 * probe/install, main-memory access, rollback, full attack rounds, and
 * TrialRunner fan-out (fresh Cores vs the pooled runner). Run via
 * scripts/bench_kernel.sh, which emits BENCH_kernel.json
 * (--benchmark_out); CI runs a reduced-iteration smoke pass.
 *
 * The counters to watch: sim_cycles_per_sec on BM_AttackRound (how
 * fast the simulator burns simulated time on the paper's main
 * workload) and trials_per_sec on the fan-out benches — fresh Cores
 * vs the pooled runner vs BM_BatchedTrials/W (the lock-step batch
 * kernel, the end-to-end figure --batch exists to raise). The fan-out
 * trial is deliberately light (short attack round) so per-trial setup
 * cost — what pooling and batching eliminate — dominates the
 * measurement instead of drowning in simulation compute.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "attack/unxpec.hh"
#include "cleanup/cleanup_engine.hh"
#include "cleanup/spec_tracker.hh"
#include "cpu/core.hh"
#include "harness/session.hh"
#include "harness/spec.hh"
#include "harness/trial_runner.hh"
#include "memory/hierarchy.hh"
#include "sim/arena.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

using namespace unxpec;

// --- cache kernels ------------------------------------------------------

static void
BM_CacheProbeHit(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    Cache cache(cfg.l1d, rng, 1);
    // Fill one set so the probe scans a full tag row.
    for (unsigned way = 0; way < cfg.l1d.ways; ++way)
        cache.install(static_cast<Addr>(way) * cfg.l1d.numSets() * 64, 0,
                      false, kSeqNone);
    const Addr resident =
        static_cast<Addr>(cfg.l1d.ways - 1) * cfg.l1d.numSets() * 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.probe(resident));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeHit);

static void
BM_CacheProbeMiss(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    Cache cache(cfg.l1d, rng, 1);
    for (unsigned way = 0; way < cfg.l1d.ways; ++way)
        cache.install(static_cast<Addr>(way) * cfg.l1d.numSets() * 64, 0,
                      false, kSeqNone);
    const Addr absent =
        static_cast<Addr>(cfg.l1d.ways + 7) * cfg.l1d.numSets() * 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.probe(absent));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeMiss);

static void
BM_CacheInstall(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    Cache cache(cfg.l1d, rng, 1);
    Addr addr = 0;
    for (auto _ : state) {
        addr += 64;
        benchmark::DoNotOptimize(cache.install(addr, 0, false, kSeqNone));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInstall);

// CEASER-indexed, random-replacement install: the devirtualized slow
// flavor (keyed permutation inlined, rng draw per victim).
static void
BM_CacheInstallCeaser(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    CacheConfig l2 = cfg.l2;
    l2.index = IndexPolicy::Ceaser;
    l2.repl = ReplPolicy::Random;
    Rng rng(1);
    Cache cache(l2, rng, 0x1234);
    Addr addr = 0;
    for (auto _ : state) {
        addr += 64;
        benchmark::DoNotOptimize(cache.install(addr, 0, false, kSeqNone));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInstallCeaser);

// --- memory kernels -----------------------------------------------------

static void
BM_MainMemoryRead64(benchmark::State &state)
{
    MemoryConfig cfg;
    Rng rng(1);
    MainMemory mem(cfg, rng);
    for (Addr a = 0; a < 1 << 16; a += 8)
        mem.write64(a, a);
    Addr addr = 0;
    for (auto _ : state) {
        addr = (addr + 8) & 0xffff;
        benchmark::DoNotOptimize(mem.read64(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MainMemoryRead64);

static void
BM_MainMemoryWrite64(benchmark::State &state)
{
    MemoryConfig cfg;
    Rng rng(1);
    MainMemory mem(cfg, rng);
    Addr addr = 0;
    std::uint64_t value = 0;
    for (auto _ : state) {
        addr = (addr + 8) & 0xffff;
        mem.write64(addr, ++value);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MainMemoryWrite64);

static void
BM_HierarchyAccessHit(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    hier.access(0x1000, 0, false, false, 0);
    Cycle now = 1000;
    for (auto _ : state) {
        ++now;
        benchmark::DoNotOptimize(hier.access(0x1000, now, false, false, now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccessHit);

// --- rollback kernel ----------------------------------------------------

static void
BM_Rollback(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    CleanupEngine engine(cfg.cleanupMode, cfg.cleanupTiming, rng);
    Cycle now = 0;
    for (auto _ : state) {
        now += 1000;
        // One transient install that landed and must be rolled back.
        CleanupJob job;
        job.squashCycle = now + 500;
        MemAccessRecord fill =
            hier.access(0x40000 + (now % 64) * 64, now, false, true, 1);
        job.landed.push_back(fill);
        if (fill.l1Installed)
            ++job.l1Invalidations;
        if (fill.l2Installed)
            ++job.l2Invalidations;
        benchmark::DoNotOptimize(
            engine.rollback(hier, job, /*older_drain=*/0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rollback);

// --- full-system kernels ------------------------------------------------

static void
BM_AttackRound(benchmark::State &state)
{
    Core core(makeDefense("cleanup_l1l2"));
    UnxpecAttack attack(core);
    attack.setSecret(1);
    const Cycle start = core.now();
    for (auto _ : state)
        benchmark::DoNotOptimize(attack.measureOnce());
    state.SetItemsProcessed(state.iterations());
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(core.now() - start), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AttackRound)->Unit(benchmark::kMicrosecond);

static void
BM_CoreReset(benchmark::State &state)
{
    Core core(makeDefense("cleanup_l1l2"));
    UnxpecAttack attack(core);
    attack.setSecret(1);
    attack.measureOnce();
    std::uint64_t seed = 1;
    for (auto _ : state)
        core.reset(++seed);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreReset)->Unit(benchmark::kMicrosecond);

namespace {

/**
 * A deliberately light fig03-style trial: one short attack round.
 * With heavy trials, per-trial setup (Machine + attack construction —
 * the cost pooling and batching exist to remove) is a rounding error
 * and fresh-vs-pooled measures nothing; a short round keeps the
 * setup-to-compute ratio representative of campaign sweeps with many
 * small points.
 */
TrialOutput
lightTrial(const TrialContext &ctx)
{
    Session session(ctx);
    UnxpecAttack &attack = session.unxpec();
    attack.setSecret(1);
    TrialOutput out;
    out.metric("lat", attack.measureOnce());
    return out;
}

std::vector<ExperimentSpec>
fanoutSweep()
{
    std::vector<ExperimentSpec> specs;
    for (unsigned loads : {1u, 2u, 4u}) {
        ExperimentSpec spec;
        spec.label = "loads=" + std::to_string(loads);
        spec.attackCfg.inBranchLoads = loads;
        spec.attackCfg.mistrainIterations = 2;
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
runFanout(benchmark::State &state, bool reuse, unsigned batch)
{
    const auto specs = fanoutSweep();
    const unsigned reps = static_cast<unsigned>(state.range(0));
    // One worker thread: the host may be single-CPU, and the point is
    // per-trial setup cost, not scheduling — identical results at any
    // width anyway.
    TrialRunner runner(/*threads=*/1);
    runner.reuseCores(reuse);
    runner.setBatch(batch);
    std::uint64_t trials = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runner.run(specs, reps, /*master_seed=*/7, lightTrial));
        trials += specs.size() * reps;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(trials));
    state.counters["trials_per_sec"] = benchmark::Counter(
        static_cast<double>(trials), benchmark::Counter::kIsRate);
}

} // namespace

/** Baseline: the pre-pool behavior, one fresh Core per trial. The rep
 *  count (32 per spec) is campaign-scale so the pooled/batched runs
 *  below amortize their one-time Machine constructions the way a real
 *  sweep does. */
static void
BM_TrialRunnerFreshCores(benchmark::State &state)
{
    runFanout(state, /*reuse=*/false, /*batch=*/1);
}
BENCHMARK(BM_TrialRunnerFreshCores)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** The pooled runner: per-worker Cores re-seeded via Core::reset. */
static void
BM_TrialRunnerPooled(benchmark::State &state)
{
    runFanout(state, /*reuse=*/true, /*batch=*/1);
}
BENCHMARK(BM_TrialRunnerPooled)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * The lock-step batch kernel at width W (--batch W): pooled Machines,
 * cached attacks, fiber-interleaved trial groups. Bit-identical
 * results to the serial benches above; trials_per_sec is the headline
 * campaign-throughput figure.
 */
static void
BM_BatchedTrials(benchmark::State &state)
{
    // range(0) = reps (read by runFanout), range(1) = batch width.
    runFanout(state, /*reuse=*/true,
              static_cast<unsigned>(state.range(1)));
}
BENCHMARK(BM_BatchedTrials)
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({32, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Raw arena throughput: the bump-allocate + reset cycle every pooled
 * trial leans on. Mixed sizes/alignments model the ROB/cache/MSHR
 * carve-up at Core construction.
 */
static void
BM_ArenaAlloc(benchmark::State &state)
{
    Arena arena;
    std::uint64_t allocs = 0;
    for (auto _ : state) {
        arena.reset();
        for (unsigned i = 0; i < 64; ++i) {
            benchmark::DoNotOptimize(arena.allocate(24 + 8 * (i % 7), 8));
            benchmark::DoNotOptimize(arena.allocate(256, 64));
        }
        allocs += 128;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(allocs));
    state.counters["allocs_per_sec"] = benchmark::Counter(
        static_cast<double>(allocs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArenaAlloc);
