/**
 * @file
 * End-to-end secret recovery from real victims: an AES-128 T-table
 * first round and an RSA square-and-multiply ladder, both emitted as
 * genuine assembler listings with the secret planted in simulated
 * memory. Every (defense, receiver) cell runs the complete attack —
 * mistrain, transient out-of-bounds read of the real key material,
 * receiver measurement, ranking — and reports how much of the planted
 * secret came back.
 *
 * This is the paper's claim made concrete: under the unsafe baseline
 * the full 16-byte AES key and all 64 exponent bits are recovered;
 * undo defenses degrade the recovery toward guessing; and the
 * FU-contention receiver (victim-rsa-fu) re-opens the RSA channel on
 * every defense that only hides cache state.
 *
 * Artifacts: <out>.json (schema unxpec-matrix-v1, with the optional
 * recovered_bits_per_sec field per cell; BENCH_victim.json is a
 * checked-in copy CI diffs) and <out>.md. The sweep rides the
 * ordinary harness: --matrix sweeps the whole defense zoo, --shards /
 * --batch / --resume work because the campaign is just a labeled spec
 * sweep.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/matrix_report.hh"
#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/matrix.hh"
#include "sim/log.hh"

using namespace unxpec;

namespace {

bool
writeArtifact(const MatrixReport &report, const std::string &path,
              bool json)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    if (json)
        report.writeJson(os);
    else
        report.writeMarkdown(os);
    return true;
}

std::string
cellNum(const MatrixCell *cell, double MatrixCell::*field, int pct)
{
    if (cell == nullptr)
        return "-";
    return TextTable::num(cell->*field * (pct ? 100.0 : 1.0)) +
           (pct ? "%" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("victim_recovery",
                   "Real-secret victims: AES T-table key bytes and RSA "
                   "exponent bits recovered end to end per defense");
    cli.defaultMode("unsafe")
        .scaleOption("known plaintexts per AES key byte (1..8)", 2)
        .textArg("output base path (writes BASE.json and BASE.md)",
                 "victim");
    const HarnessOptions opt = cli.parse(argc, argv);

    const std::vector<ExperimentSpec> specs =
        victimSpecs(cli.baseSpec(opt), opt.matrix);
    const ExperimentResult result = runExperiment(
        cli, opt, specs,
        victimTrialFn(static_cast<unsigned>(opt.scale)));

    const MatrixReport report = MatrixReport::fromResult(result);
    bool wrote = writeArtifact(report, opt.text + ".json", true);
    wrote = writeArtifact(report, opt.text + ".md", false) && wrote;

    std::cout << "=== Real-secret recovery matrix ===\n\n";
    TextTable table({"defense", "AES key", "RSA exp", "RSA exp (FU)",
                     "bits/s (best)"});
    for (const std::string &defense : report.defenses()) {
        const MatrixCell *aes = report.cell(defense, "victim-aes");
        const MatrixCell *rsa = report.cell(defense, "victim-rsa");
        const MatrixCell *fu = report.cell(defense, "victim-rsa-fu");
        double best = 0.0;
        for (const MatrixCell *c : {aes, rsa, fu}) {
            if (c != nullptr && c->recoveredBitsPerSec > best)
                best = c->recoveredBitsPerSec;
        }
        table.addRow({defense,
                      cellNum(aes, &MatrixCell::auc, 1),
                      cellNum(rsa, &MatrixCell::auc, 1),
                      cellNum(fu, &MatrixCell::auc, 1),
                      TextTable::num(best)});
    }
    table.print(std::cout);
    std::cout << "\nArtifacts: " << opt.text << ".json, " << opt.text
              << ".md\nReading guide: 100% = the whole planted secret "
                 "recovered (16/16 AES key bytes, 64/64 exponent "
                 "bits); ~50% RSA / ~0% AES = guessing. Cache "
                 "defenses empty the first two columns; only the FU "
                 "column survives them (non-pipelined multiplier).\n";

    const int code = finishExperiment(result, opt);
    return wrote ? code : 1;
}
