/**
 * @file
 * Figure 9: the 1,000-bit randomly generated secret used by the
 * secret-leakage experiments (Figures 10/11). The paper hardcodes one
 * instance; we generate it from a fixed seed so Figures 10/11 leak the
 * exact pattern printed here.
 */

#include <iostream>

#include "sim/rng.hh"

using namespace unxpec;

/** The fixed seed shared with the Fig. 10/11 harnesses. */
static constexpr std::uint64_t kSecretSeed = 20220402; // HPCA'22 vibes

int
main()
{
    std::cout << "=== Figure 9: 1,000-bit random secret (seed "
              << kSecretSeed << ") ===\n\n";
    Rng rng(kSecretSeed);
    unsigned ones = 0;
    for (int i = 0; i < 1000; ++i) {
        const int bit = static_cast<int>(rng.range(2));
        ones += bit;
        std::cout << bit;
        if (i % 100 == 99)
            std::cout << "\n";
    }
    std::cout << "\npopulation: " << ones << " ones / " << 1000 - ones
              << " zeros\n";
    return 0;
}
