/**
 * @file
 * Figure 9: the 1,000-bit randomly generated secret used by the
 * secret-leakage experiments (Figures 10/11). The paper hardcodes one
 * instance; we generate it from a fixed seed so Figures 10/11 leak the
 * exact pattern printed here. `--json` emits the bit vector as a
 * machine-readable artifact.
 */

#include <iostream>

#include "harness/cli.hh"
#include "sim/rng.hh"

using namespace unxpec;

/** The fixed seed shared with the Fig. 10/11 harnesses. */
static constexpr std::uint64_t kSecretSeed = 20220402; // HPCA'22 vibes

int
main(int argc, char **argv)
{
    HarnessCli cli("fig09_secret_bits",
                   "Figure 9: the fixed 1,000-bit random secret leaked "
                   "by Figures 10/11");
    cli.defaultSeed(kSecretSeed).scaleOption("number of secret bits", 1000);
    const HarnessOptions opt = cli.parse(argc, argv);
    const unsigned bits = static_cast<unsigned>(opt.scale);

    // Generation is pure Rng work — one "trial" whose seed is the
    // master seed itself, so the pattern matches Figures 10/11.
    const ExperimentResult result = runExperiment(
        cli, opt, {cli.baseSpec(opt).with("bits", bits)},
        [bits](const TrialContext &ctx) {
            Rng rng(ctx.masterSeed);
            std::vector<double> pattern;
            for (unsigned i = 0; i < bits; ++i)
                pattern.push_back(static_cast<double>(rng.range(2)));
            TrialOutput out;
            out.samples("bits", std::move(pattern));
            return out;
        });

    const std::vector<double> &pattern = result.row(0).values("bits");
    std::cout << "=== Figure 9: " << bits << "-bit random secret (seed "
              << opt.seed << ") ===\n\n";
    unsigned ones = 0;
    for (unsigned i = 0; i < pattern.size(); ++i) {
        const int bit = static_cast<int>(pattern[i]);
        ones += bit;
        std::cout << bit;
        if (i % 100 == 99)
            std::cout << "\n";
    }
    std::cout << "\npopulation: " << ones << " ones / "
              << pattern.size() - ones << " zeros\n";
    return finishExperiment(result, opt);
}
