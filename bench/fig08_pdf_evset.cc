/**
 * @file
 * Figure 8: probability density of the sender's observed latency with
 * eviction sets, estimated by KDE over 1,000 samples per secret.
 * Paper: ~32-cycle mean separation, decode threshold 183.
 */

#include <iostream>

#include "pdf_figure.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig08_pdf_evset",
                   "Figure 8: latency PDF per secret, with eviction sets");
    return runPdfFigure(std::cout, cli, argc, argv, "unxpec-evset",
                        "Figure 8: latency PDF, with eviction sets", 32,
                        183);
}
