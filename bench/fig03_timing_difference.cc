/**
 * @file
 * Figure 3: secret-dependent timing difference of the rollback vs the
 * number of squashed transient loads, without eviction sets.
 * Paper: ~22 cycles at one load, growing slowly to ~25 at eight.
 *
 * Harness-driven: one ExperimentSpec per load count, `--reps` trials
 * each, fanned out by the TrialRunner (`--threads`); `--json`/`--csv`
 * emit the machine-readable artifact.
 */

#include <iostream>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig03_timing_difference",
                   "Figure 3: rollback timing difference vs squashed "
                   "transient loads, no eviction sets");
    cli.defaultReps(5);
    const HarnessOptions opt = cli.parse(argc, argv);

    std::vector<ExperimentSpec> specs;
    for (unsigned loads = 1; loads <= 8; ++loads) {
        ExperimentSpec spec = cli.baseSpec(opt);
        spec.label = "loads=" + std::to_string(loads);
        spec.attackCfg.inBranchLoads = loads;
        spec.with("loads", loads);
        specs.push_back(spec);
    }

    const ExperimentResult result =
        runExperiment(cli, opt, specs, [](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            attack.setSecret(0);
            const double zero = attack.measureOnce();
            attack.setSecret(1);
            const double one = attack.measureOnce();
            TrialOutput out;
            out.metric("delta_cycles", one - zero);
            return out;
        });

    std::cout << "=== Figure 3: rollback timing difference, "
                 "no eviction sets ===\n\n";
    TextTable table({"squashed loads", "timing difference (cycles)",
                     "paper (approx)"});
    const double paper[8] = {22, 21, 22, 23, 23, 24, 25, 25};
    for (unsigned loads = 1; loads <= 8; ++loads) {
        const ResultRow &row = result.row(loads - 1);
        table.addRow({std::to_string(loads),
                      TextTable::num(row.mean("delta_cycles")),
                      TextTable::num(paper[loads - 1], 0)});
    }
    table.print(std::cout);
    std::cout << "\nClaim reproduced: a single transient load yields a "
                 "~22-cycle difference;\ngrowth with more loads is slow "
                 "(pipelined invalidation).\n";
    return finishExperiment(result, opt);
}
