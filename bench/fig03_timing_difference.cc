/**
 * @file
 * Figure 3: secret-dependent timing difference of the rollback vs the
 * number of squashed transient loads, without eviction sets.
 * Paper: ~22 cycles at one load, growing slowly to ~25 at eight.
 */

#include <iostream>

#include "analysis/table.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

using namespace unxpec;

namespace {

double
meanDelta(unsigned loads, bool evsets, unsigned reps)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.inBranchLoads = loads;
    cfg.useEvictionSets = evsets;
    UnxpecAttack attack(core, cfg);
    double zeros = 0.0, ones = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        attack.setSecret(0);
        zeros += attack.measureOnce();
        attack.setSecret(1);
        ones += attack.measureOnce();
    }
    return (ones - zeros) / reps;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 3: rollback timing difference, "
                 "no eviction sets ===\n\n";
    TextTable table({"squashed loads", "timing difference (cycles)",
                     "paper (approx)"});
    const double paper[8] = {22, 21, 22, 23, 23, 24, 25, 25};
    for (unsigned loads = 1; loads <= 8; ++loads) {
        table.addRow({std::to_string(loads),
                      TextTable::num(meanDelta(loads, false, 5)),
                      TextTable::num(paper[loads - 1], 0)});
    }
    table.print(std::cout);
    std::cout << "\nClaim reproduced: a single transient load yields a "
                 "~22-cycle difference;\ngrowth with more loads is slow "
                 "(pipelined invalidation).\n";
    return 0;
}
