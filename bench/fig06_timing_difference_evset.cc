/**
 * @file
 * Figure 6: timing difference with eviction sets priming the target L1
 * sets, forcing one restoration per squashed load.
 * Paper: ~32 cycles at one load up to ~64 at eight.
 * Also prints the invalidation-vs-restoration split (our ablation).
 */

#include <iostream>

#include "analysis/table.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

using namespace unxpec;

namespace {

struct Point
{
    double delta = 0.0;
    unsigned restores = 0;
    Cycle stall = 0;
};

Point
measure(unsigned loads, bool evsets, unsigned reps)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.inBranchLoads = loads;
    cfg.useEvictionSets = evsets;
    UnxpecAttack attack(core, cfg);
    Point point;
    double zeros = 0.0, ones = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        attack.setSecret(0);
        zeros += attack.measureOnce();
        attack.setSecret(1);
        ones += attack.measureOnce();
        point.restores = attack.lastDetail().restores;
        point.stall = attack.lastDetail().cleanupStall;
    }
    point.delta = (ones - zeros) / reps;
    return point;
}

} // namespace

int
main()
{
    std::cout << "=== Figure 6: rollback timing difference, "
                 "with eviction sets ===\n\n";
    TextTable table({"squashed loads", "difference (cycles)",
                     "restores/round", "rollback stall", "paper (approx)"});
    const double paper[8] = {32, 37, 41, 46, 51, 55, 60, 64};
    for (unsigned loads = 1; loads <= 8; ++loads) {
        const Point point = measure(loads, true, 5);
        table.addRow({std::to_string(loads), TextTable::num(point.delta),
                      std::to_string(point.restores),
                      std::to_string(point.stall),
                      TextTable::num(paper[loads - 1], 0)});
    }
    table.print(std::cout);

    // Ablation: restoration's contribution = with-evset minus plain.
    std::cout << "\nAblation (restoration contribution at n loads):\n";
    for (unsigned loads : {1u, 4u, 8u}) {
        const double with_es = measure(loads, true, 3).delta;
        const double without = measure(loads, false, 3).delta;
        std::cout << "  n=" << loads << ": invalidation "
                  << TextTable::num(without) << " + restoration "
                  << TextTable::num(with_es - without) << " = "
                  << TextTable::num(with_es) << " cycles\n";
    }
    std::cout << "\nClaim reproduced: eviction sets enlarge the channel "
                 "from ~22 to 32.."
              << TextTable::num(measure(8, true, 3).delta, 0)
              << " cycles.\n";
    return 0;
}
