/**
 * @file
 * Figure 6: timing difference with eviction sets priming the target L1
 * sets, forcing one restoration per squashed load.
 * Paper: ~32 cycles at one load up to ~64 at eight.
 * Also prints the invalidation-vs-restoration split (our ablation),
 * computed from a parallel sweep over both variants.
 */

#include <iostream>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig06_timing_difference_evset",
                   "Figure 6: rollback timing difference vs squashed "
                   "loads, with eviction sets (+ ablation split)");
    cli.defaultReps(5);
    const HarnessOptions opt = cli.parse(argc, argv);

    std::vector<ExperimentSpec> specs;
    for (const bool evsets : {true, false}) {
        for (unsigned loads = 1; loads <= 8; ++loads) {
            ExperimentSpec spec = cli.baseSpec(opt);
            spec.label = std::string(evsets ? "evset" : "plain") +
                         " loads=" + std::to_string(loads);
            spec.attack = evsets ? "unxpec-evset" : "unxpec";
            spec.attackCfg.inBranchLoads = loads;
            spec.with("evset", evsets).with("loads", loads);
            specs.push_back(spec);
        }
    }

    const ExperimentResult result =
        runExperiment(cli, opt, specs, [](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            attack.setSecret(0);
            const double zero = attack.measureOnce();
            attack.setSecret(1);
            const double one = attack.measureOnce();
            TrialOutput out;
            out.metric("delta_cycles", one - zero);
            out.metric("restores",
                       static_cast<double>(attack.lastDetail().restores));
            out.metric("rollback_stall",
                       static_cast<double>(
                           attack.lastDetail().cleanupStall));
            return out;
        });

    auto delta = [&result](bool evsets, unsigned loads) {
        return result
            .rowAt({{"evset", evsets ? 1.0 : 0.0},
                    {"loads", static_cast<double>(loads)}})
            .mean("delta_cycles");
    };

    std::cout << "=== Figure 6: rollback timing difference, "
                 "with eviction sets ===\n\n";
    TextTable table({"squashed loads", "difference (cycles)",
                     "restores/round", "rollback stall", "paper (approx)"});
    const double paper[8] = {32, 37, 41, 46, 51, 55, 60, 64};
    for (unsigned loads = 1; loads <= 8; ++loads) {
        const ResultRow &row = result.rowAt(
            {{"evset", 1.0}, {"loads", static_cast<double>(loads)}});
        table.addRow({std::to_string(loads),
                      TextTable::num(row.mean("delta_cycles")),
                      TextTable::num(row.mean("restores"), 0),
                      TextTable::num(row.mean("rollback_stall"), 0),
                      TextTable::num(paper[loads - 1], 0)});
    }
    table.print(std::cout);

    // Ablation: restoration's contribution = with-evset minus plain.
    std::cout << "\nAblation (restoration contribution at n loads):\n";
    for (unsigned loads : {1u, 4u, 8u}) {
        const double with_es = delta(true, loads);
        const double without = delta(false, loads);
        std::cout << "  n=" << loads << ": invalidation "
                  << TextTable::num(without) << " + restoration "
                  << TextTable::num(with_es - without) << " = "
                  << TextTable::num(with_es) << " cycles\n";
    }
    std::cout << "\nClaim reproduced: eviction sets enlarge the channel "
                 "from ~22 to 32.."
              << TextTable::num(delta(true, 8), 0) << " cycles.\n";
    return finishExperiment(result, opt);
}
