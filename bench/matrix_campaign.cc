/**
 * @file
 * The attack x defense matrix campaign: every defense in the zoo (or
 * the curated default subset) crossed with both receiver families —
 * the unXpec rollback-timing channel and the SpectreRewind-style FU
 * contention channel. One Table-I-style artifact comes out: the
 * channel AUC, timing delta, and workload overhead per cell, written
 * as <out>.json (schema unxpec-matrix-v1, CI diffs it) and <out>.md
 * (MATRIX.md is a checked-in copy).
 *
 * The point of the matrix: "invisible to the cache" is not "invisible".
 * SafeSpec/SpecBox/CacheSquash all close the unXpec cache channel
 * (AUC -> 0.5), but the contention receiver — which never touches
 * memory speculatively — still reads the secret through the
 * multiplier's busy window on every one of them.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/matrix_report.hh"
#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/matrix.hh"
#include "sim/log.hh"

using namespace unxpec;

namespace {

bool
writeArtifact(const MatrixReport &report, const std::string &path,
              bool json)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    if (json)
        report.writeJson(os);
    else
        report.writeMarkdown(os);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("matrix_campaign",
                   "Attack x defense matrix: AUC, timing delta, and "
                   "workload overhead per (defense, receiver) cell");
    cli.defaultMode("unsafe")
        .scaleOption("receiver samples per secret class per trial", 24)
        .textArg("output base path (writes BASE.json and BASE.md)",
                 "matrix");
    const HarnessOptions opt = cli.parse(argc, argv);

    const std::vector<ExperimentSpec> specs =
        matrixSpecs(cli.baseSpec(opt), opt.matrix);
    const ExperimentResult result = runExperiment(
        cli, opt, specs,
        matrixTrialFn(static_cast<unsigned>(opt.scale)));

    const MatrixReport report = MatrixReport::fromResult(result);
    bool wrote = writeArtifact(report, opt.text + ".json", true);
    wrote = writeArtifact(report, opt.text + ".md", false) && wrote;

    std::cout << "=== Attack x defense matrix ===\n\n";
    TextTable table({"defense", "unxpec AUC", "contention AUC",
                     "overhead"});
    for (const std::string &defense : report.defenses()) {
        const MatrixCell *cache = report.cell(defense, "unxpec");
        const MatrixCell *fu = report.cell(defense, "contention");
        double overhead = 0.0;
        if (cache)
            overhead = std::max(overhead, cache->overheadPct);
        if (fu)
            overhead = std::max(overhead, fu->overheadPct);
        table.addRow({defense,
                      cache ? TextTable::num(cache->auc) : "-",
                      fu ? TextTable::num(fu->auc) : "-",
                      TextTable::num(overhead) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nArtifacts: " << opt.text << ".json, " << opt.text
              << ".md\nReading guide: AUC 1.0 = channel wide open, 0.5 = "
                 "closed. Cache defenses close the unxpec column; only "
                 "a contention-aware defense would close the contention "
                 "column.\n";

    const int code = finishExperiment(result, opt);
    return wrote ? code : 1;
}
