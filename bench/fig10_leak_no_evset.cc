/**
 * @file
 * Figure 10: leak a 1,000-bit random secret with one sample per bit,
 * without eviction sets, and report the observed latencies and the
 * guesses. Paper: 867/1000 bits correct (86.7 %).
 */

#include <iostream>

#include "leak_figure.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig10_leak_no_evset",
                   "Figure 10: leak the 1,000-bit secret, one sample per "
                   "bit, no eviction sets");
    return runLeakFigure(std::cout, cli, argc, argv, "unxpec",
                         "Figure 10: secret leakage, no eviction sets",
                         "86.7");
}
