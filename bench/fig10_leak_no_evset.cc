/**
 * @file
 * Figure 10: leak a 1,000-bit random secret with one sample per bit,
 * without eviction sets, and report the observed latencies and the
 * guesses. Paper: 867/1000 bits correct (86.7 %).
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/summary.hh"
#include "analysis/table.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"

using namespace unxpec;

static constexpr std::uint64_t kSecretSeed = 20220402;

int
main(int argc, char **argv)
{
    const unsigned bits = argc > 1 ? std::atoi(argv[1]) : 1000;
    std::cout << "=== Figure 10: secret leakage, no eviction sets ("
              << bits << " bits, 1 sample/bit) ===\n\n";

    SystemConfig cfg = SystemConfig::makeDefault();
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecAttack attack(core, UnxpecConfig{});
    const double threshold = attack.calibrate(300);

    Rng rng(kSecretSeed);
    std::vector<int> secret;
    for (unsigned i = 0; i < bits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));

    const LeakResult result = attack.leak(secret, threshold);
    const auto report = BitChannelReport::of(result.guesses, secret);

    std::cout << "decode threshold: " << TextTable::num(threshold)
              << " cycles\n\n";
    std::cout << "first 100 bits (secret / guess / latency):\n";
    for (unsigned i = 0; i < std::min<unsigned>(100, bits); ++i) {
        std::cout << "  bit " << i << ": " << secret[i] << " / "
                  << result.guesses[i] << " / " << result.latencies[i]
                  << (secret[i] != result.guesses[i] ? "   <-- error" : "")
                  << "\n";
    }

    const Summary lat = Summary::of(result.latencies);
    std::cout << "\nobserved latency: mean " << TextTable::num(lat.mean)
              << ", min " << TextTable::num(lat.min) << ", max "
              << TextTable::num(lat.max) << "\n";
    std::cout << "correct bits: " << report.true0 + report.true1 << "/"
              << bits << "\n";
    std::cout << "accuracy: " << TextTable::num(report.accuracy() * 100)
              << " % (paper: 86.7 %)\n";
    std::cout << "per-class error: secret0 "
              << TextTable::num(report.zeroErrorRate() * 100)
              << " %, secret1 "
              << TextTable::num(report.oneErrorRate() * 100) << " %\n";
    return 0;
}
