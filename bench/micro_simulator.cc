/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cache
 * access throughput, core instruction throughput, and full attack
 * round latency. These guard the simulator's own performance, not the
 * paper's results.
 */

#include <benchmark/benchmark.h>

#include "attack/unxpec.hh"
#include "harness/spec.hh"
#include "cpu/core.hh"
#include "memory/hierarchy.hh"
#include "sim/config.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

static void
BM_CacheAccess(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        now += 200;
        addr += 8192;
        benchmark::DoNotOptimize(
            hier.access(addr, now, false, false, now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void
BM_CacheHit(benchmark::State &state)
{
    SystemConfig cfg = makeDefense("cleanup_l1l2");
    Rng rng(1);
    MemoryHierarchy hier(cfg, rng);
    hier.access(0x1000, 0, false, false, 0);
    Cycle now = 1000;
    for (auto _ : state) {
        ++now;
        benchmark::DoNotOptimize(
            hier.access(0x1000, now, false, false, now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

static void
BM_CoreInstructionThroughput(benchmark::State &state)
{
    Core core(makeDefense("unsafe"));
    const Program program =
        SynthSpec::generate(SynthSpec::profile("x264_r"), 1);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        RunOptions options;
        options.maxInstructions = 10000;
        const RunResult r = core.run(program, options);
        instructions += r.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_CoreInstructionThroughput)->Unit(benchmark::kMillisecond);

static void
BM_UnxpecRound(benchmark::State &state)
{
    Core core(makeDefense("cleanup_l1l2"));
    UnxpecAttack attack(core);
    attack.setSecret(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(attack.measureOnce());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnxpecRound)->Unit(benchmark::kMicrosecond);

static void
BM_WorkloadSimulation(benchmark::State &state)
{
    Core core(makeDefense("cleanup_l1l2"));
    const Program program =
        SynthSpec::generate(SynthSpec::profile("mcf_r"), 1);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        RunOptions options;
        options.maxInstructions = 10000;
        cycles += core.run(program, options).cycles;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
    state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_WorkloadSimulation)->Unit(benchmark::kMillisecond);
