/**
 * @file
 * Figure 2: branch resolution time is relatively constant for a fixed
 * branching statement f(N) — regardless of the number of loads in the
 * branch and of the secret — and grows linearly with the number N of
 * dependent memory accesses in f(N).
 *
 * Paper values (gem5): ~110 cycles at N=1 rising to ~230 at N=3 with
 * +60/access (their chained accesses hit closer caches); our chained
 * accesses are full memory misses, so the step is ~114 cycles — the
 * linear/constant *shape* is the figure's claim.
 */

#include <iostream>

#include "analysis/table.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

using namespace unxpec;

int
main()
{
    std::cout << "=== Figure 2: branch resolution time (cycles) ===\n"
              << "rows: f(N) memory accesses x secret; "
              << "cols: loads inside branch\n\n";

    TextTable table({"condition", "secret", "1 load", "2", "3", "4", "5"});
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            std::vector<std::string> row = {
                std::to_string(accesses) + " access" +
                    (accesses > 1 ? "es" : ""),
                std::to_string(secret)};
            for (unsigned loads = 1; loads <= 5; ++loads) {
                Core core(SystemConfig::makeDefault());
                UnxpecConfig cfg;
                cfg.inBranchLoads = loads;
                cfg.conditionAccesses = accesses;
                UnxpecAttack attack(core, cfg);
                attack.setSecret(secret);
                attack.measureOnce(); // warm round
                attack.measureOnce();
                row.push_back(std::to_string(
                    attack.lastDetail().branchResolution));
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nClaims reproduced: constant across in-branch loads "
                 "and secret; linear in f(N) accesses.\n";
    return 0;
}
