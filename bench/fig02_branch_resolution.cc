/**
 * @file
 * Figure 2: branch resolution time is relatively constant for a fixed
 * branching statement f(N) — regardless of the number of loads in the
 * branch and of the secret — and grows linearly with the number N of
 * dependent memory accesses in f(N).
 *
 * Paper values (gem5): ~110 cycles at N=1 rising to ~230 at N=3 with
 * +60/access (their chained accesses hit closer caches); our chained
 * accesses are full memory misses, so the step is ~114 cycles — the
 * linear/constant *shape* is the figure's claim.
 */

#include <iostream>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig02_branch_resolution",
                   "Figure 2: branch resolution time vs f(N) accesses, "
                   "in-branch loads, and secret");
    const HarnessOptions opt = cli.parse(argc, argv);

    std::vector<ExperimentSpec> specs;
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            for (unsigned loads = 1; loads <= 5; ++loads) {
                ExperimentSpec spec = cli.baseSpec(opt);
                spec.label = "N=" + std::to_string(accesses) +
                             " secret=" + std::to_string(secret) +
                             " loads=" + std::to_string(loads);
                spec.attackCfg.inBranchLoads = loads;
                spec.attackCfg.conditionAccesses = accesses;
                spec.with("accesses", accesses)
                    .with("secret", secret)
                    .with("loads", loads);
                specs.push_back(spec);
            }
        }
    }

    const ExperimentResult result =
        runExperiment(cli, opt, specs, [](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            attack.setSecret(static_cast<int>(ctx.spec.param("secret")));
            attack.measureOnce(); // warm round
            attack.measureOnce();
            TrialOutput out;
            out.metric("branch_resolution",
                       static_cast<double>(
                           attack.lastDetail().branchResolution));
            return out;
        });

    std::cout << "=== Figure 2: branch resolution time (cycles) ===\n"
              << "rows: f(N) memory accesses x secret; "
              << "cols: loads inside branch\n\n";
    TextTable table({"condition", "secret", "1 load", "2", "3", "4", "5"});
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            std::vector<std::string> row = {
                std::to_string(accesses) + " access" +
                    (accesses > 1 ? "es" : ""),
                std::to_string(secret)};
            for (unsigned loads = 1; loads <= 5; ++loads) {
                const ResultRow &point = result.rowAt(
                    {{"accesses", static_cast<double>(accesses)},
                     {"secret", static_cast<double>(secret)},
                     {"loads", static_cast<double>(loads)}});
                row.push_back(TextTable::num(
                    point.mean("branch_resolution"), 0));
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nClaims reproduced: constant across in-branch loads "
                 "and secret; linear in f(N) accesses.\n";
    return finishExperiment(result, opt);
}
