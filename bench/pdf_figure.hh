/**
 * @file
 * Shared driver for Figures 7 and 8: collect latency samples for both
 * secrets through the harness (each trial contributes an equal slice
 * of the sample budget from its own Core), then print summary stats,
 * the calibrated threshold, the ROC AUC, and the ASCII KDE curves.
 */

#ifndef UNXPEC_BENCH_PDF_FIGURE_HH
#define UNXPEC_BENCH_PDF_FIGURE_HH

#include <ostream>
#include <string>

#include "analysis/kde.hh"
#include "analysis/roc.hh"
#include "analysis/summary.hh"
#include "analysis/table.hh"
#include "attack/channel.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

namespace unxpec {

inline int
runPdfFigure(std::ostream &os, HarnessCli &cli, int argc,
             char **argv, const char *attack_variant,
             const char *title, double paper_delta,
             int paper_threshold)
{
    cli.defaultReps(8)
        .defaultNoise("evaluation")
        .scaleOption("latency samples per secret", 1000);
    const HarnessOptions opt = cli.parse(argc, argv);

    ExperimentSpec spec = cli.baseSpec(opt);
    spec.label = "pdf";
    spec.attack = attack_variant;
    // Split the sample budget evenly over the trials; the merged
    // series is deterministic because trials concatenate in rep order.
    const unsigned per_trial = static_cast<unsigned>(
        (opt.scale + opt.reps - 1) / opt.reps);

    const ExperimentResult result = runExperiment(
        cli, opt, {spec}, [per_trial](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            TrialOutput out;
            out.samples("latency_secret0", attack.collect(0, per_trial));
            out.samples("latency_secret1", attack.collect(1, per_trial));
            return out;
        });

    const ResultRow &row = result.row(0);
    const std::vector<double> &zeros = row.values("latency_secret0");
    const std::vector<double> &ones = row.values("latency_secret1");
    const Summary s0 = row.metric("latency_secret0")->summary;
    const Summary s1 = row.metric("latency_secret1")->summary;
    const double threshold = CovertChannel::calibrateThreshold(zeros, ones);

    os << "=== " << title << " (" << zeros.size()
              << " samples/secret) ===\n\n";
    TextTable table({"secret", "mean", "stdev", "median", "p25", "p75"});
    table.addRow({"0", TextTable::num(s0.mean), TextTable::num(s0.stddev),
                  TextTable::num(s0.median), TextTable::num(s0.p25),
                  TextTable::num(s0.p75)});
    table.addRow({"1", TextTable::num(s1.mean), TextTable::num(s1.stddev),
                  TextTable::num(s1.median), TextTable::num(s1.p25),
                  TextTable::num(s1.p75)});
    table.print(os);

    os << "\nmean timing difference: "
              << TextTable::num(s1.mean - s0.mean) << " cycles (paper: "
              << TextTable::num(paper_delta, 0) << ")\n";
    os << "calibrated threshold:   " << TextTable::num(threshold)
              << " (paper: " << paper_threshold << ")\n";
    const RocCurve roc = RocCurve::of(zeros, ones);
    os << "channel AUC:            "
              << TextTable::num(roc.auc(), 3) << " (0.5 = blind, 1 = "
              << "perfect; best J at threshold "
              << TextTable::num(roc.best().threshold) << ")\n\n";

    const auto curve0 = Kde::curve(zeros, 130, 250, 100);
    const auto curve1 = Kde::curve(ones, 130, 250, 100);
    printDensity(os, curve0, "secret=0", curve1, "secret=1");
    return finishExperiment(result, opt);
}

} // namespace unxpec

#endif // UNXPEC_BENCH_PDF_FIGURE_HH
