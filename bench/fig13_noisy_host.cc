/**
 * @file
 * Figure 13: branch resolution time on a real (noisy) processor — the
 * paper uses an Intel i7-8550U. We substitute a "noisy host" profile
 * (longer memory path, DRAM jitter, interrupt noise) and reproduce the
 * figure's claim: despite the noise, branch resolution time stays
 * approximately constant per f(N) and independent of the secret.
 */

#include <iostream>

#include "analysis/summary.hh"
#include "analysis/table.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

using namespace unxpec;

namespace {

Summary
resolutionStats(unsigned accesses, unsigned loads, int secret,
                unsigned reps)
{
    SystemConfig cfg = SystemConfig::makeNoisyHost();
    const NoiseProfile noise = NoiseProfile::noisyHost();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecConfig ucfg;
    ucfg.inBranchLoads = loads;
    ucfg.conditionAccesses = accesses;
    UnxpecAttack attack(core, ucfg);
    attack.setSecret(secret);
    attack.measureOnce(); // warmup

    std::vector<double> resolutions;
    for (unsigned r = 0; r < reps; ++r) {
        attack.measureOnce();
        if (attack.lastDetail().valid) {
            resolutions.push_back(
                static_cast<double>(attack.lastDetail().branchResolution));
        }
    }
    return Summary::of(resolutions);
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned reps = argc > 1 ? std::atoi(argv[1]) : 20;
    std::cout << "=== Figure 13: branch resolution on a noisy host "
                 "(i7-8550U stand-in; mean of " << reps
              << " rounds) ===\n\n";

    TextTable table({"condition", "secret", "1 load", "2", "3", "4", "5"});
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            std::vector<std::string> row = {
                std::to_string(accesses) + " access" +
                    (accesses > 1 ? "es" : ""),
                std::to_string(secret)};
            for (unsigned loads = 1; loads <= 5; ++loads) {
                const Summary s =
                    resolutionStats(accesses, loads, secret, reps);
                row.push_back(TextTable::num(s.mean, 0) + "±" +
                              TextTable::num(s.stddev, 0));
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nClaim reproduced: even under host noise the "
                 "resolution time is flat across loads/secrets\n"
                 "and scales with f(N) — the channel's premise survives "
                 "on real machines (§VI-D).\n";
    return 0;
}
