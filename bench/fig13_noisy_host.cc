/**
 * @file
 * Figure 13: branch resolution time on a real (noisy) processor — the
 * paper uses an Intel i7-8550U. We substitute a "noisy host" profile
 * (longer memory path, DRAM jitter, interrupt noise) and reproduce the
 * figure's claim: despite the noise, branch resolution time stays
 * approximately constant per f(N) and independent of the secret.
 */

#include <iostream>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig13_noisy_host",
                   "Figure 13: branch resolution on a noisy host "
                   "(i7-8550U stand-in)");
    cli.defaultReps(20).defaultMode("noisy_host").defaultNoise("noisy_host");
    const HarnessOptions opt = cli.parse(argc, argv);

    std::vector<ExperimentSpec> specs;
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            for (unsigned loads = 1; loads <= 5; ++loads) {
                ExperimentSpec spec = cli.baseSpec(opt);
                spec.label = std::to_string(accesses) + "acc/s" +
                             std::to_string(secret) + "/" +
                             std::to_string(loads) + "ld";
                spec.attackCfg.conditionAccesses = accesses;
                spec.attackCfg.inBranchLoads = loads;
                spec.with("accesses", accesses)
                    .with("secret", secret)
                    .with("loads", loads);
                specs.push_back(std::move(spec));
            }
        }
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            attack.setSecret(
                static_cast<int>(ctx.spec.param("secret")));
            attack.measureOnce(); // warmup
            attack.measureOnce();
            TrialOutput out;
            if (attack.lastDetail().valid) {
                out.metric("branch_resolution",
                           static_cast<double>(
                               attack.lastDetail().branchResolution));
            }
            return out;
        });

    std::cout << "=== Figure 13: branch resolution on a noisy host "
                 "(i7-8550U stand-in; mean of " << opt.reps
              << " rounds) ===\n\n";

    TextTable table({"condition", "secret", "1 load", "2", "3", "4", "5"});
    for (unsigned accesses = 1; accesses <= 3; ++accesses) {
        for (int secret = 0; secret <= 1; ++secret) {
            std::vector<std::string> row = {
                std::to_string(accesses) + " access" +
                    (accesses > 1 ? "es" : ""),
                std::to_string(secret)};
            for (unsigned loads = 1; loads <= 5; ++loads) {
                const ResultRow &res = result.rowAt(
                    {{"accesses", static_cast<double>(accesses)},
                     {"secret", static_cast<double>(secret)},
                     {"loads", static_cast<double>(loads)}});
                const MetricSeries *s = res.metric("branch_resolution");
                row.push_back(s ? TextTable::num(s->summary.mean, 0) + "±" +
                                      TextTable::num(s->summary.stddev, 0)
                                : std::string("n/a"));
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);

    unsigned censored = 0, missing = 0;
    for (const ResultRow &res : result.rows) {
        censored += res.censoredTrials;
        missing += res.missingTrials;
    }
    if (censored > 0)
        std::cout << "\n(" << censored
                  << " censored trials excluded from the means)\n";
    if (result.incomplete)
        std::cout << "\nWARNING: campaign incomplete — " << missing
                  << " trials never finished; the table shows partial "
                     "results (finish with --resume).\n";

    std::cout << "\nClaim reproduced: even under host noise the "
                 "resolution time is flat across loads/secrets\n"
                 "and scales with f(N) — the channel's premise survives "
                 "on real machines (§VI-D).\n";
    return finishExperiment(result, opt);
}
