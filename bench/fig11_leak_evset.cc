/**
 * @file
 * Figure 11: leak the same 1,000-bit secret with eviction sets.
 * Paper: 916/1000 bits correct (91.6 %).
 */

#include <iostream>

#include "leak_figure.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("fig11_leak_evset",
                   "Figure 11: leak the 1,000-bit secret, one sample per "
                   "bit, with eviction sets");
    return runLeakFigure(std::cout, cli, argc, argv, "unxpec-evset",
                         "Figure 11: secret leakage, with eviction sets",
                         "91.6");
}
