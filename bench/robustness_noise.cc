/**
 * @file
 * §VI-D robustness sweep beyond Fig. 13: single- and multi-sample
 * decode accuracy under increasing system noise, for both unXpec
 * variants. Reproduces the section's three claims: (1) the cleanup
 * stall itself is noise-immune (the core is stalled), (2) noise hits
 * both secrets alike, (3) more samples per bit buy accuracy back.
 */

#include <iostream>

#include "analysis/table.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"
#include "sim/rng.hh"

using namespace unxpec;

namespace {

double
accuracyUnder(const NoiseProfile &noise, bool evsets,
              unsigned samples_per_bit, unsigned bits)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecConfig ucfg;
    ucfg.useEvictionSets = evsets;
    UnxpecAttack attack(core, ucfg);
    const double threshold = attack.calibrate(120);

    Rng rng(4242);
    std::vector<int> secret;
    for (unsigned i = 0; i < bits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    const LeakResult result = samples_per_bit <= 1
        ? attack.leak(secret, threshold)
        : attack.leakMultiSample(secret, threshold, samples_per_bit);
    return result.accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned bits = argc > 1 ? std::atoi(argv[1]) : 150;
    std::cout << "=== SVI-D robustness: accuracy vs noise and "
                 "samples/bit (" << bits << " bits) ===\n\n";

    struct Level
    {
        const char *name;
        NoiseProfile profile;
    };
    const Level levels[] = {
        {"quiet", NoiseProfile::quiet()},
        {"evaluation", NoiseProfile::evaluation()},
        {"noisy host", NoiseProfile::noisyHost()},
    };

    TextTable table({"noise", "variant", "1 sample", "3 samples",
                     "5 samples"});
    for (const Level &level : levels) {
        for (const bool evsets : {false, true}) {
            std::vector<std::string> row = {
                level.name, evsets ? "eviction sets" : "plain"};
            for (const unsigned samples : {1u, 3u, 5u}) {
                row.push_back(TextTable::num(
                    accuracyUnder(level.profile, evsets, samples, bits) *
                    100.0) + "%");
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);

    std::cout << "\nClaims reproduced: quiet decoding is exact; under "
                 "noise the eviction-set variant's\nlarger margin wins; "
                 "majority voting recovers accuracy at proportional "
                 "rate cost.\n";
    return 0;
}
