/**
 * @file
 * §VI-D robustness sweep beyond Fig. 13: single- and multi-sample
 * decode accuracy under increasing system noise, for both unXpec
 * variants. Reproduces the section's three claims: (1) the cleanup
 * stall itself is noise-immune (the core is stalled), (2) noise hits
 * both secrets alike, (3) more samples per bit buy accuracy back.
 */

#include <iostream>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "sim/rng.hh"

using namespace unxpec;

namespace {

/** Seed of the fixed random secret (same pattern as the seed bench). */
constexpr std::uint64_t kSecretSeed = 4242;

constexpr unsigned kCalibrationSamples = 120;

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("robustness_noise",
                   "SVI-D robustness: decode accuracy vs noise level and "
                   "samples per bit");
    cli.scaleOption("secret bits per point", 150);
    const HarnessOptions opt = cli.parse(argc, argv);
    const unsigned bits = static_cast<unsigned>(opt.scale);

    const std::vector<std::pair<const char *, const char *>> levels = {
        {"quiet", "quiet"},
        {"evaluation", "evaluation"},
        {"noisy host", "noisy_host"},
    };

    std::vector<ExperimentSpec> specs;
    for (std::size_t n = 0; n < levels.size(); ++n) {
        for (const bool evsets : {false, true}) {
            for (const unsigned samples : {1u, 3u, 5u}) {
                ExperimentSpec spec = cli.baseSpec(opt);
                spec.label = std::string(levels[n].first) + "/" +
                             (evsets ? "evset" : "plain") + "/" +
                             std::to_string(samples) + "spb";
                spec.noise = levels[n].second;
                spec.attack = evsets ? "unxpec-evset" : "unxpec";
                spec.with("noise_level", static_cast<double>(n))
                    .with("evset", evsets ? 1 : 0)
                    .with("samples_per_bit", samples);
                specs.push_back(std::move(spec));
            }
        }
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [bits](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            const double threshold = attack.calibrate(kCalibrationSamples);

            Rng rng(kSecretSeed);
            std::vector<int> secret;
            for (unsigned i = 0; i < bits; ++i)
                secret.push_back(static_cast<int>(rng.range(2)));
            const unsigned samples = static_cast<unsigned>(
                ctx.spec.param("samples_per_bit", 1));
            const LeakResult leak = samples <= 1
                ? attack.leak(secret, threshold)
                : attack.leakMultiSample(secret, threshold, samples);
            TrialOutput out;
            out.metric("accuracy", leak.accuracy);
            return out;
        });

    std::cout << "=== SVI-D robustness: accuracy vs noise and "
                 "samples/bit (" << bits << " bits) ===\n\n";

    TextTable table({"noise", "variant", "1 sample", "3 samples",
                     "5 samples"});
    for (std::size_t n = 0; n < levels.size(); ++n) {
        for (const bool evsets : {false, true}) {
            std::vector<std::string> row = {
                levels[n].first, evsets ? "eviction sets" : "plain"};
            for (const unsigned samples : {1u, 3u, 5u}) {
                const double accuracy =
                    result
                        .rowAt({{"noise_level", static_cast<double>(n)},
                                {"evset", evsets ? 1.0 : 0.0},
                                {"samples_per_bit",
                                 static_cast<double>(samples)}})
                        .mean("accuracy");
                row.push_back(TextTable::num(accuracy * 100.0) + "%");
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);

    std::cout << "\nClaims reproduced: quiet decoding is exact; under "
                 "noise the eviction-set variant's\nlarger margin wins; "
                 "majority voting recovers accuracy at proportional "
                 "rate cost.\n";
    return finishExperiment(result, opt);
}
