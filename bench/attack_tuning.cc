/**
 * @file
 * §V-C attack parameterization: trade the number of in-branch loads
 * and the POISON length against rate and accuracy. Reproduces the
 * section's guidance: without eviction sets a single load already
 * separates the secrets, so fewer loads maximize goodput; with
 * eviction sets extra loads buy margin (and noisy-environment
 * accuracy) at proportional rate cost.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "sim/rng.hh"

using namespace unxpec;

namespace {

/** Seed of the fixed random secret (same pattern as the seed bench). */
constexpr std::uint64_t kSecretSeed = 31337;

constexpr unsigned kCalibrationSamples = 100;

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("attack_tuning",
                   "SV-C attack parameterization: loads and POISON length "
                   "vs rate and accuracy");
    cli.defaultNoise("evaluation").scaleOption("secret bits per point", 200);
    const HarnessOptions opt = cli.parse(argc, argv);
    const unsigned bits = static_cast<unsigned>(opt.scale);

    std::vector<ExperimentSpec> specs;
    for (const bool evsets : {false, true}) {
        for (const unsigned loads : {1u, 2u, 4u, 8u}) {
            ExperimentSpec spec = cli.baseSpec(opt);
            spec.label = std::string(evsets ? "evset" : "plain") +
                         "/loads=" + std::to_string(loads);
            spec.attack = evsets ? "unxpec-evset" : "unxpec";
            spec.attackCfg.inBranchLoads = loads;
            spec.with("evset", evsets ? 1 : 0).with("loads", loads);
            specs.push_back(std::move(spec));
        }
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [bits](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            const double threshold = attack.calibrate(kCalibrationSamples);

            Rng rng(kSecretSeed);
            std::vector<int> secret;
            for (unsigned i = 0; i < bits; ++i)
                secret.push_back(static_cast<int>(rng.range(2)));
            const LeakResult leak = attack.leak(secret, threshold);

            const double rate_kbps =
                LeakageRate::bitsPerSecond(
                    attack.cyclesPerSample(),
                    session.core().config().clockGHz) /
                1000.0;
            TrialOutput out;
            out.metric("accuracy", leak.accuracy);
            out.metric("rate_kbps", rate_kbps);
            out.metric("goodput_kbps", rate_kbps * leak.accuracy);
            return out;
        });

    std::cout << "=== SV-C attack parameterization (" << bits
              << " bits/point, evaluation noise) ===\n\n";

    TextTable table({"variant", "loads", "accuracy", "rate (Kbps)",
                     "goodput (Kbps)"});
    for (const ResultRow &row : result.rows) {
        table.addRow({row.param("evset") != 0 ? "eviction sets" : "plain",
                      TextTable::num(row.param("loads"), 0),
                      TextTable::num(row.mean("accuracy") * 100) + "%",
                      TextTable::num(row.mean("rate_kbps")),
                      TextTable::num(row.mean("goodput_kbps"))});
    }
    table.print(std::cout);

    std::cout << "\nReading: plain unXpec gains little accuracy from "
                 "extra loads (Fig. 3's flat growth),\nso one load "
                 "maximizes goodput; eviction sets turn extra loads "
                 "into real margin (Fig. 6),\nwhich pays off only when "
                 "noise would otherwise dominate.\n";
    return finishExperiment(result, opt);
}
