/**
 * @file
 * §V-C attack parameterization: trade the number of in-branch loads
 * and the POISON length against rate and accuracy. Reproduces the
 * section's guidance: without eviction sets a single load already
 * separates the secrets, so fewer loads maximize goodput; with
 * eviction sets extra loads buy margin (and noisy-environment
 * accuracy) at proportional rate cost.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "attack/noise.hh"
#include "attack/unxpec.hh"
#include "sim/rng.hh"

using namespace unxpec;

namespace {

struct Operating
{
    double accuracy = 0.0;
    double rate_kbps = 0.0;
    double goodput_kbps = 0.0; //!< rate x accuracy (crude but telling)
};

Operating
evaluate(unsigned loads, bool evsets, unsigned bits)
{
    SystemConfig cfg = SystemConfig::makeDefault();
    const NoiseProfile noise = NoiseProfile::evaluation();
    noise.applyTo(cfg);
    Core core(cfg);
    noise.applyTo(core);

    UnxpecConfig ucfg;
    ucfg.inBranchLoads = loads;
    ucfg.useEvictionSets = evsets;
    UnxpecAttack attack(core, ucfg);
    const double threshold = attack.calibrate(100);

    Rng rng(31337);
    std::vector<int> secret;
    for (unsigned i = 0; i < bits; ++i)
        secret.push_back(static_cast<int>(rng.range(2)));
    const LeakResult result = attack.leak(secret, threshold);

    Operating op;
    op.accuracy = result.accuracy;
    op.rate_kbps = LeakageRate::bitsPerSecond(
        attack.cyclesPerSample(), core.config().clockGHz) / 1000.0;
    op.goodput_kbps = op.rate_kbps * op.accuracy;
    return op;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned bits = argc > 1 ? std::atoi(argv[1]) : 200;
    std::cout << "=== SV-C attack parameterization (" << bits
              << " bits/point, evaluation noise) ===\n\n";

    TextTable table({"variant", "loads", "accuracy", "rate (Kbps)",
                     "goodput (Kbps)"});
    for (const bool evsets : {false, true}) {
        for (const unsigned loads : {1u, 2u, 4u, 8u}) {
            const Operating op = evaluate(loads, evsets, bits);
            table.addRow({evsets ? "eviction sets" : "plain",
                          std::to_string(loads),
                          TextTable::num(op.accuracy * 100) + "%",
                          TextTable::num(op.rate_kbps),
                          TextTable::num(op.goodput_kbps)});
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: plain unXpec gains little accuracy from "
                 "extra loads (Fig. 3's flat growth),\nso one load "
                 "maximizes goodput; eviction sets turn extra loads "
                 "into real margin (Fig. 6),\nwhich pays off only when "
                 "noise would otherwise dominate.\n";
    return 0;
}
