/**
 * @file
 * §VI-B: leakage rate. Measures simulated cycles per sample for both
 * unXpec variants and converts to samples/s and bits/s at the 2 GHz
 * clock. The paper reports ~140,000 samples/s (140 Kbps at one sample
 * per bit) with its round structure; the rate scales inversely with
 * the POISON length, so a sweep over mistraining counts is printed.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

using namespace unxpec;

namespace {

double
cyclesPerSample(bool evsets, unsigned mistrain, unsigned samples)
{
    Core core(SystemConfig::makeDefault());
    UnxpecConfig cfg;
    cfg.useEvictionSets = evsets;
    cfg.mistrainIterations = mistrain;
    UnxpecAttack attack(core, cfg);
    attack.collect(0, samples / 2);
    attack.collect(1, samples - samples / 2);
    return attack.cyclesPerSample();
}

} // namespace

int
main()
{
    const double clock_ghz = SystemConfig::makeDefault().clockGHz;
    std::cout << "=== Leakage rate (§VI-B), " << clock_ghz
              << " GHz clock ===\n\n";

    TextTable table({"variant", "mistrain iters", "cycles/sample",
                     "samples/s", "Kbps (1 sample/bit)"});
    for (const bool evsets : {false, true}) {
        for (const unsigned mistrain : {8u, 16u, 32u, 56u}) {
            const double cycles = cyclesPerSample(evsets, mistrain, 20);
            const double rate =
                LeakageRate::samplesPerSecond(cycles, clock_ghz);
            table.addRow({evsets ? "eviction sets" : "plain",
                          std::to_string(mistrain),
                          TextTable::num(cycles, 0),
                          TextTable::num(rate, 0),
                          TextTable::num(rate / 1000.0)});
        }
    }
    table.print(std::cout);

    std::cout << "\nBoth variants sample at the same rate (priming is "
                 "amortized: rollback re-primes the sets).\n"
                 "Paper: ~140,000 samples/s == 140 Kbps; that operating "
                 "point corresponds to the heavier\nPOISON loop "
                 "(~56 in-bounds trainings/round). Leaner rounds leak "
                 "proportionally faster.\n";
    return 0;
}
