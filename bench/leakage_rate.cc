/**
 * @file
 * §VI-B: leakage rate. Measures simulated cycles per sample for both
 * unXpec variants and converts to samples/s and bits/s at the 2 GHz
 * clock. The paper reports ~140,000 samples/s (140 Kbps at one sample
 * per bit) with its round structure; the rate scales inversely with
 * the POISON length, so a sweep over mistraining counts is printed.
 */

#include <iostream>

#include "analysis/accuracy.hh"
#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    HarnessCli cli("leakage_rate",
                   "Leakage rate (paper §VI-B): cycles per covert-channel "
                   "sample and resulting bits/s");
    cli.scaleOption("samples per measurement", 20);
    const HarnessOptions opt = cli.parse(argc, argv);
    const unsigned samples = static_cast<unsigned>(opt.scale);

    std::vector<ExperimentSpec> specs;
    for (const bool evsets : {false, true}) {
        for (const unsigned mistrain : {8u, 16u, 32u, 56u}) {
            ExperimentSpec spec = cli.baseSpec(opt);
            spec.label = std::string(evsets ? "eviction sets" : "plain") +
                         "/mistrain=" + std::to_string(mistrain);
            spec.attack = evsets ? "unxpec-evset" : "unxpec";
            spec.attackCfg.mistrainIterations = mistrain;
            spec.with("evset", evsets ? 1 : 0).with("mistrain", mistrain);
            specs.push_back(std::move(spec));
        }
    }

    const double clock_ghz = SystemConfig::makeDefault().clockGHz;
    const ExperimentResult result = runExperiment(
        cli, opt, specs, [samples, clock_ghz](const TrialContext &ctx) {
            Session session(ctx);
            UnxpecAttack &attack = session.unxpec();
            attack.collect(0, samples / 2);
            attack.collect(1, samples - samples / 2);
            const double cycles = attack.cyclesPerSample();
            TrialOutput out;
            out.metric("cycles_per_sample", cycles);
            out.metric("samples_per_sec",
                       LeakageRate::samplesPerSecond(cycles, clock_ghz));
            return out;
        });

    std::cout << "=== Leakage rate (§VI-B), " << clock_ghz
              << " GHz clock ===\n\n";

    TextTable table({"variant", "mistrain iters", "cycles/sample",
                     "samples/s", "Kbps (1 sample/bit)"});
    unsigned censored = 0, missing = 0;
    for (const ResultRow &row : result.rows) {
        censored += row.censoredTrials;
        missing += row.missingTrials;
        // A row can lose every trial to censoring or a dead shard; its
        // metrics are then absent, not zero.
        const MetricSeries *cycles = row.metric("cycles_per_sample");
        const MetricSeries *rate = row.metric("samples_per_sec");
        table.addRow(
            {row.param("evset") != 0 ? "eviction sets" : "plain",
             TextTable::num(row.param("mistrain"), 0),
             cycles ? TextTable::num(cycles->summary.mean, 0) : "n/a",
             rate ? TextTable::num(rate->summary.mean, 0) : "n/a",
             rate ? TextTable::num(rate->summary.mean / 1000.0) : "n/a"});
    }
    table.print(std::cout);
    if (censored > 0)
        std::cout << "\n(" << censored
                  << " censored trials excluded from the means)\n";
    if (result.incomplete)
        std::cout << "\nWARNING: campaign incomplete — " << missing
                  << " trials never finished; rates above are partial.\n";

    std::cout << "\nBoth variants sample at the same rate (priming is "
                 "amortized: rollback re-primes the sets).\n"
                 "Paper: ~140,000 samples/s == 140 Kbps; that operating "
                 "point corresponds to the heavier\nPOISON loop "
                 "(~56 in-bounds trainings/round). Leaner rounds leak "
                 "proportionally faster.\n";
    return finishExperiment(result, opt);
}
