/**
 * @file
 * Figure 12: performance overhead of relaxed constant-time rollback
 * over the SPEC-CPU-2017-like synthetic suite, for constants of 25,
 * 30, 35, 45, and 65 cycles, normalized to the unsafe baseline.
 * Paper: average 22.4 % at 25 cycles up to 72.8 % at 65 cycles; the
 * "no const" CleanupSpec bar is small.
 *
 * The real SPEC CPU 2017 binaries are license-protected (the paper's
 * artifact excludes them too); see DESIGN.md for the substitution.
 */

#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "harness/cli.hh"
#include "harness/session.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

namespace {

/** Program-generation seed shared with the seed version of the bench. */
constexpr std::uint64_t kProgramSeed = 42;

constexpr unsigned kConstants[] = {0, 25, 30, 35, 45, 65};

} // namespace

int
main(int argc, char **argv)
{
    HarnessCli cli("fig12_const_rollback_overhead",
                   "Figure 12: constant-time rollback overhead over the "
                   "synthetic SPEC-2017 suite");
    cli.scaleOption("instructions per benchmark", 100000);
    const HarnessOptions opt = cli.parse(argc, argv);
    const std::uint64_t max_inst = opt.scale;
    const std::uint64_t warmup = max_inst / 5;

    std::vector<ExperimentSpec> specs;
    const std::vector<WorkloadProfile> suite = SynthSpec::suite();
    for (std::size_t w = 0; w < suite.size(); ++w) {
        for (std::size_t c = 0; c < std::size(kConstants); ++c) {
            const unsigned constant = kConstants[c];
            ExperimentSpec spec = cli.baseSpec(opt);
            spec.label = suite[w].name + "/const=" +
                         std::to_string(constant);
            spec.workload = suite[w].name;
            spec.attack = "none";
            spec.tweak = [constant](SystemConfig &cfg) {
                cfg.cleanupTiming.constantTimeCycles = constant;
            };
            spec.with("workload", static_cast<double>(w))
                .with("constant", constant);
            specs.push_back(std::move(spec));
        }
    }

    const ExperimentResult result = runExperiment(
        cli, opt, specs, [max_inst, warmup](const TrialContext &ctx) {
            const Program program = SynthSpec::generate(
                SynthSpec::profile(ctx.spec.workload), kProgramSeed);
            RunOptions options;
            options.maxInstructions = max_inst;
            options.warmupInstructions = warmup;

            // The unsafe baseline shares the trial seed so jittered
            // components (if any) see the same randomness.
            SystemConfig unsafe_cfg = makeDefense("unsafe");
            unsafe_cfg.seed = ctx.seed;
            Core unsafe(unsafe_cfg);
            const RunResult base_run = unsafe.run(program, options);
            const double base = static_cast<double>(base_run.cycles -
                                                    base_run.warmupCycles);

            Session session(ctx);
            const RunResult run = session.core().run(program, options);
            const double measured =
                static_cast<double>(run.cycles - run.warmupCycles);

            TrialOutput out;
            out.metric("overhead_pct", (measured / base - 1.0) * 100.0);
            out.metric("cycles", measured);
            out.metric("baseline_cycles", base);
            return out;
        });

    std::cout << "=== Figure 12: constant-time rollback overhead "
              << "(" << max_inst << " insts/benchmark, " << warmup
              << " warmup) ===\n\n";

    TextTable table({"benchmark", "no const", "const=25", "const=30",
                     "const=35", "const=45", "const=65"});
    std::vector<double> sums(std::size(kConstants), 0.0);
    for (std::size_t w = 0; w < suite.size(); ++w) {
        std::vector<std::string> row = {suite[w].name};
        for (std::size_t c = 0; c < std::size(kConstants); ++c) {
            const double overhead =
                result.rowAt({{"workload", static_cast<double>(w)},
                              {"constant", kConstants[c]}})
                    .mean("overhead_pct");
            sums[c] += overhead;
            row.push_back(TextTable::num(overhead) + "%");
        }
        table.addRow(row);
    }

    std::vector<std::string> avg = {"AVERAGE"};
    for (const double sum : sums)
        avg.push_back(TextTable::num(sum / suite.size()) + "%");
    table.addRow(avg);
    table.print(std::cout);

    std::cout << "\npaper averages: 22.4% (const=25) ... 72.8% (const=65); "
                 "plain CleanupSpec ~5%\n";
    return finishExperiment(result, opt);
}
