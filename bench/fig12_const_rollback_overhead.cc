/**
 * @file
 * Figure 12: performance overhead of relaxed constant-time rollback
 * over the SPEC-CPU-2017-like synthetic suite, for constants of 25,
 * 30, 35, 45, and 65 cycles, normalized to the unsafe baseline.
 * Paper: average 22.4 % at 25 cycles up to 72.8 % at 65 cycles; the
 * "no const" CleanupSpec bar is small.
 *
 * The real SPEC CPU 2017 binaries are license-protected (the paper's
 * artifact excludes them too); see DESIGN.md for the substitution.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/table.hh"
#include "cpu/core.hh"
#include "sim/config.hh"
#include "workload/synth_spec.hh"

using namespace unxpec;

int
main(int argc, char **argv)
{
    const std::uint64_t max_inst = argc > 1 ? std::atoll(argv[1]) : 100000;
    const std::uint64_t warmup = max_inst / 5;
    const std::vector<unsigned> constants = {0, 25, 30, 35, 45, 65};

    std::cout << "=== Figure 12: constant-time rollback overhead "
              << "(" << max_inst << " insts/benchmark, "
              << warmup << " warmup) ===\n\n";

    TextTable table({"benchmark", "no const", "const=25", "const=30",
                     "const=35", "const=45", "const=65"});
    std::vector<double> sums(constants.size(), 0.0);
    unsigned count = 0;

    for (const auto &profile : SynthSpec::suite()) {
        const Program program = SynthSpec::generate(profile, 42);
        RunOptions options;
        options.maxInstructions = max_inst;
        options.warmupInstructions = warmup;

        Core unsafe(SystemConfig::makeUnsafeBaseline());
        const RunResult base_run = unsafe.run(program, options);
        const double base =
            static_cast<double>(base_run.cycles - base_run.warmupCycles);

        std::vector<std::string> row = {profile.name};
        for (std::size_t i = 0; i < constants.size(); ++i) {
            SystemConfig cfg = SystemConfig::makeDefault();
            cfg.cleanupTiming.constantTimeCycles = constants[i];
            Core core(cfg);
            const RunResult run = core.run(program, options);
            const double measured =
                static_cast<double>(run.cycles - run.warmupCycles);
            const double overhead = (measured / base - 1.0) * 100.0;
            sums[i] += overhead;
            row.push_back(TextTable::num(overhead) + "%");
        }
        table.addRow(row);
        ++count;
    }

    std::vector<std::string> avg = {"AVERAGE"};
    for (const double sum : sums)
        avg.push_back(TextTable::num(sum / count) + "%");
    table.addRow(avg);
    table.print(std::cout);

    std::cout << "\npaper averages: 22.4% (const=25) ... 72.8% (const=65); "
                 "plain CleanupSpec ~5%\n";
    return 0;
}
