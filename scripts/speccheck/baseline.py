"""Justified-suppressions baseline.

``baseline.json`` records findings that are understood and accepted,
each with a mandatory justification.  Entries are keyed structurally
(mode + field, function + callee, ...) rather than by line number so
they survive unrelated edits.  Unused entries are reported as
warnings so the baseline cannot silently rot.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set


class BaselineError(Exception):
    pass


class Baseline:
    def __init__(self, data: Dict[str, List[dict]], path: str):
        self.path = path
        self.entries = data
        self.used: Set[str] = set()
        for rule, items in data.items():
            if not isinstance(items, list):
                raise BaselineError(
                    f"{path}: rule '{rule}' must map to a list"
                )
            for item in items:
                why = (item.get("why") or "").strip()
                if not why:
                    raise BaselineError(
                        f"{path}: entry {item} under '{rule}' has no "
                        "justification ('why')"
                    )

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, encoding="utf-8") as fh:
                return cls(json.load(fh), path)
        except FileNotFoundError:
            return cls({}, path)
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON: {exc}")

    def _match(self, check: str, **fields) -> bool:
        for idx, item in enumerate(self.entries.get(check, [])):
            ok = True
            for key, value in fields.items():
                want = item.get(key)
                if want is None:
                    continue  # entry doesn't constrain this key
                if want != value and want != "*":
                    ok = False
                    break
            if ok:
                self.used.add(f"{check}[{idx}]")
                return True
        return False

    def covers_undo(self, mode: str, field: str) -> bool:
        return self._match("undo-completeness", mode=mode, field=field)

    def covers_unpaired(self, function: str, field: str) -> bool:
        return self._match(
            "unpaired-spec-mutation", function=function, field=field
        )

    def covers_hot_virtual(self, function: str, callee: str) -> bool:
        return self._match(
            "hot-virtual", function=function, callee=callee
        )

    def covers_hot_alloc(self, function: str, what: str) -> bool:
        return self._match("steady-alloc", function=function, what=what)

    def covers_determinism(self, rule: str, file: str) -> bool:
        return self._match("determinism", rule=rule, file=file)

    def unused(self) -> List[str]:
        out = []
        for rule, items in self.entries.items():
            for idx, item in enumerate(items):
                key = f"{rule}[{idx}]"
                if key not in self.used:
                    out.append(f"{key}: {json.dumps(item)}")
        return out
