"""The speccheck analyses over the shared Model.

Four checks, each the static counterpart of an existing dynamic or
regex gate:

* undo-completeness — per-CleanupMode write-set vs undo-set (static
  ``auditRollbackComplete``);
* unpaired-spec-mutation — every mutation of an UNXPEC_SPEC_STATE
  field must sit inside / under a registered transition or rollback;
* determinism — AST-level unordered-iteration, unseeded-randomness,
  wall-clock, and float-cycle rules (supersedes the lint_sim.py
  regexes for src/);
* hot-path — steady-alloc and virtual-dispatch rules over the real
  call-graph closure of Core::runStep / BatchRunner::run instead of a
  hard-coded file list.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Set

import callgraph as cg
from baseline import Baseline
from model import Model, short

# The one mode whose "rollback" is intentionally incomplete: the
# UnsafeBaseline persists the transient footprint — that IS the
# unXpec vulnerability — so it is exempt from the coverage gate.
EXEMPT_MODES = {"UnsafeBaseline"}

HOT_ENTRIES = ["Core::runStep", "BatchRunner::run"]


@dataclass
class Finding:
    check: str
    where: str  # "file:line" or structural key
    message: str


@dataclass
class ModeReport:
    mode: str
    exempt: bool
    write_fields: Dict[str, List]  # field -> [(fn, line)]
    undo_fields: Dict[str, List]
    missing: List[str]
    baselined: List[str]
    spec_fns: List[str]
    rollback_fns: List[str]


@dataclass
class Results:
    findings: List[Finding] = dc_field(default_factory=list)
    mode_reports: List[ModeReport] = dc_field(default_factory=list)
    hot_functions: List[str] = dc_field(default_factory=list)
    warnings: List[str] = dc_field(default_factory=list)


def run_checks(
    model: Model,
    baseline: Baseline,
    only: Optional[Set[str]] = None,
) -> Results:
    res = Results()
    graph = cg.CallGraph(model)

    def enabled(name: str) -> bool:
        return only is None or name in only

    if enabled("undo"):
        _check_undo(model, graph, baseline, res)
    if enabled("pairing"):
        _check_pairing(model, graph, baseline, res)
    if enabled("determinism"):
        _check_determinism(model, baseline, res)
    if enabled("hotpath"):
        _check_hotpath(model, graph, baseline, res)

    for stale in baseline.unused():
        res.warnings.append(f"unused baseline entry: {stale}")
    return res


def _check_undo(model, graph, baseline, res: Results) -> None:
    for mode in sorted(model.modes):
        writes, wclosure = cg.write_set(graph, model, mode)
        undos, _uclosure = cg.undo_set(graph, model, mode)
        exempt = mode in EXEMPT_MODES
        missing: List[str] = []
        baselined: List[str] = []
        for fkey in sorted(writes):
            if fkey in undos:
                continue
            if exempt:
                continue
            if baseline.covers_undo(mode, fkey):
                baselined.append(fkey)
                continue
            missing.append(fkey)
            sites = ", ".join(
                f"{short(fn)} (line {line})"
                for fn, line in writes[fkey][:3]
            )
            res.findings.append(
                Finding(
                    "undo-completeness",
                    f"{mode}:{fkey}",
                    f"[{mode}] speculative write-set field {fkey} is "
                    f"never restored by this mode's rollback closure "
                    f"(written by {sites}) — a squash leaves residue "
                    "state, the exact unXpec channel",
                )
            )
        res.mode_reports.append(
            ModeReport(
                mode=mode,
                exempt=exempt,
                write_fields=writes,
                undo_fields=undos,
                missing=missing,
                baselined=baselined,
                spec_fns=sorted(
                    short(q) for q in cg.spec_roots(model, mode)
                ),
                rollback_fns=sorted(
                    short(q) for q in cg.rollback_roots(model, mode)
                ),
            )
        )


def _check_pairing(model, graph, baseline, res: Results) -> None:
    paired = cg.paired_functions(graph, model)
    for qual, fn in sorted(model.functions.items()):
        if qual in paired:
            continue
        # Constructors/destructors build or tear down the whole
        # object — construction-time writes are not speculative
        # transitions (Core::reset & friends carry the annotations).
        name = qual.split("::")[-1]
        if fn.cls and name in (
            fn.cls.split("::")[-1],
            "~" + fn.cls.split("::")[-1],
        ):
            continue
        for cls, fname, line in fn.mutations:
            fld = model.classes.get(cls, {}).get(fname)
            if fld is None or not fld.spec_state:
                continue
            key = f"{short(cls)}::{fname}"
            if model.suppressed("spec-pair", fn.file, line):
                continue
            if baseline.covers_unpaired(short(qual), key):
                continue
            res.findings.append(
                Finding(
                    "unpaired-spec-mutation",
                    f"{fn.file}:{line}",
                    f"{short(qual)} mutates speculative state {key} "
                    "but is neither a registered transition/rollback "
                    "nor reachable from one — annotate it (see "
                    "src/sim/annotate.hh) or route the write through "
                    "a registered helper",
                )
            )


def _check_determinism(model, baseline, res: Results) -> None:
    for f in model.determinism:
        if baseline.covers_determinism(f.rule, f.file):
            continue
        res.findings.append(
            Finding(
                f"determinism:{f.rule}",
                f"{f.file}:{f.line}",
                f.detail,
            )
        )


def _check_hotpath(model, graph, baseline, res: Results) -> None:
    hot = cg.hot_functions(graph, model, HOT_ENTRIES)
    res.hot_functions = sorted(short(q) for q in hot)
    for qual in sorted(hot):
        fn = model.functions[qual]
        for what, line in fn.allocs:
            if model.suppressed("steady-alloc", fn.file, line):
                continue
            if baseline.covers_hot_alloc(short(qual), what):
                continue
            res.findings.append(
                Finding(
                    "steady-alloc",
                    f"{fn.file}:{line}",
                    f"{short(qual)} is on the per-cycle hot path "
                    f"(reachable from {'/'.join(HOT_ENTRIES)}) and "
                    f"calls {what}() — use arena/reserved storage or "
                    "justify with lint-ok(steady-alloc)",
                )
            )
        for recv, method, line in fn.virtual_calls:
            callee = f"{short(recv)}::{method}"
            if model.suppressed("hot-virtual", fn.file, line):
                continue
            if baseline.covers_hot_virtual(short(qual), callee):
                continue
            res.findings.append(
                Finding(
                    "hot-virtual",
                    f"{fn.file}:{line}",
                    f"{short(qual)} virtual-dispatches {callee} on "
                    "the per-cycle hot path — devirtualize (see "
                    "SetIndexer/ReplacementState) or add a justified "
                    "baseline entry",
                )
            )
