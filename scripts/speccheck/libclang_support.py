"""libclang discovery and version pinning — the ONE place the accepted
libclang range lives (satellite requirement).

speccheck has two frontends:

* ``builtin``  — the dependency-free token-level parser (always
  available; what developers without libclang run).
* ``libclang`` — clang.cindex over compile_commands.json, preferred
  when importable because it sees the code exactly as the compiler
  does (templates, typedef sugar, operator overloads).

``load()`` returns the ``clang.cindex`` module with a configured
library, or raises ``LibclangUnavailable`` with a human-readable
reason.  Callers decide whether that is fatal (``--ci``) or a
graceful skip.
"""

from __future__ import annotations

import glob
import os

# Accepted libclang major versions.  Bump deliberately: the cursor
# kinds and annotate-attribute spelling speccheck relies on are stable
# across this range and CI installs from it (python3-clang on
# ubuntu-latest).
LIBCLANG_MIN_MAJOR = 11
LIBCLANG_MAX_MAJOR = 20

#: Candidate shared-library locations when clang.cindex cannot find
#: one on its own.  First match wins.
_CANDIDATE_GLOBS = [
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/lib/libclang.so*",
    "/usr/local/lib/libclang.so*",
]


class LibclangUnavailable(Exception):
    """libclang (or its python binding) is not usable here."""


def accepted_range() -> str:
    return f"{LIBCLANG_MIN_MAJOR}..{LIBCLANG_MAX_MAJOR}"


def _find_library() -> str | None:
    for pattern in _CANDIDATE_GLOBS:
        hits = sorted(glob.glob(pattern), reverse=True)
        for hit in hits:
            if os.path.isfile(hit):
                return hit
    return None


def load():
    """Import and configure clang.cindex, or raise LibclangUnavailable."""
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as exc:
        raise LibclangUnavailable(
            "python clang bindings not importable "
            f"({exc}); install python3-clang "
            f"(accepted libclang majors: {accepted_range()})"
        ) from exc

    if not cindex.Config.loaded:
        lib = _find_library()
        if lib is not None:
            cindex.Config.set_library_file(lib)
    try:
        index = cindex.Index.create()
    except Exception as exc:  # cindex raises LibclangError and friends
        raise LibclangUnavailable(
            f"libclang shared library not loadable ({exc}); "
            f"accepted majors: {accepted_range()}"
        ) from exc

    major = _version_major(cindex)
    if major is not None and not (
        LIBCLANG_MIN_MAJOR <= major <= LIBCLANG_MAX_MAJOR
    ):
        raise LibclangUnavailable(
            f"libclang major {major} outside accepted range "
            f"{accepted_range()}"
        )
    del index
    return cindex


def _version_major(cindex) -> int | None:
    try:
        banner = cindex.conf.lib.clang_getClangVersion()
        text = cindex.conf.lib.clang_getCString(banner)
        if isinstance(text, bytes):
            text = text.decode("utf-8", "replace")
    except Exception:
        return None
    # "clang version 14.0.0-1ubuntu1" or "Ubuntu clang version 14.0.0"
    for word in text.replace("-", " ").split():
        if word and word[0].isdigit() and "." in word:
            try:
                return int(word.split(".", 1)[0])
            except ValueError:
                continue
    return None
