#!/usr/bin/env python3
"""speccheck — AST-level undo-completeness and determinism analyzer.

Usage (from the repo root):

    python3 scripts/speccheck [--compdb build/compile_commands.json]
                              [--src src] [--frontend auto|builtin|libclang]
                              [--ci] [--report out.json] [--verbose]

Checks (see checks.py): undo-completeness, unpaired-spec-mutation,
determinism, hot-path.  Exit codes: 0 clean, 1 findings, 2
infrastructure problem (missing libclang under --ci, malformed
annotations, unreadable inputs).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Set

import frontend_builtin as fb
from baseline import Baseline, BaselineError
from cache import ParseCache
from checks import run_checks
from cpplex import LexError
from libclang_support import LibclangUnavailable, load as load_libclang
from model import AnnotationError, Model
from report import render_json, render_text

SOURCE_EXTS = (".cc", ".cpp", ".cxx")
HEADER_EXTS = (".hh", ".h", ".hpp")


def discover_files(src_dirs: List[str], compdb: Optional[str]):
    files: List[str] = []
    seen: Set[str] = set()
    if compdb and os.path.isfile(compdb):
        with open(compdb, encoding="utf-8") as fh:
            for entry in json.load(fh):
                path = entry.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(entry.get("directory", ""), path)
                path = os.path.normpath(path)
                if not path.endswith(SOURCE_EXTS):
                    continue
                rel = os.path.relpath(path)
                if any(
                    rel.startswith(d.rstrip("/") + os.sep)
                    for d in src_dirs
                ) and rel not in seen:
                    seen.add(rel)
                    files.append(rel)
    for d in src_dirs:
        for root, _dirs, names in os.walk(d):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS + HEADER_EXTS):
                    rel = os.path.normpath(os.path.join(root, name))
                    if rel not in seen:
                        seen.add(rel)
                        files.append(rel)
    return sorted(files)


def load_texts(files: List[str]) -> Dict[str, str]:
    texts = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as fh:
            texts[path] = fh.read()
    return texts


def build_model_builtin(
    files: List[str],
    texts: Dict[str, str],
    cache: ParseCache,
    keep_bodies: bool = True,
) -> Model:
    modes: Set[str] = set()
    for text in texts.values():
        if "CleanupMode" in text:
            modes |= fb.collect_modes(text)

    decl = Model(modes=set(modes))
    decl_keys = {}
    for path in files:
        key = cache.digest(
            b"decl", path.encode(), texts[path].encode()
        )
        decl_keys[path] = key
        per_file = cache.get("decl", key)
        if per_file is None:
            per_file = fb.parse_declarations(path, texts[path], modes)
            cache.put("decl", key, per_file)
        decl.merge(per_file)

    global_digest = cache.digest(
        *(decl_keys[p].encode() for p in files)
    ).encode()

    model = Model(modes=set(modes))
    model.merge(decl)
    for path in files:
        key = cache.digest(
            b"body", global_digest, path.encode(), texts[path].encode()
        )
        per_file = cache.get("body", key)
        if per_file is None:
            per_file = fb.parse_bodies(path, texts[path], decl)
            if not keep_bodies:
                for fn in per_file.functions.values():
                    fn.calls = []
                    fn.mutations = []
                    fn.allocs = []
                    fn.virtual_calls = []
            cache.put("body", key, per_file)
        model.merge(per_file)
    return model


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="speccheck", description=__doc__
    )
    parser.add_argument(
        "--compdb",
        default="build/compile_commands.json",
        help="compile_commands.json (for the libclang frontend and "
        "translation-unit discovery)",
    )
    parser.add_argument(
        "--src",
        action="append",
        default=None,
        help="source directory to analyze (repeatable; default: src)",
    )
    parser.add_argument(
        "--frontend",
        choices=("auto", "builtin", "libclang"),
        default="auto",
        help="auto prefers libclang when importable, falling back to "
        "the built-in token frontend",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="CI mode: a missing/unusable libclang is an error "
        "instead of a graceful skip",
    )
    parser.add_argument("--report", help="write a JSON report here")
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "baseline.json"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default="build/.speccheck-cache",
        help="parse-result cache directory",
    )
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--only",
        help="comma list of checks to run "
        "(undo,pairing,determinism,hotpath)",
    )
    parser.add_argument("--verbose", "-v", action="store_true")
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the internal frontend smoke tests and exit",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        import selftest

        return selftest.run()

    src_dirs = args.src or ["src"]
    for d in src_dirs:
        if not os.path.isdir(d):
            print(f"speccheck: source directory '{d}' not found",
                  file=sys.stderr)
            return 2

    # Frontend selection (libclang version range pinned in
    # libclang_support.py).
    use_libclang = False
    cindex = None
    if args.frontend in ("auto", "libclang"):
        try:
            cindex = load_libclang()
            use_libclang = True
        except LibclangUnavailable as exc:
            if args.frontend == "libclang" or args.ci:
                print(
                    f"speccheck: libclang required but unavailable: "
                    f"{exc}",
                    file=sys.stderr,
                )
                return 2
            print(
                f"speccheck: skipping libclang frontend ({exc}); "
                "continuing with the built-in token frontend",
                file=sys.stderr,
            )

    files = discover_files(src_dirs, args.compdb)
    if not files:
        print("speccheck: no input files found", file=sys.stderr)
        return 2
    texts = load_texts(files)

    cache = ParseCache(args.cache_dir, enabled=not args.no_cache)

    try:
        if use_libclang:
            import frontend_libclang as flc

            # Builtin pass supplies declarations, determinism findings
            # and suppressions; libclang supplies bodies (calls,
            # mutations) with compiler-exact type information.
            model = build_model_builtin(
                files, texts, cache, keep_bodies=False
            )
            try:
                flc.augment_model(
                    model, cindex, args.compdb, files, cache
                )
            except Exception as exc:  # noqa: BLE001 — degrade, don't die
                if args.frontend == "libclang":
                    print(
                        f"speccheck: libclang frontend failed: {exc}",
                        file=sys.stderr,
                    )
                    return 2
                print(
                    f"speccheck: libclang frontend failed ({exc}); "
                    "falling back to the built-in frontend",
                    file=sys.stderr,
                )
                model = build_model_builtin(files, texts, cache)
        else:
            model = build_model_builtin(files, texts, cache)
    except (AnnotationError, LexError) as exc:
        print(f"speccheck: {exc}", file=sys.stderr)
        return 2

    try:
        baseline = Baseline.load(args.baseline)
    except BaselineError as exc:
        print(f"speccheck: {exc}", file=sys.stderr)
        return 2

    only = None
    if args.only:
        only = {part.strip() for part in args.only.split(",")}
        known = {"undo", "pairing", "determinism", "hotpath"}
        unknown = only - known
        if unknown:
            print(
                f"speccheck: unknown checks: {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    res = run_checks(model, baseline, only)

    # Deduplicate findings (builtin + libclang can agree on a site).
    seen = set()
    unique = []
    for f in res.findings:
        key = (f.check, f.where, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    res.findings = unique

    print(render_text(res, verbose=args.verbose))
    if not args.no_cache:
        print(
            f"speccheck: parse cache {cache.hits} hits / "
            f"{cache.misses} misses",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_json(res))
    return 1 if res.findings else 0


if __name__ == "__main__":
    sys.exit(main())
