"""Comment/string-aware C++ tokenizer for the built-in frontend.

This is not a full C++ lexer; it is the minimum needed to build a
reliable structural model: identifiers, numbers, punctuation, and
preprocessor directives, with comments and the *contents* of string,
character, and raw-string literals removed.  Removing literal contents
is what kills the whole class of regex false positives the old
lint_sim.py rules had (e.g. "unordered-iteration" firing on doc text).

Each token records the 1-based source line so findings and inline
``lint-ok(...)`` suppressions can be resolved to exact locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"  # string literal (text dropped, placeholder kept)
PUNCT = "punct"
PP = "pp"  # one whole preprocessor directive (first line only kept)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")

# Multi-character operators that matter structurally.  Longest first.
_PUNCTS = [
    "->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
]


class LexError(Exception):
    pass


def tokenize(text: str, path: str = "<memory>") -> List[Token]:
    """Tokenize C++ source, dropping comments and literal contents."""
    toks: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    raise LexError(f"{path}:{line}: unterminated comment")
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        # Preprocessor directive: swallow through continuation lines.
        if c == "#" and (not toks or toks[-1].line != line):
            start = i
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if text[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    continue
                j = k
                break
            directive = text[start:j].split("\n", 1)[0].strip()
            toks.append(Token(PP, directive, line))
            line += text.count("\n", start, j)
            i = j
            continue
        # Raw string literal: R"delim( ... )delim".
        if c == "R" and text[i : i + 2] == 'R"':
            j = text.find("(", i + 2)
            if j < 0:
                raise LexError(f"{path}:{line}: malformed raw string")
            delim = text[i + 2 : j]
            close = ")" + delim + '"'
            k = text.find(close, j + 1)
            if k < 0:
                raise LexError(f"{path}:{line}: unterminated raw string")
            toks.append(Token(STR, "", line))
            line += text.count("\n", i, k + len(close))
            i = k + len(close)
            continue
        # String / char literal (with escape handling).  Keep string
        # contents only for lines the caller flags (annotation args are
        # re-read from source by the parser, not from here).
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    raise LexError(
                        f"{path}:{line}: unterminated literal"
                    )
                j += 1
            if j >= n:
                raise LexError(f"{path}:{line}: unterminated literal")
            if quote == '"':
                toks.append(Token(STR, text[i + 1 : j], line))
            i = j + 1
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Token(ID, text[i:j], line))
            i = j
            continue
        # Number (coarse: consume digits, dots, exponents, suffixes).
        if c in _DIGITS or (
            c == "." and i + 1 < n and text[i + 1] in _DIGITS
        ):
            j = i + 1
            while j < n and (
                text[j] in _ID_CONT
                or text[j] == "."
                or (
                    text[j] in "+-"
                    and text[j - 1] in "eEpP"
                )
            ):
                j += 1
            toks.append(Token(NUM, text[i:j], line))
            i = j
            continue
        # Punctuation.
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            toks.append(Token(PUNCT, c, line))
            i += 1
    return toks
