"""Human-readable and JSON rendering of speccheck results."""

from __future__ import annotations

import json
from typing import List

from checks import Results


def render_text(res: Results, verbose: bool = False) -> str:
    lines: List[str] = []
    lines.append("== speccheck: per-CleanupMode write-set vs undo-set ==")
    for mr in res.mode_reports:
        status = (
            "EXEMPT (undo intentionally incomplete — the attack "
            "surface itself)"
            if mr.exempt
            else ("FAIL" if mr.missing else "ok")
        )
        lines.append(
            f"  {mr.mode:<16} write={len(mr.write_fields):>2} "
            f"undo={len(mr.undo_fields):>2} "
            f"missing={len(mr.missing)} "
            f"baselined={len(mr.baselined)}  [{status}]"
        )
        if verbose or mr.missing:
            for fkey in sorted(mr.write_fields):
                covered = fkey in mr.undo_fields
                mark = (
                    "covered"
                    if covered
                    else (
                        "BASELINED"
                        if fkey in mr.baselined
                        else ("exempt" if mr.exempt else "MISSING")
                    )
                )
                lines.append(f"      {fkey:<34} {mark}")
    if res.hot_functions and verbose:
        lines.append(
            f"== hot path ({len(res.hot_functions)} functions "
            "reachable from Core::runStep / BatchRunner::run) =="
        )
        for fn in res.hot_functions:
            lines.append(f"      {fn}")
    if res.warnings:
        lines.append("== warnings ==")
        for w in res.warnings:
            lines.append(f"  warning: {w}")
    if res.findings:
        lines.append(f"== findings ({len(res.findings)}) ==")
        for f in res.findings:
            lines.append(f"  {f.where}: [{f.check}] {f.message}")
    else:
        lines.append("speccheck: no findings")
    return "\n".join(lines)


def render_json(res: Results) -> str:
    doc = {
        "schema": "unxpec-speccheck-v1",
        "modes": [
            {
                "mode": mr.mode,
                "exempt": mr.exempt,
                "write_set": {
                    k: [
                        {"function": fn, "line": line}
                        for fn, line in v
                    ]
                    for k, v in sorted(mr.write_fields.items())
                },
                "undo_set": sorted(mr.undo_fields),
                "missing": mr.missing,
                "baselined": mr.baselined,
                "spec_transitions": mr.spec_fns,
                "rollback_functions": mr.rollback_fns,
            }
            for mr in res.mode_reports
        ],
        "hot_functions": res.hot_functions,
        "warnings": res.warnings,
        "findings": [
            {
                "check": f.check,
                "where": f.where,
                "message": f.message,
            }
            for f in res.findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"
