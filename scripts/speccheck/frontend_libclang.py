"""libclang frontend: compiler-exact body facts.

The builtin token frontend supplies declarations, annotations,
determinism findings and suppressions; this module re-derives the
*body* facts (call edges, spec-field mutations, allocation sites,
virtual dispatches) from real clang ASTs driven by
``compile_commands.json``.  Overload resolution, typedef sugar and
template receivers are handled by the compiler instead of heuristics,
so the libclang run is authoritative where the two disagree.

Only ``augment_model`` is public.  Any internal failure raises — the
caller (``__main__``) decides whether that is fatal (``--frontend
libclang`` / ``--ci``) or a graceful fallback to the builtin frontend.

The supported libclang version range is pinned in
``libclang_support.py`` — the single place to update it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set

from cache import ParseCache
from model import Model

# Method names whose call allocates in steady state (mirrors the
# builtin frontend's _ALLOC_CALLS — keep the two in sync).
ALLOC_CALLS = {
    "push_back", "emplace_back", "emplace", "insert", "resize",
    "reserve", "assign", "push_front", "emplace_front", "make_unique",
    "make_shared",
}

ASSIGN_OPS = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
}


def _load_compdb(compdb: str) -> Dict[str, List[str]]:
    """Map normalized source path -> clang argument list."""
    out: Dict[str, List[str]] = {}
    with open(compdb, encoding="utf-8") as fh:
        entries = json.load(fh)
    for entry in entries:
        path = entry.get("file", "")
        directory = entry.get("directory", "")
        if not os.path.isabs(path):
            path = os.path.join(directory, path)
        path = os.path.normpath(path)
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = entry.get("command", "").split()
        args: List[str] = []
        skip = False
        for arg in argv[1:]:
            if skip:
                skip = False
                continue
            if arg in ("-o", "-c"):
                skip = arg == "-o"
                continue
            if os.path.normpath(os.path.join(directory, arg)) == path:
                continue
            # Keep include paths absolute so parsing from the repo
            # root works regardless of the build directory.
            if arg.startswith("-I") and not os.path.isabs(arg[2:]):
                arg = "-I" + os.path.normpath(
                    os.path.join(directory, arg[2:])
                )
            args.append(arg)
        out[os.path.relpath(path)] = args
    return out


def _qualified(cursor) -> str:
    parts = [cursor.spelling]
    parent = cursor.semantic_parent
    while parent is not None and parent.spelling:
        kind = parent.kind.name
        if kind in (
            "NAMESPACE", "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
        ):
            parts.append(parent.spelling)
        parent = parent.semantic_parent
    return "::".join(reversed(parts))


def _record_class(type_obj) -> Optional[str]:
    """Qualified class name behind a (possibly sugared) type."""
    if type_obj is None:
        return None
    decl = type_obj.get_canonical().get_declaration()
    if decl is None or not decl.spelling:
        return None
    if decl.kind.name not in (
        "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
    ):
        return None
    return _qualified(decl)


def _first_assign_op(cursor, lhs) -> Optional[str]:
    """Operator token between the LHS child and the RHS."""
    lhs_end = lhs.extent.end.offset
    for tok in cursor.get_tokens():
        if tok.extent.start.offset >= lhs_end:
            if tok.spelling in ASSIGN_OPS:
                return tok.spelling
            # First token past the LHS that isn't the operator means
            # this BINARY_OPERATOR is not an assignment.
            return None
    return None


def _member_target(expr) -> Optional[object]:
    """Peel casts/parens down to a MEMBER_REF_EXPR, if any."""
    seen = 0
    while expr is not None and seen < 8:
        kind = expr.kind.name
        if kind == "MEMBER_REF_EXPR":
            return expr
        if kind in ("PAREN_EXPR", "UNEXPOSED_EXPR", "CSTYLE_CAST_EXPR",
                    "ARRAY_SUBSCRIPT_EXPR"):
            children = list(expr.get_children())
            if not children:
                return None
            expr = children[0]
            seen += 1
            continue
        return None
    return None


class _TuExtractor:
    """Collect body facts for every function defined in one TU."""

    def __init__(self, repo_root: str):
        self.repo_root = repo_root
        # qual -> fact dict (calls/mutations/allocs/virtual_calls)
        self.facts: Dict[str, dict] = {}

    def _rel(self, location) -> Optional[str]:
        if location.file is None:
            return None
        path = os.path.normpath(location.file.name)
        rel = os.path.relpath(path, self.repo_root)
        return None if rel.startswith("..") else rel

    def visit_tu(self, tu) -> None:
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind.name not in (
                "FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR",
                "DESTRUCTOR", "FUNCTION_TEMPLATE",
            ):
                continue
            if not cursor.is_definition():
                continue
            if self._rel(cursor.location) is None:
                continue  # system / out-of-repo definition
            qual = _qualified(cursor)
            if qual in self.facts:
                continue  # inline def seen via an earlier include
            facts = {
                "calls": [], "mutations": [], "allocs": [],
                "virtual_calls": [],
            }
            self.facts[qual] = facts
            self._visit_body(cursor, facts)

    def _visit_body(self, fn_cursor, facts: dict) -> None:
        for node in fn_cursor.walk_preorder():
            kind = node.kind.name
            line = node.location.line
            if kind == "CALL_EXPR":
                self._call(node, line, facts)
            elif kind == "CXX_NEW_EXPR":
                facts["allocs"].append(("new", line))
            elif kind in ("BINARY_OPERATOR",
                          "COMPOUND_ASSIGNMENT_OPERATOR"):
                children = list(node.get_children())
                if len(children) != 2:
                    continue
                if kind == "BINARY_OPERATOR":
                    if _first_assign_op(node, children[0]) is None:
                        continue
                self._mutation(children[0], line, facts)
            elif kind == "UNARY_OPERATOR":
                toks = [t.spelling for t in node.get_tokens()]
                if "++" in toks[:2] + toks[-1:] or \
                        "--" in toks[:2] + toks[-1:]:
                    children = list(node.get_children())
                    if children:
                        self._mutation(children[0], line, facts)

    def _call(self, node, line: int, facts: dict) -> None:
        ref = node.referenced
        if ref is None or not ref.spelling:
            return
        name = ref.spelling
        recv = None
        parent = ref.semantic_parent
        if parent is not None and parent.kind.name in (
            "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
        ):
            recv = _qualified(parent)
        facts["calls"].append((name, recv, line))
        if name in ALLOC_CALLS:
            facts["allocs"].append((name, line))
        try:
            virtual = ref.is_virtual_method()
        except Exception:  # noqa: BLE001 — older bindings
            virtual = False
        if virtual and recv is not None:
            facts["virtual_calls"].append((recv, name, line))

    def _mutation(self, lhs, line: int, facts: dict) -> None:
        member = _member_target(lhs)
        if member is None:
            return
        ref = member.referenced
        if ref is None or ref.kind.name != "FIELD_DECL":
            return
        cls = _record_class(ref.semantic_parent.type) if \
            ref.semantic_parent is not None else None
        if cls is None:
            cls = _qualified(ref.semantic_parent) if \
                ref.semantic_parent is not None else None
        if cls:
            facts["mutations"].append((cls, ref.spelling, line))


def augment_model(
    model: Model,
    cindex,
    compdb: str,
    files: List[str],
    cache: ParseCache,
) -> None:
    """Fill compiler-exact body facts into ``model``.

    ``model`` must come from the builtin declaration pass with bodies
    stripped (``keep_bodies=False``).  Raises on any infrastructure
    problem; the caller handles fallback policy.
    """
    if not os.path.isfile(compdb):
        raise RuntimeError(
            f"compile_commands.json not found at {compdb} — configure "
            "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        )
    args_by_file = _load_compdb(compdb)
    repo_root = os.getcwd()
    index = cindex.Index.create()

    tus = [f for f in files if f in args_by_file]
    if not tus:
        raise RuntimeError(
            "no analyzed source file appears in the compilation "
            "database"
        )

    merged: Dict[str, dict] = {}
    for path in tus:
        with open(path, "rb") as fh:
            content = fh.read()
        key = cache.digest(
            b"libclang", path.encode(), content,
            " ".join(args_by_file[path]).encode(),
        )
        facts = cache.get("libclang", key)
        if facts is None:
            tu = index.parse(path, args=args_by_file[path])
            errors = [
                d for d in tu.diagnostics
                if d.severity >= cindex.Diagnostic.Error
            ]
            if errors:
                raise RuntimeError(
                    f"{path}: clang reported "
                    f"{len(errors)} error(s); first: {errors[0]}"
                )
            extractor = _TuExtractor(repo_root)
            extractor.visit_tu(tu)
            facts = extractor.facts
            cache.put("libclang", key, facts)
        for qual, f in facts.items():
            merged.setdefault(qual, f)

    known: Set[str] = set(model.functions)
    for qual, f in merged.items():
        fn = model.functions.get(qual)
        if fn is None:
            # Qualification differences (templates, lambdas) — match
            # by suffix against the builtin-declared set.
            candidates = [
                k for k in known
                if k == qual or k.endswith("::" + qual)
                or qual.endswith("::" + k)
            ]
            if len(candidates) != 1:
                continue
            fn = model.functions[candidates[0]]
        fn.calls.extend(tuple(c) for c in f["calls"])
        fn.mutations.extend(tuple(m) for m in f["mutations"])
        fn.allocs.extend(tuple(a) for a in f["allocs"])
        fn.virtual_calls.extend(tuple(v) for v in f["virtual_calls"])
