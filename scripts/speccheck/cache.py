"""Parse-result caching.

Body-pass models depend on the global declaration table (receiver
types come from headers), so the cache key for a file combines its own
content hash with a digest over *all* files' declaration-relevant
content.  A header edit therefore invalidates every body model —
correct, and still cheap: the tree is ~60 files and a cold parse is
about a second.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Optional

CACHE_VERSION = 1


class ParseCache:
    def __init__(self, root: str, enabled: bool = True):
        self.root = root
        self.enabled = enabled
        if enabled:
            os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def digest(*parts: bytes) -> str:
        h = hashlib.sha256()
        for p in parts:
            h.update(p)
            h.update(b"\x00")
        return h.hexdigest()

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, f"{kind}-{key[:32]}.pickle")

    def get(self, kind: str, key: str) -> Optional[object]:
        if not self.enabled:
            return None
        path = self._path(kind, key)
        try:
            with open(path, "rb") as fh:
                version, value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            self.misses += 1
            return None
        if version != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, kind: str, key: str, value: object) -> None:
        if not self.enabled:
            return
        path = self._path(kind, key)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump((CACHE_VERSION, value), fh)
            os.replace(tmp, path)
        except OSError:
            pass  # caching is best-effort
