"""Internal smoke tests for the builtin frontend and the checks.

Run with ``python3 scripts/speccheck --selftest``.  These are the
fast, dependency-free sanity tests that the negative-fixture ctest
suite (tests/speccheck/) builds on; they pin the parser behaviors
that past iterations got wrong: getter-shaped CleanupMode false
modes, subscripted assignments (``depMask_[slot] |= bit``),
smart-pointer receiver resolution, ctor exemption, and mode-gated
closure admission.
"""

from __future__ import annotations

import traceback
from typing import Callable, List, Set, Tuple

import callgraph as cg
import frontend_builtin as fb
from baseline import Baseline, BaselineError
from checks import run_checks
from cpplex import tokenize
from model import AnnotationError, Model, parse_transition

MODES = {
    "UnsafeBaseline", "Cleanup_FOR_L1", "SafeSpec",
}

MODE_SNIPPET = """
enum class CleanupMode {
    UnsafeBaseline,
    Cleanup_FOR_L1,   // comment
    SafeSpec,
};
struct Holder {
    CleanupMode mode() const { return mode_; }  // NOT an enumerator
    CleanupMode mode_;
};
"""

DECL_SNIPPET = """
namespace unxpec {
struct Line {
    UNXPEC_SPEC_STATE bool speculative = false;
    UNXPEC_SPEC_STATE unsigned installer = 0;
    int committed = 0;
};
class Buffer {
  public:
    UNXPEC_TRANSITION("spec@Cleanup_FOR_L1,SafeSpec")
    void install(unsigned slot);
    UNXPEC_ROLLBACK("Cleanup_FOR_L1")
    void undo(unsigned slot);
    void helper();
  private:
    Line lines_[4];
    UNXPEC_SPEC_STATE unsigned mask_[4] = {};
};
}  // namespace unxpec
"""

BODY_SNIPPET = DECL_SNIPPET + """
namespace unxpec {
void Buffer::install(unsigned slot)
{
    lines_[slot].speculative = true;
    mask_[slot] |= 1u << slot;   // subscripted compound assignment
    helper();
}
void Buffer::undo(unsigned slot)
{
    lines_[slot].speculative = false;
}
void Buffer::helper()
{
    lines_[0].installer = 7;
}
}  // namespace unxpec
"""

UNORDERED_SNIPPET = """
#include <unordered_map>
namespace unxpec {
struct Walker {
    std::unordered_map<int, int> table;
    int sum() const {
        int acc = 0;
        for (const auto &kv : table)   // nondeterministic order
            acc += kv.second;
        return acc;
    }
};
}  // namespace unxpec
"""

SUPPRESS_SNIPPET = """
namespace unxpec {
struct S {
    // lint-ok(steady-alloc): bounded by config, first touch only
    void f();
};
}  // namespace unxpec
"""


def _parse(text: str, modes: Set[str]) -> Model:
    decl = fb.parse_declarations("<selftest>", text, modes)
    model = Model(modes=set(modes))
    model.merge(decl)
    model.merge(fb.parse_bodies("<selftest>", text, decl))
    return model


def t_lexer() -> None:
    toks = tokenize("a /* x */ = \"str\"; // tail\nb;")
    texts = [t.text for t in toks]
    assert "a" in texts and "b" in texts, texts
    assert "str" in texts, "string contents must be kept"
    assert "x" not in texts and "tail" not in texts, "comments leak"


def t_modes() -> None:
    modes = fb.collect_modes(MODE_SNIPPET)
    assert modes == MODES, modes  # no getter-shaped false enumerators


def t_annotations() -> None:
    tr = parse_transition("spec@SafeSpec", MODES, "<t>")
    assert tr.kind == "spec" and tr.scope == frozenset({"SafeSpec"})
    try:
        parse_transition("bogus", MODES, "<t>")
    except AnnotationError:
        pass
    else:
        raise AssertionError("bad transition kind accepted")
    try:
        parse_transition("spec@NoSuchMode", MODES, "<t>")
    except AnnotationError:
        pass
    else:
        raise AssertionError("unknown mode accepted")


def t_declarations() -> None:
    model = _parse(DECL_SNIPPET, MODES)
    line = model.classes["unxpec::Line"]
    assert line["speculative"].spec_state
    assert line["installer"].spec_state
    assert not line["committed"].spec_state
    buf = model.functions["unxpec::Buffer::install"]
    assert buf.transitions and buf.transitions[0].kind == "spec"
    assert model.functions["unxpec::Buffer::undo"].rollbacks


def t_mutations() -> None:
    model = _parse(BODY_SNIPPET, MODES)
    install = model.functions["unxpec::Buffer::install"]
    muts = {(cls, name) for cls, name, _ in install.mutations}
    assert ("unxpec::Line", "speculative") in muts, muts
    # The one that historically slipped through: `]` before `|=`.
    assert ("unxpec::Buffer", "mask_") in muts, muts
    helper = model.functions["unxpec::Buffer::helper"]
    hmuts = {(cls, name) for cls, name, _ in helper.mutations}
    assert ("unxpec::Line", "installer") in hmuts, hmuts


def t_closure() -> None:
    model = _parse(BODY_SNIPPET, MODES)
    graph = cg.CallGraph(model)
    writes, _ = cg.write_set(graph, model, "SafeSpec")
    # helper() is reached from the spec transition, so installer is
    # in the write-set even though helper itself is unannotated.
    assert "Line::installer" in writes, sorted(writes)
    assert "Buffer::mask_" in writes, sorted(writes)
    undos, _ = cg.undo_set(graph, model, "SafeSpec")
    # undo() is scoped to Cleanup_FOR_L1 only — SafeSpec gets nothing.
    assert not undos, sorted(undos)
    undos_l1, _ = cg.undo_set(graph, model, "Cleanup_FOR_L1")
    assert "Line::speculative" in undos_l1, sorted(undos_l1)


def t_end_to_end_gate() -> None:
    model = _parse(BODY_SNIPPET, MODES)
    res = run_checks(model, Baseline({}, "<none>"), only={"undo"})
    missing = {
        f.where for f in res.findings
        if f.check == "undo-completeness"
    }
    # Cleanup_FOR_L1 restores speculative but not installer/mask_;
    # SafeSpec has no rollback at all; UnsafeBaseline is exempt.
    assert "Cleanup_FOR_L1:Line::installer" in missing, missing
    assert "SafeSpec:Line::speculative" in missing, missing
    assert not any(w.startswith("UnsafeBaseline:") for w in missing)


def t_determinism() -> None:
    model = _parse(UNORDERED_SNIPPET, MODES)
    rules = {d.rule for d in model.determinism}
    assert "unordered-iteration" in rules, rules


def t_suppressions() -> None:
    model = _parse(SUPPRESS_SNIPPET, MODES)
    assert model.suppressed("steady-alloc", "<selftest>", 4)
    assert model.suppressed("steady-alloc", "<selftest>", 5)
    assert not model.suppressed("steady-alloc", "<selftest>", 6)
    assert not model.suppressed("wall-clock", "<selftest>", 4)


def t_baseline() -> None:
    try:
        Baseline({"undo-completeness": [{"mode": "*"}]}, "<t>")
    except BaselineError:
        pass
    else:
        raise AssertionError("missing 'why' accepted")
    b = Baseline(
        {"undo-completeness": [
            {"mode": "*", "field": "Line::installer", "why": "ok"},
        ]},
        "<t>",
    )
    assert b.covers_undo("SafeSpec", "Line::installer")
    assert not b.covers_undo("SafeSpec", "Line::speculative")
    assert not b.unused()


TESTS: List[Tuple[str, Callable[[], None]]] = [
    ("lexer", t_lexer),
    ("mode-collection", t_modes),
    ("annotation-parsing", t_annotations),
    ("declaration-pass", t_declarations),
    ("mutation-detection", t_mutations),
    ("mode-gated-closure", t_closure),
    ("undo-gate-end-to-end", t_end_to_end_gate),
    ("determinism-rules", t_determinism),
    ("suppressions", t_suppressions),
    ("baseline", t_baseline),
]


def run() -> int:
    failed = 0
    for name, fn in TESTS:
        try:
            fn()
        except Exception:  # noqa: BLE001 — report, keep going
            failed += 1
            print(f"selftest FAIL {name}")
            traceback.print_exc()
        else:
            print(f"selftest ok   {name}")
    print(
        f"selftest: {len(TESTS) - failed}/{len(TESTS)} passed"
    )
    return 1 if failed else 0
