"""Call-graph construction and the mode-scoped closures.

The undo-completeness gate compares, per CleanupMode M:

* write-set(M)  — speculative-state fields mutated in the call-graph
  closure of the ``UNXPEC_TRANSITION("spec@...")`` functions whose
  scope admits M;
* undo-set(M)   — fields mutated in the closure of the
  ``UNXPEC_ROLLBACK(...)`` functions whose mode list admits M.

Traversal is *mode-gated*: stepping from a function into an annotated
callee requires one of the callee's annotations to admit M.  That is
what keeps ``CleanupEngine::rollback`` (annotated for every mode — it
is the dispatcher) from flooding UnsafeBaseline's undo-set with the
helpers that only the real cleanup modes call: each helper's own
``UNXPEC_ROLLBACK`` names the modes it serves, and the walk stops at
helpers that do not serve M.  Unannotated callees are always admitted.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from model import Function, Model


class CallGraph:
    def __init__(self, model: Model):
        self.model = model
        self.edges: Dict[str, Set[str]] = defaultdict(set)
        # short method name -> [qualified functions], for fallback
        by_short: Dict[str, List[str]] = defaultdict(list)
        for qual in model.functions:
            by_short[qual.split("::")[-1]].append(qual)
        self._by_short = by_short
        for qual, fn in model.functions.items():
            for name, recv_cls, _line in fn.calls:
                callee = self._resolve(fn, name, recv_cls)
                if callee is not None:
                    self.edges[qual].add(callee)

    def _resolve(
        self, caller: Function, name: str, recv_cls: Optional[str]
    ) -> Optional[str]:
        fns = self.model.functions
        if recv_cls is not None:
            cand = f"{recv_cls}::{name}"
            if cand in fns:
                return cand
            # Receiver class known but method unmodeled (std type,
            # template): no edge.
            return None
        if caller.cls:
            cand = f"{caller.cls}::{name}"
            if cand in fns:
                return cand
        # Free function in the caller's namespace, then unique match.
        ns = "::".join(caller.qual.split("::")[:-1])
        while ns:
            cand = f"{ns}::{name}"
            if cand in fns:
                return cand
            ns = "::".join(ns.split("::")[:-1])
        if name in fns:
            return name
        matches = self._by_short.get(name, [])
        if len(matches) == 1:
            return matches[0]
        return None

    # -- closures -----------------------------------------------------

    def reachable(
        self,
        roots: Set[str],
        admit=None,
    ) -> Set[str]:
        """BFS over call edges; ``admit(fn)`` gates stepping *into* an
        annotated callee (roots are always included)."""
        seen: Set[str] = set()
        work = [r for r in roots if r in self.model.functions]
        seen.update(work)
        while work:
            cur = work.pop()
            for nxt in self.edges.get(cur, ()):
                if nxt in seen:
                    continue
                fn = self.model.functions[nxt]
                if admit is not None and fn.annotated and not admit(fn):
                    continue
                seen.add(nxt)
                work.append(nxt)
        return seen


def _admits(fn: Function, mode: str) -> bool:
    for t in fn.transitions:
        if t.scope is None or mode in t.scope:
            return True
    for r in fn.rollbacks:
        if r.modes is None or mode in r.modes:
            return True
    return False


def _admits_transition_only(fn: Function, mode: str) -> bool:
    """Write-closure gate: rollback-only helpers are undo machinery
    and must not inflate the speculative write-set."""
    if fn.transitions:
        return any(
            t.scope is None or mode in t.scope for t in fn.transitions
        )
    return False


def spec_roots(model: Model, mode: str) -> Set[str]:
    return {
        qual
        for qual, fn in model.functions.items()
        if any(
            t.kind == "spec" and (t.scope is None or mode in t.scope)
            for t in fn.transitions
        )
    }


def rollback_roots(model: Model, mode: str) -> Set[str]:
    return {
        qual
        for qual, fn in model.functions.items()
        if any(
            r.modes is None or mode in r.modes for r in fn.rollbacks
        )
    }


def mutated_spec_fields(
    model: Model, closure: Set[str]
) -> Dict[str, List[Tuple[str, int]]]:
    """{'Class::field': [(function, line), ...]} restricted to
    UNXPEC_SPEC_STATE fields mutated by functions in the closure."""
    out: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
    for qual in closure:
        fn = model.functions[qual]
        for cls, fname, line in fn.mutations:
            fld = model.classes.get(cls, {}).get(fname)
            if fld is not None and fld.spec_state:
                out[fld.key].append((qual, line))
    return dict(out)


def write_set(graph: CallGraph, model: Model, mode: str):
    closure = graph.reachable(
        spec_roots(model, mode),
        admit=lambda fn: _admits_transition_only(fn, mode),
    )
    return mutated_spec_fields(model, closure), closure


def undo_set(graph: CallGraph, model: Model, mode: str):
    closure = graph.reachable(
        rollback_roots(model, mode),
        admit=lambda fn: _admits(fn, mode),
    )
    return mutated_spec_fields(model, closure), closure


def paired_functions(graph: CallGraph, model: Model) -> Set[str]:
    """Functions that are annotated or reachable from one — the set
    inside which spec-state mutations are considered registered."""
    roots = {
        qual for qual, fn in model.functions.items() if fn.annotated
    }
    return graph.reachable(roots)


def hot_functions(graph: CallGraph, model: Model,
                  entries: List[str]) -> Set[str]:
    roots = set()
    for entry in entries:
        if entry in model.functions:
            roots.add(entry)
        else:
            # Allow short names ("BatchRunner::run") against the
            # namespace-qualified table.
            for qual in model.functions:
                if qual.endswith("::" + entry) or qual == entry:
                    roots.add(qual)
    return graph.reachable(roots)
