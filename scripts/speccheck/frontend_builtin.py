"""Dependency-free structural C++ frontend.

Builds the speccheck ``Model`` from the token stream alone: namespace /
class nesting, field declarations, function definitions with their
call sites and field-mutation sites, annotation macros, and the
determinism matchers.  It is deliberately not a C++ parser — it leans
on the house style the repo's other gates already enforce (one
declarator per field, members with a trailing underscore, everything
inside ``namespace unxpec``), and the libclang frontend supersedes it
where clang bindings are installed.

Parsing is two-pass so receiver types resolve across files:

* declaration pass — classes, fields, type aliases, virtual methods,
  and annotations from every file are merged into one table;
* body pass — function bodies are scanned with that global table, so
  ``record.speculative`` on a ``MemAccessRecord`` (a deliberately
  unannotated mirror struct) never false-positives against
  ``CacheLine::speculative``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from cpplex import ID, PP, STR, Token, tokenize
from model import (
    AnnotationError,
    DeterminismFinding,
    Field,
    Model,
    parse_rollback,
    parse_transition,
)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "throw", "new", "delete", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "case", "default", "do",
    "else", "goto", "assert", "static_assert", "decltype", "noexcept",
    "true", "false", "nullptr", "this", "break", "continue",
}

_TYPE_QUALIFIERS = {
    "const", "constexpr", "static", "inline", "volatile", "mutable",
    "unsigned", "signed", "typename", "struct", "class", "friend",
    "virtual", "explicit", "extern", "register", "thread_local",
    "union", "enum",
}

# Methods that mutate their receiver — turns
# ``entries_.push_back(x)`` into a mutation of ``entries_``.
_MUTATING_METHODS = {
    "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
    "emplace_front", "clear", "erase", "insert", "emplace", "resize",
    "assign", "swap", "fill", "reset", "truncate",
}

# Calls that allocate (hot-path steady-alloc rule; mirrors the
# lint_sim.py pre-pass so existing lint-ok(steady-alloc) lines apply).
_ALLOC_CALLS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "resize", "reserve", "emplace", "insert", "assign", "append",
    "make_unique", "make_shared",
}

_RANDOM_CALL_IDS = {"rand", "srand", "drand48", "lrand48"}
_RANDOM_TYPE_IDS = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "knuth_b",
}
_WALLCLOCK_CALLS = {
    "gettimeofday", "clock_gettime", "timespec_get", "clock", "time",
}
_WALLCLOCK_CLOCKS = {
    "system_clock", "steady_clock", "high_resolution_clock",
}

_SUPPRESS_RE = re.compile(
    r"lint-ok\((?P<rule>[a-z-]+)\)\s*:\s*(?P<why>\S.*)?"
)

_ANNOT_MACROS = {
    "UNXPEC_SPEC_STATE", "UNXPEC_TRANSITION", "UNXPEC_ROLLBACK",
}

_ACCESS_SPECIFIERS = {"public", "private", "protected"}


def collect_modes(config_text: str) -> Set[str]:
    """Extract CleanupMode enumerators from sim/config.hh."""
    toks = tokenize(config_text, "config.hh")
    for i, t in enumerate(toks):
        if t.kind != ID or t.text != "CleanupMode":
            continue
        # Only the definition site: `enum [class] CleanupMode {`.
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2].text if i > 1 else ""
        if prev != "enum" and not (prev == "class" and prev2 == "enum"):
            continue
        j = i + 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1
        if j >= len(toks) or toks[j].text != "{":
            continue
        modes: Set[str] = set()
        depth = 1
        j += 1
        expect_name = True
        while j < len(toks) and depth > 0:
            t2 = toks[j]
            if t2.text == "{":
                depth += 1
            elif t2.text == "}":
                depth -= 1
            elif depth == 1:
                if expect_name and t2.kind == ID:
                    modes.add(t2.text)
                    expect_name = False
                elif t2.text == ",":
                    expect_name = True
            j += 1
        if modes:
            return modes
    return set()


def collect_suppressions(path: str, text: str, model: Model) -> None:
    per_line = model.suppressions.setdefault(path, {})
    for lineno, line in enumerate(text.splitlines(), 1):
        m = _SUPPRESS_RE.search(line)
        if m:
            per_line.setdefault(lineno, set()).add(m.group("rule"))


def parse_declarations(path: str, text: str, modes: Set[str]) -> Model:
    """Pass 1: one file's classes/fields/aliases/annotations."""
    model = Model(modes=set(modes))
    collect_suppressions(path, text, model)
    toks = tokenize(text, path)
    _Parser(path, toks, model, decl=None, scan_bodies=False).run()
    return model


def parse_bodies(path: str, text: str, decl: Model) -> Model:
    """Pass 2: one file's function bodies against the global table."""
    model = Model(modes=set(decl.modes))
    collect_suppressions(path, text, model)
    toks = tokenize(text, path)
    _Parser(path, toks, model, decl=decl, scan_bodies=True).run()
    return model


class _Scope:
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str = ""):
        self.kind = kind  # ns | class | block
        self.name = name


class _Parser:
    def __init__(
        self,
        path: str,
        toks: List[Token],
        model: Model,
        decl: Optional[Model],
        scan_bodies: bool,
    ):
        self.path = path
        self.toks = toks
        self.model = model
        # Lookup table for receiver/type resolution.  During the
        # declaration pass the per-file model doubles as the table.
        self.decl = decl if decl is not None else model
        self.scan_bodies = scan_bodies
        self.i = 0
        self.scopes: List[_Scope] = []
        self.pending_spec_state = False
        self.pending_transitions: List[Tuple[str, int]] = []
        self.pending_rollbacks: List[Tuple[str, int]] = []
        # short class name -> qualified, built lazily from self.decl
        self._short_cache: Dict[str, Optional[str]] = {}

    # -- context helpers ----------------------------------------------

    def _ns_path(self) -> str:
        return "::".join(
            s.name
            for s in self.scopes
            if s.kind in ("ns", "class") and s.name
        )

    def _enclosing_class(self) -> Optional[str]:
        parts: List[str] = []
        cls_seen = False
        for s in self.scopes:
            if s.kind in ("ns", "class") and s.name:
                parts.append(s.name)
            if s.kind == "class":
                cls_seen = True
        if not cls_seen:
            return None
        # Trim trailing namespaces after the last class (none in
        # practice: namespaces don't nest inside classes).
        return "::".join(parts)

    def resolve_short(self, short_name: str) -> Optional[str]:
        if short_name in self._short_cache:
            return self._short_cache[short_name]
        found = None
        for qual in self.decl.classes:
            if qual.split("::")[-1] == short_name:
                found = qual
                break
        if found is None and short_name in self.decl.virtual_methods:
            found = short_name
        else:
            for qual in self.decl.virtual_methods:
                if qual.split("::")[-1] == short_name:
                    found = found or qual
        self._short_cache[short_name] = found
        return found

    def base_type(self, words: List[str]) -> Optional[str]:
        """Class-ish head of a type token sequence with alias
        resolution: ['const','MemAccessRecord','&'] ->
        'MemAccessRecord'; ArenaVector<RobEntry> stays ArenaVector
        (element types are handled separately)."""
        cands = [
            w
            for w in words
            if w and (w[0].isalpha() or w[0] == "_")
            and w not in _TYPE_QUALIFIERS
            and w not in _KEYWORDS
            and w != "std"
        ]
        # Smart pointers are transparent: unique_ptr<BranchPredictor>
        # receivers dispatch on BranchPredictor (virtual-call rule).
        while len(cands) > 1 and cands[0] in (
            "unique_ptr", "shared_ptr", "weak_ptr",
        ):
            cands = cands[1:]
        if not cands:
            return None
        head = cands[0]
        seen: Set[str] = set()
        while head in self.decl.aliases and head not in seen:
            seen.add(head)
            alias_head = self.base_type(
                self.decl.aliases[head].split()
            )
            if alias_head is None or alias_head == head:
                break
            head = alias_head
        return head

    def resolve_alias_text(self, name: str) -> str:
        seen: Set[str] = set()
        text = name
        while text in self.decl.aliases and text not in seen:
            seen.add(text)
            text = self.decl.aliases[text]
        return text

    # -- token helpers ------------------------------------------------

    def _skip_balanced(self, open_tok: str, close_tok: str) -> None:
        depth = 0
        while self.i < len(self.toks):
            t = self.toks[self.i].text
            if t == open_tok:
                depth += 1
            elif t == close_tok:
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return
            self.i += 1

    def _skip_angle(self) -> List[Token]:
        """At '<': consume a template argument list; returns the
        consumed tokens (including brackets), or backs off when the
        '<' turns out to be a comparison."""
        start = self.i
        depth = 0
        while self.i < len(self.toks):
            t = self.toks[self.i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return self.toks[start : self.i]
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    self.i += 1
                    return self.toks[start : self.i]
            elif t in (";", "{", "}"):
                break
            self.i += 1
        self.i = start + 1
        return [self.toks[start]]

    def _macro_string_arg(self) -> Tuple[str, int]:
        line = self.toks[self.i].line
        self.i += 1
        if self.i >= len(self.toks) or self.toks[self.i].text != "(":
            return "", line
        depth = 0
        parts: List[str] = []
        while self.i < len(self.toks):
            t = self.toks[self.i]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    break
            elif t.kind == STR:
                parts.append(t.text)
            self.i += 1
        return "".join(parts), line

    # -- main loop ----------------------------------------------------

    def run(self) -> None:
        toks = self.toks
        while self.i < len(toks):
            t = toks[self.i]
            if t.kind == PP:
                self.i += 1
                continue
            if t.kind == ID and t.text in _ANNOT_MACROS:
                self._take_annotation(t.text)
                continue
            if t.kind == ID and t.text == "namespace":
                self._take_namespace()
                continue
            if (
                t.kind == ID
                and t.text in _ACCESS_SPECIFIERS
                and self.i + 1 < len(toks)
                and toks[self.i + 1].text == ":"
            ):
                self.i += 2
                continue
            if t.kind == ID and t.text in ("class", "struct"):
                self._take_class()
                continue
            if t.kind == ID and t.text == "enum":
                self._take_enum()
                continue
            if t.kind == ID and t.text == "using":
                self._take_using()
                continue
            if t.kind == ID and t.text in ("typedef", "friend"):
                while (
                    self.i < len(toks) and toks[self.i].text != ";"
                ):
                    self.i += 1
                self.i += 1
                continue
            if t.kind == ID and t.text == "template":
                self.i += 1
                if self.i < len(toks) and toks[self.i].text == "<":
                    self._skip_angle()
                continue
            if t.text == "}":
                if self.scopes:
                    self.scopes.pop()
                self.i += 1
                continue
            if t.text == "{":
                self.scopes.append(_Scope("block"))
                self.i += 1
                continue
            if t.kind == ID or t.text in ("~", "::"):
                self._take_declaration()
                continue
            self.i += 1

    def _take_annotation(self, macro: str) -> None:
        if macro == "UNXPEC_SPEC_STATE":
            self.pending_spec_state = True
            self.i += 1
            return
        arg, line = self._macro_string_arg()
        if macro == "UNXPEC_TRANSITION":
            self.pending_transitions.append((arg, line))
        else:
            self.pending_rollbacks.append((arg, line))

    def _take_namespace(self) -> None:
        self.i += 1
        name_parts: List[str] = []
        while self.i < len(self.toks):
            t = self.toks[self.i]
            if t.text == "{":
                self.scopes.append(
                    _Scope("ns", "::".join(name_parts))
                )
                self.i += 1
                return
            if t.text == ";":
                self.i += 1
                return
            if t.kind == ID:
                name_parts.append(t.text)
            self.i += 1

    def _take_class(self) -> None:
        start = self.i
        self.i += 1
        name: Optional[str] = None
        while self.i < len(self.toks):
            t = self.toks[self.i]
            if t.kind == ID:
                if t.text in ("final", "alignas"):
                    self.i += 1
                    continue
                if name is None:
                    name = t.text
                    self.i += 1
                    continue
                # `struct Foo bar` — an (elaborated) declaration.
                self.i = start + 1
                self._take_declaration()
                return
            if t.text == ":":
                while (
                    self.i < len(self.toks)
                    and self.toks[self.i].text != "{"
                ):
                    if self.toks[self.i].text == ";":
                        self.i += 1
                        return
                    self.i += 1
                continue
            if t.text == "{":
                self.scopes.append(_Scope("class", name or "<anon>"))
                ns = self._ns_path()
                self.model.classes.setdefault(ns, {})
                self.i += 1
                return
            if t.text == ";":
                self.i += 1
                return
            if t.text in (")", ",", ">", "*", "&", "("):
                # elaborated type in some other construct
                return
            self.i += 1

    def _take_enum(self) -> None:
        while self.i < len(self.toks):
            t = self.toks[self.i]
            if t.text == "{":
                self._skip_balanced("{", "}")
                if (
                    self.i < len(self.toks)
                    and self.toks[self.i].text == ";"
                ):
                    self.i += 1
                return
            if t.text == ";":
                self.i += 1
                return
            self.i += 1

    def _take_using(self) -> None:
        toks = self.toks
        self.i += 1
        if (
            self.i + 1 < len(toks)
            and toks[self.i].kind == ID
            and toks[self.i + 1].text == "="
        ):
            alias = toks[self.i].text
            self.i += 2
            parts: List[str] = []
            while self.i < len(toks) and toks[self.i].text != ";":
                parts.append(toks[self.i].text)
                self.i += 1
            self.model.aliases[alias] = " ".join(parts)
        while self.i < len(toks) and toks[self.i].text != ";":
            self.i += 1
        self.i += 1

    # -- declarations -------------------------------------------------

    def _take_declaration(self) -> None:
        toks = self.toks
        start = self.i
        is_virtual = False
        head: List[Token] = []
        paren_at = None
        while self.i < len(toks):
            t = toks[self.i]
            if t.kind == ID and t.text in _ANNOT_MACROS:
                self._take_annotation(t.text)
                continue
            if t.kind == ID and t.text == "virtual":
                is_virtual = True
                self.i += 1
                continue
            if t.kind == ID and t.text == "operator":
                sym: List[str] = []
                self.i += 1
                while (
                    self.i < len(toks) and toks[self.i].text != "("
                ):
                    sym.append(toks[self.i].text)
                    self.i += 1
                head.append(
                    Token(ID, "operator" + "".join(sym), t.line)
                )
                continue
            if t.text == "<" and head and head[-1].kind == ID:
                head.extend(self._skip_angle()[1:])
                continue
            if t.text == "(":
                paren_at = self.i
                break
            if t.text in (";", "=", "{", "}"):
                break
            if t.kind == PP:
                self.i += 1
                continue
            head.append(t)
            self.i += 1

        if paren_at is None:
            self._finish_field(head)
            return

        params_start = self.i
        self._skip_balanced("(", ")")
        params = toks[params_start + 1 : self.i - 1]

        # Trailer up to the body '{', a ';', or '= default/delete;'.
        has_body = False
        while self.i < len(toks):
            t = toks[self.i]
            if t.text == "{":
                has_body = True
                break
            if t.text == ";":
                break
            if t.text == ":":  # ctor initializer list
                self.i += 1
                self._skip_ctor_inits()
                continue
            if t.text == "=":
                while (
                    self.i < len(toks) and toks[self.i].text != ";"
                ):
                    self.i += 1
                continue
            if t.text == "(":
                self._skip_balanced("(", ")")
                continue
            self.i += 1

        name, cls = self._function_name(head)
        if name is None:
            self._soft_drop()
            if has_body:
                self._skip_balanced("{", "}")
            else:
                self.i += 1
            return

        qual = f"{cls}::{name}" if cls else (
            f"{self._ns_path()}::{name}"
            if self._ns_path()
            else name
        )
        fn = self.model.function(qual, cls, self.path, toks[start].line)
        self._attach_pending(fn)
        if is_virtual and cls:
            self.model.virtual_methods.setdefault(cls, set()).add(name)

        if has_body:
            body_start = self.i
            self._skip_balanced("{", "}")
            if self.scan_bodies:
                env = self._param_env(params)
                _BodyScanner(self, fn, cls).scan(
                    toks[body_start + 1 : self.i - 1], env
                )
        else:
            self.i += 1  # past ';'

    def _skip_ctor_inits(self) -> None:
        """After the ':' of a constructor initializer list: skip
        `member(init)` / `member{init}` groups up to the body '{'."""
        toks = self.toks
        while self.i < len(toks):
            t = toks[self.i]
            if t.kind == ID or t.text in ("::", ",", "<", ">"):
                if t.text == "<":
                    self._skip_angle()
                    continue
                self.i += 1
                continue
            if t.text == "(":
                self._skip_balanced("(", ")")
                continue
            if t.text == "{":
                nxt_is_init = (
                    self.i > 0
                    and toks[self.i - 1].kind == ID
                )
                if nxt_is_init:
                    self._skip_balanced("{", "}")
                    continue
                return  # the body
            if t.text == ";":
                return
            self.i += 1

    def _function_name(self, head: List[Token]):
        j = len(head) - 1
        while j >= 0 and head[j].kind != ID:
            j -= 1
        if j < 0:
            return None, self._enclosing_class()
        name = head[j].text
        if name in _KEYWORDS or name in _TYPE_QUALIFIERS:
            return None, self._enclosing_class()
        quals: List[str] = []
        k = j - 1
        while (
            k - 1 >= 0
            and head[k].text == "::"
            and head[k - 1].kind == ID
        ):
            quals.insert(0, head[k - 1].text)
            k -= 2
        if k >= 0 and head[k].text == "~":
            name = "~" + name
        cls = self._enclosing_class()
        if quals and quals[0] != "std":
            qual_cls = "::".join(quals)
            ns = self._ns_path()
            cls = f"{ns}::{qual_cls}" if ns else qual_cls
        return name, cls

    def _param_env(self, params: List[Token]) -> Dict[str, str]:
        env: Dict[str, str] = {}
        depth = 0
        group: List[Token] = []
        groups: List[List[Token]] = []
        for t in params:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                groups.append(group)
                group = []
            else:
                group.append(t)
        if group:
            groups.append(group)
        for g in groups:
            for idx, t in enumerate(g):
                if t.text == "=":
                    g = g[:idx]
                    break
            ids = [t for t in g if t.kind == ID]
            if len(ids) < 2:
                continue
            pname = ids[-1].text
            base = self.base_type([t.text for t in g[:-1]])
            if base:
                env[pname] = base
        return env

    def _attach_pending(self, fn) -> None:
        for arg, line in self.pending_transitions:
            where = f"{self.path}:{line}"
            fn.transitions.append(
                parse_transition(arg, self.model.modes, where)
            )
        for arg, line in self.pending_rollbacks:
            where = f"{self.path}:{line}"
            fn.rollbacks.append(
                parse_rollback(arg, self.model.modes, where)
            )
        self.pending_transitions = []
        self.pending_rollbacks = []
        if self.pending_spec_state:
            raise AnnotationError(
                f"{self.path}:{fn.line}: UNXPEC_SPEC_STATE on a "
                "function (fields only)"
            )

    def _finish_field(self, head: List[Token]) -> None:
        toks = self.toks
        while self.i < len(toks):
            t = toks[self.i]
            if t.text == ";":
                self.i += 1
                break
            if t.text == "{":
                self._skip_balanced("{", "}")
                continue
            if t.text == "(":
                self._skip_balanced("(", ")")
                continue
            if t.text == "}":
                break
            self.i += 1
        cls = self._enclosing_class()
        ids = [t for t in head if t.kind == ID]
        if cls is None or len(ids) < 2:
            if self.pending_spec_state:
                line = head[0].line if head else 0
                raise AnnotationError(
                    f"{self.path}:{line}: UNXPEC_SPEC_STATE must "
                    "annotate a class field declaration"
                )
            self._soft_drop()
            return
        if self.pending_transitions or self.pending_rollbacks:
            raise AnnotationError(
                f"{self.path}:{head[-1].line}: transition/rollback "
                "annotation must attach to a function"
            )
        fname = ids[-1].text
        if fname in _KEYWORDS:
            self._soft_drop()
            return
        type_words = [t.text for t in head[:-1]]
        fields = self.model.classes.setdefault(cls, {})
        prev = fields.get(fname)
        if prev is None or (self.pending_spec_state and
                            not prev.spec_state):
            fields[fname] = Field(
                cls=cls,
                name=fname,
                type_text=" ".join(type_words),
                spec_state=self.pending_spec_state,
                file=self.path,
                line=head[-1].line,
            )
        self.pending_spec_state = False

    def _soft_drop(self) -> None:
        self.pending_spec_state = False
        self.pending_transitions = []
        self.pending_rollbacks = []


class _BodyScanner:
    """Scan one function body for calls, mutations, allocations,
    virtual dispatch, and determinism findings."""

    def __init__(self, parser: _Parser, fn, cls: Optional[str]):
        self.p = parser
        self.fn = fn
        self.cls = cls
        self.out = parser.model  # findings/mutations land here
        self.decl = parser.decl  # resolution table

    # resolution helpers ----------------------------------------------

    def _field_of(self, cls: Optional[str], name: str):
        if cls is None:
            return None
        flds = self.decl.classes.get(cls)
        if flds is None:
            return None
        return flds.get(name)

    def _field_base_type(self, cls: Optional[str], name: str):
        fld = self._field_of(cls, name)
        if fld is None:
            return None, None
        raw = self.p.resolve_alias_text(
            self.p.base_type(fld.type_text.split()) or ""
        )
        base = self.p.base_type(fld.type_text.split())
        return base, fld.type_text

    @staticmethod
    def _elem_type(type_text: str) -> Optional[str]:
        m = re.search(r"<\s*([A-Za-z_][\w:]*)", type_text)
        if m:
            return m.group(1).split("::")[-1]
        return None

    def _name_type(self, name: str, env: Dict[str, str]):
        """(base type, full type text) of a variable/field name."""
        if name in env:
            return env[name], env[name]
        base, text = self._field_base_type(self.cls, name)
        if base is not None:
            return base, text
        return None, None

    def _receiver_class(
        self, body: List[Token], i: int, env: Dict[str, str]
    ):
        """Qualified class owning the member accessed at body[i].

        Returns (class or None, confident).  Not confident means the
        receiver was a chained call or other unresolvable expression —
        callers may then fall back to unique-name attribution."""
        j = i - 1
        if j < 0 or body[j].text not in (".", "->"):
            return (self.cls, True) if self.cls else (None, True)
        k = j - 1
        if k >= 0 and body[k].text == "]":
            depth = 0
            while k >= 0:
                if body[k].text == "]":
                    depth += 1
                elif body[k].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
            if k < 0 or body[k].kind != ID:
                return None, False
            base, text = self._name_type(body[k].text, env)
            if text:
                elem = self._elem_type(text)
                head = elem or base
                if head:
                    return self.p.resolve_short(head), True
            return None, False
        if k < 0 or body[k].kind != ID:
            return None, False
        if body[k].text == "this":
            return (self.cls, True) if self.cls else (None, True)
        # Two-level member chains resolve the *last* hop only when the
        # first hop is unambiguous; otherwise give up un-confidently.
        if k - 1 >= 0 and body[k - 1].text in (".", "->"):
            return None, False
        base, _text = self._name_type(body[k].text, env)
        if base is None:
            return None, False
        return self.p.resolve_short(base), True

    # main scan --------------------------------------------------------

    def scan(self, body: List[Token], env: Dict[str, str]) -> None:
        n = len(body)
        i = 0
        while i < n:
            t = body[i]
            if t.kind != ID:
                if t.text in ("++", "--"):
                    j = i - 1
                    if j >= 0 and body[j].kind == ID:
                        self._mutation(body, j, env)
                    elif i + 1 < n and body[i + 1].kind == ID:
                        k = i + 1
                        while (
                            k + 2 < n
                            and body[k + 1].text in (".", "->")
                            and body[k + 2].kind == ID
                        ):
                            k += 2
                        self._mutation(body, k, env)
                i += 1
                continue

            consumed = self._try_local_decl(body, i, env)
            if consumed is not None:
                i = consumed
                continue

            nxt = body[i + 1].text if i + 1 < n else ""

            if t.text == "new":
                if not self.out.suppressed(
                    "steady-alloc", self.p.path, t.line
                ):
                    self.fn.allocs.append(("new", t.line))
                i += 1
                continue

            if nxt == "(" and t.text not in _KEYWORDS:
                self._call_site(body, i, env)

            self._determinism(body, i, env)

            if i + 1 < n and self._is_assign(body[i + 1].text):
                self._mutation(body, i, env)
            elif nxt == "[":
                # Subscript store: `depMask_[slot] |= bit`.
                k = i + 1
                depth = 0
                while k < n:
                    if body[k].text == "[":
                        depth += 1
                    elif body[k].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                if (
                    k + 1 < n
                    and self._is_assign(body[k + 1].text)
                ):
                    self._mutation(body, i, env)

            i += 1

    @staticmethod
    def _is_assign(t: str) -> bool:
        return t in (
            "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
            "<<=", ">>=",
        )

    def _try_local_decl(
        self, body: List[Token], i: int, env: Dict[str, str]
    ) -> Optional[int]:
        """Recognize `Type [*&] name [= ... | ; | ( | {]` local
        declarations and extend env.  Returns the index to resume at,
        or None when this is not a declaration."""
        t = body[i]
        if t.text in _KEYWORDS or t.text in _TYPE_QUALIFIERS:
            return None
        if self.p.resolve_short(t.text) is None and (
            t.text not in self.decl.aliases
        ):
            return None
        prev = body[i - 1].text if i > 0 else ";"
        if prev not in (";", "{", "}", "(", ",", "const", "auto"):
            return None
        j = i + 1
        # optional template args
        if j < len(body) and body[j].text == "<":
            depth = 0
            while j < len(body):
                if body[j].text == "<":
                    depth += 1
                elif body[j].text in (">", ">>"):
                    depth -= 2 if body[j].text == ">>" else 1
                    if depth <= 0:
                        j += 1
                        break
                elif body[j].text in (";", "{", ")"):
                    return None
                j += 1
        while j < len(body) and body[j].text in ("*", "&", "const"):
            j += 1
        if j >= len(body) or body[j].kind != ID:
            return None
        name_tok = body[j]
        after = body[j + 1].text if j + 1 < len(body) else ""
        if after not in ("=", ";", "(", "{", ":", ","):
            return None
        base = self.p.base_type([t.text])
        if base:
            env[name_tok.text] = base
        return j + 1

    def _mutation(self, body, i, env) -> None:
        tok = body[i]
        if tok.kind != ID or tok.text in _KEYWORDS:
            return
        name = tok.text
        recv, confident = self._receiver_class(body, i, env)
        if recv is not None:
            if self._field_of(recv, name) is not None:
                self.fn.mutations.append((recv, name, tok.line))
            return
        if confident:
            return
        # Unresolvable receiver: unique-name fallback, only when
        # exactly one class in the whole tree declares this field.
        holders = [
            cls
            for cls, flds in self.decl.classes.items()
            if name in flds
        ]
        if len(holders) == 1:
            self.fn.mutations.append((holders[0], name, tok.line))

    def _call_site(self, body, i, env) -> None:
        name = body[i].text
        line = body[i].line
        j = i - 1
        recv_cls = None
        member_call = j >= 0 and body[j].text in (".", "->")
        if member_call:
            recv_cls, _conf = self._receiver_class(body, i, env)
            k = j - 1
            if (
                k >= 0
                and body[k].kind == ID
                and name in _MUTATING_METHODS
            ):
                owner, _c = self._receiver_class(body, k, env)
                if owner is not None:
                    fname = body[k].text
                    if self._field_of(owner, fname) is not None:
                        self.fn.mutations.append(
                            (owner, fname, line)
                        )
        elif j >= 0 and body[j].text == "::":
            k = j - 1
            if k >= 0 and body[k].kind == ID:
                recv_cls = self.p.resolve_short(body[k].text)

        self.fn.calls.append((name, recv_cls, line))

        if name in _ALLOC_CALLS and not self.out.suppressed(
            "steady-alloc", self.p.path, line
        ):
            self.fn.allocs.append((name, line))

        if member_call and recv_cls:
            vmethods = self.decl.virtual_methods.get(recv_cls)
            if vmethods and name in vmethods:
                self.fn.virtual_calls.append((recv_cls, name, line))

        # Annotated field passed bare as a call argument: conservative
        # potential mutation (pass-by-reference helpers like
        # ReorderBuffer's trimYoungerThan(unissued_, seq)).
        depth = 0
        k = i + 1
        while k < len(body):
            t = body[k]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1 and t.kind == ID and self.cls:
                prev_is_member = k > 0 and body[k - 1].text in (
                    ".", "->",
                )
                nxt = body[k + 1].text if k + 1 < len(body) else ""
                if not prev_is_member and nxt in (",", ")"):
                    if self._field_of(self.cls, t.text) is not None:
                        self.fn.mutations.append(
                            (self.cls, t.text, t.line)
                        )
            k += 1

    # determinism ------------------------------------------------------

    def _determinism(self, body, i, env) -> None:
        t = body[i]
        name = t.text
        nxt = body[i + 1].text if i + 1 < len(body) else ""
        prev = body[i - 1].text if i > 0 else ""

        def report(rule: str, detail: str) -> None:
            if self.out.suppressed(rule, self.p.path, t.line):
                return
            self.out.determinism.append(
                DeterminismFinding(rule, self.p.path, t.line, detail)
            )

        if prev in (".", "->"):
            return  # member access — never a global clock/PRNG
        if name in _RANDOM_CALL_IDS and nxt == "(":
            report(
                "unseeded-randomness",
                f"call to {name}() — use the seeded unxpec::Rng",
            )
            return
        if name in _RANDOM_TYPE_IDS:
            report(
                "unseeded-randomness",
                f"use of std::{name} — use the seeded unxpec::Rng",
            )
            return
        if name in _WALLCLOCK_CALLS and nxt == "(":
            report(
                "wall-clock",
                f"host clock call {name}() — derive time from the "
                "Cycle counter",
            )
            return
        if name in _WALLCLOCK_CLOCKS and nxt == "::":
            report(
                "wall-clock",
                f"std::chrono::{name} — derive time from the Cycle "
                "counter",
            )
            return
        if name in ("float",):
            nxt_tok = body[i + 1] if i + 1 < len(body) else None
            if (
                nxt_tok is not None
                and nxt_tok.kind == ID
                and "cycle" in nxt_tok.text.lower()
            ):
                report(
                    "float-cycle",
                    f"float {nxt_tok.text} — use Cycle (uint64) or "
                    "double",
                )
            return
        if name == "for" and nxt == "(":
            self._range_for(body, i, env)

    def _range_for(self, body, i, env) -> None:
        depth = 0
        k = i + 1
        colon = None
        end = None
        while k < len(body):
            t = body[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    end = k
                    break
            elif t == ":" and depth == 1:
                if colon is None:
                    colon = k
            elif t == ";" and depth == 1:
                return  # classic for loop
            k += 1
        if colon is None or end is None:
            return
        expr = body[colon + 1 : end]
        ids = [t for t in expr if t.kind == ID]
        if not ids:
            return
        container = ids[-1].text
        base, text = self._name_type(container, env)
        # Bind the loop variable to the container's element type.
        decl_part = body[i + 2 : colon]
        decl_ids = [t for t in decl_part if t.kind == ID]
        if decl_ids and text:
            elem = self._elem_type(text)
            if elem:
                env[decl_ids[-1].text] = elem
        resolved = self.p.resolve_alias_text(base) if base else None
        full = self.p.resolve_alias_text(container)
        probe = " ".join(
            x for x in (resolved, text, full if full != container
                        else None) if x
        )
        if "unordered_" in probe:
            if not self.out.suppressed(
                "unordered-iteration", self.p.path, body[i].line
            ):
                self.out.determinism.append(
                    DeterminismFinding(
                        "unordered-iteration",
                        self.p.path,
                        body[i].line,
                        f"range-for over unordered container "
                        f"'{container}'",
                    )
                )
