"""Intermediate representation shared by both speccheck frontends.

A frontend (built-in token parser or libclang) reduces the tree to a
``Model``: classes with their fields, functions with their annotations,
mutation sites of annotated fields, call edges, and the raw material
the determinism / hot-path checks need.  The checks in ``checks.py``
operate on this IR only, so both frontends are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# Annotation tag prefixes (must match src/sim/annotate.hh).
TAG_SPEC_STATE = "unxpec::spec_state"
TAG_TRANSITION = "unxpec::transition:"
TAG_ROLLBACK = "unxpec::rollback:"

TRANSITION_KINDS = ("spec", "commit", "reset")


class AnnotationError(Exception):
    """Malformed annotation text (bad kind, unknown mode, ...)."""


@dataclass(frozen=True)
class Transition:
    kind: str  # "spec" | "commit" | "reset"
    scope: Optional[frozenset]  # mode names; None = every mode


@dataclass(frozen=True)
class Rollback:
    modes: Optional[frozenset]  # mode names; None = "*" (every mode)


def parse_transition(arg: str, modes: Set[str], where: str) -> Transition:
    """Parse the string argument of UNXPEC_TRANSITION."""
    kind, sep, scope_text = arg.partition("@")
    if kind not in TRANSITION_KINDS:
        raise AnnotationError(
            f"{where}: unknown transition kind '{kind}' "
            f"(expected one of {', '.join(TRANSITION_KINDS)})"
        )
    if not sep:
        return Transition(kind, None)
    scope = _parse_modes(scope_text, modes, where)
    return Transition(kind, scope)


def parse_rollback(arg: str, modes: Set[str], where: str) -> Rollback:
    """Parse the string argument of UNXPEC_ROLLBACK."""
    if arg.strip() == "*":
        return Rollback(None)
    return Rollback(_parse_modes(arg, modes, where))


def _parse_modes(text: str, modes: Set[str], where: str) -> frozenset:
    names = [m.strip() for m in text.split(",") if m.strip()]
    if not names:
        raise AnnotationError(f"{where}: empty mode list")
    for name in names:
        if name not in modes:
            raise AnnotationError(
                f"{where}: unknown CleanupMode '{name}' "
                f"(known: {', '.join(sorted(modes))})"
            )
    return frozenset(names)


@dataclass
class Field:
    cls: str  # qualified class name, e.g. "unxpec::CacheLine"
    name: str
    type_text: str  # declared type, single-spaced tokens
    spec_state: bool
    file: str
    line: int

    @property
    def key(self) -> str:
        return f"{short(self.cls)}::{self.name}"


@dataclass
class Function:
    qual: str  # qualified name, e.g. "unxpec::Cache::install"
    cls: Optional[str]  # enclosing class (qualified) or None
    file: str
    line: int
    transitions: List[Transition] = field(default_factory=list)
    rollbacks: List[Rollback] = field(default_factory=list)
    # Call sites: (callee-name, receiver-class-or-None, line).  The
    # callee name is unqualified; resolution happens in callgraph.py.
    calls: List[Tuple[str, Optional[str], int]] = field(
        default_factory=list
    )
    # Mutations of fields: (class, field, line).  Only mutations whose
    # receiver class could be resolved are recorded.
    mutations: List[Tuple[str, str, int]] = field(default_factory=list)
    # Raw allocation-ish call sites for the hot-path check:
    # (what, line), e.g. ("push_back", 412) or ("new", 99).
    allocs: List[Tuple[str, int]] = field(default_factory=list)
    # Virtual-dispatch call sites: (receiver-class, method, line).
    virtual_calls: List[Tuple[str, str, int]] = field(
        default_factory=list
    )

    @property
    def annotated(self) -> bool:
        return bool(self.transitions or self.rollbacks)


@dataclass
class DeterminismFinding:
    rule: str  # unordered-iteration | unseeded-randomness | ...
    file: str
    line: int
    detail: str


@dataclass
class Model:
    modes: Set[str] = field(default_factory=set)  # CleanupMode names
    # class qualified name -> {field name -> Field}
    classes: Dict[str, Dict[str, Field]] = field(default_factory=dict)
    # classes declaring at least one virtual method -> method names
    virtual_methods: Dict[str, Set[str]] = field(default_factory=dict)
    # using-alias name -> aliased type text (single-spaced tokens)
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, Function] = field(default_factory=dict)
    determinism: List[DeterminismFinding] = field(default_factory=list)
    # file -> {line -> set(rule)} inline lint-ok suppressions
    suppressions: Dict[str, Dict[int, Set[str]]] = field(
        default_factory=dict
    )

    def function(self, qual: str, cls, file: str, line: int) -> Function:
        fn = self.functions.get(qual)
        if fn is None:
            fn = Function(qual, cls, file, line)
            self.functions[qual] = fn
        return fn

    def spec_fields(self) -> List[Field]:
        out = []
        for fields in self.classes.values():
            out.extend(f for f in fields.values() if f.spec_state)
        return sorted(out, key=lambda f: (f.file, f.line))

    def suppressed(self, rule: str, file: str, line: int) -> bool:
        per_file = self.suppressions.get(file)
        if not per_file:
            return False
        # A lint-ok comment suppresses its own line and the next one
        # (comment-above-statement style), matching lint_sim.py.
        for cand in (line, line - 1):
            if rule in per_file.get(cand, ()):
                return True
        return False

    def merge(self, other: "Model") -> None:
        """Merge a per-file model into the whole-tree model."""
        self.modes |= other.modes
        for cls, fields in other.classes.items():
            mine = self.classes.setdefault(cls, {})
            for name, fld in fields.items():
                prev = mine.get(name)
                # Prefer the annotated declaration (headers win over
                # forward mentions).
                if prev is None or (fld.spec_state and not prev.spec_state):
                    mine[name] = fld
        for cls, methods in other.virtual_methods.items():
            self.virtual_methods.setdefault(cls, set()).update(methods)
        for alias, target in other.aliases.items():
            self.aliases.setdefault(alias, target)
        for qual, fn in other.functions.items():
            prev = self.functions.get(qual)
            if prev is None:
                self.functions[qual] = fn
                continue
            prev.transitions.extend(
                t for t in fn.transitions if t not in prev.transitions
            )
            prev.rollbacks.extend(
                r for r in fn.rollbacks if r not in prev.rollbacks
            )
            prev.calls.extend(fn.calls)
            prev.mutations.extend(fn.mutations)
            prev.allocs.extend(fn.allocs)
            prev.virtual_calls.extend(fn.virtual_calls)
        self.determinism.extend(other.determinism)
        for file, per_line in other.suppressions.items():
            mine_lines = self.suppressions.setdefault(file, {})
            for line, rules in per_line.items():
                mine_lines.setdefault(line, set()).update(rules)


def short(qual: str) -> str:
    """Strip the leading project namespace for readable reports."""
    prefix = "unxpec::"
    return qual[len(prefix):] if qual.startswith(prefix) else qual
