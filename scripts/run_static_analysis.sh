#!/usr/bin/env bash
# Run the repo's full static-analysis gate: the fast regex pre-pass
# (scripts/lint_sim.py) over src/ bench/ tests/, the AST-level
# speccheck analyzer (scripts/speccheck: undo-completeness per
# CleanupMode, unpaired spec-state mutations, determinism, hot-path
# rules over the real call graph), clang-tidy over every src/ bench/
# tests/ translation unit, and cppcheck. This is the same sequence CI
# enforces as blocking jobs; run it locally before pushing.
#
# Tools that are not installed are skipped with a warning so the script
# stays useful on minimal boxes (lint_sim.py needs only python3).
# Pass --require-all (CI does) to turn a missing tool into a failure.
#
#   scripts/run_static_analysis.sh [--require-all] [BUILD_DIR]
#
# BUILD_DIR defaults to build/ and only needs a configure step: the
# compile database (compile_commands.json) is exported by default.
set -u

cd "$(dirname "$0")/.."

require_all=0
build_dir=build
for arg in "$@"; do
    case "$arg" in
        --require-all) require_all=1 ;;
        *) build_dir=$arg ;;
    esac
done

failures=0
skipped=0

missing_tool() {
    if [ "$require_all" -eq 1 ]; then
        echo "ERROR: $1 not found (required by --require-all)" >&2
        failures=$((failures + 1))
    else
        echo "skip: $1 not found" >&2
        skipped=$((skipped + 1))
    fi
}

run_gate() {
    echo "==> $*"
    if ! "$@"; then
        failures=$((failures + 1))
    fi
}

# --- project lint (pure python, always available) ----------------------
if command -v python3 >/dev/null 2>&1; then
    run_gate python3 scripts/lint_sim.py src bench tests

    # AST-level analyzer. Locally the builtin token frontend runs with
    # no dependencies; under --require-all (CI) a missing/unusable
    # libclang is an error instead of a graceful fallback, so the
    # compiler-exact frontend is what actually gates merges.
    speccheck_args=(--compdb "$build_dir/compile_commands.json")
    if [ "$require_all" -eq 1 ]; then
        speccheck_args+=(--ci)
    fi
    run_gate python3 scripts/speccheck "${speccheck_args[@]}"
else
    missing_tool python3
fi

# --- clang-tidy over the compile database ------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "==> cmake -B $build_dir -S . (for compile_commands.json)"
        if ! cmake -B "$build_dir" -S . >/dev/null; then
            echo "ERROR: configure failed; cannot run clang-tidy" >&2
            failures=$((failures + 1))
        fi
    fi
    if [ -f "$build_dir/compile_commands.json" ]; then
        # shellcheck disable=SC2046  # one argument per source file
        run_gate clang-tidy -p "$build_dir" --quiet \
            $(find src bench tests -name '*.cc' \
                  -not -path 'tests/speccheck/*' | sort)
    fi
else
    missing_tool clang-tidy
fi

# --- cppcheck ----------------------------------------------------------
if command -v cppcheck >/dev/null 2>&1; then
    run_gate cppcheck --std=c++20 --language=c++ \
        --enable=warning,performance,portability \
        --inline-suppr --suppressions-list=.cppcheck-suppressions \
        --error-exitcode=1 --quiet -I src src
else
    missing_tool cppcheck
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "static analysis: $failures gate(s) FAILED"
    exit 1
fi
if [ "$skipped" -ne 0 ]; then
    echo "static analysis: clean ($skipped tool(s) skipped locally)"
else
    echo "static analysis: clean"
fi
