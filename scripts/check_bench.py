#!/usr/bin/env python3
"""Compare a fresh kernel-benchmark run against the tracked baseline.

Reads two google-benchmark JSON files (the --benchmark_out format that
scripts/bench_kernel.sh emits) and reports, per benchmark, the change in
its throughput counters (sim_cycles_per_sec, trials_per_sec, ...) or, if
it has none, its real_time. Throughput counters are bigger-is-better;
times are smaller-is-better.

Warn-only by default: CI runners are shared and noisy, so a regression
beyond the tolerance prints a WARN line but still exits 0 — treat the
output as a trend. Pass --strict to turn warnings into a non-zero exit
(for a quiet dedicated box). --per-bench NAME=TOL overrides the global
tolerance for one benchmark (repeatable; NAME may be a prefix, longest
match wins), so the hot kernel can be held to a tight bound while the
long-tail figures keep a generous one.

  $ python3 scripts/check_bench.py BENCH_kernel.json fresh.json
  $ python3 scripts/check_bench.py --tolerance 0.10 --strict a.json b.json
  $ python3 scripts/check_bench.py --strict --per-bench BM_AttackRound=0.08 \\
        --per-bench BM_TrialThroughput=0.15 BENCH_kernel.json fresh.json

--matrix switches to the attack x defense matrix artifact that
bench/matrix_campaign emits (schema unxpec-matrix-v1). One file:
validate the schema and check --assert-auc claims. Two files: also
diff every AUC cell against the first (golden) file within
--auc-tolerance (warn-only unless --strict, same convention as the
benchmark mode). --assert-auc failures are always fatal — they encode
the paper's leakage taxonomy, not runner noise. --assert-cell is the
generalized form, a hard bound on any numeric cell field (e.g. the
victim matrix's recovered_bits_per_sec); a null/absent field fails the
assertion. Cells whose auc is null (every trial censored) are accepted
by the loader and skipped by the drift diff.

  $ python3 scripts/check_bench.py --matrix matrix.json \\
        --assert-auc 'unsafe/unxpec>=0.95' --assert-auc 'safespec/unxpec<=0.6'
  $ python3 scripts/check_bench.py --matrix victim.json \\
        --assert-cell 'unsafe/victim-aes.recovered_bits_per_sec>=1'
  $ python3 scripts/check_bench.py --matrix tests/golden/matrix_seed.json \\
        matrix-nightly.json --auc-tolerance 0.05 --strict
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def measurements(bench):
    """(label, value, bigger_is_better) rows for one benchmark entry."""
    rows = []
    for key, value in sorted(bench.items()):
        if key.endswith("_per_sec") and isinstance(value, (int, float)):
            rows.append((key, float(value), True))
    if not rows and isinstance(bench.get("real_time"), (int, float)):
        unit = bench.get("time_unit", "ns")
        rows.append((f"real_time_{unit}", float(bench["real_time"]), False))
    return rows


def parse_overrides(specs, parser):
    """--per-bench NAME=TOL list -> {name_prefix: tolerance}."""
    overrides = {}
    for spec in specs:
        name, sep, tol = spec.partition("=")
        if not sep or not name:
            parser.error(f"--per-bench expects NAME=TOL, got '{spec}'")
        try:
            overrides[name] = float(tol)
        except ValueError:
            parser.error(f"--per-bench {name}: '{tol}' is not a number")
        if overrides[name] < 0:
            parser.error(f"--per-bench {name}: tolerance must be >= 0")
    return overrides


def tolerance_for(name, overrides, default):
    """Longest matching prefix override, else the global default.

    Prefix (not exact) matching because google-benchmark suffixes
    repetition/threads variants onto the registered name.
    """
    best_len = -1
    best = default
    for prefix, tol in overrides.items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best = tol
    return best


ASSERT_RE = re.compile(r"^([\w-]+)/([\w-]+)(<=|>=)([0-9.]+)$")
CELL_ASSERT_RE = re.compile(
    r"^([\w-]+)/([\w-]+)\.(\w+)(<=|>=)([0-9.eE+-]+)$")


def load_matrix(path, parser):
    """{(defense, receiver): cell} from an unxpec-matrix-v1 artifact."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "unxpec-matrix-v1":
        parser.error(f"{path}: schema is {data.get('schema')!r}, "
                     "expected 'unxpec-matrix-v1'")
    cells = {}
    for cell in data.get("cells", []):
        for field in ("defense", "receiver", "auc"):
            if field not in cell:
                parser.error(f"{path}: cell missing '{field}': {cell}")
        auc = cell["auc"]
        # null = an incomplete cell (every trial censored or missing);
        # the cell is kept so assertions against it fail loudly rather
        # than reading as "not in the matrix".
        if auc is not None and (not isinstance(auc, (int, float))
                                or not 0.0 <= auc <= 1.0):
            parser.error(f"{path}: {cell['defense']}/{cell['receiver']} "
                         f"has AUC {auc!r} outside [0, 1]")
        cells[(cell["defense"], cell["receiver"])] = cell
    if not cells:
        parser.error(f"{path}: no matrix cells")
    return cells


def parse_assertions(specs, parser):
    """--assert-auc list -> [(defense, receiver, field, op, bound)]."""
    assertions = []
    for spec in specs:
        match = ASSERT_RE.match(spec)
        if not match:
            parser.error("--assert-auc expects DEFENSE/RECEIVER<=V or "
                         f">=V, got '{spec}'")
        defense, receiver, op, bound = match.groups()
        assertions.append((defense, receiver, "auc", op, float(bound)))
    return assertions


def parse_cell_assertions(specs, parser):
    """--assert-cell list -> [(defense, receiver, field, op, bound)].

    The generalized form: any numeric cell field, e.g.
    'unsafe/victim-aes.recovered_bits_per_sec>=1'.
    """
    assertions = []
    for spec in specs:
        match = CELL_ASSERT_RE.match(spec)
        if not match:
            parser.error("--assert-cell expects DEF/RECV.FIELD<=V or "
                         f">=V, got '{spec}'")
        defense, receiver, field, op, bound = match.groups()
        assertions.append((defense, receiver, field, op, float(bound)))
    return assertions


def run_matrix(args, parser):
    cells = load_matrix(args.baseline, parser)
    fresh = load_matrix(args.fresh, parser) if args.fresh else None
    failures = 0
    warnings = 0

    # Assertions apply to the freshest file on the command line.
    target = fresh if fresh is not None else cells
    assertions = (parse_assertions(args.assert_auc, parser)
                  + parse_cell_assertions(args.assert_cell, parser))
    for defense, receiver, field, op, bound in assertions:
        cell = target.get((defense, receiver))
        if cell is None:
            print(f"FAIL {defense}/{receiver}: cell not in the matrix")
            failures += 1
            continue
        value = cell.get(field)
        if not isinstance(value, (int, float)):
            # Absent field or a null from an incomplete (censored) cell.
            print(f"FAIL {defense}/{receiver}: {field} is "
                  f"{value!r}, cannot check {op} {bound:g}")
            failures += 1
            continue
        value = float(value)
        ok = value <= bound if op == "<=" else value >= bound
        print(f"{'  ok' if ok else 'FAIL'} {defense}/{receiver}: "
              f"{field} {value:.4g} {op} {bound:g}")
        failures += not ok

    if fresh is not None:
        for key in sorted(set(cells) | set(fresh)):
            defense, receiver = key
            if key not in fresh:
                print(f"WARN {defense}/{receiver}: in the golden matrix "
                      "but not in the fresh run")
                warnings += 1
                continue
            if key not in cells:
                print(f"NOTE {defense}/{receiver}: new cell, no golden "
                      "value yet")
                continue
            if cells[key]["auc"] is None or fresh[key]["auc"] is None:
                print(f"NOTE {defense}/{receiver}: incomplete cell "
                      "(null auc), drift not compared")
                continue
            base = float(cells[key]["auc"])
            auc = float(fresh[key]["auc"])
            drift = abs(auc - base)
            moved = drift > args.auc_tolerance
            print(f"{'WARN' if moved else '  ok'} {defense}/{receiver}: "
                  f"auc {base:.4g} -> {auc:.4g} (|d| {drift:.3g})")
            warnings += moved

    if failures:
        print(f"{failures} assertion failure(s) — the leakage taxonomy "
              "changed")
        return 1
    if warnings:
        print(f"{warnings} warning(s); AUC tolerance "
              f"{args.auc_tolerance:g}"
              + ("" if args.strict else " (warn-only, exiting 0)"))
        return 1 if args.strict else 0
    print("matrix OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare kernel benchmark JSON against a baseline")
    parser.add_argument("baseline", help="tracked baseline (or, with "
                                         "--matrix, the matrix artifact)")
    parser.add_argument("fresh", nargs="?", default=None,
                        help="freshly measured JSON (optional with "
                             "--matrix)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative regression that triggers a warning "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any warning fired")
    parser.add_argument("--per-bench", action="append", default=[],
                        metavar="NAME=TOL",
                        help="per-benchmark tolerance override "
                             "(repeatable; NAME may be a prefix, e.g. "
                             "BM_AttackRound=0.08)")
    parser.add_argument("--matrix", action="store_true",
                        help="treat the inputs as unxpec-matrix-v1 "
                             "artifacts instead of google-benchmark JSON")
    parser.add_argument("--assert-auc", action="append", default=[],
                        metavar="DEF/RECV<=V",
                        help="matrix mode: hard AUC bound, e.g. "
                             "'unsafe/unxpec>=0.95' (repeatable, "
                             "failures are fatal)")
    parser.add_argument("--assert-cell", action="append", default=[],
                        metavar="DEF/RECV.FIELD<=V",
                        help="matrix mode: hard bound on any numeric "
                             "cell field, e.g. 'unsafe/victim-aes."
                             "recovered_bits_per_sec>=1' (repeatable, "
                             "failures are fatal)")
    parser.add_argument("--auc-tolerance", type=float, default=0.05,
                        help="matrix mode: allowed absolute AUC drift "
                             "between golden and fresh (default 0.05)")
    args = parser.parse_args()

    if args.matrix:
        return run_matrix(args, parser)
    if args.fresh is None:
        parser.error("benchmark mode needs both baseline and fresh files")
    if args.assert_auc or args.assert_cell:
        parser.error("--assert-auc/--assert-cell only apply with "
                     "--matrix")

    overrides = parse_overrides(args.per_bench, parser)
    baseline = load(args.baseline)
    fresh = load(args.fresh)
    warnings = 0

    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            print(f"WARN {name}: in baseline but not in the fresh run")
            warnings += 1
            continue
        if name not in baseline:
            print(f"NOTE {name}: new benchmark, no baseline yet")
            continue
        tolerance = tolerance_for(name, overrides, args.tolerance)
        base_rows = dict((label, (value, better))
                         for label, value, better
                         in measurements(baseline[name]))
        for label, value, bigger_better in measurements(fresh[name]):
            if label not in base_rows:
                print(f"NOTE {name}.{label}: no baseline value")
                continue
            base, _ = base_rows[label]
            if base == 0:
                continue
            change = (value - base) / base
            regressed = (change < -tolerance if bigger_better
                         else change > tolerance)
            status = "WARN" if regressed else "  ok"
            bound = ("" if tolerance == args.tolerance
                     else f" [tol {tolerance:.0%}]")
            print(f"{status} {name}.{label}: "
                  f"{base:.3g} -> {value:.3g} ({change:+.1%}){bound}")
            warnings += regressed

    if warnings:
        print(f"{warnings} warning(s); tolerance {args.tolerance:.0%}"
              + ("" if args.strict else " (warn-only, exiting 0)"))
        return 1 if args.strict else 0
    print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
