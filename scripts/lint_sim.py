#!/usr/bin/env python3
"""Project-specific simulator lint: hazards generic tools don't know.

The simulator's results must be a pure function of (config, seed): the
unXpec timing channel is measured in single cycles, so any source of
nondeterminism or silent precision loss corrupts the signal the repo
exists to reproduce. This lint enforces, over ``src/`` by default:

  unseeded-randomness   rand()/srand()/std::random_device/std::mt19937
                        etc. anywhere outside src/sim/rng.* — all
                        stochastic behaviour must draw from the seeded
                        Rng so trials replay bit-identically.
  wall-clock            std::chrono / time() / clock_gettime() and
                        friends in simulator code — simulated time is
                        the Cycle counter; host time leaks host noise
                        into results.
  unordered-iteration   iteration over std::unordered_map/set members —
                        hash iteration order is unspecified and varies
                        across libstdc++ versions, so any walk feeding
                        stats/JSON/CSV/trace export (or any walk at
                        all, conservatively) is a reproducibility
                        hazard. Use std::map, sorted emission, or a
                        side vector in deterministic order.
  raw-new-delete        naked new/delete expressions — ownership goes
                        through std::unique_ptr / containers.
  float-cycle           the 32-bit ``float`` type anywhere — cycle and
                        latency arithmetic is Cycle (uint64) or double;
                        float silently drops precision past 2^24 cycles.
  using-namespace-std   ``using namespace std`` at any scope.
  iostream-in-header    <iostream> included from a header (drags static
                        init into every TU; include <ostream>/<istream>
                        or push I/O into the .cc).
  include-guard         headers must carry the canonical
                        UNXPEC_<DIR>_<NAME>_HH guard.
  steady-alloc          container growth (push_back/resize/insert/...)
                        or make_unique/make_shared in the per-cycle hot
                        files (core, ROB, LSQ, caches, MSHRs, memory,
                        coherence, cleanup) — steady-state simulation
                        must not touch the heap (DESIGN.md §13; the
                        zero-alloc invariant batch throughput rests
                        on). Every growth site there must either move
                        to arena/reserved storage or carry a
                        ``lint-ok(steady-alloc)`` justification saying
                        why it is cold (one-time construction, error
                        path, ring assignment, ...).

A finding can be suppressed with a justified marker on the same or the
preceding line::

    // lint-ok(unordered-iteration): order-insensitive zeroing

An empty justification is itself an error. Exit status: 0 when clean,
1 when any finding (or bad suppression) remains.

Division of labor with scripts/speccheck
----------------------------------------
This lint is the *fast regex pre-pass*: it runs in milliseconds with
no toolchain and catches the obvious cases with an exact source
location. The AST-level analyzer in ``scripts/speccheck`` re-implements
the determinism rules (unordered-iteration, unseeded-randomness,
wall-clock, float-cycle) on real parse trees — immune to the comment/
string false positives and typedef'd-container false negatives a regex
cannot avoid — and replaces the hard-coded STEADY_ALLOC_FILES list
with call-graph reachability from Core::runStep / BatchRunner::run.
Where the two disagree, speccheck is authoritative; the rules below
marked "(pre-pass)" are kept here only for fast local feedback. Both
tools honor the same ``lint-ok(rule): why`` suppression syntax, so a
justification written once covers both.

Usage:
  python3 scripts/lint_sim.py                 # lint src/
  python3 scripts/lint_sim.py src tests       # explicit paths
  python3 scripts/lint_sim.py --list-rules
"""

import argparse
import os
import re
import sys

RULES = {
    "unseeded-randomness":
        "use the seeded unxpec::Rng (src/sim/rng.hh), never ambient PRNGs "
        "(pre-pass; authoritative AST check: scripts/speccheck)",
    "wall-clock":
        "simulator code must derive time from the Cycle counter, not the "
        "host clock (pre-pass; authoritative AST check: scripts/speccheck)",
    "unordered-iteration":
        "iterating a std::unordered_* container is nondeterministic across "
        "library versions; use std::map, sorted emission, or a side vector "
        "(pre-pass; authoritative AST check: scripts/speccheck)",
    "raw-new-delete":
        "naked new/delete; use std::make_unique / containers",
    "float-cycle":
        "use Cycle (uint64) or double; float loses cycle precision "
        "(pre-pass; authoritative AST check: scripts/speccheck)",
    "using-namespace-std":
        "no `using namespace std`",
    "iostream-in-header":
        "headers must not include <iostream>",
    "include-guard":
        "header guard must be UNXPEC_<DIR>_<NAME>_HH",
    "coherence-mutation":
        "CohState/pendingDowngrade assignments belong to the coh:: "
        "transition helpers (src/memory/coherence.hh) so every MESI "
        "transition stays auditable in one place",
    "steady-alloc":
        "per-cycle hot paths must not allocate: use arena/reserved "
        "storage, or justify a cold site with lint-ok(steady-alloc) "
        "(pre-pass over a fixed file list; scripts/speccheck enforces "
        "the same rule over the real call graph)",
}

SUPPRESS_RE = re.compile(r"lint-ok\((?P<rule>[a-z-]+)\)\s*:\s*(?P<why>\S.*)?")

RANDOM_RES = [
    re.compile(r"\bs?rand\s*\("),
    re.compile(r"\bdrand48\b|\blrand48\b"),
    re.compile(r"std::random_device"),
    re.compile(r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine"
               r"|ranlux\w+|knuth_b)"),
    re.compile(r"std::(uniform_(int|real)_distribution"
               r"|normal_distribution|bernoulli_distribution)"),
]

WALLCLOCK_RES = [
    re.compile(r"std::chrono"),
    re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\b"),
    # `(?<![\w.>])` keeps member calls like `tracer.time()` or
    # `obj->clock()` out: only the bare C library functions are hits.
    re.compile(r"(?<![\w.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
    re.compile(r"(?<![\w.>])clock\s*\(\s*\)"),
]

NEW_RE = re.compile(r"(?<![\w.>])new\s+[A-Za-z_]")
DELETE_RE = re.compile(r"(?<![\w.>])delete(\[\])?\s+[\w(*]")
FLOAT_RE = re.compile(r"\bfloat\b")
USING_STD_RE = re.compile(r"\busing\s+namespace\s+std\b")
IOSTREAM_RE = re.compile(r'#\s*include\s*<iostream>')
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<")
# Assignment (not comparison) to a coherence-state field through a
# member access. Plain `coh = ...` inside CacheLine::reset carries no
# `.`/`->` and is intentionally not matched.
COH_MUT_RE = re.compile(r"(?:\.|->)\s*(?:coh|pendingDowngrade)\s*=(?!=)")
# Files whose code runs inside (or is reachable from) the per-cycle
# tick loop: Core::runStep and everything it drives. Growth calls here
# are steady-state heap churn unless justified.
STEADY_ALLOC_FILES = (
    "cpu/core.cc", "cpu/core.hh",
    "cpu/rob.cc", "cpu/rob.hh",
    "cpu/lsq.cc", "cpu/lsq.hh",
    "memory/cache.cc", "memory/cache.hh",
    "memory/hierarchy.cc", "memory/hierarchy.hh",
    "memory/mshr.hh",
    "memory/main_memory.cc", "memory/main_memory.hh",
    "memory/coherence.cc", "memory/coherence.hh",
    "memory/replacement.hh",
    "cleanup/cleanup_engine.cc", "cleanup/cleanup_engine.hh",
    "cleanup/spec_tracker.cc", "cleanup/spec_tracker.hh",
    "sim/ring_queue.hh",
)
STEADY_ALLOC_RE = re.compile(
    r"(?:\.|->)\s*(?:push_back|emplace_back|push_front|emplace_front"
    r"|resize|reserve|emplace|insert|assign|append)\s*\("
    r"|std::make_(?:unique|shared)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
# Only begin()-family calls: any real iteration needs one, while bare
# end() shows up in the harmless `find(x) == c.end()` lookup idiom.
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?r?begin\s*\(")


def strip_code(text):
    """Blank out comments and string/char literals, preserving layout.

    Keeps every line's length so (line, column) positions survive; the
    raw text is still used for the include-guard and suppression rules.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            # Raw string literal R"delim( ... )delim" — the body may
            # contain quotes and backslashes the plain string state
            # would misparse.
            raw_lit = re.match(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(',
                               text[i:])
            if raw_lit:
                end_tok = ")" + raw_lit.group(1) + '"'
                end = text.find(end_tok, i + raw_lit.end())
                if end == -1:
                    end = n
                else:
                    end += len(end_tok)
                for ch in text[i:end]:
                    out.append("\n" if ch == "\n" else " ")
                i = end
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self):
        self.findings = []
        self.unordered_members = set()

    def finding(self, path, lineno, rule, detail, raw_lines):
        """Record a finding unless a justified suppression covers it."""
        for cand in (lineno, lineno - 1):
            if 1 <= cand <= len(raw_lines):
                m = SUPPRESS_RE.search(raw_lines[cand - 1])
                if m and m.group("rule") == rule:
                    if not m.group("why"):
                        self.findings.append(
                            (path, cand, rule,
                             "suppression without a justification"))
                    return
        self.findings.append((path, lineno, rule, detail))

    # -- pass 1: collect unordered container member/variable names ----
    def collect_unordered(self, path, code_lines):
        for line in code_lines:
            if not UNORDERED_DECL_RE.search(line):
                continue
            decl = re.search(r">\s*(\w+)\s*(?:;|=|\{|$)", line)
            if decl:
                self.unordered_members.add(decl.group(1))

    # -- pass 2: per-file rules ---------------------------------------
    def lint_file(self, path, raw, code):
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()
        rel = path.replace("\\", "/")
        in_rng = "/sim/rng." in rel or rel.endswith(("sim/rng.hh",
                                                     "sim/rng.cc"))
        in_coherence = ("/memory/coherence." in rel
                        or rel.endswith(("memory/coherence.hh",
                                         "memory/coherence.cc")))
        in_tests = "/tests/" in rel or rel.startswith("tests/")
        is_header = rel.endswith((".hh", ".h", ".hpp"))
        in_hot_path = rel.endswith(STEADY_ALLOC_FILES)

        for lineno, line in enumerate(code_lines, 1):
            if not in_rng:
                for rx in RANDOM_RES:
                    if rx.search(line):
                        self.finding(path, lineno, "unseeded-randomness",
                                     line.strip(), raw_lines)
            for rx in WALLCLOCK_RES:
                if rx.search(line):
                    self.finding(path, lineno, "wall-clock",
                                 line.strip(), raw_lines)
            if NEW_RE.search(line) or DELETE_RE.search(line):
                self.finding(path, lineno, "raw-new-delete",
                             line.strip(), raw_lines)
            if FLOAT_RE.search(line):
                self.finding(path, lineno, "float-cycle",
                             line.strip(), raw_lines)
            if USING_STD_RE.search(line):
                self.finding(path, lineno, "using-namespace-std",
                             line.strip(), raw_lines)
            # Tests may forge coherence state to exercise the auditor.
            if (not in_coherence and not in_tests
                    and COH_MUT_RE.search(line)):
                self.finding(path, lineno, "coherence-mutation",
                             line.strip(), raw_lines)
            if in_hot_path and STEADY_ALLOC_RE.search(line):
                self.finding(path, lineno, "steady-alloc",
                             line.strip(), raw_lines)
            for m in RANGE_FOR_RE.finditer(line):
                if m.group(1) in self.unordered_members:
                    self.finding(path, lineno, "unordered-iteration",
                                 line.strip(), raw_lines)
            for m in BEGIN_CALL_RE.finditer(line):
                if m.group(1) in self.unordered_members:
                    self.finding(path, lineno, "unordered-iteration",
                                 line.strip(), raw_lines)

        if is_header:
            for lineno, line in enumerate(raw_lines, 1):
                if IOSTREAM_RE.search(line):
                    self.finding(path, lineno, "iostream-in-header",
                                 line.strip(), raw_lines)
            self.check_guard(path, raw_lines)

    def check_guard(self, path, raw_lines):
        rel = os.path.normpath(path).replace("\\", "/")
        parts = rel.split("/")
        # Guard is derived from the path under the source root
        # (src/cpu/rob.hh -> UNXPEC_CPU_ROB_HH, bench/pdf_figure.hh ->
        # UNXPEC_BENCH_PDF_FIGURE_HH).
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        else:
            parts = parts[-2:]
        stem = "_".join(parts)
        for ch in (".", "-"):
            stem = stem.replace(ch, "_")
        expect = "UNXPEC_" + re.sub(r"_H[HP]?P?$", "_HH", stem.upper())
        want = f"#ifndef {expect}"
        if not any(line.strip() == want for line in raw_lines):
            self.finding(path, 1, "include-guard",
                         f"expected `{want}`", raw_lines)


def gather(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, _dirs, names in os.walk(path):
            # The speccheck fixtures contain intentional violations
            # (that's what they test); never lint them.
            if "speccheck/fixtures" in root.replace("\\", "/"):
                continue
            for name in sorted(names):
                if name.endswith((".hh", ".h", ".hpp", ".cc", ".cpp")):
                    files.append(os.path.join(root, name))
    return sorted(set(files))


def main():
    parser = argparse.ArgumentParser(
        description="simulator-specific lint (see module docstring)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, why in RULES.items():
            print(f"{rule:22s} {why}")
        return 0

    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(here)
    paths = args.paths or [os.path.relpath(os.path.join(repo, "src"))]
    files = gather(paths)
    if not files:
        print("lint_sim: no input files", file=sys.stderr)
        return 2

    linter = Linter()
    stripped = {}
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        stripped[path] = (raw, strip_code(raw))
        linter.collect_unordered(path, stripped[path][1].splitlines())
    for path in files:
        raw, code = stripped[path]
        linter.lint_file(path, raw, code)

    for path, lineno, rule, detail in linter.findings:
        print(f"{path}:{lineno}: [{rule}] {detail}")
        print(f"    hint: {RULES[rule]}")
    if linter.findings:
        print(f"lint_sim: {len(linter.findings)} finding(s) in "
              f"{len(files)} files")
        return 1
    print(f"lint_sim: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
