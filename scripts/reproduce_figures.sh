#!/usr/bin/env bash
#
# Reproduce every paper figure/table in one command, writing text
# output plus machine-readable JSON/CSV artifacts into results/.
#
#   $ scripts/reproduce_figures.sh            # full-size runs
#   $ SCALE=quick scripts/reproduce_figures.sh  # ~1 min smoke version
#
# Every bench journals its trials to OUT_DIR/<name>.campaign.jsonl;
# if the script is killed, rerun with RESUME=1 to pick up each figure
# where it left off (finished figures recompute nothing).
#
# Environment:
#   BUILD_DIR  build tree with compiled benches (default: build)
#   OUT_DIR    artifact directory               (default: results)
#   THREADS    trial-pool width, 0 = hardware   (default: 0)
#   SCALE      "full" (paper sizes) or "quick"  (default: full)
#   CAMPAIGN   1 = journal each bench's trials  (default: 1)
#   RESUME     1 = resume from existing journals (default: 0)
#   SHARDS     crash-isolated subprocess workers per bench (default: 1)
#   RETRIES    retry budget for censored trials / crashed shards (default: 2)

set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-results}
THREADS=${THREADS:-0}
SCALE=${SCALE:-full}
CAMPAIGN=${CAMPAIGN:-1}
RESUME=${RESUME:-0}
SHARDS=${SHARDS:-1}
RETRIES=${RETRIES:-2}

BENCH="$BUILD_DIR/bench"
if [ ! -x "$BENCH/fig03_timing_difference" ]; then
    echo "error: benches not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi
mkdir -p "$OUT_DIR"

# run <name> [extra args...] — one harness bench to text + JSON + CSV,
# journaled to a per-figure campaign manifest when CAMPAIGN=1.
run() {
    local name=$1
    shift
    local args=("$@" --threads "$THREADS" --retries "$RETRIES"
                --json "$OUT_DIR/$name.json" --csv "$OUT_DIR/$name.csv")
    if [ "$SHARDS" -gt 1 ]; then
        args+=(--shards "$SHARDS")
    fi
    if [ "$CAMPAIGN" = 1 ]; then
        local manifest="$OUT_DIR/$name.campaign.jsonl"
        if [ "$RESUME" = 1 ] && [ -f "$manifest" ]; then
            args+=(--resume "$manifest")
        else
            args+=(--campaign "$manifest")
        fi
    fi
    echo "==> $name $*"
    "$BENCH/$name" "${args[@]}" | tee "$OUT_DIR/$name.txt"
    echo
}

if [ "$SCALE" = quick ]; then
    run fig02_branch_resolution --reps 3
    run fig03_timing_difference --reps 3
    run fig06_timing_difference_evset --reps 3
    run fig07_pdf_no_evset --scale 100
    run fig08_pdf_evset --scale 100
    run fig09_secret_bits --scale 200
    run fig10_leak_no_evset --scale 200
    run fig11_leak_evset --scale 200
    run fig12_const_rollback_overhead --scale 20000
    run fig13_noisy_host --reps 5
    run leakage_rate --scale 10
else
    run fig02_branch_resolution
    run fig03_timing_difference
    run fig06_timing_difference_evset
    run fig07_pdf_no_evset
    run fig08_pdf_evset
    run fig09_secret_bits
    run fig10_leak_no_evset
    run fig11_leak_evset
    run fig12_const_rollback_overhead
    run fig13_noisy_host
    run leakage_rate
fi

echo "all figures reproduced; artifacts in $OUT_DIR/"
ls -l "$OUT_DIR"
