#!/usr/bin/env bash
#
# Run the hot-path kernel benchmarks (bench/kernel_throughput.cc) in a
# Release build and emit BENCH_kernel.json at the repo root — the
# tracked perf baseline. The JSON is google-benchmark's standard
# --benchmark_out format; the counters to track are
# BM_AttackRound.sim_cycles_per_sec (simulated cycles retired per
# wall-second) and BM_TrialRunner{FreshCores,Pooled}.trials_per_sec
# (end-to-end trial fan-out throughput, fresh-Core baseline vs the
# pooled runner).
#
#   $ TRACKED=1 scripts/bench_kernel.sh  # refresh the tracked baseline
#   $ SMOKE=1 scripts/bench_kernel.sh    # CI: reduced iterations
#
# Environment:
#   BUILD_DIR  Release build tree        (default: build-release)
#   OUT        output JSON path          (default: BENCH_kernel.json
#              with TRACKED=1, a temp file otherwise — so casual and
#              smoke runs never clobber the tracked baseline)
#   TRACKED    nonempty = write the tracked BENCH_kernel.json
#   SMOKE      nonempty = short run      (default: unset)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
SCRATCH=
if [ -z "${OUT:-}" ]; then
    if [ -n "${TRACKED:-}" ]; then
        OUT=BENCH_kernel.json
    else
        OUT=$(mktemp -t BENCH_kernel.XXXXXX)
        SCRATCH=$OUT
    fi
fi

# A failed run must not strand the mktemp file (or leave a half-written
# JSON that a later tool mistakes for results). Successful runs keep it:
# the path is printed so the caller can pick it up.
cleanup() {
    if [ -n "$SCRATCH" ]; then
        rm -f "$SCRATCH"
    fi
}
trap cleanup EXIT INT TERM

if [ ! -x "$BUILD_DIR/bench/kernel_throughput" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build "$BUILD_DIR" -j "$(nproc)" --target kernel_throughput
fi

ARGS=(--benchmark_out="$OUT" --benchmark_out_format=json)
if [ -n "${SMOKE:-}" ]; then
    ARGS+=(--benchmark_min_time=0.05)
fi

"$BUILD_DIR/bench/kernel_throughput" "${ARGS[@]}"
SCRATCH= # success: the output file survives the EXIT trap
echo "wrote $OUT"
