#!/usr/bin/env bash
#
# Golden byte-identity gate for the Machine refactor: a single-core
# (--cores 1, the default) machine must produce the exact bytes the
# pre-Machine simulator produced, because N=1 exercises the same code
# with the coherence engine absent. Any diff here means the refactor
# changed single-core timing, RNG draw order, or JSON emission — all
# regressions, never acceptable drift.
#
# The references in tests/golden/ were captured with exactly the
# invocations below. If a *deliberate* behaviour change lands (new
# stats field, schema bump), regenerate them in the same commit:
#
#   $ scripts/check_golden.sh --regen
#
# Environment:
#   BUILD_DIR  build tree with compiled benches (default: build)

set -euo pipefail

BUILD_DIR=${BUILD_DIR:-build}
HERE=$(cd "$(dirname "$0")/.." && pwd)
GOLDEN="$HERE/tests/golden"
BENCH="$HERE/$BUILD_DIR/bench"
REGEN=0
[ "${1:-}" = "--regen" ] && REGEN=1

if [ ! -x "$BENCH/fig03_timing_difference" ]; then
    echo "error: benches not built; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 2
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
fail=0

# check <bench> <golden-file> — run with the frozen settings and cmp.
check() {
    local bench=$1 ref=$2
    local out="$scratch/$ref"
    "$BENCH/$bench" --reps 2 --seed 1 --threads 1 \
        --json "$out" > /dev/null
    if [ "$REGEN" = 1 ]; then
        cp "$out" "$GOLDEN/$ref"
        echo "regenerated $ref"
        return
    fi
    if cmp -s "$out" "$GOLDEN/$ref"; then
        echo "ok: $bench matches tests/golden/$ref"
    else
        echo "FAIL: $bench output differs from tests/golden/$ref" >&2
        diff -u "$GOLDEN/$ref" "$out" | head -40 >&2 || true
        fail=1
    fi
}

check fig03_timing_difference fig03_seed.json
check fig13_noisy_host fig13_seed.json

exit $fail
