/**
 * @file
 * Fixed-capacity circular queue over arena-backed storage. The ROB's
 * entry buffer and the core's decode queue were std::deques, whose
 * libstdc++ implementation allocates and frees 512-byte node blocks
 * as the queue breathes — the dominant steady-state heap churn in the
 * per-cycle tick paths. RingQueue allocates its full capacity once at
 * construction (from the owning Core's Arena) and never touches the
 * heap again: push/pop are an index bump and an assignment.
 *
 * Deque-compatible surface used by the adopters: push_back, pop_front,
 * pop_back, front, back, operator[], size/empty/full, clear, and
 * forward iteration (range-for over live elements, oldest first).
 * Elements must be default-constructible and assignable; capacity is
 * a hard bound — push_back on a full ring is a logic error (panic).
 */

#ifndef UNXPEC_SIM_RING_QUEUE_HH
#define UNXPEC_SIM_RING_QUEUE_HH

#include <cstddef>
#include <type_traits>
#include <utility>

#include "sim/arena.hh"
#include "sim/log.hh"

namespace unxpec {

template <typename T>
class RingQueue
{
  public:
    explicit RingQueue(std::size_t capacity, Arena *arena = nullptr)
        : buf_(ArenaAllocator<T>(arena))
    {
        if (capacity == 0)
            panic("RingQueue: capacity must be positive");
        // lint-ok(steady-alloc): one-time construction, never regrows
        buf_.resize(capacity);
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == buf_.size(); }
    std::size_t capacity() const { return buf_.size(); }

    /** Element `i` positions past the oldest element. */
    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + count_ - 1)]; }

    T &
    push_back(T value)
    {
        if (full())
            panic("RingQueue::push_back on full ring");
        const std::size_t slot = wrap(head_ + count_);
        buf_[slot] = std::move(value);
        ++count_;
        return buf_[slot];
    }

    void
    pop_front()
    {
        if (empty())
            panic("RingQueue::pop_front on empty ring");
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    pop_back()
    {
        if (empty())
            panic("RingQueue::pop_back on empty ring");
        --count_;
    }

    /** Drop the youngest elements until only `keep` remain. */
    void
    truncate(std::size_t keep)
    {
        if (keep > count_)
            panic("RingQueue::truncate beyond size");
        count_ = keep;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    template <bool Const>
    class Iter
    {
      public:
        using Ring = std::conditional_t<Const, const RingQueue, RingQueue>;
        using Ref = std::conditional_t<Const, const T &, T &>;
        using Ptr = std::conditional_t<Const, const T *, T *>;

        Iter(Ring *ring, std::size_t pos) : ring_(ring), pos_(pos) {}

        Ref operator*() const { return (*ring_)[pos_]; }
        Ptr operator->() const { return &(*ring_)[pos_]; }

        Iter &
        operator++()
        {
            ++pos_;
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            return pos_ == other.pos_;
        }

        bool
        operator!=(const Iter &other) const
        {
            return pos_ != other.pos_;
        }

      private:
        Ring *ring_;
        std::size_t pos_;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, count_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count_); }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i % buf_.size();
    }

    ArenaVector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_SIM_RING_QUEUE_HH
