/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (random replacement, CEASER
 * index keys, DRAM jitter, noise spikes, workload generation) draws from
 * an explicitly seeded Xoshiro256** generator so every experiment is
 * reproducible from its seed.
 */

#ifndef UNXPEC_SIM_RNG_HH
#define UNXPEC_SIM_RNG_HH

#include <cstdint>

namespace unxpec {

/**
 * Xoshiro256** PRNG (Blackman & Vigna). Small, fast, and good enough
 * statistical quality for microarchitectural simulation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, fully resetting its state. */
    void seed(std::uint64_t seed);

    /**
     * Derive the seed of an independent stream from a master seed.
     * Stream k receives the k-th output of a SplitMix64 generator
     * seeded with `master`, so per-trial generators are decorrelated
     * yet fully reproducible: the same (master, stream) pair always
     * yields the same seed, regardless of derivation order — the
     * property the parallel TrialRunner relies on for bit-identical
     * serial and multi-threaded results.
     */
    static std::uint64_t deriveSeed(std::uint64_t master,
                                    std::uint64_t stream);

    /**
     * Seed for retry `attempt` of a trial stream. Attempt 0 is exactly
     * deriveSeed(master, stream), so campaigns without retries are
     * bit-identical to the pre-retry harness; attempt k > 0 derives a
     * fresh stream from the trial's own seed in a salted namespace that
     * cannot collide with any first-attempt stream of the same master.
     * Deterministic: resuming a campaign re-derives the same sequence.
     */
    static std::uint64_t deriveRetrySeed(std::uint64_t master,
                                         std::uint64_t stream,
                                         unsigned attempt);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Debiased via rejection. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Standard normal variate (Box-Muller, cached pair). */
    double gaussian();

    /** Gaussian with explicit mean and standard deviation. */
    double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace unxpec

#endif // UNXPEC_SIM_RNG_HH
