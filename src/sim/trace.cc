#include "sim/trace.hh"

#include <algorithm>
#include <fstream>
#include <locale>
#include <ostream>

#include "sim/log.hh"

namespace unxpec {

std::uint32_t
parseTraceCategories(const std::string &list)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        const std::string name = list.substr(start, end - start);
        if (name == "cpu") {
            mask |= kTraceCatCpu;
        } else if (name == "cache") {
            mask |= kTraceCatCache;
        } else if (name == "cleanup") {
            mask |= kTraceCatCleanup;
        } else if (name == "branch") {
            mask |= kTraceCatBranch;
        } else if (name == "coherence") {
            mask |= kTraceCatCoherence;
        } else if (name == "all") {
            mask |= kTraceCatAll;
        } else if (!name.empty()) {
            fatal("unknown trace category '", name,
                  "' (expected cpu, cache, cleanup, branch, coherence, "
                  "or all)");
        }
        start = end + 1;
    }
    return mask;
}

std::string
traceCategoriesToString(std::uint32_t mask)
{
    std::string names;
    auto append = [&names](const char *name) {
        if (!names.empty())
            names += ',';
        names += name;
    };
    if (mask & kTraceCatCpu)
        append("cpu");
    if (mask & kTraceCatCache)
        append("cache");
    if (mask & kTraceCatCleanup)
        append("cleanup");
    if (mask & kTraceCatBranch)
        append("branch");
    if (mask & kTraceCatCoherence)
        append("coherence");
    return names;
}

TraceCategory
traceCategoryOf(TraceKind kind)
{
    switch (kind) {
      case TraceKind::BranchResolve:
        return kTraceCatBranch;
      case TraceKind::CacheHit:
      case TraceKind::CacheMiss:
      case TraceKind::CacheFill:
      case TraceKind::CacheEvict:
      case TraceKind::CacheInvalidate:
      case TraceKind::CacheRestore:
      case TraceKind::MshrMerge:
        return kTraceCatCache;
      case TraceKind::RollbackBegin:
      case TraceKind::RollbackInvalidate:
      case TraceKind::RollbackRestore:
      case TraceKind::InflightScrub:
      case TraceKind::RollbackEnd:
        return kTraceCatCleanup;
      case TraceKind::SnoopServe:
      case TraceKind::SnoopDummyMiss:
      case TraceKind::SnoopDowngrade:
      case TraceKind::SnoopDelayedDowngrade:
      case TraceKind::SnoopInvalidate:
      case TraceKind::BackInvalidate:
      case TraceKind::DowngradeUndo:
        return kTraceCatCoherence;
      default:
        return kTraceCatCpu;
    }
}

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Fetch:              return "fetch";
      case TraceKind::Dispatch:           return "dispatch";
      case TraceKind::Issue:              return "issue";
      case TraceKind::Writeback:          return "writeback";
      case TraceKind::Commit:             return "commit";
      case TraceKind::Squash:             return "squash";
      case TraceKind::LoadBlocked:        return "load-blocked";
      case TraceKind::LoadForward:        return "load-forward";
      case TraceKind::BranchResolve:      return "branch-resolve";
      case TraceKind::CacheHit:           return "hit";
      case TraceKind::CacheMiss:          return "miss";
      case TraceKind::CacheFill:          return "fill";
      case TraceKind::CacheEvict:         return "evict";
      case TraceKind::CacheInvalidate:    return "invalidate";
      case TraceKind::CacheRestore:       return "restore";
      case TraceKind::MshrMerge:          return "mshr-merge";
      case TraceKind::RollbackBegin:      return "rollback-begin";
      case TraceKind::RollbackInvalidate: return "rollback-invalidate";
      case TraceKind::RollbackRestore:    return "rollback-restore";
      case TraceKind::InflightScrub:      return "inflight-scrub";
      case TraceKind::RollbackEnd:        return "rollback";
      case TraceKind::SnoopServe:         return "snoop-serve";
      case TraceKind::SnoopDummyMiss:     return "snoop-dummy-miss";
      case TraceKind::SnoopDowngrade:     return "snoop-downgrade";
      case TraceKind::SnoopDelayedDowngrade:
        return "snoop-delayed-downgrade";
      case TraceKind::SnoopInvalidate:    return "snoop-invalidate";
      case TraceKind::BackInvalidate:     return "back-invalidate";
      case TraceKind::DowngradeUndo:      return "downgrade-undo";
    }
    return "unknown";
}

Tracer::Tracer(std::uint32_t mask, std::size_t capacity)
    : mask_(mask), ring_(std::max<std::size_t>(capacity, 1))
{
}

void
Tracer::record(const TraceEvent &event)
{
    ring_[head_] = event;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size())
        ++count_;
    else
        ++dropped_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest first: the ring's oldest record sits at head_ once the
    // buffer has wrapped, at 0 before that.
    const std::size_t oldest = count_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(oldest + i) % ring_.size()]);
    return out;
}

void
Tracer::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

std::vector<TraceEvent>
TraceQuery::eventsBetween(Cycle from, Cycle to) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &event : events_) {
        if (event.cycle >= from && event.cycle <= to)
            out.push_back(event);
    }
    return out;
}

std::vector<TraceEvent>
TraceQuery::ofKind(TraceKind kind, Cycle from, Cycle to) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &event : events_) {
        if (event.kind == kind && event.cycle >= from && event.cycle <= to)
            out.push_back(event);
    }
    return out;
}

std::size_t
TraceQuery::count(TraceKind kind, Cycle from, Cycle to) const
{
    std::size_t n = 0;
    for (const TraceEvent &event : events_) {
        if (event.kind == kind && event.cycle >= from && event.cycle <= to)
            ++n;
    }
    return n;
}

namespace {

/** Display track (Chrome tid) an event renders on. */
struct TrackInfo
{
    int tid;
    const char *name;
};

TrackInfo
trackOf(const TraceEvent &event)
{
    switch (event.kind) {
      case TraceKind::Fetch:         return {1, "fetch"};
      case TraceKind::Dispatch:      return {2, "dispatch"};
      case TraceKind::Issue:         return {3, "issue"};
      case TraceKind::Writeback:     return {4, "writeback"};
      case TraceKind::Commit:        return {5, "commit"};
      case TraceKind::Squash:
      case TraceKind::BranchResolve: return {6, "branch"};
      case TraceKind::LoadBlocked:
      case TraceKind::LoadForward:   return {7, "lsq"};
      case TraceKind::CacheHit:
      case TraceKind::CacheMiss:
      case TraceKind::CacheFill:
      case TraceKind::CacheEvict:
      case TraceKind::CacheInvalidate:
      case TraceKind::CacheRestore:
      case TraceKind::MshrMerge:
        switch (event.level) {
          case 0:  return {8, "L1I"};
          case 1:  return {9, "L1D"};
          default: return {10, "L2"};
        }
      case TraceKind::RollbackBegin:
      case TraceKind::RollbackInvalidate:
      case TraceKind::RollbackRestore:
      case TraceKind::InflightScrub:
      case TraceKind::RollbackEnd:   return {11, "cleanup"};
      case TraceKind::SnoopServe:
      case TraceKind::SnoopDummyMiss:
      case TraceKind::SnoopDowngrade:
      case TraceKind::SnoopDelayedDowngrade:
      case TraceKind::SnoopInvalidate:
      case TraceKind::BackInvalidate:
      case TraceKind::DowngradeUndo: return {12, "coherence"};
    }
    return {13, "other"};
}

const char *
categoryName(TraceCategory cat)
{
    switch (cat) {
      case kTraceCatCpu:     return "cpu";
      case kTraceCatCache:   return "cache";
      case kTraceCatCleanup: return "cleanup";
      case kTraceCatBranch:  return "branch";
      case kTraceCatCoherence: return "coherence";
      default:               return "all";
    }
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

void
writeMetadata(std::ostream &os, bool &first, int pid, int tid,
              const char *key, const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << R"({"name":")" << key << R"(","ph":"M","pid":)" << pid;
    if (tid >= 0)
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":";
    writeJsonString(os, name);
    os << "}}";
}

void
writeEvent(std::ostream &os, bool &first, int pid, const TraceEvent &event)
{
    const TrackInfo track = trackOf(event);
    // A RollbackEnd carries the whole stall as its duration; render it
    // as the span [end - dur, end] so the cleanup track shows exactly
    // the cycles the core was frozen.
    const bool complete = event.dur > 0;
    const Cycle ts = event.kind == TraceKind::RollbackEnd
        ? event.cycle - event.dur : event.cycle;

    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << traceKindName(event.kind) << "\",\"cat\":\""
       << categoryName(traceCategoryOf(event.kind)) << "\",\"ph\":\""
       << (complete ? 'X' : 'i') << "\",\"ts\":" << ts;
    if (complete)
        os << ",\"dur\":" << event.dur;
    else
        os << ",\"s\":\"t\"";
    os << ",\"pid\":" << pid << ",\"tid\":" << track.tid << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char *key, std::uint64_t value) {
        if (!first_arg)
            os << ',';
        first_arg = false;
        os << '"' << key << "\":" << value;
    };
    if (event.seq != kSeqNone)
        arg("seq", event.seq);
    if (event.addr != kAddrInvalid)
        arg("addr", event.addr);
    if (event.arg != 0)
        arg("arg", event.arg);
    if (event.flags != 0)
        arg("flags", event.flags);
    os << "}}";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceProcess> &processes)
{
    // The trace_event format is locale-blind JSON: pin the classic
    // locale so a de_DE-style global locale cannot group digits.
    const std::locale prev = os.imbue(std::locale::classic());
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t p = 0; p < processes.size(); ++p) {
        const int pid = static_cast<int>(p);
        writeMetadata(os, first, pid, -1, "process_name",
                      processes[p].name);
        // Name every track that actually carries events.
        bool named[16] = {};
        for (const TraceEvent &event : processes[p].events) {
            const TrackInfo track = trackOf(event);
            if (!named[track.tid]) {
                named[track.tid] = true;
                writeMetadata(os, first, pid, track.tid, "thread_name",
                              track.name);
            }
        }
        // Ring wrap lost the oldest events: plant an explicit
        // truncation marker at the start of the retained window so the
        // viewer (and scripted consumers) can tell a wrapped trace
        // from a complete one.
        if (processes[p].dropped > 0) {
            const Cycle ts = processes[p].events.empty()
                ? 0 : processes[p].events.front().cycle;
            if (!first)
                os << ",\n";
            first = false;
            os << "{\"name\":\"trace-truncated\",\"cat\":\"meta\","
                  "\"ph\":\"i\",\"ts\":" << ts
               << ",\"s\":\"p\",\"pid\":" << pid
               << ",\"tid\":0,\"args\":{\"dropped_events\":"
               << processes[p].dropped << "}}";
        }
        for (const TraceEvent &event : processes[p].events)
            writeEvent(os, first, pid, event);
    }
    os << "\n]}\n";
    os.imbue(prev);
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<TraceProcess> &processes)
{
    std::ofstream os(path);
    if (!os) {
        warn("writeChromeTraceFile: cannot open '", path, "' for writing");
        return false;
    }
    writeChromeTrace(os, processes);
    return os.good();
}

} // namespace unxpec
