#include "sim/config.hh"

#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace unxpec {

const char *
toString(CleanupMode mode)
{
    switch (mode) {
      case CleanupMode::UnsafeBaseline:   return "UnsafeBaseline";
      case CleanupMode::Cleanup_FOR_L1:   return "Cleanup_FOR_L1";
      case CleanupMode::Cleanup_FOR_L1L2: return "Cleanup_FOR_L1L2";
      case CleanupMode::Cleanup_FULL:     return "Cleanup_FULL";
      case CleanupMode::InvisiSpec:       return "InvisiSpec";
      case CleanupMode::DelayOnMiss:      return "DelayOnMiss";
      case CleanupMode::SafeSpec:         return "SafeSpec";
      case CleanupMode::SpecBox:          return "SpecBox";
      case CleanupMode::CacheSquash:      return "CacheSquash";
    }
    return "?";
}

SystemConfig
SystemConfig::makeDefault()
{
    SystemConfig cfg;

    cfg.l1i.name = "l1i";
    cfg.l1i.sizeBytes = 32 * 1024;
    cfg.l1i.ways = 4;              // 128 sets (Table I)
    cfg.l1i.hitLatency = 1;
    cfg.l1i.mshrs = 8;
    cfg.l1i.repl = ReplPolicy::LRU;

    cfg.l1d.name = "l1d";
    cfg.l1d.sizeBytes = 32 * 1024;
    cfg.l1d.ways = 8;              // 64 sets (Table I)
    cfg.l1d.hitLatency = 2;
    cfg.l1d.mshrs = 12;
    // CleanupSpec: random replacement in L1 to hide replacement-state
    // side channels.
    cfg.l1d.repl = ReplPolicy::Random;

    cfg.l2.name = "l2";
    cfg.l2.sizeBytes = 2 * 1024 * 1024;
    cfg.l2.ways = 16;              // 2048 sets (Table I)
    cfg.l2.hitLatency = 12;
    cfg.l2.mshrs = 16;
    cfg.l2.repl = ReplPolicy::LRU;
    // CleanupSpec: CEASER-style randomized mapping on lower-level
    // caches instead of (unaffordable) restoration.
    cfg.l2.index = IndexPolicy::Ceaser;

    cfg.memory.accessLatency = 100; // 50 ns RT at 2 GHz
    return cfg;
}

SystemConfig
SystemConfig::makeUnsafeBaseline()
{
    SystemConfig cfg = makeDefault();
    cfg.cleanupMode = CleanupMode::UnsafeBaseline;
    // The unprotected baseline uses conventional policies.
    cfg.l1d.repl = ReplPolicy::LRU;
    cfg.l2.index = IndexPolicy::Modulo;
    return cfg;
}

SystemConfig
SystemConfig::makeInvisiSpec()
{
    SystemConfig cfg = makeDefault();
    cfg.cleanupMode = CleanupMode::InvisiSpec;
    // Invisible defenses do not rely on randomized policies; they hide
    // speculative state outright.
    cfg.l1d.repl = ReplPolicy::LRU;
    cfg.l2.index = IndexPolicy::Modulo;
    return cfg;
}

SystemConfig
SystemConfig::makeDelayOnMiss()
{
    SystemConfig cfg = makeInvisiSpec();
    cfg.cleanupMode = CleanupMode::DelayOnMiss;
    return cfg;
}

SystemConfig
SystemConfig::makeSafeSpec()
{
    // Shadow-structure defenses hide speculative state outright and do
    // not rely on randomized policies (same reasoning as InvisiSpec).
    SystemConfig cfg = makeInvisiSpec();
    cfg.cleanupMode = CleanupMode::SafeSpec;
    return cfg;
}

SystemConfig
SystemConfig::makeSpecBox()
{
    // SpecBox installs speculative lines in place (labeled), so it
    // keeps the conventional policies too: the labels, not the
    // randomization, provide the isolation.
    SystemConfig cfg = makeInvisiSpec();
    cfg.cleanupMode = CleanupMode::SpecBox;
    return cfg;
}

SystemConfig
SystemConfig::makeCacheSquash()
{
    SystemConfig cfg = makeInvisiSpec();
    cfg.cleanupMode = CleanupMode::CacheSquash;
    return cfg;
}

SystemConfig
SystemConfig::makeNoisyHost()
{
    SystemConfig cfg = makeDefault();
    cfg.memory.accessLatency = 170;  // deeper host hierarchy
    cfg.memory.jitterSigma = 6.0;    // DRAM scheduling/refresh jitter
    cfg.l2.hitLatency = 26;          // stand-in for the host L2+L3 path
    return cfg;
}

void
SystemConfig::validate() const
{
    auto check_cache = [](const CacheConfig &c) {
        if (c.ways == 0 || c.ways > 64)
            fatal("cache ", c.name, ": ways must be in [1, 64]");
        if (c.sizeBytes == 0 ||
            c.sizeBytes % (c.ways * kLineBytes) != 0) {
            fatal("cache ", c.name,
                  ": size must be a multiple of ways x 64 B");
        }
        if (c.mshrs == 0)
            fatal("cache ", c.name, ": need at least one MSHR");
        if (c.nomoReservedWays >= c.ways)
            fatal("cache ", c.name,
                  ": NoMo reservation leaves no usable way");
    };
    check_cache(l1i);
    check_cache(l1d);
    check_cache(l2);

    if (core.fetchWidth == 0 || core.issueWidth == 0 ||
        core.commitWidth == 0) {
        fatal("core: pipeline widths must be nonzero");
    }
    if (core.robEntries < 2 * core.fetchWidth)
        fatal("core: ROB must hold at least two fetch groups");
    if (core.lsqEntries == 0)
        fatal("core: LSQ must hold at least one entry");
    if (memory.accessLatency == 0)
        fatal("memory: access latency must be nonzero");
    if (clockGHz <= 0.0)
        fatal("clock frequency must be positive");
    if (numCores == 0 || numCores > 16)
        fatal("machine: numCores must be in [1, 16]");
}

void
SystemConfig::print(std::ostream &os) const
{
    auto row = [&os](const std::string &module, const std::string &value) {
        os << "  " << std::left << std::setw(22) << module << value << "\n";
    };
    os << "System configuration (Table I)\n";
    std::ostringstream ghz;
    ghz << clockGHz;
    row("Processor", std::to_string(numCores) +
        (numCores == 1 ? " core, " : " cores, ") + ghz.str() +
        " GHz, out-of-order " + std::to_string(core.robEntries) +
        "-entry ROB");
    auto cacheRow = [&row](const char *label, const CacheConfig &c) {
        row(label, std::to_string(c.sizeBytes / 1024) + " KB, " +
            std::to_string(c.ways) + "-way, " +
            std::to_string(c.numSets()) + "-set");
    };
    cacheRow("Private L1 I cache", l1i);
    cacheRow("Private L1 D cache", l1d);
    row("Shared L2 cache", std::to_string(l2.sizeBytes / 1024 / 1024) +
        " MB, " + std::to_string(l2.ways) + "-way, " +
        std::to_string(l2.numSets()) + "-set");
    row("Memory", std::to_string(memory.accessLatency) + " cycles (" +
        std::to_string(static_cast<unsigned>(
            memory.accessLatency / clockGHz)) + " ns RT) after L2");
    row("Cleanup mode", toString(cleanupMode));
}

namespace {

bool
sameCache(const CacheConfig &a, const CacheConfig &b)
{
    return a.name == b.name && a.sizeBytes == b.sizeBytes &&
           a.ways == b.ways && a.hitLatency == b.hitLatency &&
           a.mshrs == b.mshrs && a.repl == b.repl && a.index == b.index &&
           a.nomoReservedWays == b.nomoReservedWays;
}

bool
sameCore(const CoreConfig &a, const CoreConfig &b)
{
    return a.predictor == b.predictor && a.fetchWidth == b.fetchWidth &&
           a.issueWidth == b.issueWidth && a.commitWidth == b.commitWidth &&
           a.robEntries == b.robEntries && a.lsqEntries == b.lsqEntries &&
           a.intAluLatency == b.intAluLatency &&
           a.mulLatency == b.mulLatency &&
           a.mulPipelined == b.mulPipelined &&
           a.branchRedirectPenalty == b.branchRedirectPenalty &&
           a.clflushLatency == b.clflushLatency &&
           a.decodeDepth == b.decodeDepth;
}

bool
sameTiming(const CleanupTiming &a, const CleanupTiming &b)
{
    return a.mshrCleanCost == b.mshrCleanCost &&
           a.invFirstL1 == b.invFirstL1 && a.invNextL1 == b.invNextL1 &&
           a.invFirstL2 == b.invFirstL2 && a.invNextL2 == b.invNextL2 &&
           a.restoreFirst == b.restoreFirst &&
           a.restoreNext == b.restoreNext &&
           a.restoreL2First == b.restoreL2First &&
           a.restoreL2Next == b.restoreL2Next &&
           a.constantTimeCycles == b.constantTimeCycles &&
           a.fuzzyMaxCycles == b.fuzzyMaxCycles;
}

} // namespace

bool
equalIgnoringSeed(const SystemConfig &a, const SystemConfig &b)
{
    return a.clockGHz == b.clockGHz && sameCore(a.core, b.core) &&
           sameCache(a.l1i, b.l1i) && sameCache(a.l1d, b.l1d) &&
           sameCache(a.l2, b.l2) &&
           a.memory.accessLatency == b.memory.accessLatency &&
           a.memory.jitterSigma == b.memory.jitterSigma &&
           a.cleanupMode == b.cleanupMode &&
           sameTiming(a.cleanupTiming, b.cleanupTiming) &&
           a.numCores == b.numCores;
}

} // namespace unxpec
