#include "sim/arena.hh"

#include "sim/log.hh"

namespace unxpec {

Arena::Arena(std::size_t chunk_bytes) : chunkBytes_(chunk_bytes)
{
    if (chunkBytes_ == 0)
        fatal("Arena: chunk size must be positive");
}

Arena::Chunk &
Arena::grow(std::size_t min_bytes)
{
    Chunk chunk;
    chunk.size = std::max(chunkBytes_, min_bytes);
    chunk.data = std::make_unique<std::byte[]>(chunk.size);
    // lint-ok(steady-alloc): arena growth is the warm-up path; steady
    // state bump-allocates out of retained chunks
    chunks_.push_back(std::move(chunk));
    bytesReserved_ += chunks_.back().size;
    return chunks_.back();
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("Arena::allocate: alignment ", align,
              " is not a power of two");
    if (bytes == 0)
        bytes = 1;

    // Walk forward from the current chunk: reset() rewinds `current_`
    // to 0, so a reset arena refills its existing chunks in order.
    while (true) {
        if (current_ >= chunks_.size()) {
            grow(bytes + align);
            current_ = chunks_.size() - 1;
        }
        Chunk &chunk = chunks_[current_];
        const auto base = reinterpret_cast<std::uintptr_t>(
            chunk.data.get());
        const std::uintptr_t cursor = base + chunk.used;
        const std::uintptr_t aligned =
            (cursor + (align - 1)) & ~static_cast<std::uintptr_t>(
                                        align - 1);
        const std::size_t needed = (aligned - base) + bytes;
        if (needed <= chunk.size) {
            chunk.used = needed;
            bytesAllocated_ += bytes;
            return reinterpret_cast<void *>(aligned);
        }
        ++current_;
    }
}

void
Arena::reset()
{
    for (Chunk &chunk : chunks_)
        chunk.used = 0;
    current_ = 0;
    bytesAllocated_ = 0;
}

} // namespace unxpec
