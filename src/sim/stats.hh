/**
 * @file
 * Lightweight statistics package, loosely modeled on gem5's Stats.
 *
 * Modules register named counters and distributions in a StatGroup; the
 * group can be dumped in a gem5-flavoured `name value # desc` format,
 * which is what the paper's artifact post-processes (sim_ticks,
 * startCycles, extraCleanupSquashTimeCyclesXX and friends).
 */

#ifndef UNXPEC_SIM_STATS_HH
#define UNXPEC_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace unxpec {

/** A named monotonically adjustable scalar statistic. */
class Counter
{
  public:
    Counter() = default;
    Counter(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc)) {}

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t delta) { value_ += delta; return *this; }

    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * Streaming distribution: tracks count/min/max/mean/variance (Welford)
 * plus the raw samples when sample retention is enabled (used by the
 * analysis layer for KDE and percentiles).
 */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::string name, std::string desc, bool keep_samples = false)
        : name_(std::move(name)), desc_(std::move(desc)),
          keepSamples_(keep_samples) {}

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    const std::vector<double> &samples() const { return samples_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    bool keepSamples_ = false;

    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

/**
 * A registry of counters and distributions with hierarchical dotted
 * names, dumpable in gem5 stats format.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix = "") : prefix_(std::move(prefix)) {}

    /** Create (or fetch) a counter under this group's prefix. */
    Counter &counter(const std::string &name, const std::string &desc = "");

    /** Create (or fetch) a distribution under this group's prefix. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "",
                               bool keep_samples = false);

    /** Look up an existing counter; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;

    /** Reset all registered statistics to zero. */
    void resetAll();

    /** Dump all stats in `name value # desc` lines, sorted by name. */
    void dump(std::ostream &os) const;

  private:
    std::string fullName(const std::string &name) const;

    std::string prefix_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace unxpec

#endif // UNXPEC_SIM_STATS_HH
