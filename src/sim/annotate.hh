/**
 * @file
 * Zero-cost source annotations for the speccheck static analyzer
 * (scripts/speccheck). The macros expand to [[clang::annotate(...)]]
 * under clang — an attribute with no effect on code generation — and
 * to nothing under every other compiler, so annotated and unannotated
 * builds are byte-identical (the golden gate proves it).
 *
 * The annotation contract (DESIGN.md §15):
 *
 *   UNXPEC_SPEC_STATE
 *       On a field declaration: this field is speculative
 *       microarchitectural state — written while an installer is still
 *       speculative and owed a restoration on squash. Every mutation
 *       of such a field must sit inside (or be call-graph-reachable
 *       from) a function carrying UNXPEC_TRANSITION or UNXPEC_ROLLBACK;
 *       speccheck errors on any other mutation site.
 *
 *   UNXPEC_TRANSITION(kind_and_scope)
 *       On a function: a registered mutator of speculative state.
 *       `kind_and_scope` is "<kind>" or "<kind>@<Mode1,Mode2,...>"
 *       with kind one of:
 *         spec    writes performed on behalf of a not-yet-committed
 *                 instruction — these form the speculative write-set a
 *                 defense's rollback must cover;
 *         commit  clears/promotes speculative markings when the
 *                 installer retires;
 *         reset   trial-boundary cold-start (reset/reseed/clear).
 *       The optional @scope names the CleanupMode enumerators under
 *       which the function can actually write speculative state
 *       (default: every mode). Scoping is the author's assertion about
 *       the dynamic dispatch (e.g. accessSafeSpec only runs under
 *       SafeSpec); the runtime auditor covers the dynamic side.
 *
 *   UNXPEC_ROLLBACK(modes)
 *       On a function: part of the squash/undo path for the named
 *       CleanupMode enumerators ("*" = every mode). The union of
 *       spec-state fields mutated in the call-graph closure of a
 *       mode's rollback functions is that mode's undo-set; speccheck
 *       errors when a gated mode's speculative write-set is not
 *       covered by its undo-set — the statically-checked counterpart
 *       of MemoryHierarchy::auditRollbackComplete.
 */

#ifndef UNXPEC_SIM_ANNOTATE_HH
#define UNXPEC_SIM_ANNOTATE_HH

#if defined(__clang__)
#if __has_cpp_attribute(clang::annotate)
#define UNXPEC_ANNOTATE(tag) [[clang::annotate(tag)]]
#endif
#endif
#ifndef UNXPEC_ANNOTATE
#define UNXPEC_ANNOTATE(tag)
#endif

/** Field holds speculative microarchitectural state (see file doc). */
#define UNXPEC_SPEC_STATE UNXPEC_ANNOTATE("unxpec::spec_state")

/** Function is a registered speculative-state mutator (see file doc). */
#define UNXPEC_TRANSITION(kind_and_scope) \
    UNXPEC_ANNOTATE("unxpec::transition:" kind_and_scope)

/** Function is part of the named modes' squash/undo path. */
#define UNXPEC_ROLLBACK(modes) UNXPEC_ANNOTATE("unxpec::rollback:" modes)

#endif // UNXPEC_SIM_ANNOTATE_HH
