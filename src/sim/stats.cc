#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace unxpec {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (keepSamples_)
        samples_.push_back(v);
}

void
Distribution::reset()
{
    count_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
    samples_.clear();
}

double
Distribution::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

std::string
StatGroup::fullName(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    const std::string full = fullName(name);
    auto it = counters_.find(full);
    if (it == counters_.end())
        // lint-ok(steady-alloc): amortized — first-touch insert only
        it = counters_.emplace(full, Counter(full, desc)).first;
    return it->second;
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc,
                        bool keep_samples)
{
    const std::string full = fullName(name);
    auto it = distributions_.find(full);
    if (it == distributions_.end()) {
        it = distributions_.emplace(
            full, Distribution(full, desc, keep_samples)).first;
    }
    return it->second;
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    auto it = counters_.find(fullName(name));
    return it == counters_.end() ? nullptr : &it->second;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, dist] : distributions_)
        dist.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, counter] : counters_) {
        os << std::left << std::setw(52) << name << " "
           << std::setw(16) << counter.value();
        if (!counter.desc().empty())
            os << " # " << counter.desc();
        os << "\n";
    }
    for (const auto &[name, dist] : distributions_) {
        os << std::left << std::setw(52) << (name + "::mean") << " "
           << std::setw(16) << dist.mean();
        if (!dist.desc().empty())
            os << " # " << dist.desc();
        os << "\n";
        os << std::left << std::setw(52) << (name + "::stdev") << " "
           << std::setw(16) << dist.stddev() << "\n";
        os << std::left << std::setw(52) << (name + "::samples") << " "
           << std::setw(16) << dist.count() << "\n";
    }
}

} // namespace unxpec
