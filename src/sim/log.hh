/**
 * @file
 * gem5-style status reporting: panic/fatal for errors, warn/inform for
 * status. panic() flags simulator bugs (aborts); fatal() flags user
 * errors such as bad configuration (exits cleanly with an error code).
 */

#ifndef UNXPEC_SIM_LOG_HH
#define UNXPEC_SIM_LOG_HH

#include <sstream>
#include <string>

namespace unxpec {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

namespace detail {
/** Global verbosity threshold; inline so the level check is a single
 *  load + compare at every (hot-path) call site. */
inline LogLevel g_logLevel = LogLevel::Warn;
} // namespace detail

/** Global verbosity threshold (default: Warn). */
inline void setLogLevel(LogLevel level) { detail::g_logLevel = level; }
inline LogLevel logLevel() { return detail::g_logLevel; }

/** True when messages at `level` pass the current threshold. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(detail::g_logLevel);
}

namespace detail {
[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void emit(LogLevel level, const char *tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
} // namespace detail

/** Abort on an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::format(std::forward<Args>(args)...));
}

/** Exit on an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::format(std::forward<Args>(args)...));
}

// The level is checked *before* the message is formatted: a filtered
// warn/inform/debugLog costs one load + branch, never an ostringstream.
// (tests/log_test.cc pins this down.)

/** Warn about suspect but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logEnabled(LogLevel::Warn))
        detail::emit(LogLevel::Warn, "warn",
                     detail::format(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logEnabled(LogLevel::Inform))
        detail::emit(LogLevel::Inform, "info",
                     detail::format(std::forward<Args>(args)...));
}

/** High-volume debug message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logEnabled(LogLevel::Debug))
        detail::emit(LogLevel::Debug, "debug",
                     detail::format(std::forward<Args>(args)...));
}

} // namespace unxpec

#endif // UNXPEC_SIM_LOG_HH
