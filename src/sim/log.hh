/**
 * @file
 * gem5-style status reporting: panic/fatal for errors, warn/inform for
 * status. panic() flags simulator bugs (aborts); fatal() flags user
 * errors such as bad configuration (exits cleanly with an error code).
 */

#ifndef UNXPEC_SIM_LOG_HH
#define UNXPEC_SIM_LOG_HH

#include <sstream>
#include <string>

namespace unxpec {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {
[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void emit(LogLevel level, const char *tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
} // namespace detail

/** Abort on an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::format(std::forward<Args>(args)...));
}

/** Exit on an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::format(std::forward<Args>(args)...));
}

/** Warn about suspect but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn", detail::format(std::forward<Args>(args)...));
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, "info", detail::format(std::forward<Args>(args)...));
}

/** High-volume debug message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug", detail::format(std::forward<Args>(args)...));
}

} // namespace unxpec

#endif // UNXPEC_SIM_LOG_HH
