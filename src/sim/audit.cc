/**
 * @file
 * Definitions for the invariant auditor (sim/audit.hh). The per-
 * subsystem auditInvariants() members are defined here, together,
 * rather than in their subsystems' .cc files: the audit is one
 * coherent reference model, and keeping every slow-path recomputation
 * side by side makes it easy to review that the checks really do
 * re-derive the fast-path structures from first principles.
 */

#include "sim/audit.hh"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "cpu/core.hh"
#include "cpu/isa.hh"
#include "cpu/rob.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"

namespace unxpec {

namespace audit {

namespace {

Cycle g_period = 64;

} // namespace

Cycle
period()
{
    return g_period;
}

void
setPeriod(Cycle cycles)
{
    g_period = cycles == 0 ? 1 : cycles;
}

void
fail(const char *component, Cycle now, const std::string &message)
{
    std::ostringstream out;
    out << "audit[" << component << "] @cycle " << now << ": " << message;
    throw AuditError(out.str());
}

std::string
dumpList(const char *name, const std::vector<std::uint64_t> &values)
{
    std::ostringstream out;
    out << name << "[" << values.size() << "] = {";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0)
            out << ", ";
        if (values[i] == kSeqNone)
            out << "none";
        else
            out << values[i];
    }
    out << "}";
    return out.str();
}

namespace {

/** Fail with both sides dumped when a side list diverges from the
 *  full-scan reference. Templated over the actual list's allocator:
 *  the ROB side lists are arena-backed (ArenaVector) while the
 *  reference scan uses a plain heap vector. */
template <typename ActualList>
void
compareLists(const char *component, Cycle now, const char *name,
             const std::vector<SeqNum> &expect, const ActualList &actual)
{
    if (std::equal(expect.begin(), expect.end(), actual.begin(),
                   actual.end())) {
        return;
    }
    fail(component, now,
         std::string(name) + " side list diverged from full scan: " +
             dumpList("expected", expect) + " vs " +
             dumpList("actual",
                      std::vector<SeqNum>(actual.begin(), actual.end())));
}

} // namespace

} // namespace audit

// --- ReorderBuffer ----------------------------------------------------

void
ReorderBuffer::auditInvariants(Cycle now) const
{
    const char *const who = "rob";

    if (entries_.size() > capacity_)
        audit::fail(who, now, "ROB over capacity");

    // Reference model: one full scan over the fat entries recomputes
    // every side list from the entry flags alone.
    std::vector<SeqNum> unissued;
    std::vector<SeqNum> ready_unissued;
    std::vector<SeqNum> outstanding;
    std::vector<SeqNum> store_fences;
    std::vector<SeqNum> pending_mem;
    std::vector<SeqNum> unresolved;
    unsigned mem_count = 0;

    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const RobEntry &entry = entries_[i];
        if (entry.seq != entries_.front().seq + i) {
            audit::fail(who, now,
                        "non-consecutive seq at index " +
                            std::to_string(i) + ": expected " +
                            std::to_string(entries_.front().seq + i) +
                            ", found " + std::to_string(entry.seq));
        }
        if (entry.done && !entry.issued) {
            audit::fail(who, now,
                        "entry " + std::to_string(entry.seq) +
                            " done but never issued");
        }
        if (!entry.issued) {
            unissued.push_back(entry.seq);
            if (entry.srcReady[0] && entry.srcReady[1])
                ready_unissued.push_back(entry.seq);
            // Eager-wakeup completeness: a waiting operand whose
            // producer is done (or gone) means markDone failed to
            // deliver the wakeup — the entry would stall forever.
            for (unsigned slot = 0; slot < 2; ++slot) {
                if (entry.srcReady[slot])
                    continue;
                const RobEntry *producer = find(entry.producer[slot]);
                if (producer == nullptr || producer->done) {
                    audit::fail(who, now,
                                "entry " + std::to_string(entry.seq) +
                                    " missed the wakeup from producer " +
                                    std::to_string(entry.producer[slot]));
                }
            }
        } else if (!entry.done)
            outstanding.push_back(entry.seq);
        const Opcode op = entry.inst.op;
        if (isMem(op)) {
            ++mem_count;
            if (!entry.done)
                pending_mem.push_back(entry.seq);
        }
        if (isStore(op) || op == Opcode::FENCE)
            store_fences.push_back(entry.seq);
        if (isCondBranch(op) && !entry.done)
            unresolved.push_back(entry.seq);
    }

    // The issue and writeback candidate sets (and the gating inputs)
    // must match the reference exactly — order included, since the
    // pipeline loops rely on ascending-seq walks.
    audit::compareLists(who, now, "unissued", unissued, unissued_);
    audit::compareLists(who, now, "readyUnissued", ready_unissued,
                        readyUnissued_);
    audit::compareLists(who, now, "outstanding", outstanding, outstanding_);
    audit::compareLists(who, now, "storeFences", store_fences, storeFences_);
    audit::compareLists(who, now, "pendingMem", pending_mem, pendingMem_);
    audit::compareLists(who, now, "unresolvedBranches", unresolved,
                        unresolvedBranches_);
    if (mem_count != memCount_) {
        audit::fail(who, now,
                    "memCount " + std::to_string(memCount_) +
                        " != full-scan count " + std::to_string(mem_count));
    }

    // Query cross-check: the O(1) front-element answers must agree with
    // the reference semantics for every in-flight seq.
    unsigned older_branches = 0;
    unsigned older_pending = 0;
    for (const RobEntry &entry : entries_) {
        if (olderUnresolvedBranch(entry.seq) != (older_branches > 0)) {
            audit::fail(who, now,
                        "olderUnresolvedBranch(" +
                            std::to_string(entry.seq) +
                            ") disagrees with full scan");
        }
        if (olderPendingMem(entry.seq) != (older_pending > 0)) {
            audit::fail(who, now,
                        "olderPendingMem(" + std::to_string(entry.seq) +
                            ") disagrees with full scan");
        }
        if (isCondBranch(entry.inst.op) && !entry.done)
            ++older_branches;
        if (isMem(entry.inst.op) && !entry.done)
            ++older_pending;
    }
}

// --- Cache ------------------------------------------------------------

void
Cache::auditInvariants(Cycle now) const
{
    const std::string who_str = "cache:" + cfg_.name;
    const char *const who = who_str.c_str();

    for (unsigned set = 0; set < numSets_; ++set) {
        std::vector<Addr> seen;
        std::vector<std::uint64_t> stamps;
        for (unsigned way = 0; way < cfg_.ways; ++way) {
            const std::size_t idx =
                static_cast<std::size_t>(set) * cfg_.ways + way;
            const CacheLine &slot = lines_[idx];
            const std::string where = " at set " + std::to_string(set) +
                                      " way " + std::to_string(way);

            // SoA mirror: the tag array probe() scans must agree with
            // the line metadata it hands out pointers into.
            const Addr expect_tag =
                slot.valid ? slot.lineAddr : kAddrInvalid;
            if (tags_[idx] != expect_tag) {
                audit::fail(who, now,
                            "tag array diverged from line metadata" +
                                where + ": tag " +
                                std::to_string(tags_[idx]) + ", line " +
                                std::to_string(slot.lineAddr) +
                                (slot.valid ? " (valid)" : " (invalid)"));
            }
            if (slot.valid != (slot.lineAddr != kAddrInvalid)) {
                audit::fail(who, now,
                            "valid bit inconsistent with lineAddr" + where);
            }
            if (!slot.valid) {
                if (slot.speculative) {
                    audit::fail(who, now,
                                "invalid line marked speculative" + where);
                }
                if (slot.pendingDowngrade) {
                    audit::fail(who, now,
                                "invalid line keeps a pending coherence "
                                "downgrade" +
                                    where);
                }
                continue;
            }

            // Placement: a resident line must live in the set its
            // address indexes to (modulo or CEASER alike).
            if (index_.set(slot.lineAddr) != set) {
                audit::fail(who, now,
                            "line " + std::to_string(slot.lineAddr) +
                                " resident in set " + std::to_string(set) +
                                " but indexes to set " +
                                std::to_string(index_.set(slot.lineAddr)));
            }
            // Uniqueness: a duplicate tag makes the second copy
            // unreachable to probe() — a ghost line.
            if (std::find(seen.begin(), seen.end(), slot.lineAddr) !=
                seen.end()) {
                audit::fail(who, now,
                            "duplicate tag " +
                                std::to_string(slot.lineAddr) +
                                " in set " + std::to_string(set) + ": " +
                                audit::dumpList("resident", seen));
            }
            seen.push_back(slot.lineAddr);

            // Speculative marking coherence (what rollback keys on).
            if (slot.speculative && slot.installer == kSeqNone) {
                audit::fail(who, now,
                            "speculative line without installer" + where);
            }
            if (!slot.speculative && slot.installer != kSeqNone) {
                audit::fail(who, now,
                            "non-speculative line keeps installer " +
                                std::to_string(slot.installer) + where);
            }
            // A delayed M/E -> S downgrade is pinned to the speculative
            // episode that deferred it: commit applies it, squash
            // undoes it — either way the bit cannot outlive the
            // speculative marking (coherence engine contract).
            if (slot.pendingDowngrade && !slot.speculative) {
                audit::fail(who, now,
                            "non-speculative line keeps a pending "
                            "coherence downgrade" +
                                where);
            }
            if (slot.pendingDowngrade && slot.coh != CohState::Modified &&
                slot.coh != CohState::Exclusive) {
                audit::fail(who, now,
                            "pending downgrade on a line not in M/E" +
                                where);
            }

            if (repl_.policy() == ReplPolicy::LRU)
                stamps.push_back(repl_.auditStamp(set, way));
        }

        // LRU recency stack: every valid way was touched at least once
        // (stamp >= 1), no stamp outruns the global tick, and the
        // stamps are pairwise distinct — i.e. they define a strict
        // recency order (a permutation of the valid ways).
        for (const std::uint64_t stamp : stamps) {
            if (stamp == 0 || stamp > repl_.auditTick()) {
                audit::fail(who, now,
                            "LRU stamp out of range in set " +
                                std::to_string(set) + ": " +
                                audit::dumpList("stamps", stamps) +
                                ", tick " +
                                std::to_string(repl_.auditTick()));
            }
        }
        std::vector<std::uint64_t> sorted = stamps;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end()) {
            audit::fail(who, now,
                        "LRU stamps not a strict order in set " +
                            std::to_string(set) + ": " +
                            audit::dumpList("stamps", stamps));
        }
    }

    // --- MSHR file ----------------------------------------------------
    if (mshr_.inflight() > mshr_.capacity())
        audit::fail(who, now, "MSHR file over capacity");
    for (const MshrEntry &entry : mshr_.entries()) {
        if (entry.lineAddr == kAddrInvalid)
            audit::fail(who, now, "MSHR entry without a line address");
        if (entry.targets == 0) {
            audit::fail(who, now,
                        "MSHR entry for line " +
                            std::to_string(entry.lineAddr) +
                            " has zero targets");
        }
        if (entry.speculative && entry.installer == kSeqNone) {
            audit::fail(who, now,
                        "speculative MSHR entry without installer (line " +
                            std::to_string(entry.lineAddr) + ")");
        }
        if (entry.victimValid && entry.victimLine == kAddrInvalid) {
            audit::fail(who, now,
                        "MSHR entry claims a victim but records none "
                        "(line " +
                            std::to_string(entry.lineAddr) + ")");
        }
    }

    // Fills in flight: a resident line whose fill has not landed was
    // installed together with an MSHR allocation at the same ready
    // cycle. The entry may be legitimately absent (the file was full,
    // or this cache never allocates — the L1I), and stale entries for
    // earlier residencies of the same line may linger before lazy
    // release; but if any entry exists for the line, one of them must
    // carry exactly the in-flight fill's arrival cycle.
    for (std::size_t idx = 0; idx < lines_.size(); ++idx) {
        const CacheLine &slot = lines_[idx];
        if (!slot.valid || slot.fillCycle <= now)
            continue;
        bool any = false;
        bool matched = false;
        for (const MshrEntry &entry : mshr_.entries()) {
            if (entry.lineAddr != slot.lineAddr)
                continue;
            any = true;
            if (entry.readyCycle == slot.fillCycle)
                matched = true;
        }
        if (any && !matched) {
            audit::fail(who, now,
                        "line " + std::to_string(slot.lineAddr) +
                            " filling at cycle " +
                            std::to_string(slot.fillCycle) +
                            " has MSHR entries but none matches its "
                            "arrival");
        }
    }
}

// --- MemoryHierarchy --------------------------------------------------

void
MemoryHierarchy::auditInvariants(Cycle now) const
{
    l1i_.auditInvariants(now);
    l1d_.auditInvariants(now);
    if (ownsShared())
        l2_.auditInvariants(now);
    // The machine-wide invariants (single owner, inclusion, no stale
    // pending downgrades) span every core; auditing them from the
    // shared-level owner keeps the periodic Core-loop hook from
    // re-scanning the machine once per core.
    if (coh_ != nullptr && ownsShared())
        coh_->auditInvariants(now);
}

void
MemoryHierarchy::auditRollbackComplete(SeqNum branch_seq, Cycle now) const
{
    const char *const who = "rollback";

    // CleanupSpec completeness (§II-B, T5): the squash removed every
    // ROB entry younger than the branch, and the rollback must have
    // removed (or, on the unsafe baseline, at least unmarked) every
    // speculative footprint those entries installed. Any surviving
    // speculative marking from a squashed installer is leftover
    // transient state the undo missed.
    auto check_cache = [&](const Cache &cache) {
        for (const CacheLine &slot : cache.lines_) {
            if (slot.valid && slot.speculative &&
                slot.installer != kSeqNone && slot.installer > branch_seq) {
                audit::fail(
                    who, now,
                    "cache " + cache.config().name + ": line " +
                        std::to_string(slot.lineAddr) +
                        " still speculative for squashed installer " +
                        std::to_string(slot.installer) +
                        " (squashed everything younger than " +
                        std::to_string(branch_seq) + ")");
            }
        }
    };
    check_cache(l1d_);
    check_cache(l2_);

    // The unsafe baseline performs no MSHR scrub by design; every real
    // scheme must have purged squashed installers' entries (T3).
    if (cfg_.cleanupMode == CleanupMode::UnsafeBaseline)
        return;
    auto check_mshr = [&](const Cache &cache) {
        for (const MshrEntry &entry : cache.mshr().entries()) {
            if (entry.speculative && entry.installer != kSeqNone &&
                entry.installer > branch_seq) {
                audit::fail(
                    who, now,
                    "cache " + cache.config().name + ": MSHR entry for "
                        "line " +
                        std::to_string(entry.lineAddr) +
                        " still tracks squashed installer " +
                        std::to_string(entry.installer));
            }
        }
    };
    check_mshr(l1d_);
    check_mshr(l2_);
}

// --- Core -------------------------------------------------------------

void
Core::auditInvariants() const
{
    rob_.auditInvariants(now_);
    hier_.auditInvariants(now_);
    // LSQ occupancy model: dispatch back-pressures on this bound.
    if (LoadStoreQueue::occupancy(rob_) > lsq_.capacity()) {
        audit::fail("lsq", now_,
                    "occupancy " +
                        std::to_string(LoadStoreQueue::occupancy(rob_)) +
                        " exceeds capacity " +
                        std::to_string(lsq_.capacity()));
    }
}

// --- CacheCheckpoint --------------------------------------------------

CacheCheckpoint
CacheCheckpoint::capture(const Cache &cache)
{
    CacheCheckpoint checkpoint;
    checkpoint.resident_ = cache.residentLines();
    return checkpoint;
}

void
CacheCheckpoint::verifyRestored(const Cache &cache, Cycle now) const
{
    const std::vector<Addr> current = cache.residentLines();
    if (current == resident_)
        return;

    // Both sides are sorted: set-difference each way for the dump.
    std::vector<Addr> appeared;
    std::set_difference(current.begin(), current.end(), resident_.begin(),
                        resident_.end(), std::back_inserter(appeared));
    std::vector<Addr> vanished;
    std::set_difference(resident_.begin(), resident_.end(), current.begin(),
                        current.end(), std::back_inserter(vanished));
    audit::fail(("checkpoint:" + cache.config().name).c_str(), now,
                "resident set differs from checkpoint: " +
                    audit::dumpList("appeared", appeared) + ", " +
                    audit::dumpList("vanished", vanished));
}

} // namespace unxpec
