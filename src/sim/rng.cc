#include "sim/rng.hh"

#include <cmath>

namespace unxpec {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

std::uint64_t
Rng::deriveSeed(std::uint64_t master, std::uint64_t stream)
{
    // SplitMix64's k-th output is a pure function of its state:
    // out_k = mix(master + (k+1) * gamma). Jump straight to it.
    std::uint64_t x = master + stream * 0x9e3779b97f4a7c15ull;
    return splitMix64(x);
}

std::uint64_t
Rng::deriveRetrySeed(std::uint64_t master, std::uint64_t stream,
                     unsigned attempt)
{
    const std::uint64_t base = deriveSeed(master, stream);
    if (attempt == 0)
        return base;
    // Salted re-derivation: the retry namespace is keyed off the
    // trial's own first-attempt seed, so retry streams are decorrelated
    // from every (master, stream) first-attempt seed while remaining a
    // pure function of (master, stream, attempt) — a resumed campaign
    // recomputes the exact same retry seeds.
    return deriveSeed(base ^ 0xc2b2ae3d27d4eb4full, attempt);
}

void
Rng::seed(std::uint64_t s)
{
    // Expand the single seed into the 256-bit state; SplitMix64 cannot
    // produce the all-zero state Xoshiro forbids.
    for (auto &word : state_)
        word = splitMix64(s);
    hasCachedGaussian_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

} // namespace unxpec
