/**
 * @file
 * Cycle-accurate event tracing. Every interesting micro-event — the
 * instruction lifecycle (fetch/dispatch/issue/writeback/commit/squash),
 * cache activity (hit/miss/fill/evict/invalidate/restore/MSHR merge
 * per level), the CleanupSpec rollback timeline (begin/invalidate/
 * restore/scrub/end with cycle spans), branch resolution, and LSQ
 * gating — is a fixed-size typed record appended to a bounded ring
 * buffer. Two consumers:
 *
 *   - TraceQuery: in-memory queries from tests (`eventsBetween(a, b)`,
 *     per-kind counts), the tool that turns "why did delta_cycles
 *     move?" from printf archaeology into an assertion;
 *   - writeChromeTrace(): the Chrome `trace_event` JSON format, loadable
 *     in chrome://tracing or Perfetto, one track per pipeline stage and
 *     cache level, one process per trial.
 *
 * Cost model: tracing is a pointer that is null by default. Every
 * instrumentation site guards with
 *
 *     if (kTraceEnabled && tracer != nullptr && tracer->enabled(cat))
 *
 * so a build with UNXPEC_TRACE_ENABLED=0 removes the sites entirely
 * (kTraceEnabled is a constexpr false), and the default build pays one
 * load + branch per site while no tracer is installed. A runtime
 * category mask narrows recording further once a tracer is attached.
 */

#ifndef UNXPEC_SIM_TRACE_HH
#define UNXPEC_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

#ifndef UNXPEC_TRACE_ENABLED
#define UNXPEC_TRACE_ENABLED 1
#endif

namespace unxpec {

/** Compile-time switch: false compiles every trace site away. */
inline constexpr bool kTraceEnabled = UNXPEC_TRACE_ENABLED != 0;

/** Runtime category bits (combine with |). */
enum TraceCategory : std::uint32_t
{
    kTraceCatCpu = 1u << 0,     //!< instruction lifecycle + LSQ gating
    kTraceCatCache = 1u << 1,   //!< hits/misses/fills/evictions per level
    kTraceCatCleanup = 1u << 2, //!< CleanupSpec rollback timeline
    kTraceCatBranch = 1u << 3,  //!< branch resolution
    kTraceCatCoherence = 1u << 4, //!< cross-core snoops and downgrades
    kTraceCatAll = (1u << 5) - 1,
};

/**
 * Category mask for a `--trace-categories` style list
 * ("cpu,cache,cleanup", also "branch" and "all"); fatal() on an
 * unknown name, 0 for the empty string.
 */
std::uint32_t parseTraceCategories(const std::string &list);

/** Human-readable names of the categories set in `mask`. */
std::string traceCategoriesToString(std::uint32_t mask);

/** Typed event kinds. */
enum class TraceKind : std::uint8_t
{
    // Instruction lifecycle (kTraceCatCpu).
    Fetch,            //!< arg = pc
    Dispatch,         //!< seq, arg = pc
    Issue,            //!< seq, arg = pc
    Writeback,        //!< seq, arg = pc
    Commit,           //!< seq, arg = pc
    Squash,           //!< seq, arg = pc (one per squashed entry)
    LoadBlocked,      //!< seq, addr (older store/fence gates the load)
    LoadForward,      //!< seq, addr (value forwarded from older store)

    // Branch resolution (kTraceCatBranch).
    BranchResolve,    //!< seq, arg = pc, flags taken/mispredict bits

    // Cache activity (kTraceCatCache); level: 0 = L1I, 1 = L1D, 2 = L2.
    CacheHit,         //!< addr, dur = latency, level of service
    CacheMiss,        //!< addr, dur = fill latency (missed to DRAM)
    CacheFill,        //!< addr, dur = request-to-landing span
    CacheEvict,       //!< addr = victim line
    CacheInvalidate,  //!< addr
    CacheRestore,     //!< addr (victim reinstated into its way)
    MshrMerge,        //!< addr, dur = wait for the outstanding fill

    // CleanupSpec rollback (kTraceCatCleanup).
    RollbackBegin,     //!< cycle = squash, arg = footprint size
    RollbackInvalidate,//!< addr, flags bit0 = L1, bit1 = L2
    RollbackRestore,   //!< addr = restored victim line
    InflightScrub,     //!< addr (T3 MSHR purge of an inflight fill)
    RollbackEnd,       //!< cycle = stall end, dur = stall span

    // Coherence engine (kTraceCatCoherence); level = owning core id.
    SnoopServe,        //!< addr served cache-to-cache, arg = owner core
    SnoopDummyMiss,    //!< addr hid a speculative copy (§II-B)
    SnoopDowngrade,    //!< addr M/E->S (immediate), arg = owner core
    SnoopDelayedDowngrade, //!< addr downgrade deferred to commit
    SnoopInvalidate,   //!< addr dropped from a remote L1 (write upgrade)
    BackInvalidate,    //!< addr dropped from an L1 by shared-L2 eviction
    DowngradeUndo,     //!< addr owner state restored on squash
};

/** Category an event kind reports under. */
TraceCategory traceCategoryOf(TraceKind kind);

/** Stable name of an event kind ("commit", "rollback-begin", ...). */
const char *traceKindName(TraceKind kind);

/** Flag bits carried by some events. */
enum TraceFlags : std::uint16_t
{
    kTraceFlagTaken = 1u << 0,       //!< BranchResolve: resolved taken
    kTraceFlagMispredict = 1u << 1,  //!< BranchResolve: squashing
    kTraceFlagSpeculative = 1u << 2, //!< cache event under speculation
    kTraceFlagWrite = 1u << 3,       //!< cache event for a store
    kTraceFlagL1 = 1u << 4,          //!< rollback touched L1
    kTraceFlagL2 = 1u << 5,          //!< rollback touched L2
    kTraceFlagDirty = 1u << 6,       //!< evicted victim was dirty
    kTraceFlagInvisible = 1u << 7,   //!< InvisiSpec shadow access
};

/** One fixed-size trace record. */
struct TraceEvent
{
    Cycle cycle = 0;            //!< when the event happened
    Cycle dur = 0;              //!< span length, 0 for instants
    SeqNum seq = kSeqNone;      //!< owning instruction, if any
    Addr addr = kAddrInvalid;   //!< line address, if any
    std::uint64_t arg = 0;      //!< kind-specific payload (pc, count...)
    TraceKind kind = TraceKind::Fetch;
    std::uint8_t level = 0;     //!< cache level for cache events
    std::uint16_t flags = 0;    //!< TraceFlags bits
};

/**
 * Per-core event recorder over a bounded ring buffer. Not thread-safe:
 * each trial (and thus each TrialRunner worker) owns its own Tracer,
 * mirroring how each trial owns its own Core.
 */
class Tracer
{
  public:
    /** Default ring capacity (events); ~2.5 MB of records. */
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

    explicit Tracer(std::uint32_t mask = kTraceCatAll,
                    std::size_t capacity = kDefaultCapacity);

    /** Does the mask admit this category? The hot-path gate. */
    bool enabled(TraceCategory cat) const { return (mask_ & cat) != 0; }
    std::uint32_t mask() const { return mask_; }
    void setMask(std::uint32_t mask) { mask_ = mask; }

    /**
     * Current cycle, maintained by the owning Core once per tick so
     * cycle-blind modules (ROB, LSQ, caches) can stamp their events.
     */
    void setNow(Cycle now) { now_ = now; }
    Cycle now() const { return now_; }

    /** Append an event; overwrites the oldest when the ring is full. */
    void record(const TraceEvent &event);

    /** Instant event at the tracer's current cycle. */
    void
    instant(TraceKind kind, SeqNum seq = kSeqNone,
            Addr addr = kAddrInvalid, std::uint64_t arg = 0,
            std::uint8_t level = 0, std::uint16_t flags = 0)
    {
        record({now_, 0, seq, addr, arg, kind, level, flags});
    }

    /** Instant event at an explicit cycle. */
    void
    instantAt(Cycle cycle, TraceKind kind, SeqNum seq = kSeqNone,
              Addr addr = kAddrInvalid, std::uint64_t arg = 0,
              std::uint8_t level = 0, std::uint16_t flags = 0)
    {
        record({cycle, 0, seq, addr, arg, kind, level, flags});
    }

    /** Span event [start, start + dur]. */
    void
    span(TraceKind kind, Cycle start, Cycle dur, SeqNum seq = kSeqNone,
         Addr addr = kAddrInvalid, std::uint64_t arg = 0,
         std::uint8_t level = 0, std::uint16_t flags = 0)
    {
        record({start, dur, seq, addr, arg, kind, level, flags});
    }

    /** Events currently retained, oldest first. */
    std::vector<TraceEvent> events() const;

    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Events lost to ring wrap-around since the last clear(). */
    std::uint64_t dropped() const { return dropped_; }

    void clear();

  private:
    std::uint32_t mask_;
    Cycle now_ = 0;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  //!< next write slot
    std::size_t count_ = 0; //!< valid records (<= capacity)
    std::uint64_t dropped_ = 0;
};

/**
 * Read-only queries over a tracer's retained events (a stable snapshot
 * taken at construction — the tracer may keep recording).
 */
class TraceQuery
{
  public:
    explicit TraceQuery(const Tracer &tracer) : events_(tracer.events()) {}
    explicit TraceQuery(std::vector<TraceEvent> events)
        : events_(std::move(events))
    {
    }

    /** Events with cycle in [from, to], oldest first. */
    std::vector<TraceEvent> eventsBetween(Cycle from, Cycle to) const;

    /** Events of one kind, optionally restricted to [from, to]. */
    std::vector<TraceEvent> ofKind(TraceKind kind, Cycle from = 0,
                                   Cycle to = kCycleNever) const;

    /** Number of events of one kind in [from, to]. */
    std::size_t count(TraceKind kind, Cycle from = 0,
                      Cycle to = kCycleNever) const;

    const std::vector<TraceEvent> &all() const { return events_; }

  private:
    std::vector<TraceEvent> events_;
};

/** One Chrome-trace process: a trial's events under a display name. */
struct TraceProcess
{
    std::string name;               //!< e.g. "loads=3 rep=1 seed=42"
    std::vector<TraceEvent> events;
    /**
     * Events lost to ring wrap before the retained window
     * (Tracer::dropped()). When nonzero the exporter emits a
     * process-scoped `"ph":"i"` "trace-truncated" marker at the start
     * of the retained window so a wrapped trace is never mistaken for
     * a complete one.
     */
    std::uint64_t dropped = 0;
};

/**
 * Emit Chrome `trace_event` JSON (the chrome://tracing / Perfetto
 * format): one process per TraceProcess, one named track per pipeline
 * stage and cache level, spans as complete ("X") events and instants
 * as thread-scoped "i" events. Cycle counts map 1:1 onto the viewer's
 * microsecond timeline.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceProcess> &processes);

/** writeChromeTrace to a file; false (with a warn) if it can't open. */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<TraceProcess> &processes);

} // namespace unxpec

#endif // UNXPEC_SIM_TRACE_HH
