/**
 * @file
 * System configuration. Defaults reproduce Table I of the unXpec paper
 * (the CleanupSpec gem5 setup): 1 core @ 2 GHz, out-of-order 192-entry
 * ROB, 32 KB 4-way L1I, 32 KB 8-way 64-set L1D, 2 MB 16-way shared L2,
 * 50 ns round trip to memory after L2.
 */

#ifndef UNXPEC_SIM_CONFIG_HH
#define UNXPEC_SIM_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace unxpec {

/** Cache replacement policy selector. */
enum class ReplPolicy
{
    LRU,    //!< classic least-recently-used
    Random, //!< CleanupSpec's L1 policy (hides replacement-state channels)
};

/** Index (set-mapping) function selector. */
enum class IndexPolicy
{
    Modulo, //!< conventional set index = line bits mod numSets
    Ceaser, //!< CEASER-style keyed/randomized index (CleanupSpec L2)
};

/**
 * Speculation-safety scheme. The Undo modes mirror the open-source
 * CleanupSpec scheme names used by the paper's artifact; InvisiSpec is
 * the representative *Invisible* defense (Yan et al., MICRO'18) the
 * paper contrasts Undo against: speculative loads fill a shadow buffer
 * instead of the caches and are exposed/validated at commit.
 */
enum class CleanupMode
{
    UnsafeBaseline,    //!< no rollback: transient installs persist
    Cleanup_FOR_L1,    //!< invalidate/restore in the L1 D-cache only
    Cleanup_FOR_L1L2,  //!< additionally invalidate L2 installs (paper cfg)
    Cleanup_FULL,      //!< hypothetical: restore L2 victims as well.
                       //!< CleanupSpec rejects this for cost (§III-A);
                       //!< it also *widens* the unXpec channel — more
                       //!< rollback work means more secret-dependent
                       //!< time (our ablation)
    InvisiSpec,        //!< Invisible: buffer speculative fills, expose
                       //!< and validate at commit
    DelayOnMiss,       //!< Invisible: serve speculative L1 hits, delay
                       //!< speculative misses until the speculation
                       //!< resolves (Sakalis et al., ISCA'19)
    SafeSpec,          //!< shadow-structure: speculative fills land in a
                       //!< shadow L1 (cleanup/safespec.hh), promoted to
                       //!< the caches at commit and discarded — for
                       //!< free — on squash (Khasawneh et al., DAC'19)
    SpecBox,           //!< label-based isolation: speculative lines are
                       //!< tagged in place, invisible to cross-core
                       //!< probes until commit, and flash-cleared at
                       //!< zero cost on squash
    CacheSquash,       //!< squash propagates into the MSHR: speculative
                       //!< misses park in cancellable MSHR entries that
                       //!< install no tags; squash cancels the fills
};

/** Human-readable name for a cleanup mode. */
const char *toString(CleanupMode mode);

/** Geometry and policies of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    unsigned sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned hitLatency = 2;       //!< cycles from access to data on a hit
    unsigned mshrs = 16;           //!< outstanding-miss registers
    ReplPolicy repl = ReplPolicy::LRU;
    IndexPolicy index = IndexPolicy::Modulo;
    /** NoMo way partitioning: ways reserved away from this security
     *  domain (0 disables partitioning). */
    unsigned nomoReservedWays = 0;

    unsigned numSets() const { return sizeBytes / (ways * kLineBytes); }
};

/**
 * Latency model for the CleanupSpec rollback engine (T3-T5 of the
 * paper's Fig. 1 timeline). Invalidation walks are pipelined per cache
 * level and the two levels proceed in parallel; restoration fetches
 * evicted victims back into L1 from L2 and is also pipelined.
 *
 * The defaults are calibrated (tests/calibration_test.cc pins them) so
 * that a single squashed transient load costs ~22 cycles of rollback in
 * Cleanup_FOR_L1L2 mode, and ~32 cycles when one L1 victim must be
 * restored, matching the paper's headline measurements.
 */
struct CleanupTiming
{
    double mshrCleanCost = 4.0;   //!< T3: purge inflight transient loads
    double invFirstL1 = 4.0;      //!< first L1 invalidation
    double invNextL1 = 0.5;       //!< each further L1 invalidation
    double invFirstL2 = 18.0;     //!< first L2 invalidation (L2 walk)
    double invNextL2 = 0.5;       //!< each further L2 invalidation
    double restoreFirst = 10.0;   //!< first L1 restoration (refill from L2)
    double restoreNext = 4.2;     //!< each further restoration
    double restoreL2First = 30.0; //!< first L2 restoration (from memory;
                                  //!< Cleanup_FULL only)
    double restoreL2Next = 12.0;  //!< each further L2 restoration
    /** Constant-time rollback: stall at least this many cycles on every
     *  squash (0 disables the countermeasure). Implements the paper's
     *  "relaxed" strategy: stall = max(actual, constant). */
    unsigned constantTimeCycles = 0;
    /** Dummy-cleanup mitigation (paper §VII future work): add a random
     *  stall uniform in [0, fuzzyMaxCycles] to every squash. */
    unsigned fuzzyMaxCycles = 0;
};

/** Branch-direction predictor flavor. */
enum class PredictorKind
{
    Bimodal, //!< per-PC 2-bit counters (default)
    Gshare,  //!< global-history XOR PC
};

/** Core pipeline and memory latency parameters. */
struct CoreConfig
{
    PredictorKind predictor = PredictorKind::Bimodal;
    unsigned fetchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 192;    //!< Table I
    unsigned lsqEntries = 64;
    unsigned intAluLatency = 1;
    unsigned mulLatency = 3;
    /**
     * False models a single non-pipelined multiplier shared by every
     * MUL in flight: a new MUL cannot start before the previous one
     * drains. The busy window deliberately survives squashes — FU
     * occupancy is timing, not state, so no undo can reclaim it. This
     * is the SpectreRewind contention channel (attack/contention.hh);
     * the default keeps the historical fully pipelined unit and is
     * bit-identical to pre-knob behavior.
     */
    bool mulPipelined = true;
    unsigned branchRedirectPenalty = 3; //!< fetch bubble after squash
    unsigned clflushLatency = 30;       //!< core-visible clflush cost
    unsigned decodeDepth = 3;           //!< fetch-to-dispatch stages
};

/** Main-memory (DRAM) model parameters. */
struct MemoryConfig
{
    unsigned accessLatency = 100; //!< 50 ns at 2 GHz (Table I)
    double jitterSigma = 0.0;     //!< gaussian latency jitter (cycles)
};

/** Complete system configuration (Table I defaults). */
struct SystemConfig
{
    double clockGHz = 2.0;
    CoreConfig core;
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    MemoryConfig memory;
    CleanupMode cleanupMode = CleanupMode::Cleanup_FOR_L1L2;
    CleanupTiming cleanupTiming;
    std::uint64_t seed = 1;
    /**
     * Cores in the Machine: 1 reproduces the historical single-core
     * simulator bit-for-bit; N > 1 gives every core a private L1I/L1D
     * over one shared L2/MainMemory kept coherent by the Machine's
     * CoherenceEngine. Per-core seeds are derived from `seed`.
     */
    unsigned numCores = 1;

    /** Table I configuration, CleanupSpec protections on. */
    static SystemConfig makeDefault();

    /** Same geometry with the defense disabled (UnsafeBaseline). */
    static SystemConfig makeUnsafeBaseline();

    /** Same geometry under the InvisiSpec-style Invisible defense. */
    static SystemConfig makeInvisiSpec();

    /** Same geometry under the delay-on-miss Invisible defense. */
    static SystemConfig makeDelayOnMiss();

    /** Same geometry under the SafeSpec shadow-structure defense. */
    static SystemConfig makeSafeSpec();

    /** Same geometry under SpecBox label-based isolation. */
    static SystemConfig makeSpecBox();

    /** Same geometry under CacheSquash MSHR-cancellation. */
    static SystemConfig makeCacheSquash();

    /**
     * "Noisy host" profile approximating the paper's Intel i7-8550U
     * robustness experiment (§VI-D): longer memory latency and DRAM
     * jitter so measurements carry realistic noise.
     */
    static SystemConfig makeNoisyHost();

    /** Pretty-print the configuration as a Table-I style table. */
    void print(std::ostream &os) const;

    /** Sanity-check the configuration; fatal() on user errors. */
    void validate() const;
};

/**
 * Field-wise equality of two system configurations ignoring `seed`.
 * The per-thread Core pool uses this to decide whether a cached Core
 * can be reused via Core::reset (only the seed differs between trials
 * of one spec) or must be rebuilt (a spec tweak produced a genuinely
 * different machine).
 */
bool equalIgnoringSeed(const SystemConfig &a, const SystemConfig &b);

} // namespace unxpec

#endif // UNXPEC_SIM_CONFIG_HH
