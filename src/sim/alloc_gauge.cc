#include "sim/alloc_gauge.hh"

#include <cstddef>
#include <cstdlib>
#include <new>

// Global operator new/delete replacements that count calls per thread.
// Built into its own static library (unxpec_alloc_gauge) so only tests
// that explicitly link it pay for (or observe) the counting; the rest
// of the tree keeps the default allocator untouched. Under ASan/TSan
// the sanitizer intercepts malloc/free *below* these wrappers, so
// counting and poisoning compose.

namespace {

thread_local std::uint64_t g_allocs = 0;
thread_local std::uint64_t g_frees = 0;
thread_local std::uint64_t g_bytes = 0;

void *
countedAlloc(std::size_t size, std::size_t align)
{
    ++g_allocs;
    g_bytes += size;
    if (size == 0)
        size = 1;
    if (align > alignof(std::max_align_t)) {
        // aligned_alloc requires size to be a multiple of alignment.
        const std::size_t rounded = (size + align - 1) / align * align;
        return std::aligned_alloc(align, rounded);
    }
    return std::malloc(size);
}

void
countedFree(void *ptr)
{
    ++g_frees;
    std::free(ptr);
}

} // namespace

namespace unxpec {

AllocStats
allocGaugeRead()
{
    return AllocStats{g_allocs, g_frees, g_bytes};
}

} // namespace unxpec

// --- operator new family ------------------------------------------------

void *
operator new(std::size_t size)
{
    void *ptr = countedAlloc(size, alignof(std::max_align_t));
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *ptr = countedAlloc(size, static_cast<std::size_t>(align));
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size, alignof(std::max_align_t));
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size, alignof(std::max_align_t));
}

// --- operator delete family ----------------------------------------------

void
operator delete(void *ptr) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    countedFree(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    countedFree(ptr);
}
