/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef UNXPEC_SIM_TYPES_HH
#define UNXPEC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace unxpec {

/** Simulated processor cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat (SE-mode style) address space. */
using Addr = std::uint64_t;

/** Monotonic per-core dynamic instruction sequence number. */
using SeqNum = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** Sentinel for "no cycle scheduled". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for "no address". */
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Sentinel for "no sequence number". */
inline constexpr SeqNum kSeqNone = std::numeric_limits<SeqNum>::max();

/** Cache line size in bytes. Fixed at 64 B throughout, as in Table I. */
inline constexpr unsigned kLineBytes = 64;

/** Shift to convert a byte address into a line address. */
inline constexpr unsigned kLineShift = 6;

/** Mask off the sub-line offset bits of an address. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Line number (address >> 6) of a byte address. */
constexpr Addr
lineNumber(Addr addr)
{
    return addr >> kLineShift;
}

} // namespace unxpec

#endif // UNXPEC_SIM_TYPES_HH
