#include "sim/log.hh"

#include <cstdlib>
#include <iostream>

namespace unxpec {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) <= static_cast<int>(g_level))
        std::cerr << tag << ": " << msg << "\n";
}

} // namespace detail
} // namespace unxpec
