#include "sim/log.hh"

#include <cstdlib>
#include <iostream>

namespace unxpec {
namespace detail {

void
panicImpl(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
emit(LogLevel level, const char *tag, const std::string &msg)
{
    // Callers guard on logEnabled() before formatting; re-check here so
    // direct emit() calls still honour the threshold.
    if (logEnabled(level))
        std::cerr << tag << ": " << msg << "\n";
}

} // namespace detail
} // namespace unxpec
