/**
 * @file
 * Monotonic arena allocator for per-trial simulation state. A Core
 * owns one Arena and carves its hot structures out of it — ROB ring
 * and side lists, decode ring, cache tag/metadata arrays, replacement
 * stamps, MSHR files — so one trial's working set is a handful of
 * contiguous chunks ("trial-major" layout) instead of dozens of
 * scattered heap blocks, and steady-state execution performs zero
 * heap allocations after warm-up (DESIGN.md §13 defines the
 * allocation envelope; tests/batch_runner_test.cc asserts it with the
 * sim/alloc_gauge.hh counting hook).
 *
 * The arena is bump-pointer and monotonic: allocate() never frees,
 * deallocation is a no-op, and reset() rewinds every chunk for reuse
 * without returning memory to the host. Containers that reserve their
 * full capacity at construction (the only pattern the adopters use —
 * enforced by scripts/lint_sim.py's steady-alloc rule) therefore never
 * touch the heap again for the arena's lifetime. A container that
 * *did* regrow would leak its old block inside the arena: growth is a
 * bug in an adopter, not supported usage.
 *
 * ArenaAllocator<T> is the std-allocator adapter. With a null arena it
 * falls back to global new/delete, so every arena-aware container also
 * works standalone (unit tests construct bare Caches and ROBs without
 * an arena).
 */

#ifndef UNXPEC_SIM_ARENA_HH
#define UNXPEC_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace unxpec {

/** Chunked monotonic bump allocator. Not thread-safe: one owner. */
class Arena
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * `bytes` of storage aligned to `align` (a power of two). Never
     * returns nullptr; grows by whole chunks when the current one is
     * exhausted. Zero-byte requests return a valid unique pointer.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Rewind every chunk for reuse. No destructors run — the caller
     * must have destroyed (or must never reuse) objects handed out
     * before the reset. Chunk memory is retained, so a reset arena
     * serves the same allocation sequence without touching the heap.
     */
    void reset();

    /** Bytes handed out since construction / the last reset(). */
    std::size_t bytesAllocated() const { return bytesAllocated_; }
    /** Host-memory chunks owned (never shrinks). */
    std::size_t chunkCount() const { return chunks_.size(); }
    /** Total host bytes reserved across all chunks. */
    std::size_t bytesReserved() const { return bytesReserved_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Append a chunk of at least `min_bytes`. */
    Chunk &grow(std::size_t min_bytes);

    std::size_t chunkBytes_;
    std::size_t current_ = 0; //!< index of the chunk being bumped
    std::size_t bytesAllocated_ = 0;
    std::size_t bytesReserved_ = 0;
    std::vector<Chunk> chunks_;
};

/**
 * std-allocator adapter over an Arena. Null-arena instances allocate
 * from the global heap; arena-backed instances bump-allocate and treat
 * deallocate() as a no-op (monotonic).
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (arena_ != nullptr) {
            return static_cast<T *>(
                arena_->allocate(n * sizeof(T), alignof(T)));
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(p);
        // Arena-backed storage is monotonic: freed on Arena::reset()
        // or destruction, never piecemeal.
    }

    Arena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &other) const
    {
        return arena_ == other.arena();
    }

    template <typename U>
    bool
    operator!=(const ArenaAllocator<U> &other) const
    {
        return arena_ != other.arena();
    }

  private:
    Arena *arena_ = nullptr;
};

/** Vector whose storage comes from an Arena (or the heap when null). */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace unxpec

#endif // UNXPEC_SIM_ARENA_HH
