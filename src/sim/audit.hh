/**
 * @file
 * Microarchitectural invariant auditor. Configure with
 * -DUNXPEC_AUDIT=ON to compile the periodic hooks into the Core loop;
 * the checks themselves are always built (tests exercise them in every
 * configuration) and each one cross-checks a PR-2 fast-path structure
 * against a slow full-scan reference model:
 *
 *   ReorderBuffer::auditInvariants   side lists (unissued/outstanding/
 *                                    storeFences/pendingMem/unresolved
 *                                    branches/memCount) recomputed from
 *                                    a full ROB scan and compared
 *                                    element-for-element, so issue and
 *                                    writeback candidate sets are
 *                                    provably identical to the pre-
 *                                    refactor scans.
 *   Cache::auditInvariants           SoA tag array mirrors the line
 *                                    array, every valid line sits in
 *                                    its index set, no set holds a
 *                                    duplicate tag, speculative marking
 *                                    is coherent, LRU stamps form a
 *                                    strict order, and MSHR entries are
 *                                    consistent with fills in flight.
 *   MemoryHierarchy::auditInvariants all three caches.
 *   MemoryHierarchy::auditRollbackComplete
 *                                    CleanupSpec rollback completeness:
 *                                    immediately after a squash no
 *                                    cache line or MSHR entry may still
 *                                    carry a speculative marking from a
 *                                    squashed (younger-than-branch)
 *                                    installer — the undo left nothing
 *                                    behind (paper §II-B/T5).
 *
 * A violation throws AuditError with a cycle-stamped dump of the
 * offending structure. The audited run makes no Rng draws and mutates
 * no simulation state, so an UNXPEC_AUDIT=ON build produces
 * bit-identical experiment results to a default build.
 */

#ifndef UNXPEC_SIM_AUDIT_HH
#define UNXPEC_SIM_AUDIT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/types.hh"

#ifndef UNXPEC_AUDIT_ENABLED
#define UNXPEC_AUDIT_ENABLED 0
#endif

namespace unxpec {

class Cache;

/** True when -DUNXPEC_AUDIT=ON compiled the Core-loop audit hooks in. */
inline constexpr bool kAuditEnabled = UNXPEC_AUDIT_ENABLED != 0;

/** A microarchitectural invariant was violated. */
class AuditError : public std::runtime_error
{
  public:
    explicit AuditError(const std::string &what_arg)
        : std::runtime_error(what_arg) {}
};

namespace audit {

/**
 * Cycles between periodic whole-machine audits in the Core run loop
 * (UNXPEC_AUDIT builds only). Set once before running; the post-squash
 * rollback audit always runs regardless of the period.
 */
Cycle period();
void setPeriod(Cycle cycles);

/** Throw AuditError with a `audit[component] @cycle N:` prefix. */
[[noreturn]] void fail(const char *component, Cycle now,
                       const std::string &message);

/** "name: [a, b, ...]" for failure dumps (seq lists, tags). */
std::string dumpList(const char *name,
                     const std::vector<std::uint64_t> &values);

} // namespace audit

/**
 * Snapshot of a cache's resident tag set, for rollback-completeness
 * checks around a controlled speculation episode: capture before the
 * transient accesses, then verifyRestored after the squash to prove
 * the undo returned the tag state to the checkpoint (audit_test.cc).
 */
class CacheCheckpoint
{
  public:
    static CacheCheckpoint capture(const Cache &cache);

    /** Throws AuditError when the cache's resident set differs. */
    void verifyRestored(const Cache &cache, Cycle now) const;

  private:
    std::vector<Addr> resident_;
};

} // namespace unxpec

#endif // UNXPEC_SIM_AUDIT_HH
