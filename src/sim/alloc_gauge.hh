/**
 * @file
 * Heap-allocation counting hook for zero-alloc steady-state tests.
 * The companion library (alloc_gauge.cc, built as `unxpec_alloc_gauge`
 * and linked ONLY into tests that count allocations) replaces the
 * global operator new/delete family with thin wrappers that bump
 * thread-local counters around std::malloc/std::free. Production
 * binaries and benchmarks never link it, so the hook cannot perturb
 * measured throughput.
 *
 * Usage (tests/batch_runner_test.cc):
 *
 *   const AllocStats before = allocGaugeRead();
 *   ... steady-state window under test ...
 *   const AllocStats after = allocGaugeRead();
 *   EXPECT_EQ(after.allocs - before.allocs, 0u);
 *
 * Counters are thread-local: a worker thread observes only its own
 * allocations, so a gauged trial body is immune to other workers.
 */

#ifndef UNXPEC_SIM_ALLOC_GAUGE_HH
#define UNXPEC_SIM_ALLOC_GAUGE_HH

#include <cstdint>

namespace unxpec {

/** Snapshot of this thread's allocation counters. */
struct AllocStats
{
    std::uint64_t allocs = 0; //!< operator new calls (all variants)
    std::uint64_t frees = 0;  //!< operator delete calls (all variants)
    std::uint64_t bytes = 0;  //!< total bytes requested from new
};

/** Current thread's counters (monotonic since thread start). */
AllocStats allocGaugeRead();

} // namespace unxpec

#endif // UNXPEC_SIM_ALLOC_GAUGE_HH
