/**
 * @file
 * Synthetic stand-ins for the SPEC CPU 2017 rate suite used by the
 * paper's Figure 12 (the real benchmarks are license-protected and,
 * as in the paper's own artifact, not distributable). Each profile
 * pins the two quantities the constant-time-rollback overhead actually
 * depends on — squash frequency (hard-to-predict branch density) and
 * memory behaviour (working-set size, load/store density) — so the
 * overhead *shape* across the suite is preserved even though the
 * computation itself is synthetic.
 */

#ifndef UNXPEC_WORKLOAD_SYNTH_SPEC_HH
#define UNXPEC_WORKLOAD_SYNTH_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/program.hh"

namespace unxpec {

/** Instruction-mix profile of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    /** Data-dependent (hence ~50 % mispredicted) branches per 1000
     *  emitted instructions. */
    unsigned ddBranchesPerK = 10;
    /** Load elements per 1000 instructions. */
    unsigned loadsPerK = 150;
    /** Store elements per 1000 instructions. */
    unsigned storesPerK = 50;
    /** Working-set size touched by the memory stream. */
    unsigned workingSetKB = 256;
    /** Fraction of ALU filler using the long-latency multiplier. */
    double mulFraction = 0.1;
    /**
     * Fraction of loads hitting a small hot region (locality). Keeps
     * the CleanupSpec property that >95 % of transient loads hit the
     * cache and need no rollback (paper §VI-E).
     */
    double hotFraction = 0.85;
};

/** Generators for the SPEC-2017-like suite. */
class SynthSpec
{
  public:
    /** The twelve profiles mirroring the paper's Figure 12 suite. */
    static std::vector<WorkloadProfile> suite();

    /** Profile by benchmark name; fatal on unknown names. */
    static WorkloadProfile profile(const std::string &name);

    /**
     * Generate a looped program realizing the profile. The loop body
     * holds roughly `body_instructions` instructions; the program
     * loops `iterations` times (run with RunOptions::maxInstructions
     * to cap work instead, as the Fig. 12 harness does).
     */
    static Program generate(const WorkloadProfile &profile,
                            std::uint64_t seed,
                            unsigned body_instructions = 1000,
                            std::uint64_t iterations = 1u << 30);
};

} // namespace unxpec

#endif // UNXPEC_WORKLOAD_SYNTH_SPEC_HH
