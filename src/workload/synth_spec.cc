#include "workload/synth_spec.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

namespace {

// Register plan for generated workloads.
constexpr RegIndex rBase = 1;    // working-set base
constexpr RegIndex rLcg = 2;     // pseudo-random stream
constexpr RegIndex rMask = 3;    // working-set mask
constexpr RegIndex rIter = 4;    // loop counter
constexpr RegIndex rIterMax = 5;
constexpr RegIndex rZero = 6;
constexpr RegIndex rLcgMul = 7;
constexpr RegIndex rAddr = 8;
constexpr RegIndex rVal = 9;
constexpr RegIndex rBit = 10;
constexpr RegIndex rSink = 11;
constexpr RegIndex rAcc0 = 12;   // ALU filler accumulators
constexpr RegIndex rAcc1 = 13;
constexpr RegIndex rAcc2 = 14;
constexpr RegIndex rMaskHot = 15; // hot-region address mask

enum class Element { Load, Store, DdBranch, Alu };

} // namespace

std::vector<WorkloadProfile>
SynthSpec::suite()
{
    // Branch-MPKI and memory-footprint figures loosely follow the
    // published characterization of SPECrate 2017 (a data-dependent
    // branch mispredicts ~50 %, so ddBranchesPerK ~ 2x target MPKI).
    return {
        {"perlbench_r",  9, 180, 80,   256, 0.05},
        {"gcc_r",       13, 200, 90,   512, 0.05},
        {"mcf_r",       28, 280, 60,  8192, 0.02},
        {"omnetpp_r",   20, 240, 90,  4096, 0.05},
        {"xalancbmk_r", 12, 230, 70,  1024, 0.05},
        {"x264_r",       4, 160, 80,   128, 0.20},
        {"deepsjeng_r", 23, 170, 60,   512, 0.10},
        {"leela_r",     25, 160, 50,   256, 0.10},
        {"exchange2_r", 16,  90, 40,    64, 0.05},
        {"xz_r",        20, 210, 70,  2048, 0.05},
        {"imagick_r",    2, 150, 70,   128, 0.30},
        {"lbm_r",        1, 260, 130, 8192, 0.20},
    };
}

WorkloadProfile
SynthSpec::profile(const std::string &name)
{
    for (const auto &candidate : suite()) {
        if (candidate.name == name)
            return candidate;
    }
    fatal("SynthSpec::profile: unknown benchmark '", name, "'");
}

Program
SynthSpec::generate(const WorkloadProfile &profile, std::uint64_t seed,
                    unsigned body_instructions, std::uint64_t iterations)
{
    Rng rng(seed ^ 0x5eedf00dull);
    ProgramBuilder b;

    const std::size_t ws_bytes =
        static_cast<std::size_t>(profile.workingSetKB) * 1024;
    const Addr ws_base = b.alloc(ws_bytes, 4096);
    // Address mask: power-of-two working set, 8-byte aligned accesses.
    std::size_t mask = 1;
    while (mask * 2 <= ws_bytes)
        mask *= 2;
    const std::uint64_t addr_mask = (mask - 1) & ~7ull;
    // Hot region: 16 KB (or the whole set if smaller) — the locality
    // that keeps most (including wrong-path) loads cache-resident.
    const std::uint64_t hot_mask =
        (std::min<std::size_t>(mask, 16 * 1024) - 1) & ~7ull;

    b.li(rBase, static_cast<std::int64_t>(ws_base));
    b.li(rLcg, static_cast<std::int64_t>(seed | 1));
    b.li(rMask, static_cast<std::int64_t>(addr_mask));
    b.li(rMaskHot, static_cast<std::int64_t>(hot_mask));
    b.li(rIter, 0);
    b.li(rIterMax, static_cast<std::int64_t>(iterations));
    b.li(rZero, 0);
    b.li(rLcgMul, 6364136223846793005ll);
    b.li(rSink, 0);
    b.li(rAcc0, 1);
    b.li(rAcc1, 2);
    b.li(rAcc2, 3);

    // Build the element schedule for one body.
    // Instruction cost per element: load 5, store 5, ddBranch 4, alu 1.
    std::vector<Element> schedule;
    unsigned budget = body_instructions;
    auto push_elements = [&](Element e, unsigned per_k, unsigned cost) {
        const unsigned count =
            static_cast<unsigned>(static_cast<std::uint64_t>(per_k) *
                                  body_instructions / 1000);
        for (unsigned i = 0; i < count && budget >= cost; ++i) {
            schedule.push_back(e);
            budget -= cost;
        }
    };
    push_elements(Element::Load, profile.loadsPerK / 5, 5);
    push_elements(Element::Store, profile.storesPerK / 5, 5);
    push_elements(Element::DdBranch, profile.ddBranchesPerK, 4);
    while (budget > 0) {
        schedule.push_back(Element::Alu);
        --budget;
    }
    // Shuffle deterministically.
    for (std::size_t i = schedule.size(); i > 1; --i)
        std::swap(schedule[i - 1], schedule[rng.range(i)]);

    const int loop_top = b.label();
    b.bind(loop_top);

    auto advance_lcg = [&b]() {
        b.mul(rLcg, rLcg, rLcgMul);
        b.addi(rLcg, rLcg, 1442695040888963407ll);
    };
    auto random_addr = [&](bool hot) {
        advance_lcg();
        b.and_(rAddr, rLcg, hot ? rMaskHot : rMask);
        b.add(rAddr, rAddr, rBase);
    };

    for (const Element element : schedule) {
        switch (element) {
          case Element::Load:
            random_addr(rng.chance(profile.hotFraction));
            b.load(rVal, rAddr);
            break;
          case Element::Store:
            random_addr(rng.chance(profile.hotFraction));
            b.store(rAddr, 0, rAcc0);
            break;
          case Element::DdBranch: {
            // Direction keyed to a pseudo-random bit: ~50 % taken, so
            // the bimodal predictor stays near chance — the squash
            // source Fig. 12's constant-time overhead scales with.
            // Half of these branches additionally fold in the last
            // loaded value: they resolve only after the load returns,
            // so the instructions behind them execute speculatively
            // for the whole miss latency (the realistic case that
            // Invisible schemes pay for at validation time).
            b.shr(rBit, rLcg, 33);
            if (rng.chance(0.5))
                b.xor_(rBit, rBit, rVal);
            const int skip = b.label();
            b.and_(rBit, rBit, rAcc0); // rAcc0 == 1; keep the low bit
            b.beq(rBit, rZero, skip);
            b.addi(rSink, rSink, 1);
            b.bind(skip);
            break;
          }
          case Element::Alu:
            if (rng.uniform() < profile.mulFraction)
                b.mul(rAcc1, rAcc1, rAcc0);
            else
                b.add(rAcc2, rAcc2, rAcc1);
            break;
        }
    }

    b.addi(rIter, rIter, 1);
    b.blt(rIter, rIterMax, loop_top);
    b.halt();
    return b.build();
}

} // namespace unxpec
