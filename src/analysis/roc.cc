#include "analysis/roc.hh"

#include <algorithm>

#include "sim/log.hh"

namespace unxpec {

RocCurve
RocCurve::of(const std::vector<double> &zeros,
             const std::vector<double> &ones)
{
    if (zeros.empty() || ones.empty())
        fatal("RocCurve::of: need samples of both classes");

    std::vector<double> sorted_zeros = zeros;
    std::vector<double> sorted_ones = ones;
    std::sort(sorted_zeros.begin(), sorted_zeros.end());
    std::sort(sorted_ones.begin(), sorted_ones.end());

    // Candidate thresholds: every distinct observed value, plus
    // sentinels beyond both ends.
    std::vector<double> thresholds;
    thresholds.reserve(zeros.size() + ones.size() + 2);
    thresholds.push_back(std::max(sorted_zeros.back(),
                                  sorted_ones.back()) + 1.0);
    thresholds.insert(thresholds.end(), sorted_zeros.begin(),
                      sorted_zeros.end());
    thresholds.insert(thresholds.end(), sorted_ones.begin(),
                      sorted_ones.end());
    thresholds.push_back(std::min(sorted_zeros.front(),
                                  sorted_ones.front()) - 1.0);
    std::sort(thresholds.begin(), thresholds.end(),
              std::greater<double>());
    thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                     thresholds.end());

    RocCurve curve;
    curve.points_.reserve(thresholds.size());
    for (const double threshold : thresholds) {
        RocPoint point;
        point.threshold = threshold;
        const auto one_hits = sorted_ones.end() -
            std::upper_bound(sorted_ones.begin(), sorted_ones.end(),
                             threshold);
        const auto zero_hits = sorted_zeros.end() -
            std::upper_bound(sorted_zeros.begin(), sorted_zeros.end(),
                             threshold);
        point.tpr = static_cast<double>(one_hits) / sorted_ones.size();
        point.fpr = static_cast<double>(zero_hits) / sorted_zeros.size();
        curve.points_.push_back(point);
    }
    return curve;
}

double
RocCurve::auc() const
{
    double area = 0.0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const double dx = points_[i].fpr - points_[i - 1].fpr;
        const double mean_y = (points_[i].tpr + points_[i - 1].tpr) / 2;
        area += dx * mean_y;
    }
    return area;
}

RocPoint
RocCurve::best() const
{
    RocPoint best_point;
    double best_j = -1.0;
    for (const RocPoint &point : points_) {
        const double j = point.tpr - point.fpr;
        if (j > best_j) {
            best_j = j;
            best_point = point;
        }
    }
    return best_point;
}

} // namespace unxpec
