/**
 * @file
 * Descriptive statistics over sample vectors.
 */

#ifndef UNXPEC_ANALYSIS_SUMMARY_HH
#define UNXPEC_ANALYSIS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace unxpec {

/** Summary statistics of a sample vector. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;

    /** Compute all fields for `samples`. */
    static Summary of(const std::vector<double> &samples);

    /** Linear-interpolated percentile (q in [0, 1]) of `samples`. */
    static double percentile(std::vector<double> samples, double q);
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_SUMMARY_HH
