/**
 * @file
 * Descriptive statistics over sample vectors.
 */

#ifndef UNXPEC_ANALYSIS_SUMMARY_HH
#define UNXPEC_ANALYSIS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace unxpec {

/**
 * Summary statistics of a sample vector. Non-finite samples (NaN/Inf
 * — e.g. a metric computed from a censored or degenerate trial) are
 * skipped rather than poisoning every moment: the statistics cover the
 * finite subset, `count` is the number of finite samples, and
 * `nonfinite` reports how many were skipped. A vector with samples but
 * no finite ones yields NaN statistics (count 0), which the JSON/CSV
 * emitters render as null / an empty cell.
 */
struct Summary
{
    std::size_t count = 0;      //!< finite samples summarized
    std::size_t nonfinite = 0;  //!< NaN/Inf samples skipped
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;

    /** Compute all fields for `samples`. */
    static Summary of(const std::vector<double> &samples);

    /**
     * Linear-interpolated percentile (q in [0, 1]) of the finite
     * subset of `samples`; NaN when no finite sample exists but the
     * input is non-empty, 0.0 for an empty input.
     */
    static double percentile(std::vector<double> samples, double q);
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_SUMMARY_HH
