#include "analysis/perf_report.hh"

#include <iomanip>

#include "cpu/core.hh"

namespace unxpec {

namespace {

std::uint64_t
counterValue(const StatGroup &group, const char *name)
{
    const Counter *counter = group.findCounter(name);
    return counter == nullptr ? 0 : counter->value();
}

} // namespace

PerfReport
PerfReport::of(Core &core, const RunResult &result)
{
    PerfReport report;
    report.cycles = result.cycles;
    report.instructions = result.instructions;
    if (result.instructions > 0) {
        report.cpi = static_cast<double>(result.cycles) /
                     result.instructions;
        report.ipc = 1.0 / report.cpi;
        report.branchMpki =
            1000.0 * counterValue(core.stats(), "mispredicts") /
            result.instructions;
    }

    const auto &l1 = core.hierarchy().l1d().stats();
    const std::uint64_t l1_hits = counterValue(l1, "hits");
    const std::uint64_t l1_misses = counterValue(l1, "misses");
    if (l1_hits + l1_misses > 0) {
        report.l1dMissRatePct =
            100.0 * l1_misses / static_cast<double>(l1_hits + l1_misses);
    }
    const auto &l2 = core.hierarchy().l2().stats();
    const std::uint64_t l2_hits = counterValue(l2, "hits");
    const std::uint64_t l2_misses = counterValue(l2, "misses");
    if (l2_hits + l2_misses > 0) {
        report.l2MissRatePct =
            100.0 * l2_misses / static_cast<double>(l2_hits + l2_misses);
    }

    report.squashes = counterValue(core.cleanup().stats(), "squashes");
    report.cleanupCycles = counterValue(core.cleanup().stats(), "cycles");
    if (result.cycles > 0) {
        report.cleanupCyclePct =
            100.0 * report.cleanupCycles /
            static_cast<double>(result.cycles);
    }
    return report;
}

void
PerfReport::print(std::ostream &os) const
{
    os << std::fixed << std::setprecision(2);
    os << "  cycles          " << cycles << "\n";
    os << "  instructions    " << instructions << "\n";
    os << "  CPI / IPC       " << cpi << " / " << ipc << "\n";
    os << "  branch MPKI     " << branchMpki << "\n";
    os << "  L1D miss rate   " << l1dMissRatePct << " %\n";
    os << "  L2  miss rate   " << l2MissRatePct << " %\n";
    os << "  squashes        " << squashes << "\n";
    os << "  cleanup cycles  " << cleanupCycles << " ("
       << cleanupCyclePct << " % of cycles)\n";
    os.unsetf(std::ios::fixed);
}

} // namespace unxpec
