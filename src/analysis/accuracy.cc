#include "analysis/accuracy.hh"

#include "sim/log.hh"

namespace unxpec {

double
BitChannelReport::accuracy() const
{
    const std::uint64_t n = total();
    return n == 0 ? 0.0 : static_cast<double>(true0 + true1) / n;
}

double
BitChannelReport::zeroErrorRate() const
{
    const std::uint64_t n = true0 + false1;
    return n == 0 ? 0.0 : static_cast<double>(false1) / n;
}

double
BitChannelReport::oneErrorRate() const
{
    const std::uint64_t n = true1 + false0;
    return n == 0 ? 0.0 : static_cast<double>(false0) / n;
}

BitChannelReport
BitChannelReport::of(const std::vector<int> &guesses,
                     const std::vector<int> &secret)
{
    if (guesses.size() != secret.size())
        fatal("BitChannelReport::of: size mismatch");
    BitChannelReport report;
    for (std::size_t i = 0; i < guesses.size(); ++i) {
        if (secret[i] == 0) {
            if (guesses[i] == 0)
                ++report.true0;
            else
                ++report.false1;
        } else {
            if (guesses[i] == 1)
                ++report.true1;
            else
                ++report.false0;
        }
    }
    return report;
}

double
LeakageRate::samplesPerSecond(double cycles_per_sample, double clock_ghz)
{
    if (cycles_per_sample <= 0.0)
        return 0.0;
    return clock_ghz * 1e9 / cycles_per_sample;
}

double
LeakageRate::bitsPerSecond(double cycles_per_sample, double clock_ghz,
                           unsigned samples_per_bit)
{
    if (samples_per_bit == 0)
        return 0.0;
    return samplesPerSecond(cycles_per_sample, clock_ghz) / samples_per_bit;
}

} // namespace unxpec
