/**
 * @file
 * Bit-channel quality metrics: confusion matrix, error rates, and the
 * leakage-rate arithmetic of §VI-B.
 */

#ifndef UNXPEC_ANALYSIS_ACCURACY_HH
#define UNXPEC_ANALYSIS_ACCURACY_HH

#include <cstdint>
#include <vector>

namespace unxpec {

/** Confusion matrix of a binary channel. */
struct BitChannelReport
{
    std::uint64_t true0 = 0;  //!< secret 0 guessed 0
    std::uint64_t false1 = 0; //!< secret 0 guessed 1
    std::uint64_t true1 = 0;  //!< secret 1 guessed 1
    std::uint64_t false0 = 0; //!< secret 1 guessed 0

    std::uint64_t total() const { return true0 + false1 + true1 + false0; }
    double accuracy() const;
    double errorRate() const { return 1.0 - accuracy(); }
    /** Per-class error rates. */
    double zeroErrorRate() const;
    double oneErrorRate() const;

    static BitChannelReport of(const std::vector<int> &guesses,
                               const std::vector<int> &secret);
};

/** Leakage-rate arithmetic (paper §VI-B). */
struct LeakageRate
{
    /** Samples per second at `clock_ghz` given cycles per sample. */
    static double samplesPerSecond(double cycles_per_sample,
                                   double clock_ghz);

    /** Bits per second with `samples_per_bit` samples per secret bit. */
    static double bitsPerSecond(double cycles_per_sample, double clock_ghz,
                                unsigned samples_per_bit = 1);
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_ACCURACY_HH
