/**
 * @file
 * Key-recovery analysis: turns the per-trial latencies a victim attack
 * produces into ranked key guesses.
 *
 * Two recovery shapes, matching the two victim programs (src/victim/):
 *
 *  - AES T-table bytes: every known plaintext contributes one reload
 *    latency per table entry (the tables are laid out one entry per
 *    cache line, so entry index == line index). A candidate key byte k
 *    predicts which entry the victim's first-round lookup touched
 *    (pt ^ k); its score sums the measured latency of that entry over
 *    every plaintext, so the true byte — whose predicted entries are
 *    the warm ones — scores lowest. rankKeyByte() returns all 256
 *    candidates best-first with a confidence margin.
 *
 *  - RSA square-and-multiply bits: one scalar statistic per exponent
 *    bit (a reload latency or a contention-probe time). splitBits()
 *    two-clusters the statistics at the largest gap and maps the high
 *    or low cluster to bit 1, with a gap threshold below which the
 *    channel is declared closed (no recovery) instead of amplifying
 *    noise into confident-looking bits.
 *
 * Everything here is deterministic: ties break on candidate value, so
 * identical latencies give identical rankings on any thread count or
 * batch width.
 */

#ifndef UNXPEC_ANALYSIS_KEY_RECOVERY_HH
#define UNXPEC_ANALYSIS_KEY_RECOVERY_HH

#include <cstdint>
#include <vector>

namespace unxpec {

/** Probe evidence for one key byte under one known plaintext byte. */
struct ProbeEvidence
{
    std::uint8_t plaintext = 0;
    /** Reload latency per table entry (one entry per cache line). */
    std::vector<double> entryLatencies;
};

/** Ranked candidates for one key byte, best (lowest score) first. */
struct ByteRanking
{
    std::vector<std::uint8_t> ranked; //!< all candidates, best first
    std::vector<double> scores;       //!< aggregate score, ascending
    double margin = 0.0;              //!< scores[1] - scores[0]
    bool confident = false;           //!< margin >= the caller's floor

    std::uint8_t best() const { return ranked.empty() ? 0 : ranked[0]; }
};

/**
 * Rank all 256 key-byte candidates from `evidence` (one entry per
 * known plaintext; every entryLatencies vector must have the same
 * size, a power of two covering the table). `min_margin` is the
 * best-vs-runner-up score separation below which the ranking is
 * marked unconfident (closed channel). fatal() on empty or
 * mismatched evidence.
 */
ByteRanking rankKeyByte(const std::vector<ProbeEvidence> &evidence,
                        double min_margin);

/** Two-cluster split of per-bit statistics. */
struct BitSplit
{
    std::vector<int> bits;    //!< guessed bit per input value
    double threshold = 0.0;   //!< midpoint of the widest gap
    double gap = 0.0;         //!< width of that gap
    bool confident = false;   //!< gap >= the caller's floor
};

/**
 * Split `values` into two clusters at the widest gap in sorted order
 * and guess one bit per value: with `one_is_high`, values above the
 * threshold decode as 1 (contention receiver — the burst delays the
 * probe), otherwise values below decode as 1 (cache receiver — the
 * transient install makes the reload fast). When the widest gap is
 * under `min_gap` the channel is treated as closed: every bit decodes
 * as 0 and `confident` is false.
 */
BitSplit splitBits(const std::vector<double> &values, bool one_is_high,
                   double min_gap);

/**
 * End-to-end recovery rate: `correct_bits` secret bits recovered over
 * `total_cycles` simulated cycles at `clock_ghz`. 0 when no cycles
 * were spent.
 */
double recoveredBitsPerSecond(double correct_bits, double total_cycles,
                              double clock_ghz);

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_KEY_RECOVERY_HH
