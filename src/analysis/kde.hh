/**
 * @file
 * Gaussian kernel density estimation, matching the paper's use of KDE
 * to render the latency distributions of Figures 7 and 8.
 */

#ifndef UNXPEC_ANALYSIS_KDE_HH
#define UNXPEC_ANALYSIS_KDE_HH

#include <vector>

namespace unxpec {

/** A density estimate sampled on a regular grid. */
struct DensityCurve
{
    std::vector<double> x;
    std::vector<double> density;
};

/** Gaussian KDE with Silverman's rule-of-thumb bandwidth. */
class Kde
{
  public:
    /** Silverman bandwidth for the samples (>= minimum of 0.5). */
    static double silvermanBandwidth(const std::vector<double> &samples);

    /** Density at a single point. */
    static double evaluate(const std::vector<double> &samples,
                           double bandwidth, double x);

    /** Density curve over [lo, hi] with `points` grid points. */
    static DensityCurve curve(const std::vector<double> &samples,
                              double lo, double hi, unsigned points,
                              double bandwidth = 0.0);
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_KDE_HH
