/**
 * @file
 * Machine-readable experiment results. Every harness-driven bench
 * aggregates its trials into an ExperimentResult — a list of rows, one
 * per experiment point, each carrying ordered parameters and metric
 * sample vectors with summary statistics — and emits it as JSON
 * (schema "unxpec-experiment-v2") and/or CSV alongside the existing
 * TextTable output, so every figure produces an artifact that later
 * runs and CI can diff and track.
 *
 * Schema v2 (fault-tolerant campaigns) extends v1 with trial
 * accounting: a top-level "incomplete" flag (true when a sharded
 * campaign gave up on some trials), per-row "trials" /
 * "censored_trials" / "retried_trials" / "missing_trials" counts, and
 * a per-metric "nonfinite" count of NaN/Inf samples the summary
 * statistics skipped. v1 consumers that index rows[].metrics by name
 * keep working unchanged — v2 only adds fields.
 */

#ifndef UNXPEC_ANALYSIS_RESULT_SINK_HH
#define UNXPEC_ANALYSIS_RESULT_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/summary.hh"

namespace unxpec {

/** One metric of one experiment point: raw per-trial values + stats. */
struct MetricSeries
{
    std::vector<double> values;
    Summary summary;

    static MetricSeries of(std::vector<double> values);
};

/** One experiment point (one row of the figure being reproduced). */
struct ResultRow
{
    std::string label;
    /** Ordered sweep coordinates, e.g. {"loads", 3}, {"evset", 1}. */
    std::vector<std::pair<std::string, double>> params;
    /** Ordered named metrics. */
    std::vector<std::pair<std::string, MetricSeries>> metrics;

    // Trial accounting (schema v2): how many of the row's planned
    // trials actually contributed to the metrics above.
    unsigned trials = 0;         //!< completed and contributing
    unsigned censoredTrials = 0; //!< timed out / truncated, excluded
    unsigned retriedTrials = 0;  //!< contributing trials that needed a retry
    unsigned missingTrials = 0;  //!< never completed (crashed shard)

    /** Metric by name; nullptr when absent. */
    const MetricSeries *metric(const std::string &name) const;
    /** Mean of a metric; fatal() when the metric is absent. */
    double mean(const std::string &name) const;
    /** All raw values of a metric; fatal() when absent. */
    const std::vector<double> &values(const std::string &name) const;
    /** Parameter value; `fallback` when absent. */
    double param(const std::string &name, double fallback = 0.0) const;
};

/** A full experiment: provenance header plus one row per point. */
struct ExperimentResult
{
    std::string experiment;     //!< e.g. "fig03_timing_difference"
    std::string description;
    std::uint64_t masterSeed = 1;
    unsigned reps = 1;
    unsigned threads = 1;
    std::string mode;           //!< defense registry key (or "mixed")
    /**
     * True when the campaign gave up on some trials (crashed shards
     * past the retry budget): the rows are partial results, flagged
     * rather than silently dropped.
     */
    bool incomplete = false;
    std::vector<ResultRow> rows;

    /** Row by index; fatal() when out of range. */
    const ResultRow &row(std::size_t index) const;
    /** First row whose params match all of `coords`; fatal() if none. */
    const ResultRow &
    rowAt(const std::vector<std::pair<std::string, double>> &coords) const;
};

/**
 * Emit the result as JSON. `includeValues` controls whether raw
 * per-trial vectors accompany the summaries (they dominate file size
 * for sample-heavy experiments). Non-finite numbers become null.
 * Number formatting is locale-independent (classic "C" locale)
 * regardless of the global locale.
 */
void writeJson(std::ostream &os, const ExperimentResult &result,
               bool includeValues = true);

/**
 * Emit one line per row: params and trial counts, then
 * mean/stddev/count per metric. Non-finite numbers become empty cells;
 * formatting is locale-independent like writeJson.
 */
void writeCsv(std::ostream &os, const ExperimentResult &result);

/**
 * Write the artifacts requested by the caller-supplied paths (empty
 * path = skip) and report each written file on `status`. Returns false
 * if any file could not be opened.
 */
bool emitArtifacts(const ExperimentResult &result,
                   const std::string &json_path,
                   const std::string &csv_path, std::ostream &status);

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_RESULT_SINK_HH
