/**
 * @file
 * Derived performance metrics of a run: CPI/IPC, branch MPKI, cache
 * hit rates, and cleanup activity. The gem5-style raw counters live in
 * the respective StatGroups; this distills them the way architecture
 * papers report them.
 */

#ifndef UNXPEC_ANALYSIS_PERF_REPORT_HH
#define UNXPEC_ANALYSIS_PERF_REPORT_HH

#include <cstdint>
#include <ostream>

namespace unxpec {

class Core;
struct RunResult;

/** One run's headline performance numbers. */
struct PerfReport
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double cpi = 0.0;
    double ipc = 0.0;
    double branchMpki = 0.0;       //!< mispredicts per kilo-instruction
    double l1dMissRatePct = 0.0;
    double l2MissRatePct = 0.0;
    std::uint64_t squashes = 0;
    std::uint64_t cleanupCycles = 0;
    double cleanupCyclePct = 0.0;  //!< share of cycles spent in rollback

    /**
     * Distill a report from a core's counters after a run. Counters
     * accumulate across runs on the same core; for per-run numbers use
     * a fresh core or reset the stats first.
     */
    static PerfReport of(Core &core, const RunResult &result);

    void print(std::ostream &os) const;
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_PERF_REPORT_HH
