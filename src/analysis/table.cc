#include "analysis/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "sim/log.hh"

namespace unxpec {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TextTable::addRow: column-count mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
        }
        os << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += "  " + std::string(widths[c], '-');
    os << rule << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
printDensity(std::ostream &os, const DensityCurve &a,
             const std::string &label_a, const DensityCurve &b,
             const std::string &label_b, unsigned height)
{
    if (a.x.empty() || a.x.size() != b.x.size()) {
        os << "(density curves unavailable)\n";
        return;
    }
    double peak = 0.0;
    for (const double d : a.density)
        peak = std::max(peak, d);
    for (const double d : b.density)
        peak = std::max(peak, d);
    if (peak <= 0.0)
        peak = 1.0;

    const std::size_t cols = a.x.size();
    for (unsigned row = 0; row < height; ++row) {
        const double level =
            peak * (height - row - 0.5) / static_cast<double>(height);
        std::string line;
        line.reserve(cols);
        for (std::size_t c = 0; c < cols; ++c) {
            const bool in_a = a.density[c] >= level;
            const bool in_b = b.density[c] >= level;
            if (in_a && in_b)
                line += '#';
            else if (in_a)
                line += 'o';
            else if (in_b)
                line += '*';
            else
                line += ' ';
        }
        os << "  |" << line << "\n";
    }
    os << "  +" << std::string(cols, '-') << "\n";
    os << "   x: [" << a.x.front() << ", " << a.x.back() << "] cycles;  o="
       << label_a << "  *=" << label_b << "  #=overlap\n";
}

void
printSeries(std::ostream &os, const std::string &title,
            const std::vector<double> &xs, const std::vector<double> &ys)
{
    os << title << "\n";
    for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i)
        os << "  " << xs[i] << "\t" << ys[i] << "\n";
}

} // namespace unxpec
