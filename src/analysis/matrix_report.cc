#include "analysis/matrix_report.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "sim/log.hh"

namespace unxpec {

namespace {

/** Locale-pinned round-trip rendering (see result_sink.cc). */
std::string
numToString(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.precision(std::numeric_limits<double>::max_digits10);
    oss << value;
    return oss.str();
}

/** Fixed-precision rendering for the human-facing markdown table. */
std::string
numFixed(double value, int digits)
{
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value;
    return oss.str();
}

void
appendUnique(std::vector<std::string> &names, const std::string &name)
{
    if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
}

/** The substring between `key` and the following ',' or '}'. */
std::string
fieldText(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        fatal("matrix JSON: missing field '", key, "' in: ", line);
    std::size_t begin = at + needle.size();
    while (begin < line.size() && line[begin] == ' ')
        ++begin;
    std::size_t end = begin;
    bool quoted = end < line.size() && line[end] == '"';
    if (quoted) {
        end = line.find('"', begin + 1);
        if (end == std::string::npos)
            fatal("matrix JSON: unterminated string in: ", line);
        return line.substr(begin + 1, end - begin - 1);
    }
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    return line.substr(begin, end - begin);
}

double
fieldNum(const std::string &line, const std::string &key)
{
    const std::string text = fieldText(line, key);
    if (text == "null")
        return std::numeric_limits<double>::quiet_NaN();
    std::istringstream iss(text);
    iss.imbue(std::locale::classic());
    double value = 0.0;
    if (!(iss >> value))
        fatal("matrix JSON: bad number '", text, "' for '", key, "'");
    return value;
}

/** A row statistic that tolerates a censored (metric-less) row. */
double
meanOrNaN(const ResultRow &row, const std::string &name)
{
    return row.metric(name) != nullptr
        ? row.mean(name)
        : std::numeric_limits<double>::quiet_NaN();
}

/** Fixed-precision cell, or "-" when the statistic is missing. */
std::string
numFixedOrDash(double value, int digits, const char *suffix = "")
{
    if (!std::isfinite(value))
        return "-";
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value << suffix;
    return oss.str();
}

} // namespace

bool
MatrixCell::incomplete() const
{
    return !std::isfinite(auc) || !std::isfinite(deltaCycles) ||
           !std::isfinite(overheadPct) ||
           !std::isfinite(cyclesPerSample);
}

const MatrixCell *
MatrixReport::cell(const std::string &defense,
                   const std::string &receiver) const
{
    for (const MatrixCell &c : cells) {
        if (c.defense == defense && c.receiver == receiver)
            return &c;
    }
    return nullptr;
}

std::vector<std::string>
MatrixReport::defenses() const
{
    std::vector<std::string> names;
    for (const MatrixCell &c : cells)
        appendUnique(names, c.defense);
    return names;
}

std::vector<std::string>
MatrixReport::receivers() const
{
    std::vector<std::string> names;
    for (const MatrixCell &c : cells)
        appendUnique(names, c.receiver);
    return names;
}

unsigned
MatrixReport::incompleteCells() const
{
    unsigned count = 0;
    for (const MatrixCell &c : cells)
        count += c.incomplete();
    return count;
}

MatrixReport
MatrixReport::fromResult(const ExperimentResult &result)
{
    MatrixReport report;
    report.experiment = result.experiment;
    report.masterSeed = result.masterSeed;
    report.reps = result.reps;

    // Pass 1: the unsafe baselines' workload cycles, per receiver. A
    // censored or absent baseline poisons the column's overhead (NaN),
    // never the other statistics.
    auto unsafeCycles = [&result](const std::string &receiver) {
        for (const ResultRow &row : result.rows) {
            if (row.label == "unsafe/" + receiver &&
                row.metric("workload_cycles") != nullptr) {
                return row.mean("workload_cycles");
            }
        }
        return std::numeric_limits<double>::quiet_NaN();
    };

    for (const ResultRow &row : result.rows) {
        const std::size_t slash = row.label.find('/');
        if (slash == std::string::npos)
            continue;
        MatrixCell cell;
        cell.defense = row.label.substr(0, slash);
        cell.receiver = row.label.substr(slash + 1);
        // A fully-censored row reports every trial but no metrics:
        // keep the cell (the matrix shape is part of the artifact) and
        // let the statistics read as missing instead of fatal'ing.
        cell.auc = meanOrNaN(row, "auc");
        cell.deltaCycles = meanOrNaN(row, "delta_cycles");
        cell.cyclesPerSample = meanOrNaN(row, "cycles_per_sample");
        cell.recoveredBitsPerSec =
            meanOrNaN(row, "recovered_bits_per_sec");
        cell.trials = row.trials;
        const double base = unsafeCycles(cell.receiver);
        const double cycles = meanOrNaN(row, "workload_cycles");
        cell.overheadPct = base > 0.0 && std::isfinite(cycles)
            ? (cycles / base - 1.0) * 100.0
            : std::numeric_limits<double>::quiet_NaN();
        report.cells.push_back(std::move(cell));
    }
    return report;
}

void
MatrixReport::writeJson(std::ostream &os) const
{
    const std::locale prev = os.imbue(std::locale::classic());
    os << "{\n";
    os << "  \"schema\": \"unxpec-matrix-v1\",\n";
    os << "  \"experiment\": \"" << experiment << "\",\n";
    os << "  \"master_seed\": " << masterSeed << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const MatrixCell &c = cells[i];
        os << "    {\"defense\": \"" << c.defense << "\", \"receiver\": \""
           << c.receiver << "\", \"auc\": " << numToString(c.auc)
           << ", \"delta_cycles\": " << numToString(c.deltaCycles)
           << ", \"overhead_pct\": " << numToString(c.overheadPct)
           << ", \"cycles_per_sample\": " << numToString(c.cyclesPerSample);
        // Optional field: only victim cells carry a recovery rate, and
        // omitting it keeps classic artifacts byte-identical.
        if (std::isfinite(c.recoveredBitsPerSec)) {
            os << ", \"recovered_bits_per_sec\": "
               << numToString(c.recoveredBitsPerSec);
        }
        os << ", \"trials\": " << c.trials << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    os.imbue(prev);
}

void
MatrixReport::writeMarkdown(std::ostream &os) const
{
    const std::vector<std::string> recv = receivers();
    os << "# Attack x defense matrix\n\n";
    os << "AUC 0.5 means the channel is closed (receiver guesses "
          "blind); 1.0 means every sample separates the secret. "
          "Overhead is workload cycles against the unsafe baseline.\n\n";
    os << "Experiment `" << experiment << "`, seed " << masterSeed
       << ", " << reps << " rep(s) per cell.\n\n";

    os << "| defense |";
    for (const std::string &r : recv)
        os << " " << r << " AUC | " << r << " delta (cyc) |";
    os << " overhead |\n";
    os << "|---|";
    for (std::size_t i = 0; i < recv.size(); ++i)
        os << "---|---|";
    os << "---|\n";

    for (const std::string &d : defenses()) {
        os << "| " << d << " |";
        double overhead = std::numeric_limits<double>::quiet_NaN();
        for (const std::string &r : recv) {
            const MatrixCell *c = cell(d, r);
            if (c == nullptr) {
                os << " - | - |";
                continue;
            }
            os << " " << numFixedOrDash(c->auc, 3) << " | "
               << numFixedOrDash(c->deltaCycles, 1) << " |";
            if (std::isfinite(c->overheadPct) &&
                !(overhead > c->overheadPct)) {
                overhead = c->overheadPct;
            }
        }
        os << " " << numFixedOrDash(overhead, 1, "%") << " |\n";
    }

    // Victim campaigns: the end-to-end recovery rate per cell.
    bool anyRate = false;
    for (const MatrixCell &c : cells)
        anyRate = anyRate || std::isfinite(c.recoveredBitsPerSec);
    if (anyRate) {
        os << "\nSecret recovery rate (bits of the planted key per "
              "simulated second):\n\n";
        for (const MatrixCell &c : cells) {
            if (std::isfinite(c.recoveredBitsPerSec)) {
                os << "- `" << c.defense << "/" << c.receiver << "`: "
                   << numFixed(c.recoveredBitsPerSec, 1) << " bits/s\n";
            }
        }
    }

    const unsigned incomplete = incompleteCells();
    if (incomplete > 0) {
        os << "\nNote: " << incomplete << " cell(s) incomplete — "
              "censored trials or a missing unsafe baseline; missing "
              "statistics are shown as '-'.\n";
    }
    os << "\nReading guide: the cache-state receiver (unxpec) breaks "
          "Undo schemes; the contention receiver breaks every defense "
          "that only hides *cache* state once the multiplier is "
          "non-pipelined. Only the pipelined-FU column of defenses "
          "closes both.\n";
}

MatrixReport
MatrixReport::fromJsonText(const std::string &text)
{
    MatrixReport report;
    std::istringstream lines(text);
    std::string line;
    bool sawSchema = false;
    while (std::getline(lines, line)) {
        if (line.find("\"schema\"") != std::string::npos) {
            if (fieldText(line, "schema") != "unxpec-matrix-v1")
                fatal("matrix JSON: unexpected schema in: ", line);
            sawSchema = true;
        } else if (line.find("\"experiment\"") != std::string::npos) {
            report.experiment = fieldText(line, "experiment");
        } else if (line.find("\"master_seed\"") != std::string::npos) {
            report.masterSeed =
                static_cast<std::uint64_t>(fieldNum(line, "master_seed"));
        } else if (line.find("\"reps\"") != std::string::npos) {
            report.reps = static_cast<unsigned>(fieldNum(line, "reps"));
        } else if (line.find("\"defense\"") != std::string::npos) {
            MatrixCell cell;
            cell.defense = fieldText(line, "defense");
            cell.receiver = fieldText(line, "receiver");
            cell.auc = fieldNum(line, "auc");
            cell.deltaCycles = fieldNum(line, "delta_cycles");
            cell.overheadPct = fieldNum(line, "overhead_pct");
            cell.cyclesPerSample = fieldNum(line, "cycles_per_sample");
            if (line.find("\"recovered_bits_per_sec\"") !=
                std::string::npos) {
                cell.recoveredBitsPerSec =
                    fieldNum(line, "recovered_bits_per_sec");
            }
            cell.trials = static_cast<unsigned>(fieldNum(line, "trials"));
            report.cells.push_back(std::move(cell));
        }
    }
    if (!sawSchema)
        fatal("matrix JSON: no unxpec-matrix-v1 schema line found");
    return report;
}

} // namespace unxpec
