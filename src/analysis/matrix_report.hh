/**
 * @file
 * The attack x defense matrix artifact (a Table-I-style summary for
 * this repository's defense zoo): one cell per (defense, receiver
 * family) pair carrying the channel's AUC, the secret-dependent timing
 * delta, and the defense's workload overhead against the unsafe
 * baseline. Built from the matrix campaign's ExperimentResult, emitted
 * as JSON (schema "unxpec-matrix-v1") for CI to diff and as markdown
 * for humans (MATRIX.md).
 *
 * Row convention consumed by fromResult(): each result row is labeled
 * "<defense>/<receiver>" and carries the metrics "auc", "delta_cycles",
 * "workload_cycles", and "cycles_per_sample". Overhead is computed at
 * report time against the same receiver's "unsafe" row, so trials never
 * need to run their own baselines.
 *
 * Rows may be incomplete: a fully-censored cell has no metrics at all,
 * and a censored or absent unsafe row leaves the whole column without
 * an overhead baseline. Missing statistics become NaN in the cell
 * (JSON null, markdown "-") rather than fabricated zeros, and
 * incompleteCells() counts them for the artifact's note.
 *
 * Victim rows (the real-secret campaign, bench/victim_recovery.cc)
 * additionally carry "recovered_bits_per_sec"; the field is optional
 * per cell and omitted from the JSON when absent, so classic matrix
 * artifacts are byte-identical to before it existed.
 */

#ifndef UNXPEC_ANALYSIS_MATRIX_REPORT_HH
#define UNXPEC_ANALYSIS_MATRIX_REPORT_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/result_sink.hh"

namespace unxpec {

/** One (defense, receiver) cell of the matrix. Statistics the trial
 *  could not supply (censored rows, missing baselines) are NaN. */
struct MatrixCell
{
    std::string defense;  //!< defense registry key
    std::string receiver; //!< receiver family: "unxpec" or "contention"
    double auc = 0.5;          //!< channel separability (0.5 = closed)
    double deltaCycles = 0.0;  //!< mean(secret=1) - mean(secret=0)
    double overheadPct = 0.0;  //!< workload cycles vs unsafe, percent
    double cyclesPerSample = 0.0;
    /** Victim cells only: end-to-end secret recovery rate. NaN (and
     *  omitted from the JSON) for classic AUC cells. */
    double recoveredBitsPerSec =
        std::numeric_limits<double>::quiet_NaN();
    unsigned trials = 0;

    /** True when a reported statistic is missing (NaN/inf). The
     *  optional recovery rate does not count. */
    bool incomplete() const;
};

/** The full matrix with provenance. */
struct MatrixReport
{
    std::string experiment;
    std::uint64_t masterSeed = 1;
    unsigned reps = 1;
    std::vector<MatrixCell> cells;

    /** Cell by coordinates; nullptr when absent. */
    const MatrixCell *cell(const std::string &defense,
                           const std::string &receiver) const;

    /** Defense names in first-appearance order. */
    std::vector<std::string> defenses() const;
    /** Receiver names in first-appearance order. */
    std::vector<std::string> receivers() const;
    /** Cells with a missing statistic (see MatrixCell::incomplete). */
    unsigned incompleteCells() const;

    /** Distill a matrix campaign's result (see the row convention in
     *  the file comment). Rows without a '/' label are skipped. */
    static MatrixReport fromResult(const ExperimentResult &result);

    /** JSON artifact, schema "unxpec-matrix-v1": one cell per line so
     *  fromJsonText can parse it without a JSON library. */
    void writeJson(std::ostream &os) const;

    /** Markdown table: defenses as rows, one AUC / delta / overhead
     *  column group per receiver family. */
    void writeMarkdown(std::ostream &os) const;

    /**
     * Parse writeJson's own output (the golden-diff path in CI). This
     * is a line-oriented reader for exactly that format, not a general
     * JSON parser; fatal() on malformed input.
     */
    static MatrixReport fromJsonText(const std::string &text);
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_MATRIX_REPORT_HH
