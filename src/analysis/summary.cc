#include "analysis/summary.hh"

#include <algorithm>
#include <cmath>

namespace unxpec {

double
Summary::percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double pos = q * (samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - lo;
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Summary
Summary::of(const std::vector<double> &samples)
{
    Summary s;
    s.count = samples.size();
    if (samples.empty())
        return s;

    double sum = 0.0;
    s.min = s.max = samples.front();
    for (const double v : samples) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / samples.size();

    double sq = 0.0;
    for (const double v : samples)
        sq += (v - s.mean) * (v - s.mean);
    s.stddev = samples.size() > 1
        ? std::sqrt(sq / (samples.size() - 1)) : 0.0;

    s.median = percentile(samples, 0.5);
    s.p25 = percentile(samples, 0.25);
    s.p75 = percentile(samples, 0.75);
    return s;
}

} // namespace unxpec
