#include "analysis/summary.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace unxpec {

namespace {

/** Drop NaN/Inf in place; returns how many samples were removed. */
std::size_t
dropNonFinite(std::vector<double> &samples)
{
    const std::size_t before = samples.size();
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double v) { return !std::isfinite(v); }),
                  samples.end());
    return before - samples.size();
}

} // namespace

double
Summary::percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    if (dropNonFinite(samples) > 0 && samples.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(samples.begin(), samples.end());
    const double pos = q * (samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - lo;
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

Summary
Summary::of(const std::vector<double> &samples)
{
    Summary s;
    if (samples.empty())
        return s;

    std::vector<double> finite = samples;
    s.nonfinite = dropNonFinite(finite);
    s.count = finite.size();
    if (finite.empty()) {
        // Samples existed but none were usable: statistics are
        // undefined, not zero — NaN renders as null/empty downstream.
        const double nan = std::numeric_limits<double>::quiet_NaN();
        s.mean = s.stddev = s.min = s.max = nan;
        s.median = s.p25 = s.p75 = nan;
        return s;
    }

    double sum = 0.0;
    s.min = s.max = finite.front();
    for (const double v : finite) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / finite.size();

    double sq = 0.0;
    for (const double v : finite)
        sq += (v - s.mean) * (v - s.mean);
    s.stddev = finite.size() > 1
        ? std::sqrt(sq / (finite.size() - 1)) : 0.0;

    s.median = percentile(finite, 0.5);
    s.p25 = percentile(finite, 0.25);
    s.p75 = percentile(finite, 0.75);
    return s;
}

} // namespace unxpec
