#include "analysis/kde.hh"

#include <algorithm>
#include <cmath>

#include "analysis/summary.hh"
#include "sim/log.hh"

namespace unxpec {

double
Kde::silvermanBandwidth(const std::vector<double> &samples)
{
    if (samples.size() < 2)
        return 1.0;
    const Summary s = Summary::of(samples);
    const double n = static_cast<double>(samples.size());
    const double iqr = s.p75 - s.p25;
    double spread = s.stddev;
    if (iqr > 0.0)
        spread = std::min(spread, iqr / 1.34);
    if (spread <= 0.0)
        spread = 1.0;
    return std::max(0.5, 0.9 * spread * std::pow(n, -0.2));
}

double
Kde::evaluate(const std::vector<double> &samples, double bandwidth,
              double x)
{
    if (samples.empty() || bandwidth <= 0.0)
        return 0.0;
    const double norm =
        1.0 / (samples.size() * bandwidth * std::sqrt(2.0 * M_PI));
    double density = 0.0;
    for (const double sample : samples) {
        const double z = (x - sample) / bandwidth;
        density += std::exp(-0.5 * z * z);
    }
    return density * norm;
}

DensityCurve
Kde::curve(const std::vector<double> &samples, double lo, double hi,
           unsigned points, double bandwidth)
{
    if (points < 2)
        fatal("Kde::curve: need at least two grid points");
    if (bandwidth <= 0.0)
        bandwidth = silvermanBandwidth(samples);

    DensityCurve result;
    result.x.reserve(points);
    result.density.reserve(points);
    const double step = (hi - lo) / (points - 1);
    for (unsigned i = 0; i < points; ++i) {
        const double x = lo + step * i;
        result.x.push_back(x);
        result.density.push_back(evaluate(samples, bandwidth, x));
    }
    return result;
}

} // namespace unxpec
