#include "analysis/key_recovery.hh"

#include <algorithm>
#include <numeric>

#include "sim/log.hh"

namespace unxpec {

ByteRanking
rankKeyByte(const std::vector<ProbeEvidence> &evidence, double min_margin)
{
    if (evidence.empty())
        fatal("rankKeyByte: no probe evidence");
    const std::size_t entries = evidence.front().entryLatencies.size();
    if (entries == 0 || (entries & (entries - 1)) != 0 || entries > 256)
        fatal("rankKeyByte: table size must be a power of two <= 256, "
              "got ", entries);
    for (const ProbeEvidence &e : evidence) {
        if (e.entryLatencies.size() != entries)
            fatal("rankKeyByte: mismatched evidence sizes (",
                  e.entryLatencies.size(), " vs ", entries, ")");
    }

    // score[k] = sum over plaintexts of the latency of the entry a
    // key byte k would have sent the victim to. The mask folds
    // candidates onto the table when it is smaller than 256 entries.
    const std::size_t mask = entries - 1;
    std::vector<double> score(256, 0.0);
    for (const ProbeEvidence &e : evidence) {
        for (unsigned k = 0; k < 256; ++k)
            score[k] += e.entryLatencies[(e.plaintext ^ k) & mask];
    }

    ByteRanking ranking;
    ranking.ranked.resize(256);
    std::iota(ranking.ranked.begin(), ranking.ranked.end(), 0);
    // Ties break on candidate value: identical latencies rank
    // identically regardless of thread count or batch width.
    std::sort(ranking.ranked.begin(), ranking.ranked.end(),
              [&score](std::uint8_t a, std::uint8_t b) {
                  if (score[a] != score[b])
                      return score[a] < score[b];
                  return a < b;
              });
    ranking.scores.reserve(256);
    for (const std::uint8_t k : ranking.ranked)
        ranking.scores.push_back(score[k]);
    ranking.margin = ranking.scores[1] - ranking.scores[0];
    ranking.confident = ranking.margin >= min_margin;
    return ranking;
}

BitSplit
splitBits(const std::vector<double> &values, bool one_is_high,
          double min_gap)
{
    BitSplit split;
    split.bits.assign(values.size(), 0);
    if (values.size() < 2)
        return split;

    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::size_t widest = 0;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i] - sorted[i - 1] >
            sorted[widest + 1] - sorted[widest]) {
            widest = i - 1;
        }
    }
    split.gap = sorted[widest + 1] - sorted[widest];
    split.threshold = (sorted[widest] + sorted[widest + 1]) / 2.0;
    split.confident = split.gap >= min_gap;
    if (!split.confident)
        return split; // closed channel: no bits, not noise-as-signal

    for (std::size_t i = 0; i < values.size(); ++i) {
        const bool high = values[i] > split.threshold;
        split.bits[i] = (high == one_is_high) ? 1 : 0;
    }
    return split;
}

double
recoveredBitsPerSecond(double correct_bits, double total_cycles,
                       double clock_ghz)
{
    if (total_cycles <= 0.0)
        return 0.0;
    return correct_bits / (total_cycles / (clock_ghz * 1e9));
}

} // namespace unxpec
