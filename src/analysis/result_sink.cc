#include "analysis/result_sink.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

#include "sim/log.hh"

namespace unxpec {

namespace {

/**
 * Full round-trip-precision decimal rendering, pinned to the classic
 * locale so the artifact format survives LC_NUMERIC=de_DE (where the
 * global locale would print a decimal *comma* and group digits).
 */
std::string
numToString(double value)
{
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.precision(std::numeric_limits<double>::max_digits10);
    oss << value;
    return oss.str();
}

/** JSON number: full round-trip precision, null when non-finite. */
std::string
jsonNum(double value)
{
    if (!std::isfinite(value))
        return "null";
    return numToString(value);
}

/** CSV number: full round-trip precision, empty cell when non-finite. */
std::string
csvNum(double value)
{
    if (!std::isfinite(value))
        return "";
    return numToString(value);
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

/** CSV cell: quote when it contains separators, quotes, or newlines. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += "\"";
    return out;
}

} // namespace

MetricSeries
MetricSeries::of(std::vector<double> values)
{
    MetricSeries series;
    series.summary = Summary::of(values);
    series.values = std::move(values);
    return series;
}

const MetricSeries *
ResultRow::metric(const std::string &name) const
{
    for (const auto &[key, series] : metrics) {
        if (key == name)
            return &series;
    }
    return nullptr;
}

double
ResultRow::mean(const std::string &name) const
{
    const MetricSeries *series = metric(name);
    if (series == nullptr)
        fatal("ResultRow '", label, "': no metric '", name, "'");
    return series->summary.mean;
}

const std::vector<double> &
ResultRow::values(const std::string &name) const
{
    const MetricSeries *series = metric(name);
    if (series == nullptr)
        fatal("ResultRow '", label, "': no metric '", name, "'");
    return series->values;
}

double
ResultRow::param(const std::string &name, double fallback) const
{
    for (const auto &[key, value] : params) {
        if (key == name)
            return value;
    }
    return fallback;
}

const ResultRow &
ExperimentResult::row(std::size_t index) const
{
    if (index >= rows.size()) {
        fatal("ExperimentResult '", experiment, "': row ", index,
              " out of range (", rows.size(), " rows)");
    }
    return rows[index];
}

const ResultRow &
ExperimentResult::rowAt(
    const std::vector<std::pair<std::string, double>> &coords) const
{
    for (const ResultRow &candidate : rows) {
        bool match = true;
        for (const auto &[key, value] : coords) {
            if (candidate.param(key,
                                std::numeric_limits<double>::quiet_NaN()) !=
                value) {
                match = false;
                break;
            }
        }
        if (match)
            return candidate;
    }
    std::ostringstream oss;
    for (const auto &[key, value] : coords)
        oss << " " << key << "=" << value;
    fatal("ExperimentResult '", experiment, "': no row matching", oss.str());
}

void
writeJson(std::ostream &os, const ExperimentResult &result,
          bool includeValues)
{
    const std::locale prev = os.imbue(std::locale::classic());
    os << "{\n";
    os << "  \"schema\": \"unxpec-experiment-v2\",\n";
    os << "  \"experiment\": " << jsonStr(result.experiment) << ",\n";
    os << "  \"description\": " << jsonStr(result.description) << ",\n";
    os << "  \"master_seed\": " << result.masterSeed << ",\n";
    os << "  \"reps\": " << result.reps << ",\n";
    os << "  \"threads\": " << result.threads << ",\n";
    os << "  \"mode\": " << jsonStr(result.mode) << ",\n";
    os << "  \"incomplete\": " << (result.incomplete ? "true" : "false")
       << ",\n";
    os << "  \"rows\": [";
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
        const ResultRow &row = result.rows[r];
        os << (r == 0 ? "\n" : ",\n");
        os << "    {\n      \"label\": " << jsonStr(row.label) << ",\n";
        os << "      \"params\": {";
        for (std::size_t p = 0; p < row.params.size(); ++p) {
            os << (p == 0 ? "" : ", ") << jsonStr(row.params[p].first)
               << ": " << jsonNum(row.params[p].second);
        }
        os << "},\n";
        os << "      \"trials\": " << row.trials
           << ", \"censored_trials\": " << row.censoredTrials
           << ", \"retried_trials\": " << row.retriedTrials
           << ", \"missing_trials\": " << row.missingTrials << ",\n";
        os << "      \"metrics\": {";
        for (std::size_t m = 0; m < row.metrics.size(); ++m) {
            const auto &[name, series] = row.metrics[m];
            const Summary &s = series.summary;
            os << (m == 0 ? "\n" : ",\n");
            os << "        " << jsonStr(name) << ": {"
               << "\"count\": " << s.count
               << ", \"nonfinite\": " << s.nonfinite
               << ", \"mean\": " << jsonNum(s.mean)
               << ", \"stddev\": " << jsonNum(s.stddev)
               << ", \"min\": " << jsonNum(s.min)
               << ", \"max\": " << jsonNum(s.max)
               << ", \"median\": " << jsonNum(s.median);
            if (includeValues) {
                os << ", \"values\": [";
                for (std::size_t v = 0; v < series.values.size(); ++v) {
                    os << (v == 0 ? "" : ", ")
                       << jsonNum(series.values[v]);
                }
                os << "]";
            }
            os << "}";
        }
        os << (row.metrics.empty() ? "}" : "\n      }") << "\n    }";
    }
    os << (result.rows.empty() ? "]" : "\n  ]") << "\n}\n";
    os.imbue(prev);
}

void
writeCsv(std::ostream &os, const ExperimentResult &result)
{
    if (result.rows.empty())
        return;

    const std::locale prev = os.imbue(std::locale::classic());

    // Header from the first row's shape; later rows are looked up by
    // name so sparse metrics simply leave empty cells.
    const ResultRow &first = result.rows.front();
    os << "label";
    for (const auto &[key, value] : first.params)
        os << "," << csvCell(key);
    os << ",trials,censored_trials,retried_trials,missing_trials";
    for (const auto &[name, series] : first.metrics) {
        os << "," << csvCell(name + ":mean") << ","
           << csvCell(name + ":stddev") << "," << csvCell(name + ":count");
    }
    os << "\n";

    for (const ResultRow &row : result.rows) {
        os << csvCell(row.label);
        for (const auto &[key, unused] : first.params) {
            os << ","
               << csvNum(row.param(
                      key, std::numeric_limits<double>::quiet_NaN()));
        }
        os << "," << row.trials << "," << row.censoredTrials << ","
           << row.retriedTrials << "," << row.missingTrials;
        for (const auto &[name, unused] : first.metrics) {
            const MetricSeries *series = row.metric(name);
            if (series == nullptr) {
                os << ",,,";
                continue;
            }
            os << "," << csvNum(series->summary.mean) << ","
               << csvNum(series->summary.stddev) << ","
               << series->summary.count;
        }
        os << "\n";
    }
    os.imbue(prev);
}

bool
emitArtifacts(const ExperimentResult &result, const std::string &json_path,
              const std::string &csv_path, std::ostream &status)
{
    bool ok = true;
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            warn("cannot open ", json_path, " for writing");
            ok = false;
        } else {
            writeJson(out, result);
            status << "wrote " << json_path << "\n";
        }
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            warn("cannot open ", csv_path, " for writing");
            ok = false;
        } else {
            writeCsv(out, result);
            status << "wrote " << csv_path << "\n";
        }
    }
    return ok;
}

} // namespace unxpec
