/**
 * @file
 * Receiver-operating-characteristic analysis of the covert channel:
 * sweep the decode threshold over labeled latency samples and chart
 * true-positive vs false-positive rates. AUC summarizes how separable
 * the secret-1 and secret-0 latency distributions are — a
 * distribution-free companion to the fixed-threshold accuracies of
 * §VI-C.
 */

#ifndef UNXPEC_ANALYSIS_ROC_HH
#define UNXPEC_ANALYSIS_ROC_HH

#include <vector>

namespace unxpec {

/** One threshold operating point. */
struct RocPoint
{
    double threshold = 0.0;
    double tpr = 0.0; //!< secret-1 samples decoded as 1
    double fpr = 0.0; //!< secret-0 samples decoded as 1
};

/** Threshold sweep over labeled samples. */
class RocCurve
{
  public:
    /**
     * Build the curve from secret-0 (negative) and secret-1
     * (positive) latency samples; a sample decodes 1 when it exceeds
     * the threshold. Points are ordered by decreasing threshold, so
     * (fpr, tpr) runs from (0,0) to (1,1).
     */
    static RocCurve of(const std::vector<double> &zeros,
                       const std::vector<double> &ones);

    const std::vector<RocPoint> &points() const { return points_; }

    /** Area under the curve: 0.5 = blind guessing, 1.0 = perfect. */
    double auc() const;

    /** Operating point with the highest tpr - fpr (Youden's J). */
    RocPoint best() const;

  private:
    std::vector<RocPoint> points_;
};

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_ROC_HH
