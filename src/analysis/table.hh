/**
 * @file
 * Plain-text presentation helpers for the bench harnesses: aligned
 * tables, numeric series, and ASCII density sketches so each bench can
 * print the same rows/curves the paper's figures show.
 */

#ifndef UNXPEC_ANALYSIS_TABLE_HH
#define UNXPEC_ANALYSIS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

#include "analysis/kde.hh"

namespace unxpec {

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision. */
    static std::string num(double value, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** ASCII rendering of one or two density curves (Figs. 7/8 style). */
void printDensity(std::ostream &os, const DensityCurve &a,
                  const std::string &label_a, const DensityCurve &b,
                  const std::string &label_b, unsigned height = 12);

/** Sparkline-ish series print: "x: value" rows. */
void printSeries(std::ostream &os, const std::string &title,
                 const std::vector<double> &xs,
                 const std::vector<double> &ys);

} // namespace unxpec

#endif // UNXPEC_ANALYSIS_TABLE_HH
