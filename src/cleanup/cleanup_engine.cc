#include "cleanup/cleanup_engine.hh"

#include <algorithm>
#include <cmath>

#include "sim/trace.hh"

namespace unxpec {

CleanupEngine::CleanupEngine(CleanupMode mode, const CleanupTiming &timing,
                             Rng &rng)
    : mode_(mode),
      timing_(timing),
      rng_(rng),
      stats_("cleanup"),
      squashes_(stats_.counter("squashes", "mis-speculation squashes")),
      cleanupEvents_(stats_.counter("events",
                                    "squashes that required rollback work")),
      cleanupCycles_(stats_.counter("cycles",
                                    "total core-stall cycles for cleanup")),
      invalidationsL1_(stats_.counter("invalidationsL1",
                                      "transient L1 installs invalidated")),
      invalidationsL2_(stats_.counter("invalidationsL2",
                                      "transient L2 installs invalidated")),
      restores_(stats_.counter("restores", "L1 victims restored")),
      inflightDrops_(stats_.counter("inflightDrops",
                                    "inflight transient fills scrubbed")),
      extraConstCycles_(stats_.counter("extraCleanupSquashTimeCycles",
                                       "extra stall imposed by "
                                       "constant-time rollback")),
      shadowDiscards_(stats_.counter("shadowDiscards",
                                     "SafeSpec shadow fills discarded")),
      mshrCancels_(stats_.counter("mshrCancels",
                                  "CacheSquash parked fills cancelled"))
{
}

double
CleanupEngine::rollbackDuration(unsigned l1_inv, unsigned l2_inv,
                                unsigned restores,
                                unsigned l2_restores) const
{
    if (l1_inv == 0 && l2_inv == 0 && restores == 0 && l2_restores == 0)
        return 0.0;

    double duration = timing_.mshrCleanCost;

    // Invalidation walks: L1 and L2 engines run in parallel, each
    // pipelined after its first operation.
    double inv_l1 = 0.0;
    if (l1_inv > 0)
        inv_l1 = timing_.invFirstL1 + (l1_inv - 1) * timing_.invNextL1;
    double inv_l2 = 0.0;
    if (l2_inv > 0)
        inv_l2 = timing_.invFirstL2 + (l2_inv - 1) * timing_.invNextL2;
    duration += std::max(inv_l1, inv_l2);

    // Restoration: refills from L2 into L1, pipelined, after the
    // invalidation pass.
    if (restores > 0) {
        duration += timing_.restoreFirst +
                    (restores - 1) * timing_.restoreNext;
    }
    // Cleanup_FULL: L2 restorations refill from memory — the cost that
    // made CleanupSpec reject L2 restoration outright.
    if (l2_restores > 0) {
        duration += timing_.restoreL2First +
                    (l2_restores - 1) * timing_.restoreL2Next;
    }
    return duration;
}

Cycle
CleanupEngine::rollback(MemoryHierarchy &hierarchy, const CleanupJob &job,
                        Cycle older_drain)
{
    ++squashes_;
    const Cycle squash = job.squashCycle;

    if (mode_ == CleanupMode::UnsafeBaseline) {
        // No rollback: the transient footprint persists — the very
        // vulnerability CleanupSpec exists to close. Just drop the
        // speculative markings (the installer will never commit).
        for (const auto &record : job.landed)
            hierarchy.dropSpeculativeMark(record, true, true);
        for (const auto &record : job.inflight)
            hierarchy.dropSpeculativeMark(record, true, true);
        lastStall_ = 0;
        // clearLog keeps capacity, so warm trials append heap-free.
        if (logEnabled_)
            // lint-ok(steady-alloc): reserved after warm-up
            log_.push_back({squash, 0, 0, 0, 0, 0});
        return squash;
    }

    if (mode_ == CleanupMode::SafeSpec ||
        mode_ == CleanupMode::CacheSquash) {
        // Shadow-structure defenses: the transient footprint never
        // entered the caches, so there is no state walk whose duration
        // could depend on it. Discarding a shadow entry (SafeSpec) or
        // cancelling a parked MSHR fill (CacheSquash) is fixed-cost
        // bookkeeping — the squash stalls zero cycles either way, and
        // the unXpec rollback-timing channel measures nothing.
        for (const auto &record : job.pending) {
            if (record.shadow && hierarchy.discardShadow(record))
                ++shadowDiscards_;
            if (record.mshrOnly && hierarchy.cancelPendingFill(record))
                ++mshrCancels_;
        }
        lastStall_ = 0;
        if (logEnabled_) {
            // lint-ok(steady-alloc): clearLog keeps capacity
            log_.push_back({squash, 0, 0, 0, 0,
                            static_cast<unsigned>(job.pending.size())});
        }
        return squash;
    }

    // All rollback events are stamped at the squash cycle (the state
    // walk is modeled as atomic; only its *duration* is timed), so the
    // trace shows begin -> per-line work -> end as one tight group.
    const bool tracing = kTraceEnabled && tracer_ != nullptr &&
                         tracer_->enabled(kTraceCatCleanup);
    if (tracing && !job.empty()) {
        tracer_->instantAt(squash, TraceKind::RollbackBegin, kSeqNone,
                           kAddrInvalid,
                           job.landed.size() + job.inflight.size());
    }

    // --- T3: scrub inflight transient fills --------------------------
    for (const auto &record : job.inflight) {
        hierarchy.undoInflight(record);
        hierarchy.undoSnoopDowngrade(record);
        ++inflightDrops_;
        if (tracing) {
            tracer_->instantAt(squash, TraceKind::InflightScrub,
                               record.seq, record.lineAddr);
        }
    }

    // --- T5 state rollback for landed fills --------------------------
    // SpecBox labels live in both levels; its flash-clear drops them
    // everywhere (the timing shortcut below is what makes it free).
    const bool invalidate_l2 = mode_ == CleanupMode::Cleanup_FOR_L1L2 ||
                               mode_ == CleanupMode::Cleanup_FULL ||
                               mode_ == CleanupMode::SpecBox;
    const bool restore_l2 = mode_ == CleanupMode::Cleanup_FULL;
    unsigned l1_inv = 0;
    unsigned l2_inv = 0;
    for (const auto &record : job.landed) {
        std::uint16_t touched = 0;
        if (record.l1Installed &&
            hierarchy.cleanupInvalidateL1(record)) {
            ++l1_inv;
            touched |= kTraceFlagL1;
        }
        if (record.l2Installed) {
            if (invalidate_l2) {
                if (hierarchy.cleanupInvalidateL2(record)) {
                    ++l2_inv;
                    touched |= kTraceFlagL2;
                }
            } else {
                // Cleanup_FOR_L1: L2 keeps the line (it relies on the
                // randomized index instead); just unmark it — the L2
                // residue the unxpec-probe receiver reads (paper §VI-B).
                hierarchy.dropSpeculativeMark(record, false, true);
            }
        }
        hierarchy.l1d().mshr().squash(record.lineAddr);
        hierarchy.l2().mshr().squash(record.lineAddr);
        // The squashed access never architecturally happened: restore
        // the remote owner its snoop had downgraded (otherwise the
        // downgrade itself leaks the transient access cross-core).
        hierarchy.undoSnoopDowngrade(record);
        if (tracing && touched != 0) {
            tracer_->instantAt(squash, TraceKind::RollbackInvalidate,
                               record.seq, record.lineAddr, 0, 0, touched);
        }
    }

    unsigned restored = 0;
    for (const auto &record : job.restores) {
        hierarchy.cleanupRestoreL1(record, squash);
        ++restored;
        if (tracing) {
            tracer_->instantAt(squash, TraceKind::RollbackRestore,
                               record.seq, record.l1Victim, 0, 0,
                               kTraceFlagL1);
        }
    }
    unsigned restored_l2 = 0;
    if (restore_l2) {
        for (const auto &record : job.landed) {
            if (record.l2Installed && record.l2VictimValid) {
                hierarchy.cleanupRestoreL2(record, squash);
                ++restored_l2;
                if (tracing) {
                    tracer_->instantAt(squash, TraceKind::RollbackRestore,
                                       record.seq, record.l2Victim, 0, 0,
                                       kTraceFlagL2);
                }
            }
        }
    }

    invalidationsL1_ += l1_inv;
    invalidationsL2_ += l2_inv;
    restores_ += restored;

    if (mode_ == CleanupMode::SpecBox) {
        // Label flash-clear: every tagged line drops in one broadcast,
        // a gang-clear of the label bits — constant (zero) cost no
        // matter how many lines carried a label. The state walk above
        // models the *effect* of the clear; its cost never reaches the
        // core.
        lastStall_ = 0;
        if (logEnabled_) {
            // lint-ok(steady-alloc): clearLog keeps capacity
            log_.push_back({squash, 0, l1_inv, l2_inv, restored,
                            static_cast<unsigned>(job.inflight.size())});
        }
        return squash;
    }

    // --- timing --------------------------------------------------------
    Cycle start = squash;
    // T4: wait out inflight correct-path loads before touching state.
    if (l1_inv + l2_inv + restored + restored_l2 > 0)
        start = std::max(start, older_drain);

    double duration = rollbackDuration(
        l1_inv, invalidate_l2 ? l2_inv : 0, restored, restored_l2);
    if (duration == 0.0 && !job.inflight.empty())
        duration = timing_.mshrCleanCost;
    Cycle stall_until =
        start + static_cast<Cycle>(std::llround(duration));

    // The countermeasures below only make sense for Undo schemes:
    // Invisible squashes have no rollback whose timing could leak.
    const bool undo_scheme = mode_ == CleanupMode::Cleanup_FOR_L1 ||
                             mode_ == CleanupMode::Cleanup_FOR_L1L2 ||
                             mode_ == CleanupMode::Cleanup_FULL;

    // Relaxed constant-time rollback: stall at least the constant,
    // longer when the real rollback needs it (§VI-E).
    if (undo_scheme && timing_.constantTimeCycles > 0) {
        const Cycle const_until = squash + timing_.constantTimeCycles;
        if (const_until > stall_until) {
            extraConstCycles_ += const_until - stall_until;
            stall_until = const_until;
        }
    }

    // Fuzzy dummy-cleanup mitigation (§VII): random extra rollback
    // noise on every squash.
    if (undo_scheme && timing_.fuzzyMaxCycles > 0)
        stall_until += rng_.range(timing_.fuzzyMaxCycles + 1);

    if (stall_until > squash) {
        ++cleanupEvents_;
        cleanupCycles_ += stall_until - squash;
        if (tracing) {
            // The whole stall as one span ending at stall_until; the
            // exporter renders it as [squash, stall_until] on the
            // cleanup track. A zero-footprint squash (the unXpec
            // secret=0 case) emits nothing — the absent span *is* the
            // timing channel, now visible.
            tracer_->span(TraceKind::RollbackEnd, stall_until,
                          stall_until - squash, kSeqNone, kAddrInvalid,
                          l1_inv + l2_inv + restored + restored_l2);
        }
    }
    lastStall_ = stall_until - squash;
    if (logEnabled_) {
        // lint-ok(steady-alloc): clearLog keeps capacity (warm trials)
        log_.push_back({squash, lastStall_, l1_inv, l2_inv, restored,
                        static_cast<unsigned>(job.inflight.size())});
    }
    return stall_until;
}

} // namespace unxpec
