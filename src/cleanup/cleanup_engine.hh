/**
 * @file
 * The Undo rollback engine: CleanupSpec's T3-T5 timeline (paper Fig. 1)
 * plus the two countermeasures the paper evaluates or proposes —
 * relaxed constant-time rollback (§VI-E) and fuzzy dummy-cleanup
 * (§VII).
 *
 * Timeline model on a squash at cycle S:
 *   T3  scrub inflight transient loads from the MSHRs; their fills are
 *       dropped on arrival (fixed cost, no walk);
 *   T4  wait for inflight correct-path loads to retire before touching
 *       cache state (zeroed out by the attack's FENCE);
 *   T5  invalidate transiently installed lines whose fills landed — L1
 *       and (in Cleanup_FOR_L1L2) L2 walks proceed in parallel, each
 *       pipelined — then restore displaced L1 victims from L2,
 *       pipelined.
 * The core is stalled until the returned cycle. A squash with no
 * transient footprint (the unXpec secret-0 case) stalls zero cycles —
 * that asymmetry *is* the paper's timing channel.
 */

#ifndef UNXPEC_CLEANUP_CLEANUP_ENGINE_HH
#define UNXPEC_CLEANUP_CLEANUP_ENGINE_HH

#include <vector>

#include "cleanup/spec_tracker.hh"
#include "memory/hierarchy.hh"
#include "sim/annotate.hh"
#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace unxpec {

class Tracer;

/** Per-squash record for instrumented experiments (Fig. 2/3/6). */
struct SquashLog
{
    Cycle cycle = 0;        //!< when the mis-speculation was detected
    Cycle stall = 0;        //!< rollback stall charged
    unsigned l1Invalidations = 0;
    unsigned l2Invalidations = 0;
    unsigned restores = 0;
    unsigned inflightDropped = 0;
};

/** Applies and times the cache-state rollback for one squash. */
class CleanupEngine
{
  public:
    CleanupEngine(CleanupMode mode, const CleanupTiming &timing, Rng &rng);

    /**
     * Handle a squash: apply the state rollback to the hierarchy and
     * return the cycle until which the core stalls (>= squash cycle;
     * equal when nothing stalls).
     *
     * @param hierarchy     caches to roll back
     * @param job           distilled footprint of the squashed loads
     * @param older_drain   latest completion among inflight
     *                      correct-path loads (T4), 0 if none
     */
    UNXPEC_ROLLBACK("*")
    Cycle rollback(MemoryHierarchy &hierarchy, const CleanupJob &job,
                   Cycle older_drain);

    /**
     * Pure timing query: rollback duration (cycles beyond the squash)
     * for a footprint of k1 L1 installs, k2 L2 installs, m L1 restores
     * (and, under Cleanup_FULL, m2 L2 restores from memory).
     * Exposed for calibration tests and the analytical benches.
     */
    double rollbackDuration(unsigned l1_inv, unsigned l2_inv,
                            unsigned restores,
                            unsigned l2_restores = 0) const;

    CleanupMode mode() const { return mode_; }
    const CleanupTiming &timing() const { return timing_; }

    /** Mutable timing (benches sweep constant-time values). */
    CleanupTiming &timing() { return timing_; }
    void setMode(CleanupMode mode) { mode_ = mode; }

    StatGroup &stats() { return stats_; }

    /** Cycles of cleanup stall charged by the most recent rollback. */
    Cycle lastStall() const { return lastStall_; }

    /** Per-squash logging (off by default; bounded by caller resets). */
    void enableLog(bool enable) { logEnabled_ = enable; }
    void clearLog() { log_.clear(); }
    const std::vector<SquashLog> &log() const { return log_; }

    /**
     * Event tracer for the rollback timeline (nullptr = off): a
     * rollback-begin instant at the squash, one invalidate/restore/
     * scrub instant per touched line, and a rollback-end span covering
     * the charged stall.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Restore freshly-constructed state (Core::reset): mode and timing
     * back to the configured values, statistics zeroed, logging off.
     */
    UNXPEC_TRANSITION("reset")
    void
    reset(CleanupMode mode, const CleanupTiming &timing)
    {
        mode_ = mode;
        timing_ = timing;
        stats_.resetAll();
        lastStall_ = 0;
        logEnabled_ = false;
        log_.clear();
        tracer_ = nullptr;
    }

  private:
    CleanupMode mode_;
    CleanupTiming timing_;
    Rng &rng_;

    StatGroup stats_;
    Counter &squashes_;
    Counter &cleanupEvents_;
    Counter &cleanupCycles_;
    Counter &invalidationsL1_;
    Counter &invalidationsL2_;
    Counter &restores_;
    Counter &inflightDrops_;
    Counter &extraConstCycles_;
    Counter &shadowDiscards_;
    Counter &mshrCancels_;
    Cycle lastStall_ = 0;

    bool logEnabled_ = false;
    std::vector<SquashLog> log_;
    Tracer *tracer_ = nullptr;
};

} // namespace unxpec

#endif // UNXPEC_CLEANUP_CLEANUP_ENGINE_HH
