/**
 * @file
 * SafeSpec shadow L1 (Khasawneh et al., DAC'19): a small fully
 * associative buffer that receives every speculative fill instead of
 * the caches. A load that commits promotes its shadow line into the
 * real hierarchy (a free on-chip move — the data already arrived); a
 * load that squashes has its shadow entry discarded. Because neither
 * direction performs footprint-dependent work at squash time, SafeSpec
 * has no rollback-timing channel for unXpec to measure — which is
 * exactly what the attack×defense matrix demonstrates.
 *
 * The buffer is intentionally simple: fixed capacity, FIFO
 * replacement, no data payload (MainMemory is the functional store, as
 * everywhere else in the simulator). Determinism matters more than
 * fidelity here — the matrix compares *timing channels*, not IPC.
 */

#ifndef UNXPEC_CLEANUP_SAFESPEC_HH
#define UNXPEC_CLEANUP_SAFESPEC_HH

#include <array>
#include <cstdint>

#include "sim/annotate.hh"
#include "sim/types.hh"

namespace unxpec {

/** Fixed-capacity FIFO shadow buffer for speculative fills. */
class ShadowL1
{
  public:
    /** One shadow fill in flight or landed but not yet committed. */
    struct Entry
    {
        Addr lineAddr = kAddrInvalid;
        Cycle readyCycle = kCycleNever; //!< fill arrival
        SeqNum installer = kSeqNone;    //!< first speculative requester
        bool valid = false;
    };

    /** Shadow capacity in lines (SafeSpec's per-core shadow L1 is
     *  sized like an MSHR file, not like a cache). */
    static constexpr unsigned kEntries = 32;

    /** The entry holding `line_addr`, or nullptr. The fill may still
     *  be in flight (readyCycle > now): callers merge with it exactly
     *  like an MSHR hit. */
    const Entry *find(Addr line_addr) const;

    /**
     * Allocate a shadow entry for a new speculative fill. FIFO: when
     * full, the oldest entry is silently dropped — a dropped line is
     * simply refetched if re-requested, which costs the *speculative*
     * path time but never the squash path.
     */
    UNXPEC_TRANSITION("spec@SafeSpec")
    void fill(Addr line_addr, Cycle ready, SeqNum installer);

    /** Remove the entry for a committed line (promotion). @return
     *  true when the line was present. */
    UNXPEC_TRANSITION("commit")
    bool promote(Addr line_addr);

    /** Remove the entry for a squashed line. @return true when the
     *  line was present. */
    UNXPEC_ROLLBACK("SafeSpec")
    bool discard(Addr line_addr);

    /** Valid entries currently held. */
    unsigned occupancy() const;

    /** Drop everything (trial reset / cache cold-start). */
    UNXPEC_TRANSITION("reset")
    void clear();

    std::uint64_t fills() const { return fills_; }
    std::uint64_t promotes() const { return promotes_; }
    std::uint64_t discards() const { return discards_; }

  private:
    bool erase(Addr line_addr);

    /** The shadow buffer IS SafeSpec's speculative footprint: squash
     *  must discard the squashed installer's entry (nothing else). */
    UNXPEC_SPEC_STATE std::array<Entry, kEntries> entries_{};
    UNXPEC_SPEC_STATE unsigned fifo_ = 0; //!< next slot (FIFO round-robin)
    std::uint64_t fills_ = 0;
    std::uint64_t promotes_ = 0;
    std::uint64_t discards_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_CLEANUP_SAFESPEC_HH
