#include "cleanup/spec_tracker.hh"

#include <algorithm>

namespace unxpec {

CleanupJob
SpecTracker::buildJob(Cycle squash_cycle,
                      const std::vector<MemAccessRecord> &records)
{
    CleanupJob job;
    buildJobInto(squash_cycle, records, job);
    return job;
}

void
SpecTracker::buildJobInto(Cycle squash_cycle,
                          const std::vector<MemAccessRecord> &records,
                          CleanupJob &out)
{
    out.clear();
    out.squashCycle = squash_cycle;

    // The job vectors are bounded by the squashed-load count (itself
    // bounded by ROB capacity); a reused job reaches a fixed capacity
    // after the first few squashes and never grows again.
    for (const auto &record : records) {
        if (record.shadow || record.mshrOnly) {
            // SafeSpec / CacheSquash: the footprint lives in a shadow
            // structure, not the caches. Merged records carry no entry
            // of their own — only the allocating load is actionable.
            if (!record.merged)
                out.pending.push_back(record); // lint-ok(steady-alloc): bounded
            continue;
        }

        if (!record.l1Installed && !record.l2Installed)
            continue; // hit or MSHR merge: no footprint of its own

        if (record.ready > squash_cycle) {
            out.inflight.push_back(record); // lint-ok(steady-alloc): bounded
            continue;
        }

        out.landed.push_back(record); // lint-ok(steady-alloc): bounded
        if (record.l1Installed)
            ++out.l1Invalidations;
        if (record.l2Installed)
            ++out.l2Invalidations;
        if (record.l1Installed && record.l1VictimValid)
            out.restores.push_back(record); // lint-ok(steady-alloc): bounded
    }
}

} // namespace unxpec
