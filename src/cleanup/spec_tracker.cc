#include "cleanup/spec_tracker.hh"

#include <algorithm>

namespace unxpec {

CleanupJob
SpecTracker::buildJob(Cycle squash_cycle,
                      const std::vector<MemAccessRecord> &records)
{
    CleanupJob job;
    job.squashCycle = squash_cycle;

    for (const auto &record : records) {
        if (!record.l1Installed && !record.l2Installed)
            continue; // hit or MSHR merge: no footprint of its own

        if (record.ready > squash_cycle) {
            job.inflight.push_back(record);
            continue;
        }

        job.landed.push_back(record);
        if (record.l1Installed)
            ++job.l1Invalidations;
        if (record.l2Installed)
            ++job.l2Invalidations;
        if (record.l1Installed && record.l1VictimValid)
            job.restores.push_back(record);
    }
    return job;
}

} // namespace unxpec
