#include "cleanup/safespec.hh"

namespace unxpec {

const ShadowL1::Entry *
ShadowL1::find(Addr line_addr) const
{
    for (const Entry &entry : entries_) {
        if (entry.valid && entry.lineAddr == line_addr)
            return &entry;
    }
    return nullptr;
}

void
ShadowL1::fill(Addr line_addr, Cycle ready, SeqNum installer)
{
    ++fills_;
    Entry &slot = entries_[fifo_];
    fifo_ = (fifo_ + 1) % kEntries;
    slot.lineAddr = line_addr;
    slot.readyCycle = ready;
    slot.installer = installer;
    slot.valid = true;
}

bool
ShadowL1::erase(Addr line_addr)
{
    for (Entry &entry : entries_) {
        if (entry.valid && entry.lineAddr == line_addr) {
            entry = Entry{};
            return true;
        }
    }
    return false;
}

bool
ShadowL1::promote(Addr line_addr)
{
    const bool present = erase(line_addr);
    if (present)
        ++promotes_;
    return present;
}

bool
ShadowL1::discard(Addr line_addr)
{
    const bool present = erase(line_addr);
    if (present)
        ++discards_;
    return present;
}

unsigned
ShadowL1::occupancy() const
{
    unsigned count = 0;
    for (const Entry &entry : entries_) {
        if (entry.valid)
            ++count;
    }
    return count;
}

void
ShadowL1::clear()
{
    entries_.fill(Entry{});
    fifo_ = 0;
    fills_ = 0;
    promotes_ = 0;
    discards_ = 0;
}

} // namespace unxpec
