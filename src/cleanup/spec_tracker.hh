/**
 * @file
 * Speculative-footprint tracking. CleanupSpec keeps the addresses of
 * transiently installed lines in the load queue and the addresses of
 * the lines they evicted in the MSHRs (paper §II-B). Here the same
 * information is carried on each squashed load's MemAccessRecord; the
 * tracker distills a squash into a CleanupJob: what to invalidate at
 * each level, what to restore into L1, and whether fills were still in
 * flight when the squash hit.
 */

#ifndef UNXPEC_CLEANUP_SPEC_TRACKER_HH
#define UNXPEC_CLEANUP_SPEC_TRACKER_HH

#include <vector>

#include "memory/hierarchy.hh"
#include "sim/types.hh"

namespace unxpec {

/** Everything the rollback engine needs to undo one mis-speculation. */
struct CleanupJob
{
    Cycle squashCycle = 0;

    /** Transient installs whose fill landed before the squash: these
     *  must be invalidated (and their L1 victims restored). */
    std::vector<MemAccessRecord> landed;

    /** Installs still in flight at squash time: the MSHR entry is
     *  scrubbed and the fill dropped on arrival — cheap, no walk. */
    std::vector<MemAccessRecord> inflight;

    /** Subset of `landed` whose L1 fill displaced a valid line; those
     *  victims must be restored. */
    std::vector<MemAccessRecord> restores;

    /** Shadow-structure records (SafeSpec shadow fills, CacheSquash
     *  parked MSHR fills): nothing in the caches to walk — the engine
     *  discards/cancels them at a fixed (zero) cost. */
    std::vector<MemAccessRecord> pending;

    /** Counts over `landed`, for timing. */
    unsigned l1Invalidations = 0;
    unsigned l2Invalidations = 0;
    unsigned restoreCount() const
    {
        return static_cast<unsigned>(restores.size());
    }

    bool empty() const { return landed.empty() && inflight.empty(); }

    /** Empty the job for reuse; the vectors keep their capacity. */
    void
    clear()
    {
        squashCycle = 0;
        landed.clear();
        inflight.clear();
        restores.clear();
        pending.clear();
        l1Invalidations = 0;
        l2Invalidations = 0;
    }
};

/** Builds CleanupJobs from the memory records of squashed loads. */
class SpecTracker
{
  public:
    /**
     * Distill the squashed loads' access records into a cleanup job.
     * Records that hit or merged installed nothing and contribute no
     * rollback work — the property that makes secret=0 squashes free
     * and opens the unXpec timing channel.
     */
    static CleanupJob buildJob(Cycle squash_cycle,
                               const std::vector<MemAccessRecord> &records);

    /**
     * Same distillation into a caller-owned job: `out` is cleared and
     * refilled, reusing its vectors' capacity so the squash hot path
     * performs no heap allocation after warm-up (Core::squashAfter).
     */
    static void buildJobInto(Cycle squash_cycle,
                             const std::vector<MemAccessRecord> &records,
                             CleanupJob &out);
};

} // namespace unxpec

#endif // UNXPEC_CLEANUP_SPEC_TRACKER_HH
