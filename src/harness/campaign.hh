/**
 * @file
 * Fault-tolerant campaign persistence and process machinery for the
 * TrialRunner. Three cooperating pieces:
 *
 *   - checkpoint/resume: every completed trial is journaled to an
 *     append-only manifest (`campaign.jsonl`). The in-memory journal is
 *     flushed by writing the whole file to `<path>.tmp` and atomically
 *     renaming it over `<path>`, so a crash at any instant leaves a
 *     complete, parseable manifest of every trial finished before it.
 *     `--resume <manifest>` re-loads the entries and skips the
 *     journaled (spec, rep, seed) trials — the spliced result is
 *     bit-identical to an uninterrupted run because entry values are
 *     serialized at full round-trip precision.
 *
 *   - watchdogs and retries: a censored trial (simulated-cycle budget
 *     or host wall-clock overrun) is retried with a fresh
 *     deterministically derived seed (Rng::deriveRetrySeed) up to the
 *     retry budget, with exponential backoff between host-level
 *     retries.
 *
 *   - crash-isolated shards: `--shards K` forks subprocess workers
 *     over disjoint trial ranges. A worker that dies (signal or
 *     nonzero exit) is reaped and its range re-queued — the relaunched
 *     worker resumes from the shard's own journal, so completed trials
 *     are never recomputed. Past the retry budget the campaign
 *     degrades gracefully: missing trials are flagged, not silently
 *     dropped.
 *
 * Everything here is host-side harness infrastructure — simulated time
 * stays inside the deterministic core; the wall-clock appears only in
 * the watchdog/backoff helpers, outside any simulated path.
 */

#ifndef UNXPEC_HARNESS_CAMPAIGN_HH
#define UNXPEC_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace unxpec {

/** Fault-tolerance knobs of a TrialRunner campaign (the CLI flags). */
struct CampaignConfig
{
    /** Manifest journal path (--campaign); empty = no journaling. */
    std::string manifestPath;
    /** Manifest to resume from (--resume); empty = fresh campaign. */
    std::string resumePath;
    /** Experiment name stamped into the manifest header (provenance). */
    std::string experiment;
    /** Simulated-cycle budget per trial Session; 0 = no budget. */
    std::uint64_t trialTimeoutCycles = 0;
    /** Host wall-clock budget per trial in ms; 0 = no budget. */
    std::uint64_t trialTimeoutMs = 0;
    /** Retry budget for censored trials and crashed shards. */
    unsigned retries = 0;
    /** Subprocess shard workers; 1 = run in-process. */
    unsigned shards = 1;

    bool journaling() const { return !manifestPath.empty(); }
};

/** Campaign identity, validated when a manifest is resumed. */
struct CampaignHeader
{
    std::string experiment;       //!< empty = not checked
    std::uint64_t masterSeed = 0;
    std::size_t specs = 0;
    unsigned reps = 0;
    /**
     * Lock-step batch width the journaled trials ran under (--batch).
     * Resume refuses a width mismatch: host-watchdog censoring times a
     * trial's share of its lock-step group, so trials journaled under
     * a different width are not interchangeable with the trials a
     * fresh run would produce. 0 = a legacy manifest that predates the
     * field; not checked.
     */
    unsigned batch = 0;
    /**
     * Digest of the spec labels in sweep order (campaignSpecDigest).
     * Job indices are spec_index * reps + rep, so resuming against a
     * permuted or edited spec list would silently splice journaled
     * results into the wrong rows — the digest turns that into a
     * fatal diagnostic. 0 = legacy manifest; not checked.
     */
    std::uint64_t specDigest = 0;
};

/**
 * FNV-1a digest of the spec labels in sweep order, for
 * CampaignHeader::specDigest. Order-sensitive by construction; never
 * returns 0 (0 is the legacy "not recorded" sentinel).
 */
std::uint64_t campaignSpecDigest(const std::vector<std::string> &labels);

/** One journaled trial: identity, fate, and its measurements. */
struct CampaignEntry
{
    std::size_t job = 0;          //!< spec_index * reps + rep
    std::uint64_t seed = 0;       //!< seed the recorded attempt ran with
    unsigned attempt = 0;         //!< 0 = first try
    bool censored = false;
    std::string censorReason;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::vector<double>>> series;
};

/** A parsed manifest: header plus entries keyed by job index. */
struct CampaignManifest
{
    CampaignHeader header;
    std::map<std::size_t, CampaignEntry> entries;
};

/** Serialize one entry as its manifest JSON line (no newline). */
std::string campaignEntryLine(const CampaignEntry &entry);

/** Serialize the manifest header line (no newline). */
std::string campaignHeaderLine(const CampaignHeader &header);

/**
 * Parse a manifest written by CampaignJournal. fatal() when the file
 * cannot be read or a line is structurally invalid (a manifest is
 * always renamed into place whole, so damage means the wrong file).
 * Duplicate jobs keep the last entry (a resumed shard re-journals its
 * inherited entries).
 */
CampaignManifest loadCampaignManifest(const std::string &path);

/**
 * fatal() unless `manifest` belongs to the campaign described by
 * `expected` (master seed, spec count, reps, and experiment name when
 * both sides carry one) — resuming from a foreign manifest would
 * silently splice wrong results.
 */
void requireCompatibleManifest(const CampaignManifest &manifest,
                               const CampaignHeader &expected,
                               const std::string &path);

/**
 * The append-only trial journal. Entries accumulate in memory;
 * every append() rewrites `<path>.tmp` and atomically renames it over
 * `<path>`, so the on-disk manifest is a complete prefix of the
 * campaign at every instant. Thread-safe: TrialRunner workers append
 * concurrently.
 */
class CampaignJournal
{
  public:
    CampaignJournal(std::string path, const CampaignHeader &header);

    /** Seed with an already-journaled entry (resume); no flush. */
    void absorb(const CampaignEntry &entry);
    /** Record a freshly completed trial and flush atomically. */
    void append(const CampaignEntry &entry);
    /** Write tmp + rename. fatal() when the filesystem refuses. */
    void flush();

  private:
    void flushLocked(); //!< mutex_ must be held

    std::mutex mutex_;
    std::string path_;
    std::string headerLine_;
    std::vector<std::string> lines_;
};

// --- shard process machinery (fork/reap, harness-side only) -------------

/**
 * Fork a shard worker running `body` and then _exit(0). Returns the
 * child pid; fatal() when fork fails. Must be called before the
 * calling process spawns worker threads (the children create their own
 * pools after the fork).
 */
int spawnShardWorker(const std::function<void()> &body);

/** How a shard worker left. */
struct ShardExit
{
    int pid = -1;
    bool crashed = false; //!< nonzero exit or terminated by signal
    int exitCode = 0;
    int termSignal = 0;   //!< 0 when not signal-terminated
};

/** Block until any shard worker exits; fatal() with no children. */
ShardExit waitAnyShardWorker();

/**
 * Exponential host-side backoff before host-level retry `attempt`
 * (1-based): 25 ms doubling per attempt, capped at 2 s.
 */
void backoffBeforeRetry(unsigned attempt);

/**
 * CI crash injection: UNXPEC_CRASH_AFTER_TRIALS=N std::abort()s the
 * worker process after its N-th completed (journaled) trial of one
 * TrialRunner::run invocation — after the journal flush, so the
 * manifest proves checkpointing survives an abort at the worst
 * moment. Unset or 0 disables. The counter is per run() invocation,
 * so a relaunched shard that resumes (and therefore completes fewer
 * fresh trials) eventually finishes its range.
 */
class CrashInjector
{
  public:
    CrashInjector();          //!< reads the environment
    void onTrialComplete();   //!< count; abort at the threshold

  private:
    std::uint64_t threshold_ = 0;
    std::mutex mutex_;
    std::uint64_t completed_ = 0;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_CAMPAIGN_HH
