/**
 * @file
 * Declarative experiment specification plus the name-based registries
 * that make defenses, noise profiles, and attack variants selectable
 * from the command line (SimEng's CoreInstance idiom: a session layer
 * builds simulations from configs instead of every bench hand-rolling
 * its own Core construction).
 *
 * A bench describes each point of its sweep as an ExperimentSpec; the
 * TrialRunner replicates every spec `reps` times on a thread pool,
 * building one Core per trial from a per-trial seed derived from the
 * master seed (Rng::deriveSeed), so parallel results are bit-identical
 * to serial ones.
 */

#ifndef UNXPEC_HARNESS_SPEC_HH
#define UNXPEC_HARNESS_SPEC_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "attack/noise.hh"
#include "attack/unxpec.hh"
#include "sim/config.hh"

namespace unxpec {

/** One point of an experiment sweep: how to build and attack a core. */
struct ExperimentSpec
{
    /** Row label for tables and result artifacts. */
    std::string label;
    /** Defense registry key (see defenseNames()). */
    std::string defense = "cleanup_l1l2";
    /** Noise registry key (see noiseNames()). */
    std::string noise = "quiet";
    /** Attack registry key (see attackNames()). */
    std::string attack = "unxpec";
    /** Machine width: cores sharing one L2 (SystemConfig::numCores). */
    unsigned cores = 1;
    /** Base attack knobs; the variant's apply() runs on top of these. */
    UnxpecConfig attackCfg;
    /** Synthetic-workload name for workload-driven experiments. */
    std::string workload;
    /** Optional final tweak to the built SystemConfig (e.g. the
     *  constant-time-rollback sweep). Runs after defense + noise. */
    std::function<void(SystemConfig &)> tweak;
    /** Ordered sweep coordinates, echoed into the result rows. */
    std::vector<std::pair<std::string, double>> params;

    /** Append a sweep coordinate (chainable). */
    ExperimentSpec &with(const std::string &key, double value);
    /** Coordinate by name; `fallback` when absent. */
    double param(const std::string &key, double fallback = 0.0) const;
};

// --- defense registry ---------------------------------------------------

using DefenseFactory = std::function<SystemConfig()>;

/** Register (or replace) a defense configuration by name. */
void registerDefense(const std::string &name, const std::string &description,
                     DefenseFactory factory);

/** Build the SystemConfig for a registered defense; fatal() on unknown. */
SystemConfig makeDefense(const std::string &name);

/** True when `name` is registered. */
bool knownDefense(const std::string &name);

/** Registered names with descriptions, registration order. */
std::vector<std::pair<std::string, std::string>> defenseNames();

// --- noise registry -----------------------------------------------------

/** Register (or replace) a noise profile by name. */
void registerNoise(const std::string &name, const std::string &description,
                   const NoiseProfile &profile);

/** Look up a registered noise profile; fatal() on unknown. */
NoiseProfile noiseProfile(const std::string &name);

/** True when `name` is registered. */
bool knownNoise(const std::string &name);

/** Registered names with descriptions, registration order. */
std::vector<std::pair<std::string, std::string>> noiseNames();

// --- attack registry ----------------------------------------------------

/** Apply a registered attack variant's knobs; fatal() on unknown. */
void applyAttackVariant(const std::string &name, UnxpecConfig &cfg);

/** True when `name` is registered. */
bool knownAttack(const std::string &name);

/** Registered names with descriptions, registration order. */
std::vector<std::pair<std::string, std::string>> attackNames();

} // namespace unxpec

#endif // UNXPEC_HARNESS_SPEC_HH
