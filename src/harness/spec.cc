#include "harness/spec.hh"

#include <mutex>

#include "sim/log.hh"

namespace unxpec {

ExperimentSpec &
ExperimentSpec::with(const std::string &key, double value)
{
    params.emplace_back(key, value);
    return *this;
}

double
ExperimentSpec::param(const std::string &key, double fallback) const
{
    for (const auto &[name, value] : params) {
        if (name == key)
            return value;
    }
    return fallback;
}

namespace {

template <typename Factory>
struct Entry
{
    std::string name;
    std::string description;
    Factory factory;
};

/** Ordered name->factory table with replace-on-reregister semantics. */
template <typename Factory>
class Registry
{
  public:
    void
    add(const std::string &name, const std::string &description,
        Factory factory)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : entries_) {
            if (entry.name == name) {
                entry.description = description;
                entry.factory = std::move(factory);
                return;
            }
        }
        entries_.push_back({name, description, std::move(factory)});
    }

    const Factory *
    find(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &entry : entries_) {
            if (entry.name == name)
                return &entry.factory;
        }
        return nullptr;
    }

    std::vector<std::pair<std::string, std::string>>
    names() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::pair<std::string, std::string>> out;
        for (const auto &entry : entries_)
            out.emplace_back(entry.name, entry.description);
        return out;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<Entry<Factory>> entries_;
};

using NoiseFactory = std::function<NoiseProfile()>;
using AttackApply = std::function<void(UnxpecConfig &)>;

Registry<DefenseFactory> &
defenses()
{
    static Registry<DefenseFactory> registry;
    static std::once_flag once;
    std::call_once(once, [] {
        registry.add("unsafe", "no rollback: transient installs persist",
                     [] { return SystemConfig::makeUnsafeBaseline(); });
        registry.add("cleanup_l1", "CleanupSpec, L1-only invalidation",
                     [] {
                         SystemConfig cfg = SystemConfig::makeDefault();
                         cfg.cleanupMode = CleanupMode::Cleanup_FOR_L1;
                         return cfg;
                     });
        registry.add("cleanup_l1l2",
                     "CleanupSpec, L1+L2 invalidation (paper Table I)",
                     [] { return SystemConfig::makeDefault(); });
        registry.add("cleanup_full",
                     "hypothetical CleanupSpec with L2 restoration",
                     [] {
                         SystemConfig cfg = SystemConfig::makeDefault();
                         cfg.cleanupMode = CleanupMode::Cleanup_FULL;
                         return cfg;
                     });
        registry.add("invisispec",
                     "InvisiSpec-style Invisible defense (MICRO'18)",
                     [] { return SystemConfig::makeInvisiSpec(); });
        registry.add("delay_on_miss",
                     "delay-on-miss Invisible defense (ISCA'19)",
                     [] { return SystemConfig::makeDelayOnMiss(); });
        registry.add("safespec",
                     "SafeSpec shadow-L1 defense (DAC'19): speculative "
                     "fills land in a shadow buffer, promoted at commit",
                     [] { return SystemConfig::makeSafeSpec(); });
        registry.add("specbox",
                     "label-based isolation: speculative lines tagged in "
                     "place, hidden from probes, flash-cleared on squash",
                     [] { return SystemConfig::makeSpecBox(); });
        registry.add("cachesquash",
                     "squash propagates into the MSHR: speculative fills "
                     "park in cancellable entries, no tags installed",
                     [] { return SystemConfig::makeCacheSquash(); });
        registry.add("noisy_host",
                     "CleanupSpec on the noisy-host profile (SVI-D)",
                     [] { return SystemConfig::makeNoisyHost(); });
        registry.add("cleanup_const65",
                     "CleanupSpec + 65-cycle constant-time rollback",
                     [] {
                         SystemConfig cfg = SystemConfig::makeDefault();
                         cfg.cleanupTiming.constantTimeCycles = 65;
                         return cfg;
                     });
        registry.add("cleanup_fuzzy40",
                     "CleanupSpec + fuzzy dummy-cleanup <=40 cycles (SVII)",
                     [] {
                         SystemConfig cfg = SystemConfig::makeDefault();
                         cfg.cleanupTiming.fuzzyMaxCycles = 40;
                         return cfg;
                     });
    });
    return registry;
}

Registry<NoiseFactory> &
noises()
{
    static Registry<NoiseFactory> registry;
    static std::once_flag once;
    std::call_once(once, [] {
        registry.add("quiet", "silent machine: deterministic timing",
                     [] { return NoiseProfile::quiet(); });
        registry.add("evaluation",
                     "light background activity (the paper's SVI setting)",
                     [] { return NoiseProfile::evaluation(); });
        registry.add("noisy_host",
                     "busy real host: DRAM jitter + interrupt stalls",
                     [] { return NoiseProfile::noisyHost(); });
    });
    return registry;
}

Registry<AttackApply> &
attacks()
{
    static Registry<AttackApply> registry;
    static std::once_flag once;
    std::call_once(once, [] {
        // The unXpec variants register themselves from the attack layer.
        for (const UnxpecVariant &variant : unxpecVariants()) {
            registry.add(variant.name, variant.description,
                         [apply = variant.apply](UnxpecConfig &cfg) {
                             apply(cfg);
                         });
        }
        registry.add("spectre_v1",
                     "Spectre v1 + Flush+Reload contrast baseline",
                     [](UnxpecConfig &) {});
        registry.add("contention",
                     "SpectreRewind FU-contention receiver: cache-free "
                     "channel through a non-pipelined multiplier",
                     [](UnxpecConfig &) {});
        // Secret-bearing victim programs (victim/victim.hh). Like
        // "contention", selection is by name: trial functions build a
        // VictimAttack directly, so there are no UnxpecConfig knobs.
        registry.add("victim-aes",
                     "AES-128 T-table first round: full key-byte "
                     "recovery through the Flush+Reload probe",
                     [](UnxpecConfig &) {});
        registry.add("victim-rsa",
                     "RSA square-and-multiply: exponent-bit recovery "
                     "through the multiplier-line reload",
                     [](UnxpecConfig &) {});
        registry.add("none", "no attack: workload-only experiments",
                     [](UnxpecConfig &) {});
    });
    return registry;
}

} // namespace

void
registerDefense(const std::string &name, const std::string &description,
                DefenseFactory factory)
{
    defenses().add(name, description, std::move(factory));
}

SystemConfig
makeDefense(const std::string &name)
{
    const DefenseFactory *factory = defenses().find(name);
    if (factory == nullptr)
        fatal("unknown defense mode '", name, "' (see --list-modes)");
    return (*factory)();
}

bool
knownDefense(const std::string &name)
{
    return defenses().find(name) != nullptr;
}

std::vector<std::pair<std::string, std::string>>
defenseNames()
{
    return defenses().names();
}

void
registerNoise(const std::string &name, const std::string &description,
              const NoiseProfile &profile)
{
    noises().add(name, description, [profile] { return profile; });
}

NoiseProfile
noiseProfile(const std::string &name)
{
    const NoiseFactory *factory = noises().find(name);
    if (factory == nullptr)
        fatal("unknown noise profile '", name, "' (see --list-modes)");
    return (*factory)();
}

bool
knownNoise(const std::string &name)
{
    return noises().find(name) != nullptr;
}

std::vector<std::pair<std::string, std::string>>
noiseNames()
{
    return noises().names();
}

void
applyAttackVariant(const std::string &name, UnxpecConfig &cfg)
{
    const AttackApply *apply = attacks().find(name);
    if (apply == nullptr)
        fatal("unknown attack variant '", name, "' (see --list-modes)");
    (*apply)(cfg);
}

bool
knownAttack(const std::string &name)
{
    return attacks().find(name) != nullptr;
}

std::vector<std::pair<std::string, std::string>>
attackNames()
{
    return attacks().names();
}

} // namespace unxpec
