/**
 * @file
 * One trial's worth of simulation state, built declaratively from an
 * ExperimentSpec (the SimEng CoreInstance pattern): defense config
 * from the registry, noise profile folded in, the per-trial seed
 * installed, the Core constructed, and the attack objects built lazily
 * on first use. Each trial owns its own Session — Core is non-copyable
 * and self-contained — which is what lets the TrialRunner fan trials
 * out across threads with no sharing.
 */

#ifndef UNXPEC_HARNESS_SESSION_HH
#define UNXPEC_HARNESS_SESSION_HH

#include <cstdint>
#include <memory>

#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "harness/spec.hh"

namespace unxpec {

/** A fully built simulation instance for one trial. */
class Session
{
  public:
    /** Build the spec's machine with an explicit seed. */
    Session(const ExperimentSpec &spec, std::uint64_t seed);

    /**
     * The SystemConfig a Session would run with, without building the
     * Core — for benches that need bare Cores (e.g. baseline runs).
     */
    static SystemConfig configFor(const ExperimentSpec &spec,
                                  std::uint64_t seed);

    Core &core() { return *core_; }
    const ExperimentSpec &spec() const { return spec_; }
    const SystemConfig &config() const { return cfg_; }
    std::uint64_t seed() const { return seed_; }

    /** The spec's unXpec attack (variant + attackCfg), built lazily. */
    UnxpecAttack &unxpec();

    /** A Spectre-v1 attack on this core, built lazily. */
    SpectreV1 &spectre();

  private:
    ExperimentSpec spec_;
    std::uint64_t seed_;
    SystemConfig cfg_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<UnxpecAttack> unxpec_;
    std::unique_ptr<SpectreV1> spectre_;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_SESSION_HH
