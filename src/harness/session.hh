/**
 * @file
 * One trial's worth of simulation state, built declaratively from an
 * ExperimentSpec (the SimEng CoreInstance pattern): defense config
 * from the registry, noise profile folded in, the per-trial seed
 * installed, the Core constructed, and the attack objects built lazily
 * on first use. Each trial owns its own Session — which is what lets
 * the TrialRunner fan trials out across threads with no sharing.
 *
 * The Core itself can come from a per-worker CorePool: instead of
 * reallocating caches, ROB, and memory pages every trial, the pool
 * keeps one Core per spec and re-seeds it via Core::reset, which is
 * bit-identical to fresh construction with the same seed.
 */

#ifndef UNXPEC_HARNESS_SESSION_HH
#define UNXPEC_HARNESS_SESSION_HH

#include <cstdint>
#include <map>
#include <memory>

#include "attack/spectre_v1.hh"
#include "attack/unxpec.hh"
#include "cpu/core.hh"
#include "harness/spec.hh"
#include "harness/trial_runner.hh"
#include "machine/machine.hh"

namespace unxpec {

class CrossCoreAttack;

/**
 * Per-worker-thread cache of Machines keyed by (spec index, batch
 * lane). Not thread-safe — every TrialRunner worker owns its own pool,
 * so there is no sharing to synchronize. A cached Machine is reused
 * via Machine::reset(seed) when the requested config matches the
 * cached one in everything but the seed; a genuinely different machine
 * (a spec tweak that depends on the seed, say) is rebuilt. The lane
 * key exists for lock-step batching, where the W concurrent trials of
 * a batch may all want the same spec's Machine at once.
 *
 * Each slot also caches the spec's UnxpecAttack (unxpecFor): attack
 * construction — program assembly, data layout, eviction-set
 * derivation — is a pure function of (core config, attack config), so
 * a cached attack reset via UnxpecAttack::resetTrialState behaves
 * bit-identically to a fresh one while skipping the rebuild, which
 * dominates per-trial setup once the Machine itself is pooled.
 */
class CorePool
{
  public:
    /** The spec's Machine, reset to cfg.seed (built on first use). */
    Machine &acquire(std::size_t spec_index, unsigned lane,
                     const SystemConfig &cfg);

    /** Lane-0 shorthand (unbatched callers). */
    Machine &
    acquire(std::size_t spec_index, const SystemConfig &cfg)
    {
        return acquire(spec_index, 0, cfg);
    }

    /**
     * The slot's cached UnxpecAttack on `machine`, reset for a new
     * trial — rebuilt when the attack config (or the Machine itself)
     * changed. `machine` must be the Machine acquire() returned for
     * this (spec_index, lane).
     */
    UnxpecAttack &unxpecFor(std::size_t spec_index, unsigned lane,
                            Machine &machine, const UnxpecConfig &cfg);

    /** Machines currently cached (tests). */
    std::size_t size() const { return slots_.size(); }

  private:
    struct Slot
    {
        SystemConfig cfg;
        std::unique_ptr<Machine> machine;
        /** Cached attack; references machine's core 0, so acquire()
         *  drops it whenever the Machine is rebuilt. */
        std::unique_ptr<UnxpecAttack> attack;
        UnxpecConfig attackCfg;
    };
    // Ordered map: spec count is tiny and acquire() runs once per
    // trial, so lookup cost is irrelevant — and an ordered container
    // can never grow a nondeterministic walk (lint_sim.py forbids
    // unordered iteration across src/).
    std::map<std::pair<std::size_t, unsigned>, Slot> slots_;
};

/** A fully built simulation instance for one trial. */
class Session
{
  public:
    /** Build the spec's machine with an explicit seed (owned Core). */
    Session(const ExperimentSpec &spec, std::uint64_t seed);

    /**
     * Build from a TrialContext: draws the Core from ctx.pool when the
     * runner supplied one (reset to ctx.seed), otherwise owns a fresh
     * Core exactly like Session(spec, seed). When the runner armed a
     * watchdog (ctx.control), the Core gets the simulated-cycle budget
     * and the destructor reports any cycle-limit trip back so the
     * runner censors the trial.
     */
    explicit Session(const TrialContext &ctx);

    ~Session();

    /**
     * The SystemConfig a Session would run with, without building the
     * Core — for benches that need bare Cores (e.g. baseline runs).
     */
    static SystemConfig configFor(const ExperimentSpec &spec,
                                  std::uint64_t seed);

    /** The primary core (core 0 — the sender/attacker core). */
    Core &core() { return machine_->core(); }
    /** The whole machine (all cores + coherence engine). */
    Machine &machine() { return *machine_; }
    const ExperimentSpec &spec() const { return spec_; }
    const SystemConfig &config() const { return cfg_; }
    std::uint64_t seed() const { return seed_; }

    /** The spec's unXpec attack (variant + attackCfg), built lazily. */
    UnxpecAttack &unxpec();

    /** A Spectre-v1 attack on this core, built lazily. */
    SpectreV1 &spectre();

    /** The cross-core unXpec attack (needs spec.cores >= 2), lazily. */
    CrossCoreAttack &crossCore();

  private:
    ExperimentSpec spec_;
    std::uint64_t seed_;
    SystemConfig cfg_;
    std::unique_ptr<Machine> owned_; //!< empty when pooled
    Machine *machine_;
    TrialControl *control_ = nullptr; //!< runner watchdog, may be null
    CorePool *pool_ = nullptr;        //!< set when the Machine is pooled
    std::size_t specIndex_ = 0;
    unsigned lane_ = 0;
    std::unique_ptr<UnxpecAttack> unxpec_; //!< owned-Machine path only
    std::unique_ptr<SpectreV1> spectre_;
    std::unique_ptr<CrossCoreAttack> crossCore_;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_SESSION_HH
