/**
 * @file
 * The shared bench/example command line. Every harness-driven binary
 * accepts the same flags:
 *
 *   --reps N       replications per experiment point
 *   --seed S       master seed (per-trial seeds derive from it)
 *   --threads T    trial-pool width (0 or omitted = hardware)
 *   --cores N      cores per simulated machine (shared L2 + MESI)
 *   --mode NAME    defense registry key overriding the bench default
 *   --noise NAME   noise-profile registry key overriding the default
 *   --scale N      bench-specific size knob (samples, bits, insts...)
 *   --json PATH    write the machine-readable result as JSON
 *   --csv PATH     write the result as CSV
 *   --trace PATH   capture a Chrome-trace event file (chrome://tracing)
 *   --trace-categories LIST  categories to record (cpu,cache,cleanup,
 *                  branch,coherence or all; default all)
 *   --trace-split  one trace file per trial instead of one merged file
 *   --campaign PATH          journal every completed trial to a
 *                  crash-consistent manifest (campaign.jsonl)
 *   --resume PATH  skip trials already journaled in PATH (implies
 *                  --campaign PATH unless one was given)
 *   --trial-timeout-cycles N censor trials whose simulation exceeds N
 *                  simulated cycles
 *   --trial-timeout-ms N     censor trials exceeding N host
 *                  milliseconds (wall-clock, outside the core)
 *   --retries N    retry budget for censored trials / crashed shards
 *   --shards K     fork K crash-isolated subprocess workers
 *   --batch W      run W trials lock-step on one worker (fiber batch)
 *   --list-modes   print registered defenses/noises/attacks and exit
 *   --help         usage
 *
 * A bare positional integer is accepted as an alias for --scale,
 * preserving the seed benches' `fig07 1000` style invocations.
 */

#ifndef UNXPEC_HARNESS_CLI_HH
#define UNXPEC_HARNESS_CLI_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "harness/spec.hh"
#include "harness/trial_runner.hh"

namespace unxpec {

/** Parsed harness options. */
struct HarnessOptions
{
    unsigned reps = 1;
    std::uint64_t seed = 1;
    unsigned threads = 0;      //!< 0 = hardware concurrency
    unsigned cores = 1;        //!< cores per simulated machine
    std::string mode;          //!< empty = bench default defense
    std::string noise;         //!< empty = bench default noise
    std::uint64_t scale = 0;   //!< bench-specific size knob
    std::string text;          //!< free-form positional (messages etc.)
    std::string jsonPath;
    std::string csvPath;
    std::string tracePath;     //!< empty = event tracing off
    /** Parsed --trace-categories mask (default: everything). */
    std::uint32_t traceCategories = kTraceCatAll;
    bool traceSplit = false;   //!< one trace file per trial

    // Fault-tolerant campaign flags (see campaign.hh).
    std::string campaignPath;  //!< empty = no trial journal
    std::string resumePath;    //!< empty = fresh campaign
    std::uint64_t trialTimeoutCycles = 0; //!< 0 = no simulated budget
    std::uint64_t trialTimeoutMs = 0;     //!< 0 = no host budget
    unsigned retries = 0;
    unsigned shards = 1;
    /** Lock-step trials per worker (BatchRunner width); 1 = serial. */
    unsigned batch = 1;
    /** Matrix campaign: sweep every registered defense x receiver
     *  family instead of the curated default subset. */
    bool matrix = false;
};

/** Declarative CLI parser shared by all benches and examples. */
class HarnessCli
{
  public:
    HarnessCli(std::string name, std::string description);

    /** Default replication count (before --reps). Chainable. */
    HarnessCli &defaultReps(unsigned reps);
    /** Default master seed (before --seed). Chainable. */
    HarnessCli &defaultSeed(std::uint64_t seed);
    /** Enable --scale with per-bench meaning and default. Chainable. */
    HarnessCli &scaleOption(std::string help, std::uint64_t value);
    /** Accept a free-form positional string (e.g. a message). */
    HarnessCli &textArg(std::string help, std::string value);
    /** Default defense registry key (before --mode). Chainable. */
    HarnessCli &defaultMode(std::string mode);
    /** Default noise registry key (before --noise). Chainable. */
    HarnessCli &defaultNoise(std::string noise);

    /**
     * Parse. Exits the process on --help, --list-modes, or malformed
     * or unknown arguments; otherwise returns the resolved options
     * with all defaults applied and registry names validated.
     */
    HarnessOptions parse(int argc, char **argv) const;

    /**
     * An ExperimentSpec preloaded with this run's defense and noise
     * (the CLI overrides when given, the bench defaults otherwise).
     */
    ExperimentSpec baseSpec(const HarnessOptions &options) const;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

  private:
    void usage(std::ostream &os) const;

    std::string name_;
    std::string description_;
    unsigned reps_ = 1;
    std::uint64_t seed_ = 1;
    std::string mode_ = "cleanup_l1l2";
    std::string noise_ = "quiet";
    bool hasScale_ = false;
    std::string scaleHelp_;
    std::uint64_t scale_ = 0;
    bool hasText_ = false;
    std::string textHelp_;
    std::string text_;
};

/**
 * Convenience driver: build a TrialRunner from the options, execute
 * the specs, and stamp the result with the CLI's provenance.
 */
ExperimentResult runExperiment(const HarnessCli &cli,
                               const HarnessOptions &options,
                               const std::vector<ExperimentSpec> &specs,
                               const TrialFn &fn);

/**
 * Emit --json/--csv artifacts (no-op when neither was given). Returns
 * the process exit code: 0 on success, 1 when a file failed to open,
 * 2 when the result is incomplete (a sharded campaign gave up on some
 * trials) — the artifacts are still written so partial results are
 * never lost, and the campaign can be finished with --resume.
 */
int finishExperiment(const ExperimentResult &result,
                     const HarnessOptions &options);

/**
 * The --list-modes listing: every registry printed name-sorted (the
 * registries themselves keep registration order, which moves whenever
 * a registration is added — sorting makes the listing goldenable).
 */
void printRegistries(std::ostream &os);

} // namespace unxpec

#endif // UNXPEC_HARNESS_CLI_HH
