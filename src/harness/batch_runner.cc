#include "harness/batch_runner.hh"

#include <algorithm>
#include <exception>

#include "cpu/core.hh"
#include "sim/log.hh"

// Fibers need raw stack switching, which ASan/TSan instrumentation
// does not follow without per-switch annotations; under sanitizers the
// batch degrades to serial execution (bit-identical by construction).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UNXPEC_BATCH_FIBERS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define UNXPEC_BATCH_FIBERS 0
#else
#define UNXPEC_BATCH_FIBERS 1
#endif
#else
#define UNXPEC_BATCH_FIBERS 1
#endif

#if UNXPEC_BATCH_FIBERS
#include <ucontext.h>
#endif

namespace unxpec {

#if UNXPEC_BATCH_FIBERS

namespace {
/** Fiber stack size. Trial bodies build a Session (Machine + attack)
 *  on the fiber stack; 512 KiB covers the deepest configuration with
 *  ample margin while keeping W stacks cheap to retain. */
constexpr std::size_t kFiberStackBytes = 512 * 1024;

/**
 * Cycles a blocked core advances per scheduler visit. Trials are
 * fully independent, so any interleaving is bit-identical to serial —
 * the chunk size is purely a locality knob: per-cycle round-robin
 * would swap W working sets every simulated cycle, evicting each
 * trial's hot cache/ROB state W times per line reuse. A modest chunk
 * keeps each trial's state resident long enough to be amortized while
 * still bounding how far any batch mate can run ahead.
 */
constexpr unsigned kStepChunkCycles = 256;
} // namespace

struct BatchRunner::Impl
{
    /**
     * One fiber slot. The slot doubles as the RunYield installed on
     * the trial's cores: driveRun() records which core entered its run
     * phase and yields to the scheduler, which then steps every
     * blocked core in the shared sweep loop until each run finishes.
     */
    struct Slot : RunYield
    {
        Impl *impl = nullptr;
        ucontext_t ctx{};
        std::unique_ptr<char[]> stack; //!< reused across task groups
        const TrialBody *body = nullptr;
        Core *blocked = nullptr; //!< core waiting in its run loop
        bool started = false;
        bool finished = false;
        std::exception_ptr error;

        void
        driveRun(Core &core) override
        {
            blocked = &core;
            // Yield to the scheduler; it resumes this fiber once the
            // core's run is complete (runStep returned false).
            swapcontext(&ctx, &impl->main_);
        }
    };

    ucontext_t main_{};
    std::vector<std::unique_ptr<Slot>> slots_;

    /** Trampoline target; reads the entering slot from a thread-local
     *  because makecontext passes only ints portably. */
    static thread_local Slot *entering_;

    static void
    fiberEntry()
    {
        Slot *slot = entering_;
        try {
            (*slot->body)(slot);
        } catch (...) {
            slot->error = std::current_exception();
        }
        slot->finished = true;
        // uc_link returns to main_ when this function falls off.
    }

    /** Run `count` tasks starting at `tasks[base]` in lock step. */
    void
    runGroup(std::vector<TrialBody> &tasks, std::size_t base,
             std::size_t count)
    {
        for (std::size_t k = 0; k < count; ++k) {
            Slot &slot = *slots_[k];
            slot.body = &tasks[base + k];
            slot.blocked = nullptr;
            slot.started = false;
            slot.finished = false;
            slot.error = nullptr;
        }

        std::size_t live = count;
        while (live > 0) {
            // Resume phase, slot order: start fresh fibers or resume
            // ones whose run just completed. A body may block again
            // (next Core::run round) or finish.
            for (std::size_t k = 0; k < count; ++k) {
                Slot &slot = *slots_[k];
                if (slot.finished || slot.blocked != nullptr)
                    continue;
                if (!slot.started) {
                    slot.started = true;
                    getcontext(&slot.ctx);
                    slot.ctx.uc_stack.ss_sp = slot.stack.get();
                    slot.ctx.uc_stack.ss_size = kFiberStackBytes;
                    slot.ctx.uc_link = &main_;
                    makecontext(&slot.ctx, fiberEntry, 0);
                    entering_ = &slot;
                }
                swapcontext(&main_, &slot.ctx);
                if (slot.finished)
                    --live;
            }

            // Step phase: the lock-step kernel. Sweep every blocked
            // core a chunk of cycles at a time (trial-major inner
            // loop) until some run completes; its fiber is resumed in
            // the next resume phase. Slot order keeps the schedule
            // (and any shared-Rng interleaving, were there any)
            // deterministic.
            bool any_blocked = false;
            for (std::size_t k = 0; k < count; ++k)
                any_blocked |= slots_[k]->blocked != nullptr;
            bool run_done = !any_blocked;
            while (!run_done) {
                for (std::size_t k = 0; k < count; ++k) {
                    Slot &slot = *slots_[k];
                    if (slot.blocked == nullptr)
                        continue;
                    for (unsigned c = 0; c < kStepChunkCycles; ++c) {
                        if (!slot.blocked->runStep()) {
                            slot.blocked = nullptr;
                            run_done = true;
                            break;
                        }
                    }
                }
            }
        }

        for (std::size_t k = 0; k < count; ++k) {
            if (slots_[k]->error)
                std::rethrow_exception(slots_[k]->error);
        }
    }
};

thread_local BatchRunner::Impl::Slot *BatchRunner::Impl::entering_ = nullptr;

BatchRunner::BatchRunner(unsigned width)
    : width_(width == 0 ? 1 : width), impl_(std::make_unique<Impl>())
{
    impl_->slots_.reserve(width_);
    for (unsigned k = 0; k < width_; ++k) {
        auto slot = std::make_unique<Impl::Slot>();
        slot->impl = impl_.get();
        slot->stack = std::make_unique<char[]>(kFiberStackBytes);
        impl_->slots_.push_back(std::move(slot));
    }
}

BatchRunner::~BatchRunner() = default;

bool
BatchRunner::lockStepAvailable()
{
    return true;
}

void
BatchRunner::run(std::vector<TrialBody> &tasks)
{
    std::size_t base = 0;
    while (base < tasks.size()) {
        const std::size_t count =
            std::min<std::size_t>(width_, tasks.size() - base);
        if (count <= 1) {
            // A lone trial gains nothing from a fiber: run it inline.
            tasks[base](nullptr);
        } else {
            impl_->runGroup(tasks, base, count);
        }
        base += count;
    }
}

#else // !UNXPEC_BATCH_FIBERS

struct BatchRunner::Impl
{
};

BatchRunner::BatchRunner(unsigned width)
    : width_(width == 0 ? 1 : width), impl_(nullptr)
{
}

BatchRunner::~BatchRunner() = default;

bool
BatchRunner::lockStepAvailable()
{
    return false;
}

void
BatchRunner::run(std::vector<TrialBody> &tasks)
{
    // Sanitizer build: serial execution, identical results (trials are
    // independent, so interleaving never affects them anyway).
    for (TrialBody &task : tasks)
        task(nullptr);
}

#endif // UNXPEC_BATCH_FIBERS

} // namespace unxpec
