#include "harness/matrix.hh"

#include <algorithm>

#include "analysis/key_recovery.hh"
#include "analysis/roc.hh"
#include "attack/contention.hh"
#include "attack/victim_attack.hh"
#include "harness/session.hh"
#include "sim/rng.hh"
#include "workload/synth_spec.hh"

namespace unxpec {

namespace {

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (const double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

/** Post-warmup cycles of one synthetic workload on `cfg`. */
double
workloadCycles(SystemConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;
    const Program p = SynthSpec::generate(SynthSpec::profile("mcf_r"), 42);
    Core core(cfg);
    const RunResult run = core.run(p, options);
    return static_cast<double>(run.cycles - run.warmupCycles);
}

} // namespace

const std::vector<std::string> &
matrixReceivers()
{
    static const std::vector<std::string> receivers = {"unxpec",
                                                       "contention"};
    return receivers;
}

const std::vector<std::string> &
matrixDefaultDefenses()
{
    static const std::vector<std::string> defenses = {
        "unsafe",     "cleanup_l1", "cleanup_l1l2", "invisispec",
        "delay_on_miss", "safespec", "specbox",     "cachesquash",
    };
    return defenses;
}

std::vector<ExperimentSpec>
matrixSpecs(const ExperimentSpec &base, bool all_defenses)
{
    std::vector<std::string> defenses;
    if (all_defenses) {
        for (const auto &[name, description] : defenseNames())
            defenses.push_back(name);
    } else {
        defenses = matrixDefaultDefenses();
    }

    std::vector<ExperimentSpec> specs;
    std::size_t cell = 0;
    for (const std::string &defense : defenses) {
        for (const std::string &receiver : matrixReceivers()) {
            ExperimentSpec spec = base;
            spec.label = defense + "/" + receiver;
            spec.defense = defense;
            // The cache-state receiver is unxpec-probe: rollback timing
            // plus the Flush+Reload persistence tail, so the unsafe
            // baseline's persistent installs read as AUC ~1.0 too.
            spec.attack = receiver == "contention" ? "contention"
                                                   : "unxpec-probe";
            if (receiver == "contention") {
                // The contention channel needs the structural hazard: a
                // non-pipelined multiplier whose busy window survives
                // squashes. Cache defenses are untouched.
                spec.tweak = [](SystemConfig &cfg) {
                    cfg.core.mulPipelined = false;
                };
            }
            spec.with("cell", static_cast<double>(cell++));
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

TrialFn
matrixTrialFn(unsigned samples_per_class)
{
    return [samples_per_class](const TrialContext &ctx) {
        const bool contention =
            ctx.spec.label.find("/contention") != std::string::npos;

        std::vector<double> zeros;
        std::vector<double> ones;
        double cycles_per_sample = 0.0;
        {
            Session session(ctx);
            if (contention) {
                ContentionAttack attack(session.core());
                zeros = attack.collect(0, samples_per_class);
                ones = attack.collect(1, samples_per_class);
                cycles_per_sample = attack.cyclesPerSample();
            } else {
                UnxpecAttack &attack = session.unxpec();
                zeros = attack.collect(0, samples_per_class);
                ones = attack.collect(1, samples_per_class);
                cycles_per_sample = attack.cyclesPerSample();
            }
        }

        TrialOutput out;
        // Folded AUC = separability: a receiver can always flip its
        // decision rule, so a channel where secret=1 reads *faster*
        // (the unsafe baseline's persistence probe) is just as open.
        const double raw = RocCurve::of(zeros, ones).auc();
        out.metric("auc", std::max(raw, 1.0 - raw));
        out.metric("delta_cycles", meanOf(ones) - meanOf(zeros));
        out.metric("cycles_per_sample", cycles_per_sample);
        out.metric("workload_cycles",
                   workloadCycles(
                       Session::configFor(ctx.spec,
                                          Rng::deriveSeed(ctx.seed, 0)),
                       Rng::deriveSeed(ctx.seed, 1)));
        out.samples("latency0", std::move(zeros));
        out.samples("latency1", std::move(ones));
        return out;
    };
}

const std::vector<std::string> &
victimReceivers()
{
    static const std::vector<std::string> receivers = {
        "victim-aes", "victim-rsa", "victim-rsa-fu"};
    return receivers;
}

const std::vector<std::string> &
victimDefaultDefenses()
{
    static const std::vector<std::string> defenses = {
        "unsafe", "cleanup_l1", "cleanup_l1l2", "safespec",
        "cachesquash"};
    return defenses;
}

std::vector<ExperimentSpec>
victimSpecs(const ExperimentSpec &base, bool all_defenses)
{
    std::vector<std::string> defenses;
    if (all_defenses) {
        for (const auto &[name, description] : defenseNames())
            defenses.push_back(name);
    } else {
        defenses = victimDefaultDefenses();
    }

    std::vector<ExperimentSpec> specs;
    std::size_t cell = 0;
    for (const std::string &defense : defenses) {
        for (const std::string &receiver : victimReceivers()) {
            ExperimentSpec spec = base;
            spec.label = defense + "/" + receiver;
            spec.defense = defense;
            // The registry knows the two victims; the "-fu" receiver
            // is the RSA victim read through the contention channel.
            spec.attack = receiver == "victim-rsa-fu" ? "victim-rsa"
                                                      : receiver;
            if (receiver == "victim-rsa-fu") {
                spec.tweak = [](SystemConfig &cfg) {
                    cfg.core.mulPipelined = false;
                };
            }
            spec.with("cell", static_cast<double>(cell++));
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

TrialFn
victimTrialFn(unsigned plaintexts)
{
    return [plaintexts](const TrialContext &ctx) {
        const std::size_t slash = ctx.spec.label.find('/');
        const std::string receiver = slash == std::string::npos
            ? ctx.spec.label
            : ctx.spec.label.substr(slash + 1);

        double fraction = 0.0;
        double recovered_bits = 0.0;
        double delta = 0.0;
        double rate = 0.0;
        double cycles_per_sample = 0.0;
        {
            Session session(ctx);
            // The planted secret derives from the trial seed: every
            // rep recovers a different key, and the artifact is still
            // bit-stable for a given master seed.
            Rng rng(Rng::deriveSeed(ctx.seed, 2));
            const double ghz = session.config().clockGHz;
            VictimAttackConfig vcfg;
            if (receiver == "victim-aes") {
                vcfg.plaintexts = std::min(std::max(plaintexts, 1u), 8u);
                VictimAttack attack(session.core(), vcfg);
                std::array<std::uint8_t, 16> key;
                for (std::uint8_t &b : key)
                    b = static_cast<std::uint8_t>(rng.next());
                attack.setKey(key);
                const AesRecoveryResult res = attack.recoverAesKey();
                unsigned correct = 0;
                for (unsigned b = 0; b < key.size(); ++b) {
                    correct += res.guess[b] == key[b];
                    delta += res.margin[b] / key.size();
                }
                // OST recovers whole bytes: a byte is either pinned
                // exactly or worthless.
                fraction = correct / 16.0;
                recovered_bits = 8.0 * correct;
                rate = recoveredBitsPerSecond(
                    recovered_bits,
                    static_cast<double>(attack.totalCycles()), ghz);
                cycles_per_sample = attack.cyclesPerSample();
            } else {
                vcfg.victim.kind = VictimKind::RsaSqMul;
                VictimAttack attack(session.core(), vcfg);
                const std::uint64_t exponent = rng.next();
                attack.setExponent(exponent);
                const RsaRecoveryResult res =
                    attack.recoverExponent(receiver == "victim-rsa-fu");
                const std::uint64_t wrong = res.guess ^ exponent;
                unsigned correct = 64;
                for (unsigned b = 0; b < 64; ++b)
                    correct -= (wrong >> b) & 1;
                fraction = correct / 64.0;
                recovered_bits = correct;
                delta = res.gap;
                rate = recoveredBitsPerSecond(
                    recovered_bits,
                    static_cast<double>(attack.totalCycles()), ghz);
                cycles_per_sample = attack.cyclesPerSample();
            }
        }

        TrialOutput out;
        out.metric("auc", fraction);
        out.metric("recovered_bits", recovered_bits);
        out.metric("recovered_bits_per_sec", rate);
        out.metric("delta_cycles", delta);
        out.metric("cycles_per_sample", cycles_per_sample);
        out.metric("workload_cycles",
                   workloadCycles(
                       Session::configFor(ctx.spec,
                                          Rng::deriveSeed(ctx.seed, 0)),
                       Rng::deriveSeed(ctx.seed, 1)));
        return out;
    };
}

} // namespace unxpec
