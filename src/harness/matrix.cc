#include "harness/matrix.hh"

#include <algorithm>

#include "analysis/roc.hh"
#include "attack/contention.hh"
#include "harness/session.hh"
#include "sim/rng.hh"
#include "workload/synth_spec.hh"

namespace unxpec {

namespace {

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (const double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

/** Post-warmup cycles of one synthetic workload on `cfg`. */
double
workloadCycles(SystemConfig cfg, std::uint64_t seed)
{
    cfg.seed = seed;
    RunOptions options;
    options.maxInstructions = 40000;
    options.warmupInstructions = 8000;
    const Program p = SynthSpec::generate(SynthSpec::profile("mcf_r"), 42);
    Core core(cfg);
    const RunResult run = core.run(p, options);
    return static_cast<double>(run.cycles - run.warmupCycles);
}

} // namespace

const std::vector<std::string> &
matrixReceivers()
{
    static const std::vector<std::string> receivers = {"unxpec",
                                                       "contention"};
    return receivers;
}

const std::vector<std::string> &
matrixDefaultDefenses()
{
    static const std::vector<std::string> defenses = {
        "unsafe",     "cleanup_l1", "cleanup_l1l2", "invisispec",
        "delay_on_miss", "safespec", "specbox",     "cachesquash",
    };
    return defenses;
}

std::vector<ExperimentSpec>
matrixSpecs(const ExperimentSpec &base, bool all_defenses)
{
    std::vector<std::string> defenses;
    if (all_defenses) {
        for (const auto &[name, description] : defenseNames())
            defenses.push_back(name);
    } else {
        defenses = matrixDefaultDefenses();
    }

    std::vector<ExperimentSpec> specs;
    std::size_t cell = 0;
    for (const std::string &defense : defenses) {
        for (const std::string &receiver : matrixReceivers()) {
            ExperimentSpec spec = base;
            spec.label = defense + "/" + receiver;
            spec.defense = defense;
            // The cache-state receiver is unxpec-probe: rollback timing
            // plus the Flush+Reload persistence tail, so the unsafe
            // baseline's persistent installs read as AUC ~1.0 too.
            spec.attack = receiver == "contention" ? "contention"
                                                   : "unxpec-probe";
            if (receiver == "contention") {
                // The contention channel needs the structural hazard: a
                // non-pipelined multiplier whose busy window survives
                // squashes. Cache defenses are untouched.
                spec.tweak = [](SystemConfig &cfg) {
                    cfg.core.mulPipelined = false;
                };
            }
            spec.with("cell", static_cast<double>(cell++));
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

TrialFn
matrixTrialFn(unsigned samples_per_class)
{
    return [samples_per_class](const TrialContext &ctx) {
        const bool contention =
            ctx.spec.label.find("/contention") != std::string::npos;

        std::vector<double> zeros;
        std::vector<double> ones;
        double cycles_per_sample = 0.0;
        {
            Session session(ctx);
            if (contention) {
                ContentionAttack attack(session.core());
                zeros = attack.collect(0, samples_per_class);
                ones = attack.collect(1, samples_per_class);
                cycles_per_sample = attack.cyclesPerSample();
            } else {
                UnxpecAttack &attack = session.unxpec();
                zeros = attack.collect(0, samples_per_class);
                ones = attack.collect(1, samples_per_class);
                cycles_per_sample = attack.cyclesPerSample();
            }
        }

        TrialOutput out;
        // Folded AUC = separability: a receiver can always flip its
        // decision rule, so a channel where secret=1 reads *faster*
        // (the unsafe baseline's persistence probe) is just as open.
        const double raw = RocCurve::of(zeros, ones).auc();
        out.metric("auc", std::max(raw, 1.0 - raw));
        out.metric("delta_cycles", meanOf(ones) - meanOf(zeros));
        out.metric("cycles_per_sample", cycles_per_sample);
        out.metric("workload_cycles",
                   workloadCycles(
                       Session::configFor(ctx.spec,
                                          Rng::deriveSeed(ctx.seed, 0)),
                       Rng::deriveSeed(ctx.seed, 1)));
        out.samples("latency0", std::move(zeros));
        out.samples("latency1", std::move(ones));
        return out;
    };
}

} // namespace unxpec
