#include "harness/cli.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "sim/log.hh"

namespace unxpec {

namespace {

bool
isInteger(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
    }
    return true;
}

std::uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    if (!isInteger(value))
        fatal(flag, " expects a non-negative integer, got '", value, "'");
    return std::strtoull(value.c_str(), nullptr, 10);
}

void
printRegistry(std::ostream &os, const char *title,
              std::vector<std::pair<std::string, std::string>> names)
{
    // Name-sorted, not registration-ordered: a new registration lands
    // in its alphabetical place instead of reshuffling the listing, so
    // tests can golden it (cli_test.cc).
    std::sort(names.begin(), names.end());
    os << title << ":\n";
    for (const auto &[name, description] : names)
        os << "  " << name << "\n      " << description << "\n";
}

} // namespace

void
printRegistries(std::ostream &os)
{
    printRegistry(os, "defenses (--mode)", defenseNames());
    printRegistry(os, "noise profiles (--noise)", noiseNames());
    printRegistry(os, "attack variants", attackNames());
}

HarnessCli::HarnessCli(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{
}

HarnessCli &
HarnessCli::defaultReps(unsigned reps)
{
    reps_ = reps;
    return *this;
}

HarnessCli &
HarnessCli::defaultSeed(std::uint64_t seed)
{
    seed_ = seed;
    return *this;
}

HarnessCli &
HarnessCli::scaleOption(std::string help, std::uint64_t value)
{
    hasScale_ = true;
    scaleHelp_ = std::move(help);
    scale_ = value;
    return *this;
}

HarnessCli &
HarnessCli::textArg(std::string help, std::string value)
{
    hasText_ = true;
    textHelp_ = std::move(help);
    text_ = std::move(value);
    return *this;
}

HarnessCli &
HarnessCli::defaultMode(std::string mode)
{
    mode_ = std::move(mode);
    return *this;
}

HarnessCli &
HarnessCli::defaultNoise(std::string noise)
{
    noise_ = std::move(noise);
    return *this;
}

void
HarnessCli::usage(std::ostream &os) const
{
    os << name_ << " — " << description_ << "\n\n"
       << "usage: " << name_ << " [options]";
    if (hasScale_)
        os << " [scale]";
    if (hasText_)
        os << " [" << textHelp_ << "]";
    os << "\n\n"
       << "  --reps N       replications per experiment point (default "
       << reps_ << ")\n"
       << "  --seed S       master seed; per-trial seeds derive from it "
          "(default "
       << seed_ << ")\n"
       << "  --threads T    trial-pool width; 0 = hardware concurrency "
          "(default 0)\n"
       << "  --cores N      cores per simulated machine, sharing one L2 "
          "through MESI (default 1)\n"
       << "  --mode NAME    defense (default " << mode_ << ")\n"
       << "  --noise NAME   noise profile (default " << noise_ << ")\n";
    if (hasScale_) {
        os << "  --scale N      " << scaleHelp_ << " (default " << scale_
           << ")\n";
    }
    os << "  --json PATH    write the result as JSON "
          "(schema unxpec-experiment-v2)\n"
       << "  --csv PATH     write the result as CSV\n"
       << "  --trace PATH   capture a Chrome-trace event file "
          "(open in chrome://tracing or Perfetto)\n"
       << "  --trace-categories LIST\n"
          "                 comma list of cpu, cache, cleanup, branch, "
          "coherence, or all (default all)\n"
       << "  --trace-split  write one trace file per trial "
          "(PATH.s<spec>.r<rep>.json) instead of one merged file\n"
       << "  --campaign PATH\n"
          "                 journal every completed trial to a "
          "crash-consistent manifest\n"
       << "  --resume PATH  skip trials already journaled in PATH "
          "(implies --campaign PATH)\n"
       << "  --trial-timeout-cycles N\n"
          "                 censor trials whose simulation exceeds N "
          "simulated cycles\n"
       << "  --trial-timeout-ms N\n"
          "                 censor trials exceeding N host milliseconds "
          "(wall-clock)\n"
       << "  --retries N    retry budget for censored trials and "
          "crashed shards (default 0)\n"
       << "  --shards K     fork K crash-isolated subprocess workers "
          "(requires --campaign)\n"
       << "  --batch W      run W trials lock-step per worker through "
          "the fiber batch kernel (default 1; results are "
          "bit-identical to serial)\n"
       << "  --matrix       matrix campaigns only: sweep every "
          "registered defense instead of the default subset\n"
       << "  --list-modes   list registered defenses, noise profiles, "
          "and attacks\n"
       << "  --help         this text\n";
}

HarnessOptions
HarnessCli::parse(int argc, char **argv) const
{
    HarnessOptions options;
    options.reps = reps_;
    options.seed = seed_;
    options.scale = scale_;
    options.text = text_;

    bool sawPositionalInt = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal(arg, " expects a value (see --help)");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--list-modes") {
            printRegistries(std::cout);
            std::exit(0);
        } else if (arg == "--reps") {
            options.reps = static_cast<unsigned>(parseU64(arg, value()));
            if (options.reps == 0)
                fatal("--reps must be >= 1");
        } else if (arg == "--seed") {
            options.seed = parseU64(arg, value());
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(parseU64(arg, value()));
        } else if (arg == "--cores") {
            options.cores = static_cast<unsigned>(parseU64(arg, value()));
            if (options.cores == 0 || options.cores > 16)
                fatal("--cores must be in [1, 16]");
        } else if (arg == "--mode") {
            options.mode = value();
            if (!knownDefense(options.mode))
                fatal("unknown --mode '", options.mode,
                      "' (see --list-modes)");
        } else if (arg == "--noise") {
            options.noise = value();
            if (!knownNoise(options.noise))
                fatal("unknown --noise '", options.noise,
                      "' (see --list-modes)");
        } else if (arg == "--scale" && hasScale_) {
            options.scale = parseU64(arg, value());
        } else if (arg == "--json") {
            options.jsonPath = value();
        } else if (arg == "--csv") {
            options.csvPath = value();
        } else if (arg == "--trace") {
            options.tracePath = value();
            if (!kTraceEnabled)
                warn("--trace: this binary was built with "
                     "UNXPEC_TRACE=OFF; no events will be recorded");
        } else if (arg == "--trace-categories") {
            options.traceCategories = parseTraceCategories(value());
        } else if (arg == "--trace-split") {
            options.traceSplit = true;
        } else if (arg == "--campaign") {
            options.campaignPath = value();
        } else if (arg == "--resume") {
            options.resumePath = value();
        } else if (arg == "--trial-timeout-cycles") {
            options.trialTimeoutCycles = parseU64(arg, value());
        } else if (arg == "--trial-timeout-ms") {
            options.trialTimeoutMs = parseU64(arg, value());
        } else if (arg == "--retries") {
            options.retries = static_cast<unsigned>(parseU64(arg, value()));
        } else if (arg == "--shards") {
            options.shards = static_cast<unsigned>(parseU64(arg, value()));
            if (options.shards == 0)
                fatal("--shards must be >= 1");
        } else if (arg == "--batch") {
            options.batch = static_cast<unsigned>(parseU64(arg, value()));
            if (options.batch == 0 || options.batch > 64)
                fatal("--batch must be in [1, 64]");
        } else if (arg == "--matrix") {
            options.matrix = true;
        } else if (hasScale_ && !sawPositionalInt && isInteger(arg)) {
            options.scale = parseU64("scale", arg);
            sawPositionalInt = true;
        } else if (hasText_ && arg[0] != '-') {
            options.text = arg;
        } else {
            usage(std::cerr);
            fatal("unknown argument '", arg, "'");
        }
    }
    // --resume without --campaign keeps journaling to the same
    // manifest, so a resumed-then-killed campaign can resume again.
    if (options.campaignPath.empty() && !options.resumePath.empty())
        options.campaignPath = options.resumePath;
    if (options.shards > 1 && options.campaignPath.empty())
        fatal("--shards requires --campaign PATH (crashed shard ranges "
              "are recovered through the manifest)");
    return options;
}

ExperimentSpec
HarnessCli::baseSpec(const HarnessOptions &options) const
{
    ExperimentSpec spec;
    spec.defense = options.mode.empty() ? mode_ : options.mode;
    spec.noise = options.noise.empty() ? noise_ : options.noise;
    spec.cores = options.cores;
    return spec;
}

ExperimentResult
runExperiment(const HarnessCli &cli, const HarnessOptions &options,
              const std::vector<ExperimentSpec> &specs, const TrialFn &fn)
{
    TrialRunner runner(options.threads);
    if (!options.tracePath.empty()) {
        runner.setTrace({options.tracePath, options.traceCategories,
                         options.traceSplit});
    }
    CampaignConfig campaign;
    campaign.manifestPath = options.campaignPath;
    campaign.resumePath = options.resumePath;
    campaign.experiment = cli.name();
    campaign.trialTimeoutCycles = options.trialTimeoutCycles;
    campaign.trialTimeoutMs = options.trialTimeoutMs;
    campaign.retries = options.retries;
    campaign.shards = options.shards;
    runner.setCampaign(std::move(campaign));
    runner.setBatch(options.batch);
    return runner.runAll(cli.name(), cli.description(), specs, options.reps,
                         options.seed, fn);
}

int
finishExperiment(const ExperimentResult &result,
                 const HarnessOptions &options)
{
    const bool wrote = emitArtifacts(result, options.jsonPath,
                                     options.csvPath, std::cout);
    if (!wrote)
        return 1;
    if (result.incomplete) {
        warn("experiment '", result.experiment,
             "' is incomplete: some trials never finished (artifacts "
             "carry partial results and \"incomplete\": true)");
        return 2;
    }
    return 0;
}

} // namespace unxpec
