/**
 * @file
 * The attack x defense matrix campaign: every registered defense (or a
 * curated default subset) crossed with the two receiver families —
 * "unxpec" (cache-state rollback timing) and "contention" (SpectreRewind
 * FU contention on a non-pipelined multiplier). One spec per cell; the
 * shared trial function measures the channel's AUC, the raw timing
 * delta, the attack's sample cost, and the defense's workload cycles,
 * and MatrixReport::fromResult distills the rows into the Table-I-style
 * matrix artifact (analysis/matrix_report.hh).
 *
 * The campaign rides the ordinary harness machinery — journaling,
 * --resume, --shards, --batch all work — because the matrix is just an
 * ExperimentSpec sweep with a label convention.
 */

#ifndef UNXPEC_HARNESS_MATRIX_HH
#define UNXPEC_HARNESS_MATRIX_HH

#include <string>
#include <vector>

#include "harness/spec.hh"
#include "harness/trial_runner.hh"

namespace unxpec {

/** Receiver families the matrix crosses every defense with. */
const std::vector<std::string> &matrixReceivers();

/**
 * Defenses swept by default: the zoo's distinct mechanisms (unsafe,
 * both CleanupSpec flavors, InvisiSpec, delay-on-miss, SafeSpec,
 * SpecBox, CacheSquash) without the timing-countermeasure variants.
 */
const std::vector<std::string> &matrixDefaultDefenses();

/**
 * One spec per (defense, receiver) cell, labeled
 * "<defense>/<receiver>". `base` supplies noise/cores defaults;
 * `all_defenses` sweeps every registered defense instead of the
 * curated subset (the --matrix flag). Contention cells tweak the core
 * to a non-pipelined multiplier — the hardware SpectreRewind needs.
 */
std::vector<ExperimentSpec> matrixSpecs(const ExperimentSpec &base,
                                        bool all_defenses);

/**
 * The shared per-cell trial function: collects `samples_per_class`
 * receiver measurements per secret value and reports
 *   auc               RocCurve AUC over the two sample sets
 *   delta_cycles      mean(secret=1) - mean(secret=0)
 *   cycles_per_sample simulated cost of one receiver measurement
 *   workload_cycles   post-warmup cycles of a synthetic SPEC workload
 *                     on the cell's configuration (overhead is derived
 *                     against the unsafe row at report time)
 */
TrialFn matrixTrialFn(unsigned samples_per_class);

} // namespace unxpec

#endif // UNXPEC_HARNESS_MATRIX_HH
