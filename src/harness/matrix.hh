/**
 * @file
 * The attack x defense matrix campaign: every registered defense (or a
 * curated default subset) crossed with the two receiver families —
 * "unxpec" (cache-state rollback timing) and "contention" (SpectreRewind
 * FU contention on a non-pipelined multiplier). One spec per cell; the
 * shared trial function measures the channel's AUC, the raw timing
 * delta, the attack's sample cost, and the defense's workload cycles,
 * and MatrixReport::fromResult distills the rows into the Table-I-style
 * matrix artifact (analysis/matrix_report.hh).
 *
 * The campaign rides the ordinary harness machinery — journaling,
 * --resume, --shards, --batch all work — because the matrix is just an
 * ExperimentSpec sweep with a label convention.
 */

#ifndef UNXPEC_HARNESS_MATRIX_HH
#define UNXPEC_HARNESS_MATRIX_HH

#include <string>
#include <vector>

#include "harness/spec.hh"
#include "harness/trial_runner.hh"

namespace unxpec {

/** Receiver families the matrix crosses every defense with. */
const std::vector<std::string> &matrixReceivers();

/**
 * Defenses swept by default: the zoo's distinct mechanisms (unsafe,
 * both CleanupSpec flavors, InvisiSpec, delay-on-miss, SafeSpec,
 * SpecBox, CacheSquash) without the timing-countermeasure variants.
 */
const std::vector<std::string> &matrixDefaultDefenses();

/**
 * One spec per (defense, receiver) cell, labeled
 * "<defense>/<receiver>". `base` supplies noise/cores defaults;
 * `all_defenses` sweeps every registered defense instead of the
 * curated subset (the --matrix flag). Contention cells tweak the core
 * to a non-pipelined multiplier — the hardware SpectreRewind needs.
 */
std::vector<ExperimentSpec> matrixSpecs(const ExperimentSpec &base,
                                        bool all_defenses);

/**
 * The shared per-cell trial function: collects `samples_per_class`
 * receiver measurements per secret value and reports
 *   auc               RocCurve AUC over the two sample sets
 *   delta_cycles      mean(secret=1) - mean(secret=0)
 *   cycles_per_sample simulated cost of one receiver measurement
 *   workload_cycles   post-warmup cycles of a synthetic SPEC workload
 *                     on the cell's configuration (overhead is derived
 *                     against the unsafe row at report time)
 */
TrialFn matrixTrialFn(unsigned samples_per_class);

/**
 * Receiver families of the real-secret victim campaign
 * (bench/victim_recovery.cc): "victim-aes" (AES-128 T-table first
 * round through the Flush+Reload probe), "victim-rsa" (square-and-
 * multiply exponent bits through the multiplier-line reload), and
 * "victim-rsa-fu" (the same victim read through the SpectreRewind
 * FU-contention receiver on a non-pipelined multiplier).
 */
const std::vector<std::string> &victimReceivers();

/** Defenses the victim campaign sweeps by default: the unsafe
 *  baseline, both CleanupSpec flavors, and the two cache-hiding
 *  defenses the contention receiver re-opens. */
const std::vector<std::string> &victimDefaultDefenses();

/**
 * One spec per (defense, victim receiver) cell, labeled
 * "<defense>/<receiver>". `all_defenses` (the --matrix flag) sweeps
 * every registered defense. The "victim-rsa-fu" cells tweak the core
 * to a non-pipelined multiplier, exactly like the classic matrix's
 * contention cells.
 */
std::vector<ExperimentSpec> victimSpecs(const ExperimentSpec &base,
                                        bool all_defenses);

/**
 * The per-cell victim trial: plants a seed-derived secret (16-byte
 * AES key or 64-bit exponent), runs the full end-to-end recovery, and
 * reports
 *   auc                    recovered fraction (AES: correct key bytes
 *                          / 16; RSA: correct exponent bits / 64)
 *   recovered_bits         correctly recovered secret bits
 *   recovered_bits_per_sec recovery rate over the attack's simulated
 *                          cycles at the configured clock
 *   delta_cycles           mean ranking margin (AES) / bit-split gap
 *   cycles_per_sample      simulated cost of one victim run
 *   workload_cycles        synthetic-workload cycles (overhead column)
 * `plaintexts` bounds the AES evidence schedule (1..8).
 */
TrialFn victimTrialFn(unsigned plaintexts);

} // namespace unxpec

#endif // UNXPEC_HARNESS_MATRIX_HH
