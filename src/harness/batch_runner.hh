/**
 * @file
 * Lock-step batched trial executor. A batch of W independent trials is
 * run through one trial-major kernel: each trial body runs on its own
 * fiber (ucontext), and whenever it enters Core::run the fiber yields
 * back to the scheduler, which then advances all blocked cores in an
 * interleaved inner loop (a fixed chunk of cycles per core per visit —
 * a pure locality knob, see kStepChunkCycles). Per-trial hot state is
 * arena-backed and contiguous (sim/arena.hh), so the sweep walks W
 * compact working sets instead of re-faulting one trial's scattered
 * heap blocks per run.
 *
 * Determinism: trials are fully independent (no shared mutable state;
 * per-trial seeds come from Rng::deriveSeed), so any interleaving of
 * their cycles produces results bit-identical to running them
 * serially. The scheduler is nonetheless fully deterministic — slots
 * are started, stepped, and finished in index order — so a batched
 * campaign is reproducible run-to-run, and its outputs are
 * byte-identical to the serial path (tests/golden).
 *
 * Fallback: under ASan/TSan (which do not tolerate raw ucontext stack
 * switching without annotation support we do not assume), or when the
 * batch is trivial (width <= 1 or a single task), the runner simply
 * executes each body to completion with no yield installed — identical
 * results by construction, no fibers involved.
 */

#ifndef UNXPEC_HARNESS_BATCH_RUNNER_HH
#define UNXPEC_HARNESS_BATCH_RUNNER_HH

#include <functional>
#include <memory>
#include <vector>

namespace unxpec {

class RunYield;

class BatchRunner
{
  public:
    /**
     * One trial's work: set up the session/attack, run it, record the
     * output. The body must install the passed RunYield on every Core
     * it drives (Session does this via TrialContext::yield); a null
     * yield means "run serially".
     */
    using TrialBody = std::function<void(RunYield *)>;

    explicit BatchRunner(unsigned width);
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /**
     * Run every task to completion, lock-stepping their Core::run
     * phases when fibers are available (at most `width` at a time).
     * Task index order is preserved for starts, steps, and finishes.
     * The first exception thrown by any body (in slot order) is
     * rethrown after every fiber has unwound.
     */
    void run(std::vector<TrialBody> &tasks);

    unsigned width() const { return width_; }

    /** False when fibers are compiled out (sanitizer builds): run()
     *  degrades to serial execution with identical results. */
    static bool lockStepAvailable();

  private:
    struct Impl;

    unsigned width_;
    std::unique_ptr<Impl> impl_;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_BATCH_RUNNER_HH
