#include "harness/session.hh"

namespace unxpec {

Core &
CorePool::acquire(std::size_t spec_index, const SystemConfig &cfg)
{
    Slot &slot = slots_[spec_index];
    if (slot.core != nullptr && equalIgnoringSeed(slot.cfg, cfg)) {
        slot.core->reset(cfg.seed);
    } else {
        slot.core = std::make_unique<Core>(cfg);
    }
    slot.cfg = cfg;
    return *slot.core;
}

SystemConfig
Session::configFor(const ExperimentSpec &spec, std::uint64_t seed)
{
    SystemConfig cfg = makeDefense(spec.defense);
    noiseProfile(spec.noise).applyTo(cfg); // DRAM-jitter component
    cfg.seed = seed;
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

Session::Session(const ExperimentSpec &spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), cfg_(configFor(spec, seed)),
      owned_(std::make_unique<Core>(cfg_)), core_(owned_.get())
{
    noiseProfile(spec_.noise).applyTo(*core_); // interrupt component
}

Session::Session(const TrialContext &ctx)
    : spec_(ctx.spec), seed_(ctx.seed), cfg_(configFor(ctx.spec, ctx.seed)),
      owned_(ctx.pool == nullptr ? std::make_unique<Core>(cfg_) : nullptr),
      core_(ctx.pool == nullptr ? owned_.get()
                                : &ctx.pool->acquire(ctx.specIndex, cfg_))
{
    noiseProfile(spec_.noise).applyTo(*core_); // interrupt component
    // After acquire: Core::reset detaches any previous trial's tracer
    // before this trial's (if any) is installed.
    if (ctx.tracer != nullptr)
        core_->setEventTrace(ctx.tracer);
    control_ = ctx.control;
    if (control_ != nullptr && control_->timeoutCycles > 0)
        core_->setCycleBudget(control_->timeoutCycles);
}

Session::~Session()
{
    // Report a cycle-limit trip (campaign budget or RunOptions::
    // maxCycles) back to the runner: the trial's measurements were
    // truncated mid-flight and must be censored, not averaged.
    if (control_ != nullptr && core_->limitTripped()) {
        control_->censored = true;
        if (control_->censorReason.empty())
            control_->censorReason = "cycle-limit";
    }
}

UnxpecAttack &
Session::unxpec()
{
    if (!unxpec_) {
        UnxpecConfig cfg = spec_.attackCfg;
        applyAttackVariant(spec_.attack, cfg);
        unxpec_ = std::make_unique<UnxpecAttack>(*core_, cfg);
    }
    return *unxpec_;
}

SpectreV1 &
Session::spectre()
{
    if (!spectre_) {
        spectre_ = std::make_unique<SpectreV1>(*core_);
    }
    return *spectre_;
}

} // namespace unxpec
