#include "harness/session.hh"

#include "attack/cross_core.hh"
#include "sim/log.hh"

namespace unxpec {

Machine &
CorePool::acquire(std::size_t spec_index, unsigned lane,
                  const SystemConfig &cfg)
{
    Slot &slot = slots_[{spec_index, lane}];
    if (slot.machine != nullptr && equalIgnoringSeed(slot.cfg, cfg)) {
        slot.machine->reset(cfg.seed);
    } else {
        // The cached attack holds references into the old Machine's
        // core; rebuilding the Machine invalidates it.
        slot.attack.reset();
        slot.machine = std::make_unique<Machine>(cfg);
    }
    slot.cfg = cfg;
    return *slot.machine;
}

UnxpecAttack &
CorePool::unxpecFor(std::size_t spec_index, unsigned lane,
                    Machine &machine, const UnxpecConfig &cfg)
{
    const auto it = slots_.find({spec_index, lane});
    if (it == slots_.end() || it->second.machine.get() != &machine)
        fatal("CorePool::unxpecFor: machine is not this slot's machine");
    Slot &slot = it->second;
    if (slot.attack != nullptr && slot.attackCfg == cfg) {
        // Same (core config, attack config): the program and layout
        // are already correct; clear only the per-trial state.
        slot.attack->resetTrialState();
    } else {
        slot.attack = std::make_unique<UnxpecAttack>(machine.core(), cfg);
        slot.attackCfg = cfg;
    }
    return *slot.attack;
}

SystemConfig
Session::configFor(const ExperimentSpec &spec, std::uint64_t seed)
{
    SystemConfig cfg = makeDefense(spec.defense);
    noiseProfile(spec.noise).applyTo(cfg); // DRAM-jitter component
    cfg.seed = seed;
    cfg.numCores = spec.cores;
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

namespace {

/** Interrupt-noise component, core by core in index order. */
void
applyInterruptNoise(const ExperimentSpec &spec, Machine &machine)
{
    const NoiseProfile profile = noiseProfile(spec.noise);
    for (unsigned i = 0; i < machine.numCores(); ++i)
        profile.applyTo(machine.core(i));
}

} // namespace

Session::Session(const ExperimentSpec &spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), cfg_(configFor(spec, seed)),
      owned_(std::make_unique<Machine>(cfg_)), machine_(owned_.get())
{
    applyInterruptNoise(spec_, *machine_);
}

Session::Session(const TrialContext &ctx)
    : spec_(ctx.spec), seed_(ctx.seed), cfg_(configFor(ctx.spec, ctx.seed)),
      owned_(ctx.pool == nullptr ? std::make_unique<Machine>(cfg_)
                                 : nullptr),
      machine_(ctx.pool == nullptr
                   ? owned_.get()
                   : &ctx.pool->acquire(ctx.specIndex, ctx.lane, cfg_)),
      pool_(ctx.pool), specIndex_(ctx.specIndex), lane_(ctx.lane)
{
    applyInterruptNoise(spec_, *machine_);
    // After acquire: Machine::reset detaches any previous trial's
    // tracer (and run driver) before this trial's are installed.
    if (ctx.tracer != nullptr)
        machine_->setEventTrace(ctx.tracer);
    if (ctx.yield != nullptr)
        machine_->setRunYield(ctx.yield);
    control_ = ctx.control;
    if (control_ != nullptr && control_->timeoutCycles > 0)
        machine_->setCycleBudget(control_->timeoutCycles);
}

Session::~Session()
{
    // Report a cycle-limit trip (campaign budget or RunOptions::
    // maxCycles) back to the runner: the trial's measurements were
    // truncated mid-flight and must be censored, not averaged.
    if (control_ != nullptr && machine_->limitTripped()) {
        control_->censored = true;
        if (control_->censorReason.empty())
            control_->censorReason = "cycle-limit";
    }
}

UnxpecAttack &
Session::unxpec()
{
    UnxpecConfig cfg = spec_.attackCfg;
    applyAttackVariant(spec_.attack, cfg);
    if (pool_ != nullptr) {
        // Pooled Machine: the attack is cached alongside it, so steady
        // state skips program assembly and layout derivation entirely.
        return pool_->unxpecFor(specIndex_, lane_, *machine_, cfg);
    }
    if (!unxpec_)
        unxpec_ = std::make_unique<UnxpecAttack>(machine_->core(), cfg);
    return *unxpec_;
}

SpectreV1 &
Session::spectre()
{
    if (!spectre_) {
        spectre_ = std::make_unique<SpectreV1>(machine_->core());
    }
    return *spectre_;
}

CrossCoreAttack &
Session::crossCore()
{
    if (!crossCore_) {
        if (machine_->numCores() < 2) {
            fatal("Session::crossCore: the cross-core attack needs "
                  "spec.cores >= 2 (got ",
                  machine_->numCores(), ")");
        }
        UnxpecConfig cfg = spec_.attackCfg;
        applyAttackVariant(spec_.attack, cfg);
        crossCore_ = std::make_unique<CrossCoreAttack>(*machine_, cfg);
    }
    return *crossCore_;
}

} // namespace unxpec
