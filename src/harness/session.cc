#include "harness/session.hh"

namespace unxpec {

SystemConfig
Session::configFor(const ExperimentSpec &spec, std::uint64_t seed)
{
    SystemConfig cfg = makeDefense(spec.defense);
    noiseProfile(spec.noise).applyTo(cfg); // DRAM-jitter component
    cfg.seed = seed;
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

Session::Session(const ExperimentSpec &spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), cfg_(configFor(spec, seed)),
      core_(std::make_unique<Core>(cfg_))
{
    noiseProfile(spec_.noise).applyTo(*core_); // interrupt component
}

UnxpecAttack &
Session::unxpec()
{
    if (!unxpec_) {
        UnxpecConfig cfg = spec_.attackCfg;
        applyAttackVariant(spec_.attack, cfg);
        unxpec_ = std::make_unique<UnxpecAttack>(*core_, cfg);
    }
    return *unxpec_;
}

SpectreV1 &
Session::spectre()
{
    if (!spectre_) {
        spectre_ = std::make_unique<SpectreV1>(*core_);
    }
    return *spectre_;
}

} // namespace unxpec
