#include "harness/trial_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono> // lint-ok(wall-clock): host watchdog only, see hostNowMs
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>

#include "harness/batch_runner.hh"
#include "harness/session.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

void
TrialOutput::metric(const std::string &name, double value)
{
    metrics.emplace_back(name, value);
}

void
TrialOutput::samples(const std::string &name, std::vector<double> values)
{
    series.emplace_back(name, std::move(values));
}

TrialRunner::TrialRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

namespace {

/**
 * Host wall-clock in milliseconds, read only around the trial function
 * for the --trial-timeout-ms watchdog. Simulated time never touches
 * this: the deterministic core counts cycles, and the measured span
 * wraps fn() from the outside.
 */
std::uint64_t
hostNowMs()
{
    // lint-ok(wall-clock): per-trial host watchdog, outside the core
    const auto now = std::chrono::steady_clock::now();
    // lint-ok(wall-clock): per-trial host watchdog, outside the core
    return static_cast<std::uint64_t>(
        // lint-ok(wall-clock): per-trial host watchdog, outside the core
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count());
}

CampaignEntry
entryFromOutput(std::size_t job, const TrialOutput &output)
{
    CampaignEntry entry;
    entry.job = job;
    entry.seed = output.seedUsed;
    entry.attempt = output.attempt;
    entry.censored = output.censored;
    entry.censorReason = output.censorReason;
    entry.metrics = output.metrics;
    entry.series = output.series;
    return entry;
}

TrialOutput
outputFromEntry(const CampaignEntry &entry)
{
    TrialOutput output;
    output.metrics = entry.metrics;
    output.series = entry.series;
    output.completed = true;
    output.censored = entry.censored;
    output.censorReason = entry.censorReason;
    output.attempt = entry.attempt;
    output.seedUsed = entry.seed;
    return output;
}

} // namespace

std::vector<std::vector<TrialOutput>>
TrialRunner::run(const std::vector<ExperimentSpec> &specs, unsigned reps,
                 std::uint64_t master_seed, const TrialFn &fn) const
{
    if (reps == 0)
        fatal("TrialRunner: reps must be >= 1");

    const std::size_t jobs = specs.size() * reps;
    std::vector<std::string> labels;
    labels.reserve(specs.size());
    for (const ExperimentSpec &spec : specs)
        labels.push_back(spec.label);
    const CampaignHeader header{campaign_.experiment,
                                master_seed,
                                specs.size(),
                                reps,
                                std::max(1u, batch_),
                                campaignSpecDigest(labels)};

    std::map<std::size_t, CampaignEntry> resumed;
    if (!campaign_.resumePath.empty()) {
        CampaignManifest manifest =
            loadCampaignManifest(campaign_.resumePath);
        requireCompatibleManifest(manifest, header, campaign_.resumePath);
        for (const auto &[job, entry] : manifest.entries) {
            if (job >= jobs) {
                fatal("cannot resume from '", campaign_.resumePath,
                      "': entry for job ", job, " exceeds the campaign's ",
                      jobs, " trials");
            }
        }
        resumed = std::move(manifest.entries);
        inform("resume: ", resumed.size(), "/", jobs,
               " trials restored from ", campaign_.resumePath);
    }

    if (campaign_.shards > 1 && jobs > 1)
        return runSharded(specs, reps, master_seed, fn, header,
                          std::move(resumed));

    return runJobs(specs, reps, master_seed, fn, header, resumed, 0, jobs,
                   campaign_.manifestPath);
}

std::vector<std::vector<TrialOutput>>
TrialRunner::runJobs(const std::vector<ExperimentSpec> &specs, unsigned reps,
                     std::uint64_t master_seed, const TrialFn &fn,
                     const CampaignHeader &header,
                     const std::map<std::size_t, CampaignEntry> &resumed,
                     std::size_t lo, std::size_t hi,
                     const std::string &manifest_path) const
{
    const std::size_t jobs = specs.size() * reps;

    std::vector<std::vector<TrialOutput>> outputs(specs.size());
    for (auto &per_spec : outputs)
        per_spec.resize(reps);

    // Splice every resumed trial straight into its slot: the journal
    // stores values at round-trip precision, so a resumed campaign's
    // aggregate is bit-identical to an uninterrupted one.
    for (const auto &[job, entry] : resumed)
        outputs[job / reps][job % reps] = outputFromEntry(entry);

    std::unique_ptr<CampaignJournal> journal;
    if (!manifest_path.empty()) {
        journal = std::make_unique<CampaignJournal>(manifest_path, header);
        // A shard's journal carries only its own range; the in-process
        // journal (lo == 0, hi == jobs) carries everything.
        for (const auto &[job, entry] : resumed) {
            if (job >= lo && job < hi)
                journal->absorb(entry);
        }
        // Flush immediately so the manifest exists (and is resumable)
        // even if the process dies before the first fresh trial lands.
        journal->flush();
    }

    std::vector<std::size_t> pending;
    for (std::size_t job = lo; job < hi; ++job) {
        if (resumed.find(job) == resumed.end())
            pending.push_back(job);
    }

    // Batched runs claim consecutive slices of `pending` as lock-step
    // groups. Reorder it round-robin across specs so each group draws
    // from as many distinct specs as possible: group mates on the same
    // spec each need their own pooled Machine (see workBatch's lanes),
    // so spec-major order would widen the pool to W Machines of one
    // spec with almost no reuse. The permutation is a deterministic
    // function of the job list, and outputs are indexed by job, so
    // results (and the serial path, which never reorders) are
    // unaffected; only the journal's append order changes, which
    // resume does not care about (it splices by job index).
    if (batch_ > 1 && !pending.empty()) {
        std::vector<std::vector<std::size_t>> by_spec(specs.size());
        for (const std::size_t job : pending)
            by_spec[job / reps].push_back(job);
        pending.clear();
        for (std::size_t round = 0;; ++round) {
            bool any = false;
            for (const auto &bucket : by_spec) {
                if (round < bucket.size()) {
                    pending.push_back(bucket[round]);
                    any = true;
                }
            }
            if (!any)
                break;
        }
    }

    // With tracing on, every trial owns a private Tracer (indexed by
    // job, so results stay thread-count independent); the files are
    // written serially after the pool drains.
    const bool tracing = kTraceEnabled && !trace_.path.empty();
    std::vector<std::unique_ptr<Tracer>> tracers;
    if (tracing) {
        tracers.resize(jobs);
        if (!resumed.empty()) {
            warn("event trace: ", resumed.size(),
                 " resumed trials were not re-executed and have no trace");
        }
    }

    CrashInjector injector;
    const bool host_watchdog = campaign_.trialTimeoutMs > 0;
    const unsigned batch_width = std::max(1u, batch_);
    if (batch_width > 1 && host_watchdog) {
        warn("--batch ", batch_width, " with --trial-timeout-ms: the "
             "host watchdog times each trial's share of a lock-step "
             "batch, which includes cycles spent stepping its batch "
             "mates; expect earlier host-timeout censoring than a "
             "serial run (simulated-cycle budgets are unaffected)");
    }

    // One attempt of one trial. `yield` non-null means the attempt is
    // a lane of a lock-step batch (Session installs it on the cores);
    // retries always pass nullptr and run serially. Returns whether
    // the attempt overran the host wall-clock watchdog.
    auto attemptOnce = [&](std::size_t job, CorePool *core_pool,
                           unsigned lane, unsigned attempt, RunYield *yield,
                           TrialOutput &output) -> bool {
        const std::size_t spec_index = job / reps;
        const unsigned rep = static_cast<unsigned>(job % reps);
        TrialControl control;
        control.timeoutCycles = campaign_.trialTimeoutCycles;
        TrialContext ctx{specs[spec_index], spec_index, rep,
                         Rng::deriveRetrySeed(master_seed, job, attempt),
                         master_seed, core_pool};
        ctx.control = &control;
        ctx.lane = lane;
        ctx.yield = yield;
        if (tracing) {
            // A fresh ring per attempt: the exported trace belongs
            // to the attempt whose numbers made it into the row.
            tracers[job] = std::make_unique<Tracer>(trace_.categories,
                                                    trace_.capacity);
            ctx.tracer = tracers[job].get();
        }

        const std::uint64_t start_ms = host_watchdog ? hostNowMs() : 0;
        output = fn(ctx);
        output.completed = true;
        output.censored = false;
        output.censorReason.clear();
        output.attempt = attempt;
        output.seedUsed = ctx.seed;

        if (control.censored) {
            output.censored = true;
            output.censorReason = control.censorReason.empty()
                ? "cycle-limit" : control.censorReason;
        }
        bool host_overrun = false;
        if (host_watchdog &&
            hostNowMs() - start_ms > campaign_.trialTimeoutMs) {
            host_overrun = true;
            output.censored = true;
            output.censorReason = output.censorReason.empty()
                ? "host-timeout"
                : output.censorReason + "+host-timeout";
        }
        return host_overrun;
    };

    // Serial retry loop (attempts 1..retries) plus the journal append:
    // semantics identical to the historical single work() loop —
    // censored attempts retry under fresh derived seeds, host-level
    // overruns back off exponentially first, and the journal records
    // the surviving attempt.
    auto finishJob = [&](std::size_t job, CorePool *core_pool,
                         unsigned lane, TrialOutput &output,
                         bool host_overrun) {
        for (unsigned attempt = 1;
             output.censored && attempt <= campaign_.retries; ++attempt) {
            // Host-level overruns get exponential backoff before the
            // retry (host contention tends to be transient); a
            // simulated-cycle trip re-runs immediately.
            if (host_overrun)
                backoffBeforeRetry(attempt);
            host_overrun = attemptOnce(job, core_pool, lane, attempt,
                                       nullptr, output);
        }
        outputs[job / reps][job % reps] = output;
        if (journal != nullptr)
            journal->append(entryFromOutput(job, output));
        // After the flush: an injected abort leaves the trial in the
        // manifest, exercising the worst-case crash point.
        injector.onTrialComplete();
    };

    auto work = [&](std::size_t job, CorePool *core_pool) {
        TrialOutput output;
        const bool host_overrun =
            attemptOnce(job, core_pool, 0, 0, nullptr, output);
        finishJob(job, core_pool, 0, output, host_overrun);
    };

    // Lock-step batch over one group of jobs: first attempts run
    // batched; finishJob (retries + journal) then runs per lane in
    // group order. A trial's pool lane is its spec's occurrence index
    // *within the group* — two group mates on the same spec need
    // distinct Machines at once, but across groups lane k of a spec is
    // always the same pool slot, so a width-W batch over diverse specs
    // keeps the pool at ~ceil(W/specs) Machines per spec instead of
    // widening to W.
    auto workBatch = [&](const std::vector<std::size_t> &jobs_slice,
                         CorePool *core_pool, BatchRunner &batch) {
        const std::size_t count = jobs_slice.size();
        std::vector<unsigned> lanes(count, 0);
        for (std::size_t k = 0; k < count; ++k) {
            for (std::size_t j = 0; j < k; ++j) {
                if (jobs_slice[j] / reps == jobs_slice[k] / reps)
                    ++lanes[k];
            }
        }
        std::vector<TrialOutput> batch_outputs(count);
        std::vector<char> overruns(count, 0);
        std::vector<BatchRunner::TrialBody> bodies;
        bodies.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
            bodies.push_back([&, k](RunYield *yield) {
                overruns[k] = attemptOnce(jobs_slice[k], core_pool,
                                          lanes[k], 0,
                                          yield, batch_outputs[k])
                    ? 1 : 0;
            });
        }
        batch.run(bodies);
        for (std::size_t k = 0; k < count; ++k) {
            finishJob(jobs_slice[k], core_pool, lanes[k],
                      batch_outputs[k], overruns[k] != 0);
        }
    };

    const unsigned pool = static_cast<unsigned>(
        std::min<std::size_t>(threads_, std::max<std::size_t>(
                                            pending.size(), 1)));
    if (pool <= 1) {
        {
            CorePool cores;
            CorePool *core_pool = reuse_ ? &cores : nullptr;
            if (batch_width <= 1) {
                for (const std::size_t job : pending)
                    work(job, core_pool);
            } else {
                BatchRunner batch(batch_width);
                std::vector<std::size_t> slice;
                for (std::size_t base = 0; base < pending.size();
                     base += batch_width) {
                    const std::size_t end = std::min<std::size_t>(
                        base + batch_width, pending.size());
                    slice.assign(pending.begin() + base,
                                 pending.begin() + end);
                    workBatch(slice, core_pool, batch);
                }
            }
        }
        if (tracing)
            writeTraces(specs, reps, outputs, tracers);
        return outputs;
    }

    // Every trial is self-contained (its own Core, its own derived
    // seed) and writes a distinct slot, so a bare atomic work counter
    // is all the coordination needed — and results cannot depend on
    // scheduling order. Each worker owns a private CorePool: a reused
    // Core is reset to the trial's derived seed, so which worker runs
    // which trial (and in what order) still cannot affect results.
    // Under batching each worker claims `batch_width` jobs at a time
    // and runs them through its own BatchRunner.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) {
        workers.emplace_back([&] {
            CorePool cores;
            CorePool *core_pool = reuse_ ? &cores : nullptr;
            if (batch_width <= 1) {
                for (;;) {
                    const std::size_t slot =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (slot >= pending.size())
                        return;
                    work(pending[slot], core_pool);
                }
            }
            BatchRunner batch(batch_width);
            std::vector<std::size_t> slice;
            for (;;) {
                const std::size_t base = next.fetch_add(
                    batch_width, std::memory_order_relaxed);
                if (base >= pending.size())
                    return;
                const std::size_t end = std::min<std::size_t>(
                    base + batch_width, pending.size());
                slice.assign(pending.begin() + base, pending.begin() + end);
                workBatch(slice, core_pool, batch);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    if (tracing)
        writeTraces(specs, reps, outputs, tracers);
    return outputs;
}

std::vector<std::vector<TrialOutput>>
TrialRunner::runSharded(const std::vector<ExperimentSpec> &specs,
                        unsigned reps, std::uint64_t master_seed,
                        const TrialFn &fn, const CampaignHeader &header,
                        std::map<std::size_t, CampaignEntry> resumed) const
{
    if (campaign_.manifestPath.empty())
        fatal("--shards requires --campaign <manifest> (the shard "
              "journals live beside it)");

    const std::size_t jobs = specs.size() * reps;
    const unsigned shards = static_cast<unsigned>(
        std::min<std::size_t>(campaign_.shards, jobs));

    // A merged trace file cannot be stitched across worker processes.
    TraceConfig child_trace = trace_;
    if (kTraceEnabled && !trace_.path.empty() && !trace_.split) {
        warn("--shards: merged trace output is unavailable; use "
             "--trace-split (tracing disabled for this run)");
        child_trace.path.clear();
    }

    struct Shard
    {
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::string path;
        unsigned crashes = 0;
        bool failed = false;
        int pid = -1;
    };
    std::vector<Shard> table(shards);
    const std::size_t chunk = jobs / shards;
    const std::size_t extra = jobs % shards;
    std::size_t cursor = 0;
    for (unsigned k = 0; k < shards; ++k) {
        table[k].lo = cursor;
        table[k].hi = cursor + chunk + (k < extra ? 1 : 0);
        cursor = table[k].hi;
        table[k].path =
            campaign_.manifestPath + ".shard" + std::to_string(k);
    }

    auto launch = [&](unsigned k) {
        table[k].pid = spawnShardWorker([&, k] {
            const Shard &me = table[k];
            // Merge the campaign-level resume state with whatever this
            // shard journaled before a previous death: a relaunched
            // worker never recomputes a journaled trial.
            std::map<std::size_t, CampaignEntry> known = resumed;
            if (std::ifstream(me.path).good()) {
                CampaignManifest prior = loadCampaignManifest(me.path);
                requireCompatibleManifest(prior, header, me.path);
                for (auto &[job, entry] : prior.entries)
                    known[job] = std::move(entry);
            }
            TrialRunner worker(threads_);
            worker.reuse_ = reuse_;
            worker.batch_ = batch_;
            worker.trace_ = child_trace;
            worker.campaign_ = campaign_;
            worker.runJobs(specs, reps, master_seed, fn, header, known,
                           me.lo, me.hi, me.path);
        });
    };

    for (unsigned k = 0; k < shards; ++k)
        launch(k);

    unsigned running = shards;
    while (running > 0) {
        const ShardExit exited = waitAnyShardWorker();
        unsigned k = shards;
        for (unsigned i = 0; i < shards; ++i) {
            if (table[i].pid == exited.pid) {
                k = i;
                break;
            }
        }
        if (k == shards)
            continue; // not one of ours (shouldn't happen)
        Shard &shard = table[k];
        shard.pid = -1;
        --running;
        if (!exited.crashed)
            continue;

        ++shard.crashes;
        std::string how = exited.termSignal != 0
            ? "signal " + std::to_string(exited.termSignal)
            : "exit code " + std::to_string(exited.exitCode);
        if (shard.crashes > campaign_.retries) {
            shard.failed = true;
            warn("shard ", k, " (trials ", shard.lo, "..", shard.hi - 1,
                 ") died with ", how, " and exhausted its ",
                 campaign_.retries,
                 " retries; unfinished trials will be reported missing");
            continue;
        }
        warn("shard ", k, " (trials ", shard.lo, "..", shard.hi - 1,
             ") died with ", how, "; relaunching (retry ", shard.crashes,
             "/", campaign_.retries, ")");
        backoffBeforeRetry(shard.crashes);
        launch(k);
        ++running;
    }

    // Merge: campaign-level resume state plus every shard journal.
    // Each shard file is itself crash-consistent, so whatever a dead
    // worker completed before dying is preserved here.
    std::map<std::size_t, CampaignEntry> merged = std::move(resumed);
    for (const Shard &shard : table) {
        if (!std::ifstream(shard.path).good())
            continue;
        CampaignManifest part = loadCampaignManifest(shard.path);
        requireCompatibleManifest(part, header, shard.path);
        for (auto &[job, entry] : part.entries)
            merged[job] = std::move(entry);
    }

    // The merged manifest supersedes the shard journals.
    CampaignJournal journal(campaign_.manifestPath, header);
    for (const auto &[job, entry] : merged)
        journal.absorb(entry);
    journal.flush();
    for (const Shard &shard : table)
        std::remove(shard.path.c_str());

    std::vector<std::vector<TrialOutput>> outputs(specs.size());
    for (auto &per_spec : outputs)
        per_spec.resize(reps);
    for (const auto &[job, entry] : merged)
        outputs[job / reps][job % reps] = outputFromEntry(entry);
    if (merged.size() < jobs) {
        warn("campaign incomplete: ", jobs - merged.size(), " of ", jobs,
             " trials missing after shard failures; results are partial "
             "(resume with --resume ", campaign_.manifestPath, ")");
    }
    return outputs;
}

std::string
perTrialTracePath(const std::string &path, std::size_t spec_index,
                  unsigned rep)
{
    const std::string tag =
        ".s" + std::to_string(spec_index) + ".r" + std::to_string(rep);
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

void
TrialRunner::writeTraces(
    const std::vector<ExperimentSpec> &specs, unsigned reps,
    const std::vector<std::vector<TrialOutput>> &outputs,
    const std::vector<std::unique_ptr<Tracer>> &tracers) const
{
    std::uint64_t dropped = 0;
    std::vector<TraceProcess> merged;
    for (std::size_t job = 0; job < tracers.size(); ++job) {
        if (tracers[job] == nullptr)
            continue;
        const std::size_t spec_index = job / reps;
        const unsigned rep = static_cast<unsigned>(job % reps);

        TraceProcess process;
        process.name = specs[spec_index].label.empty()
            ? "spec" + std::to_string(spec_index)
            : specs[spec_index].label;
        process.name += " rep=" + std::to_string(rep) + " seed=" +
            std::to_string(outputs[spec_index][rep].seedUsed);
        process.events = tracers[job]->events();
        process.dropped = tracers[job]->dropped();
        dropped += process.dropped;

        if (trace_.split) {
            writeChromeTraceFile(
                perTrialTracePath(trace_.path, spec_index, rep),
                {std::move(process)});
        } else {
            merged.push_back(std::move(process));
        }
    }
    if (!trace_.split)
        writeChromeTraceFile(trace_.path, merged);
    if (dropped > 0) {
        warn("event trace: ring buffer overflowed; ", dropped,
             " oldest events were dropped (the trace carries "
             "trace-truncated markers; raise Tracer capacity or narrow "
             "--trace-categories)");
    }
}

namespace {

/** Merge one spec's rep outputs into a ResultRow. */
ResultRow
aggregateRow(const ExperimentSpec &spec,
             const std::vector<TrialOutput> &reps)
{
    ResultRow row;
    row.label = spec.label;
    row.params = spec.params;

    // Scalar metrics: one value per rep that reported them, in rep
    // order. Series: concatenation across reps in rep order. Names are
    // collected first-occurrence-first so row layout is stable. One
    // pass over the outputs: an index map assigns each new name the
    // next bucket, and every value appends to its name's bucket —
    // since the walk order (reps outer, metrics then series per rep)
    // matches the old per-name rescans, the merged vectors are
    // identical.
    // Row layout comes from `names` (first-occurrence order); the map
    // is a point-lookup index only. std::map rather than unordered so
    // this export path carries no hash container at all — emission
    // order provably cannot depend on hashing (lint_sim.py's
    // unordered-iteration rule keeps it that way).
    std::vector<std::string> names;
    std::vector<std::vector<double>> buckets;
    std::map<std::string, std::size_t> index;
    auto bucketFor = [&](const std::string &name) -> std::vector<double> & {
        const auto [it, inserted] = index.emplace(name, names.size());
        if (inserted) {
            names.push_back(name);
            buckets.emplace_back();
        }
        return buckets[it->second];
    };
    for (const TrialOutput &output : reps) {
        // Censored trials ran out of budget mid-measurement: their
        // numbers would drag timing means toward the cutoff, so they
        // are counted, never averaged. Missing trials (lost shard past
        // the retry budget) are counted separately.
        if (!output.completed) {
            ++row.missingTrials;
            continue;
        }
        if (output.censored) {
            ++row.censoredTrials;
            continue;
        }
        ++row.trials;
        if (output.attempt > 0)
            ++row.retriedTrials;
        for (const auto &[name, value] : output.metrics)
            bucketFor(name).push_back(value);
        for (const auto &[name, values] : output.series) {
            std::vector<double> &bucket = bucketFor(name);
            bucket.insert(bucket.end(), values.begin(), values.end());
        }
    }

    for (std::size_t i = 0; i < names.size(); ++i) {
        row.metrics.emplace_back(names[i],
                                 MetricSeries::of(std::move(buckets[i])));
    }
    return row;
}

} // namespace

ExperimentResult
TrialRunner::runAll(const std::string &experiment,
                    const std::string &description,
                    const std::vector<ExperimentSpec> &specs, unsigned reps,
                    std::uint64_t master_seed, const TrialFn &fn) const
{
    const auto outputs = run(specs, reps, master_seed, fn);

    ExperimentResult result;
    result.experiment = experiment;
    result.description = description;
    result.masterSeed = master_seed;
    result.reps = reps;
    result.threads = threads_;
    result.mode = specs.empty() ? "" : specs.front().defense;
    for (const ExperimentSpec &spec : specs) {
        if (spec.defense != result.mode)
            result.mode = "mixed";
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        result.rows.push_back(aggregateRow(specs[i], outputs[i]));
        if (result.rows.back().missingTrials > 0)
            result.incomplete = true;
    }
    return result;
}

} // namespace unxpec
