#include "harness/trial_runner.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "harness/session.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

void
TrialOutput::metric(const std::string &name, double value)
{
    metrics.emplace_back(name, value);
}

void
TrialOutput::samples(const std::string &name, std::vector<double> values)
{
    series.emplace_back(name, std::move(values));
}

TrialRunner::TrialRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::vector<std::vector<TrialOutput>>
TrialRunner::run(const std::vector<ExperimentSpec> &specs, unsigned reps,
                 std::uint64_t master_seed, const TrialFn &fn) const
{
    if (reps == 0)
        fatal("TrialRunner: reps must be >= 1");

    std::vector<std::vector<TrialOutput>> outputs(specs.size());
    for (auto &per_spec : outputs)
        per_spec.resize(reps);

    const std::size_t jobs = specs.size() * reps;

    // With tracing on, every trial owns a private Tracer (indexed by
    // job, so results stay thread-count independent); the files are
    // written serially after the pool drains.
    const bool tracing = kTraceEnabled && !trace_.path.empty();
    std::vector<std::unique_ptr<Tracer>> tracers;
    if (tracing)
        tracers.resize(jobs);

    auto work = [&](std::size_t job, CorePool *core_pool) {
        const std::size_t spec_index = job / reps;
        const unsigned rep = static_cast<unsigned>(job % reps);
        TrialContext ctx{specs[spec_index], spec_index, rep,
                         Rng::deriveSeed(master_seed, job), master_seed,
                         core_pool};
        if (tracing) {
            tracers[job] = std::make_unique<Tracer>(trace_.categories);
            ctx.tracer = tracers[job].get();
        }
        outputs[spec_index][rep] = fn(ctx);
    };

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs));
    if (pool <= 1) {
        {
            CorePool cores;
            for (std::size_t job = 0; job < jobs; ++job)
                work(job, reuse_ ? &cores : nullptr);
        }
        if (tracing)
            writeTraces(specs, reps, master_seed, tracers);
        return outputs;
    }

    // Every trial is self-contained (its own Core, its own derived
    // seed) and writes a distinct slot, so a bare atomic work counter
    // is all the coordination needed — and results cannot depend on
    // scheduling order. Each worker owns a private CorePool: a reused
    // Core is reset to the trial's derived seed, so which worker runs
    // which trial (and in what order) still cannot affect results.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) {
        workers.emplace_back([&] {
            CorePool cores;
            for (;;) {
                const std::size_t job =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (job >= jobs)
                    return;
                work(job, reuse_ ? &cores : nullptr);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    if (tracing)
        writeTraces(specs, reps, master_seed, tracers);
    return outputs;
}

std::string
perTrialTracePath(const std::string &path, std::size_t spec_index,
                  unsigned rep)
{
    const std::string tag =
        ".s" + std::to_string(spec_index) + ".r" + std::to_string(rep);
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

void
TrialRunner::writeTraces(
    const std::vector<ExperimentSpec> &specs, unsigned reps,
    std::uint64_t master_seed,
    const std::vector<std::unique_ptr<Tracer>> &tracers) const
{
    std::uint64_t dropped = 0;
    std::vector<TraceProcess> merged;
    for (std::size_t job = 0; job < tracers.size(); ++job) {
        if (tracers[job] == nullptr)
            continue;
        const std::size_t spec_index = job / reps;
        const unsigned rep = static_cast<unsigned>(job % reps);

        TraceProcess process;
        process.name = specs[spec_index].label.empty()
            ? "spec" + std::to_string(spec_index)
            : specs[spec_index].label;
        process.name += " rep=" + std::to_string(rep) + " seed=" +
            std::to_string(Rng::deriveSeed(master_seed, job));
        process.events = tracers[job]->events();
        dropped += tracers[job]->dropped();

        if (trace_.split) {
            writeChromeTraceFile(
                perTrialTracePath(trace_.path, spec_index, rep),
                {std::move(process)});
        } else {
            merged.push_back(std::move(process));
        }
    }
    if (!trace_.split)
        writeChromeTraceFile(trace_.path, merged);
    if (dropped > 0) {
        warn("event trace: ring buffer overflowed; ", dropped,
             " oldest events were dropped (raise Tracer capacity or "
             "narrow --trace-categories)");
    }
}

namespace {

/** Merge one spec's rep outputs into a ResultRow. */
ResultRow
aggregateRow(const ExperimentSpec &spec,
             const std::vector<TrialOutput> &reps)
{
    ResultRow row;
    row.label = spec.label;
    row.params = spec.params;

    // Scalar metrics: one value per rep that reported them, in rep
    // order. Series: concatenation across reps in rep order. Names are
    // collected first-occurrence-first so row layout is stable. One
    // pass over the outputs: an index map assigns each new name the
    // next bucket, and every value appends to its name's bucket —
    // since the walk order (reps outer, metrics then series per rep)
    // matches the old per-name rescans, the merged vectors are
    // identical.
    // Row layout comes from `names` (first-occurrence order); the map
    // is a point-lookup index only. std::map rather than unordered so
    // this export path carries no hash container at all — emission
    // order provably cannot depend on hashing (lint_sim.py's
    // unordered-iteration rule keeps it that way).
    std::vector<std::string> names;
    std::vector<std::vector<double>> buckets;
    std::map<std::string, std::size_t> index;
    auto bucketFor = [&](const std::string &name) -> std::vector<double> & {
        const auto [it, inserted] = index.emplace(name, names.size());
        if (inserted) {
            names.push_back(name);
            buckets.emplace_back();
        }
        return buckets[it->second];
    };
    for (const TrialOutput &output : reps) {
        for (const auto &[name, value] : output.metrics)
            bucketFor(name).push_back(value);
        for (const auto &[name, values] : output.series) {
            std::vector<double> &bucket = bucketFor(name);
            bucket.insert(bucket.end(), values.begin(), values.end());
        }
    }

    for (std::size_t i = 0; i < names.size(); ++i) {
        row.metrics.emplace_back(names[i],
                                 MetricSeries::of(std::move(buckets[i])));
    }
    return row;
}

} // namespace

ExperimentResult
TrialRunner::runAll(const std::string &experiment,
                    const std::string &description,
                    const std::vector<ExperimentSpec> &specs, unsigned reps,
                    std::uint64_t master_seed, const TrialFn &fn) const
{
    const auto outputs = run(specs, reps, master_seed, fn);

    ExperimentResult result;
    result.experiment = experiment;
    result.description = description;
    result.masterSeed = master_seed;
    result.reps = reps;
    result.threads = threads_;
    result.mode = specs.empty() ? "" : specs.front().defense;
    for (const ExperimentSpec &spec : specs) {
        if (spec.defense != result.mode)
            result.mode = "mixed";
    }
    for (std::size_t i = 0; i < specs.size(); ++i)
        result.rows.push_back(aggregateRow(specs[i], outputs[i]));
    return result;
}

} // namespace unxpec
