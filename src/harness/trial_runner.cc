#include "harness/trial_runner.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace unxpec {

void
TrialOutput::metric(const std::string &name, double value)
{
    metrics.emplace_back(name, value);
}

void
TrialOutput::samples(const std::string &name, std::vector<double> values)
{
    series.emplace_back(name, std::move(values));
}

TrialRunner::TrialRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::vector<std::vector<TrialOutput>>
TrialRunner::run(const std::vector<ExperimentSpec> &specs, unsigned reps,
                 std::uint64_t master_seed, const TrialFn &fn) const
{
    if (reps == 0)
        fatal("TrialRunner: reps must be >= 1");

    std::vector<std::vector<TrialOutput>> outputs(specs.size());
    for (auto &per_spec : outputs)
        per_spec.resize(reps);

    const std::size_t jobs = specs.size() * reps;
    auto work = [&](std::size_t job) {
        const std::size_t spec_index = job / reps;
        const unsigned rep = static_cast<unsigned>(job % reps);
        TrialContext ctx{specs[spec_index], spec_index, rep,
                         Rng::deriveSeed(master_seed, job), master_seed};
        outputs[spec_index][rep] = fn(ctx);
    };

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs));
    if (pool <= 1) {
        for (std::size_t job = 0; job < jobs; ++job)
            work(job);
        return outputs;
    }

    // Every trial is self-contained (its own Core, its own derived
    // seed) and writes a distinct slot, so a bare atomic work counter
    // is all the coordination needed — and results cannot depend on
    // scheduling order.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) {
        workers.emplace_back([&] {
            for (;;) {
                const std::size_t job =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (job >= jobs)
                    return;
                work(job);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    return outputs;
}

namespace {

/** Merge one spec's rep outputs into a ResultRow. */
ResultRow
aggregateRow(const ExperimentSpec &spec,
             const std::vector<TrialOutput> &reps)
{
    ResultRow row;
    row.label = spec.label;
    row.params = spec.params;

    // Scalar metrics: one value per rep that reported them, in rep
    // order. Series: concatenation across reps in rep order. Names are
    // collected first-occurrence-first so row layout is stable.
    std::vector<std::string> names;
    auto remember = [&names](const std::string &name) {
        for (const std::string &seen : names) {
            if (seen == name)
                return;
        }
        names.push_back(name);
    };
    for (const TrialOutput &output : reps) {
        for (const auto &[name, value] : output.metrics)
            remember(name);
        for (const auto &[name, values] : output.series)
            remember(name);
    }

    for (const std::string &name : names) {
        std::vector<double> merged;
        for (const TrialOutput &output : reps) {
            for (const auto &[key, value] : output.metrics) {
                if (key == name)
                    merged.push_back(value);
            }
            for (const auto &[key, values] : output.series) {
                if (key == name)
                    merged.insert(merged.end(), values.begin(),
                                  values.end());
            }
        }
        row.metrics.emplace_back(name, MetricSeries::of(std::move(merged)));
    }
    return row;
}

} // namespace

ExperimentResult
TrialRunner::runAll(const std::string &experiment,
                    const std::string &description,
                    const std::vector<ExperimentSpec> &specs, unsigned reps,
                    std::uint64_t master_seed, const TrialFn &fn) const
{
    const auto outputs = run(specs, reps, master_seed, fn);

    ExperimentResult result;
    result.experiment = experiment;
    result.description = description;
    result.masterSeed = master_seed;
    result.reps = reps;
    result.threads = threads_;
    result.mode = specs.empty() ? "" : specs.front().defense;
    for (const ExperimentSpec &spec : specs) {
        if (spec.defense != result.mode)
            result.mode = "mixed";
    }
    for (std::size_t i = 0; i < specs.size(); ++i)
        result.rows.push_back(aggregateRow(specs[i], outputs[i]));
    return result;
}

} // namespace unxpec
