#include "harness/campaign.hh"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

#include "sim/log.hh"

namespace unxpec {

namespace {

// --- number formatting ---------------------------------------------------
//
// Manifest values must survive a write/parse round trip bit-exactly:
// resume splices journaled metrics into the result, and the ISSUE-level
// guarantee is that a resumed run's JSON is byte-identical to an
// uninterrupted one. max_digits10 decimal digits round-trip every
// finite double; non-finite values (JSON has no literal for them) are
// stored as the strings "nan" / "inf" / "-inf".

std::string
numToken(double value)
{
    if (std::isnan(value))
        return "\"nan\"";
    if (std::isinf(value))
        return value > 0 ? "\"inf\"" : "\"-inf\"";
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss.precision(std::numeric_limits<double>::max_digits10);
    oss << value;
    return oss.str();
}

std::string
escapeString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

// --- minimal JSON reader -------------------------------------------------
//
// Just enough JSON for the manifest lines this file writes itself:
// objects, arrays, strings, bools, null, and numbers. Number tokens
// keep their raw text so 64-bit seeds parse losslessly as integers and
// metric values parse as doubles — both via std::from_chars, which is
// locale-independent by definition (strtod would honor LC_NUMERIC).

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< string payload, or a number's raw token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    field(const std::string &key) const
    {
        for (const auto &[name, value] : fields) {
            if (name == key)
                return &value;
        }
        return nullptr;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                const char *first = text_.data() + pos_;
                const auto [p, ec] =
                    std::from_chars(first, first + 4, code, 16);
                if (ec != std::errc() || p != first + 4)
                    return fail("bad \\u escape");
                pos_ += 4;
                // The writer only escapes control characters; decode
                // the low byte and refuse anything wider.
                if (code > 0xff)
                    return fail("non-latin \\u escape unsupported");
                out += static_cast<char>(code);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        double probe = 0.0;
        const char *first = out.text.data();
        const char *last = first + out.text.size();
        const auto [p, ec] = std::from_chars(first, last, probe);
        if (ec != std::errc() || p != last)
            return fail("malformed number '" + out.text + "'");
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipSpace();
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.fields.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// --- typed accessors (fatal on shape mismatch) ---------------------------

[[noreturn]] void
badManifest(const std::string &path, std::size_t lineno,
            const std::string &what)
{
    fatal("campaign manifest ", path, ":", lineno, ": ", what);
}

const JsonValue &
requireField(const JsonValue &obj, const char *key, const std::string &path,
             std::size_t lineno)
{
    const JsonValue *value = obj.field(key);
    if (value == nullptr)
        badManifest(path, lineno, std::string("missing field '") + key + "'");
    return *value;
}

std::uint64_t
asU64(const JsonValue &value, const char *key, const std::string &path,
      std::size_t lineno)
{
    if (value.kind != JsonValue::Kind::Number)
        badManifest(path, lineno,
                    std::string("field '") + key + "' is not a number");
    std::uint64_t out = 0;
    const char *first = value.text.data();
    const char *last = first + value.text.size();
    const auto [p, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || p != last)
        badManifest(path, lineno,
                    std::string("field '") + key +
                        "' is not an unsigned integer");
    return out;
}

double
asDouble(const JsonValue &value, const std::string &path, std::size_t lineno)
{
    if (value.kind == JsonValue::Kind::String) {
        if (value.text == "nan")
            return std::numeric_limits<double>::quiet_NaN();
        if (value.text == "inf")
            return std::numeric_limits<double>::infinity();
        if (value.text == "-inf")
            return -std::numeric_limits<double>::infinity();
        badManifest(path, lineno,
                    "unknown non-finite token '" + value.text + "'");
    }
    if (value.kind != JsonValue::Kind::Number)
        badManifest(path, lineno, "expected a numeric value");
    double out = 0.0;
    const char *first = value.text.data();
    const char *last = first + value.text.size();
    const auto [p, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || p != last)
        badManifest(path, lineno, "malformed number '" + value.text + "'");
    return out;
}

std::string
asString(const JsonValue &value, const char *key, const std::string &path,
         std::size_t lineno)
{
    if (value.kind != JsonValue::Kind::String)
        badManifest(path, lineno,
                    std::string("field '") + key + "' is not a string");
    return value.text;
}

constexpr const char *kManifestSchema = "unxpec-campaign-v1";

CampaignHeader
parseHeaderLine(const JsonValue &obj, const std::string &path,
                std::size_t lineno)
{
    const std::string schema =
        asString(requireField(obj, "schema", path, lineno), "schema", path,
                 lineno);
    if (schema != kManifestSchema) {
        badManifest(path, lineno,
                    "schema '" + schema + "' (expected '" +
                        kManifestSchema + "')");
    }
    CampaignHeader header;
    header.experiment = asString(
        requireField(obj, "experiment", path, lineno), "experiment", path,
        lineno);
    header.masterSeed = asU64(
        requireField(obj, "master_seed", path, lineno), "master_seed", path,
        lineno);
    header.specs = static_cast<std::size_t>(asU64(
        requireField(obj, "specs", path, lineno), "specs", path, lineno));
    header.reps = static_cast<unsigned>(asU64(
        requireField(obj, "reps", path, lineno), "reps", path, lineno));
    // Optional provenance fields: manifests written before they existed
    // simply lack them, and 0 means "not recorded, not checked".
    if (const JsonValue *batch = obj.field("batch"))
        header.batch = static_cast<unsigned>(
            asU64(*batch, "batch", path, lineno));
    if (const JsonValue *digest = obj.field("spec_digest"))
        header.specDigest = asU64(*digest, "spec_digest", path, lineno);
    return header;
}

CampaignEntry
parseEntryLine(const JsonValue &obj, const std::string &path,
               std::size_t lineno)
{
    CampaignEntry entry;
    entry.job = static_cast<std::size_t>(
        asU64(requireField(obj, "job", path, lineno), "job", path, lineno));
    entry.seed =
        asU64(requireField(obj, "seed", path, lineno), "seed", path, lineno);
    entry.attempt = static_cast<unsigned>(asU64(
        requireField(obj, "attempt", path, lineno), "attempt", path, lineno));
    const JsonValue &censored = requireField(obj, "censored", path, lineno);
    if (censored.kind != JsonValue::Kind::Bool)
        badManifest(path, lineno, "field 'censored' is not a bool");
    entry.censored = censored.boolean;
    entry.censorReason = asString(
        requireField(obj, "reason", path, lineno), "reason", path, lineno);

    const JsonValue &metrics = requireField(obj, "metrics", path, lineno);
    if (metrics.kind != JsonValue::Kind::Array)
        badManifest(path, lineno, "field 'metrics' is not an array");
    for (const JsonValue &pair : metrics.items) {
        if (pair.kind != JsonValue::Kind::Array || pair.items.size() != 2 ||
            pair.items[0].kind != JsonValue::Kind::String) {
            badManifest(path, lineno, "metric entry is not [name, value]");
        }
        entry.metrics.emplace_back(pair.items[0].text,
                                   asDouble(pair.items[1], path, lineno));
    }

    const JsonValue &series = requireField(obj, "series", path, lineno);
    if (series.kind != JsonValue::Kind::Array)
        badManifest(path, lineno, "field 'series' is not an array");
    for (const JsonValue &pair : series.items) {
        if (pair.kind != JsonValue::Kind::Array || pair.items.size() != 2 ||
            pair.items[0].kind != JsonValue::Kind::String ||
            pair.items[1].kind != JsonValue::Kind::Array) {
            badManifest(path, lineno, "series entry is not [name, [values]]");
        }
        std::vector<double> values;
        values.reserve(pair.items[1].items.size());
        for (const JsonValue &value : pair.items[1].items)
            values.push_back(asDouble(value, path, lineno));
        entry.series.emplace_back(pair.items[0].text, std::move(values));
    }
    return entry;
}

} // namespace

std::string
campaignHeaderLine(const CampaignHeader &header)
{
    std::string line = "{\"schema\":\"";
    line += kManifestSchema;
    line += "\",\"experiment\":";
    line += escapeString(header.experiment);
    line += ",\"master_seed\":";
    line += std::to_string(header.masterSeed);
    line += ",\"specs\":";
    line += std::to_string(header.specs);
    line += ",\"reps\":";
    line += std::to_string(header.reps);
    if (header.batch != 0) {
        line += ",\"batch\":";
        line += std::to_string(header.batch);
    }
    if (header.specDigest != 0) {
        line += ",\"spec_digest\":";
        line += std::to_string(header.specDigest);
    }
    line += "}";
    return line;
}

std::uint64_t
campaignSpecDigest(const std::vector<std::string> &labels)
{
    // FNV-1a over every label with a separator byte after each, so
    // ["ab","c"] and ["a","bc"] digest differently.
    std::uint64_t hash = 14695981039346656037ull;
    constexpr std::uint64_t kPrime = 1099511628211ull;
    for (const std::string &label : labels) {
        for (const char c : label) {
            hash ^= static_cast<unsigned char>(c);
            hash *= kPrime;
        }
        hash ^= 0x1f;
        hash *= kPrime;
    }
    return hash == 0 ? 1 : hash;
}

std::string
campaignEntryLine(const CampaignEntry &entry)
{
    std::string line = "{\"job\":";
    line += std::to_string(entry.job);
    line += ",\"seed\":";
    line += std::to_string(entry.seed);
    line += ",\"attempt\":";
    line += std::to_string(entry.attempt);
    line += ",\"censored\":";
    line += entry.censored ? "true" : "false";
    line += ",\"reason\":";
    line += escapeString(entry.censorReason);
    line += ",\"metrics\":[";
    for (std::size_t m = 0; m < entry.metrics.size(); ++m) {
        if (m != 0)
            line += ",";
        line += "[";
        line += escapeString(entry.metrics[m].first);
        line += ",";
        line += numToken(entry.metrics[m].second);
        line += "]";
    }
    line += "],\"series\":[";
    for (std::size_t s = 0; s < entry.series.size(); ++s) {
        if (s != 0)
            line += ",";
        line += "[";
        line += escapeString(entry.series[s].first);
        line += ",[";
        const std::vector<double> &values = entry.series[s].second;
        for (std::size_t v = 0; v < values.size(); ++v) {
            if (v != 0)
                line += ",";
            line += numToken(values[v]);
        }
        line += "]]";
    }
    line += "]}";
    return line;
}

CampaignManifest
loadCampaignManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open campaign manifest '", path, "'");

    CampaignManifest manifest;
    std::string line;
    std::size_t lineno = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue value;
        JsonReader reader(line);
        if (!reader.parse(value))
            badManifest(path, lineno, reader.error());
        if (value.kind != JsonValue::Kind::Object)
            badManifest(path, lineno, "line is not a JSON object");
        if (!saw_header) {
            manifest.header = parseHeaderLine(value, path, lineno);
            saw_header = true;
            continue;
        }
        CampaignEntry entry = parseEntryLine(value, path, lineno);
        const std::size_t job = entry.job;
        // Last entry wins: a resumed shard re-journals inherited rows.
        manifest.entries[job] = std::move(entry);
    }
    if (!saw_header)
        fatal("campaign manifest '", path, "' has no header line");
    return manifest;
}

void
requireCompatibleManifest(const CampaignManifest &manifest,
                          const CampaignHeader &expected,
                          const std::string &path)
{
    const CampaignHeader &have = manifest.header;
    if (have.masterSeed != expected.masterSeed) {
        fatal("cannot resume from '", path, "': manifest master seed ",
              have.masterSeed, " != campaign master seed ",
              expected.masterSeed);
    }
    if (have.specs != expected.specs || have.reps != expected.reps) {
        fatal("cannot resume from '", path, "': manifest shape ", have.specs,
              " specs x ", have.reps, " reps != campaign shape ",
              expected.specs, " specs x ", expected.reps, " reps");
    }
    if (!have.experiment.empty() && !expected.experiment.empty() &&
        have.experiment != expected.experiment) {
        fatal("cannot resume from '", path, "': manifest experiment '",
              have.experiment, "' != campaign experiment '",
              expected.experiment, "'");
    }
    if (have.batch != 0 && expected.batch != 0 &&
        have.batch != expected.batch) {
        fatal("cannot resume from '", path, "': manifest batch width ",
              have.batch, " != campaign batch width ", expected.batch,
              " (journaled trials ran lock-step under --batch ",
              have.batch, " and host-watchdog censoring depends on the "
              "group width; rerun with --batch ", have.batch,
              " or start a fresh campaign)");
    }
    if (have.specDigest != 0 && expected.specDigest != 0 &&
        have.specDigest != expected.specDigest) {
        fatal("cannot resume from '", path, "': manifest spec digest ",
              have.specDigest, " != campaign spec digest ",
              expected.specDigest, " (the spec list or its sweep order "
              "changed; job indices would splice journaled results into "
              "the wrong rows)");
    }
}

CampaignJournal::CampaignJournal(std::string path,
                                 const CampaignHeader &header)
    : path_(std::move(path)), headerLine_(campaignHeaderLine(header))
{
}

void
CampaignJournal::absorb(const CampaignEntry &entry)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(campaignEntryLine(entry));
}

void
CampaignJournal::append(const CampaignEntry &entry)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(campaignEntryLine(entry));
    flushLocked();
}

void
CampaignJournal::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    flushLocked();
}

void
CampaignJournal::flushLocked()
{
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("cannot open campaign journal '", tmp, "' for writing");
        out << headerLine_ << "\n";
        for (const std::string &line : lines_)
            out << line << "\n";
        out.flush();
        if (!out.good())
            fatal("short write to campaign journal '", tmp, "'");
    }
    // Atomic within the manifest's directory: a crash leaves either the
    // previous complete manifest or the new complete manifest, never a
    // torn file.
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        fatal("cannot rename '", tmp, "' over '", path_,
              "': ", std::strerror(errno));
    }
}

int
spawnShardWorker(const std::function<void()> &body)
{
    // Flush buffered streams so the child doesn't inherit (and later
    // re-emit) a copy of the parent's pending output.
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork() failed for shard worker: ", std::strerror(errno));
    if (pid == 0) {
        body();
        // _exit, not exit: skip atexit handlers and the stdio flush of
        // buffers cloned from the parent.
        ::_exit(0);
    }
    return static_cast<int>(pid);
}

ShardExit
waitAnyShardWorker()
{
    int status = 0;
    pid_t pid = -1;
    do {
        pid = ::waitpid(-1, &status, 0);
    } while (pid < 0 && errno == EINTR);
    if (pid < 0)
        fatal("waitpid() failed reaping shard workers: ",
              std::strerror(errno));

    ShardExit exit;
    exit.pid = static_cast<int>(pid);
    if (WIFEXITED(status)) {
        exit.exitCode = WEXITSTATUS(status);
        exit.crashed = exit.exitCode != 0;
    } else if (WIFSIGNALED(status)) {
        exit.crashed = true;
        exit.termSignal = WTERMSIG(status);
    } else {
        exit.crashed = true;
    }
    return exit;
}

void
backoffBeforeRetry(unsigned attempt)
{
    if (attempt == 0)
        return;
    const unsigned shift = std::min(attempt - 1, 6u);
    const std::uint64_t ms = std::min<std::uint64_t>(25u << shift, 2000);
    // lint-ok(wall-clock): host-side backoff between retries of crashed
    // shards / timed-out trials; never inside the simulated core.
    ::usleep(static_cast<useconds_t>(ms * 1000));
}

CrashInjector::CrashInjector()
{
    const char *env = std::getenv("UNXPEC_CRASH_AFTER_TRIALS");
    if (env == nullptr || *env == '\0')
        return;
    std::uint64_t value = 0;
    const char *last = env + std::strlen(env);
    const auto [p, ec] = std::from_chars(env, last, value);
    if (ec != std::errc() || p != last) {
        warn("ignoring malformed UNXPEC_CRASH_AFTER_TRIALS='", env, "'");
        return;
    }
    threshold_ = value;
}

void
CrashInjector::onTrialComplete()
{
    if (threshold_ == 0)
        return;
    bool boom = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        boom = ++completed_ == threshold_;
    }
    if (boom) {
        warn("crash injection: aborting after ", threshold_,
             " trials (UNXPEC_CRASH_AFTER_TRIALS)");
        std::abort();
    }
}

} // namespace unxpec
