/**
 * @file
 * Replicated-trial execution engine. A bench hands the runner a list
 * of ExperimentSpecs (the sweep points) and a trial function; the
 * runner executes specs x reps independent trials on a std::thread
 * pool. Each trial builds its own simulation (typically via Session)
 * from a deterministic per-trial seed — Rng::deriveSeed(master,
 * specIndex * reps + rep) — and writes into a preallocated result
 * slot, so the aggregated output is bit-identical whether the pool has
 * one thread or sixteen.
 *
 * setCampaign() layers fault tolerance on top (see campaign.hh):
 * journaling every completed trial to a crash-consistent manifest,
 * resuming a killed campaign without recomputing journaled trials,
 * censoring trials that blow a simulated-cycle or host wall-clock
 * budget (with deterministic-seed retries), and forking crash-isolated
 * subprocess shards whose deaths re-queue their trial ranges.
 */

#ifndef UNXPEC_HARNESS_TRIAL_RUNNER_HH
#define UNXPEC_HARNESS_TRIAL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/result_sink.hh"
#include "harness/campaign.hh"
#include "harness/spec.hh"
#include "sim/trace.hh"

namespace unxpec {

class CorePool;
class RunYield;

/**
 * Watchdog channel between the runner and one trial's simulation.
 * Session(ctx) arms every Core it builds with `timeoutCycles` (a
 * budget of simulated cycles shared by all of that Session's run()
 * calls) and raises `censored` when any run stopped on a cycle limit —
 * whether the campaign budget or RunOptions::maxCycles. The runner
 * then excludes the trial from aggregation and, retry budget
 * permitting, re-runs it under a fresh derived seed.
 */
struct TrialControl
{
    std::uint64_t timeoutCycles = 0; //!< simulated-cycle budget; 0 = off
    bool censored = false;
    std::string censorReason;
};

/** Everything one trial needs to build and run its simulation. */
struct TrialContext
{
    const ExperimentSpec &spec;
    std::size_t specIndex = 0;
    unsigned rep = 0;
    /** Per-trial seed derived from the master seed; feed to Session. */
    std::uint64_t seed = 0;
    std::uint64_t masterSeed = 0;
    /**
     * This worker thread's Core pool, nullptr when core reuse is off.
     * Session(ctx) draws its Core from here (reset to ctx.seed) instead
     * of constructing one per trial.
     */
    CorePool *pool = nullptr;
    /**
     * This trial's event tracer, nullptr when tracing is off.
     * Session(ctx) installs it on the Core; each trial owns a private
     * Tracer so parallel trials never share a ring buffer.
     */
    Tracer *tracer = nullptr;
    /**
     * Watchdog channel for this trial, owned by the runner; nullptr
     * when the trial runs outside a TrialRunner. Session(ctx) wires it
     * to the Core's cycle budget.
     */
    TrialControl *control = nullptr;
    /**
     * Batch lane this trial occupies (0 when unbatched). Distinguishes
     * the W concurrent trials of one batch in the CorePool, which may
     * all want the same spec's Machine at once.
     */
    unsigned lane = 0;
    /**
     * Lock-step driver for batched execution, nullptr when the trial
     * runs serially. Session(ctx) installs it on every Core it builds
     * (Machine::setRunYield) so Core::run yields its step loop to the
     * BatchRunner scheduler.
     */
    RunYield *yield = nullptr;
};

/** Event-trace capture settings for a run (TrialRunner::setTrace). */
struct TraceConfig
{
    /** Chrome-trace output path; empty disables tracing. */
    std::string path;
    /** Category mask recorded by every per-trial Tracer. */
    std::uint32_t categories = kTraceCatAll;
    /**
     * Write one file per trial (perTrialTracePath) instead of one
     * merged file with a process per trial.
     */
    bool split = false;
    /**
     * Per-trial ring capacity in events. When a trial overflows it,
     * the exported trace carries a "trace-truncated" marker instead of
     * silently posing as complete.
     */
    std::size_t capacity = Tracer::kDefaultCapacity;
};

/**
 * Per-trial trace file name: `path` with ".s<specIndex>.r<rep>" spliced
 * in before the extension ("out.json" -> "out.s0.r1.json"), so parallel
 * trials never collide on a file.
 */
std::string perTrialTracePath(const std::string &path,
                              std::size_t spec_index, unsigned rep);

/** One trial's measurements: scalar metrics and/or sample series. */
struct TrialOutput
{
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::vector<double>>> series;

    // Campaign bookkeeping, filled by the runner (not the trial fn).
    bool completed = false;      //!< false = never finished (lost shard)
    bool censored = false;       //!< finished but hit a watchdog budget
    std::string censorReason;    //!< "cycle-limit", "host-timeout", ...
    unsigned attempt = 0;        //!< retry attempt that produced this
    std::uint64_t seedUsed = 0;  //!< seed of that attempt

    /** Record a scalar metric (one value per trial). */
    void metric(const std::string &name, double value);
    /** Record a sample vector (concatenated across trials in order). */
    void samples(const std::string &name, std::vector<double> values);
};

using TrialFn = std::function<TrialOutput(const TrialContext &)>;

/** Executes replicated trials on a thread pool. */
class TrialRunner
{
  public:
    /** `threads` == 0 selects the hardware concurrency. */
    explicit TrialRunner(unsigned threads = 0);

    /** Actual pool width trials run on. */
    unsigned threads() const { return threads_; }

    /**
     * Toggle per-worker Core reuse (on by default). Each worker thread
     * keeps one Core per spec and re-seeds it between reps via
     * Core::reset — bit-identical to fresh construction, but without
     * reallocating caches, ROB, or memory pages every trial. Turn off
     * to force a fresh Core per trial (the perf baseline).
     */
    void reuseCores(bool reuse) { reuse_ = reuse; }

    /**
     * Batched lock-step execution width (--batch). Each worker runs W
     * trials at a time through one BatchRunner: the trials' cores are
     * advanced cycle-by-cycle in an interleaved sweep, W compact
     * arena-backed working sets at once. Trials stay fully independent
     * (per-trial derived seeds), so batched output is bit-identical to
     * serial — the batch only changes the execution schedule. Retries
     * of censored trials run serially after their batch completes,
     * preserving the campaign retry semantics exactly. 0 or 1 disables.
     */
    void setBatch(unsigned batch) { batch_ = batch == 0 ? 1 : batch; }
    unsigned batch() const { return batch_; }

    /**
     * Capture event traces: every trial gets its own Tracer (with
     * trace.categories) handed through TrialContext, and after the
     * trials finish the runner serially writes trace.path — one merged
     * Chrome-trace file with a process per trial, or per-trial files
     * when trace.split is set. An empty path (the default) disables
     * capture entirely.
     */
    void setTrace(TraceConfig trace) { trace_ = std::move(trace); }
    const TraceConfig &trace() const { return trace_; }

    /**
     * Arm the fault-tolerant campaign machinery (journaling, resume,
     * watchdogs, retries, shards — see campaign.hh). The default
     * (empty) config preserves the plain in-process behaviour exactly.
     */
    void setCampaign(CampaignConfig campaign)
    {
        campaign_ = std::move(campaign);
    }
    const CampaignConfig &campaign() const { return campaign_; }

    /**
     * Run `reps` trials of every spec. Returns outputs[specIndex][rep],
     * identical for any thread count. Under a campaign config, trials
     * journaled in the resume manifest are spliced in without
     * recomputation; trials lost to crashed shards past the retry
     * budget come back with completed == false.
     */
    std::vector<std::vector<TrialOutput>>
    run(const std::vector<ExperimentSpec> &specs, unsigned reps,
        std::uint64_t master_seed, const TrialFn &fn) const;

    /**
     * run() + aggregation: one ResultRow per spec, whose metrics carry
     * the per-rep values (scalar metrics) or the in-order
     * concatenation of all reps' samples (series), each summarized.
     * Censored and missing trials are excluded from the metrics and
     * surfaced through the row's trial counts; any missing trial marks
     * the result incomplete.
     */
    ExperimentResult
    runAll(const std::string &experiment, const std::string &description,
           const std::vector<ExperimentSpec> &specs, unsigned reps,
           std::uint64_t master_seed, const TrialFn &fn) const;

  private:
    /**
     * Execute (and journal) the jobs in [lo, hi) that `resumed` does
     * not already cover; every resumed entry is spliced into the
     * returned outputs. The workhorse behind both the in-process path
     * and each forked shard.
     */
    std::vector<std::vector<TrialOutput>>
    runJobs(const std::vector<ExperimentSpec> &specs, unsigned reps,
            std::uint64_t master_seed, const TrialFn &fn,
            const CampaignHeader &header,
            const std::map<std::size_t, CampaignEntry> &resumed,
            std::size_t lo, std::size_t hi,
            const std::string &manifest_path) const;

    /** Fork `campaign_.shards` workers over disjoint job ranges. */
    std::vector<std::vector<TrialOutput>>
    runSharded(const std::vector<ExperimentSpec> &specs, unsigned reps,
               std::uint64_t master_seed, const TrialFn &fn,
               const CampaignHeader &header,
               std::map<std::size_t, CampaignEntry> resumed) const;

    void writeTraces(const std::vector<ExperimentSpec> &specs,
                     unsigned reps,
                     const std::vector<std::vector<TrialOutput>> &outputs,
                     const std::vector<std::unique_ptr<Tracer>> &tracers)
        const;

    unsigned threads_;
    bool reuse_ = true;
    unsigned batch_ = 1;
    TraceConfig trace_;
    CampaignConfig campaign_;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_TRIAL_RUNNER_HH
