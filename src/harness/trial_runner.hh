/**
 * @file
 * Replicated-trial execution engine. A bench hands the runner a list
 * of ExperimentSpecs (the sweep points) and a trial function; the
 * runner executes specs x reps independent trials on a std::thread
 * pool. Each trial builds its own simulation (typically via Session)
 * from a deterministic per-trial seed — Rng::deriveSeed(master,
 * specIndex * reps + rep) — and writes into a preallocated result
 * slot, so the aggregated output is bit-identical whether the pool has
 * one thread or sixteen.
 */

#ifndef UNXPEC_HARNESS_TRIAL_RUNNER_HH
#define UNXPEC_HARNESS_TRIAL_RUNNER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/result_sink.hh"
#include "harness/spec.hh"
#include "sim/trace.hh"

namespace unxpec {

class CorePool;

/** Everything one trial needs to build and run its simulation. */
struct TrialContext
{
    const ExperimentSpec &spec;
    std::size_t specIndex = 0;
    unsigned rep = 0;
    /** Per-trial seed derived from the master seed; feed to Session. */
    std::uint64_t seed = 0;
    std::uint64_t masterSeed = 0;
    /**
     * This worker thread's Core pool, nullptr when core reuse is off.
     * Session(ctx) draws its Core from here (reset to ctx.seed) instead
     * of constructing one per trial.
     */
    CorePool *pool = nullptr;
    /**
     * This trial's event tracer, nullptr when tracing is off.
     * Session(ctx) installs it on the Core; each trial owns a private
     * Tracer so parallel trials never share a ring buffer.
     */
    Tracer *tracer = nullptr;
};

/** Event-trace capture settings for a run (TrialRunner::setTrace). */
struct TraceConfig
{
    /** Chrome-trace output path; empty disables tracing. */
    std::string path;
    /** Category mask recorded by every per-trial Tracer. */
    std::uint32_t categories = kTraceCatAll;
    /**
     * Write one file per trial (perTrialTracePath) instead of one
     * merged file with a process per trial.
     */
    bool split = false;
};

/**
 * Per-trial trace file name: `path` with ".s<specIndex>.r<rep>" spliced
 * in before the extension ("out.json" -> "out.s0.r1.json"), so parallel
 * trials never collide on a file.
 */
std::string perTrialTracePath(const std::string &path,
                              std::size_t spec_index, unsigned rep);

/** One trial's measurements: scalar metrics and/or sample series. */
struct TrialOutput
{
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::vector<double>>> series;

    /** Record a scalar metric (one value per trial). */
    void metric(const std::string &name, double value);
    /** Record a sample vector (concatenated across trials in order). */
    void samples(const std::string &name, std::vector<double> values);
};

using TrialFn = std::function<TrialOutput(const TrialContext &)>;

/** Executes replicated trials on a thread pool. */
class TrialRunner
{
  public:
    /** `threads` == 0 selects the hardware concurrency. */
    explicit TrialRunner(unsigned threads = 0);

    /** Actual pool width trials run on. */
    unsigned threads() const { return threads_; }

    /**
     * Toggle per-worker Core reuse (on by default). Each worker thread
     * keeps one Core per spec and re-seeds it between reps via
     * Core::reset — bit-identical to fresh construction, but without
     * reallocating caches, ROB, or memory pages every trial. Turn off
     * to force a fresh Core per trial (the perf baseline).
     */
    void reuseCores(bool reuse) { reuse_ = reuse; }

    /**
     * Capture event traces: every trial gets its own Tracer (with
     * trace.categories) handed through TrialContext, and after the
     * trials finish the runner serially writes trace.path — one merged
     * Chrome-trace file with a process per trial, or per-trial files
     * when trace.split is set. An empty path (the default) disables
     * capture entirely.
     */
    void setTrace(TraceConfig trace) { trace_ = std::move(trace); }
    const TraceConfig &trace() const { return trace_; }

    /**
     * Run `reps` trials of every spec. Returns outputs[specIndex][rep],
     * identical for any thread count.
     */
    std::vector<std::vector<TrialOutput>>
    run(const std::vector<ExperimentSpec> &specs, unsigned reps,
        std::uint64_t master_seed, const TrialFn &fn) const;

    /**
     * run() + aggregation: one ResultRow per spec, whose metrics carry
     * the per-rep values (scalar metrics) or the in-order
     * concatenation of all reps' samples (series), each summarized.
     */
    ExperimentResult
    runAll(const std::string &experiment, const std::string &description,
           const std::vector<ExperimentSpec> &specs, unsigned reps,
           std::uint64_t master_seed, const TrialFn &fn) const;

  private:
    void writeTraces(const std::vector<ExperimentSpec> &specs,
                     unsigned reps, std::uint64_t master_seed,
                     const std::vector<std::unique_ptr<Tracer>> &tracers)
        const;

    unsigned threads_;
    bool reuse_ = true;
    TraceConfig trace_;
};

} // namespace unxpec

#endif // UNXPEC_HARNESS_TRIAL_RUNNER_HH
