/**
 * @file
 * Secret-bearing victim programs (ROADMAP item 5). Unlike the
 * synthetic senders in src/attack/ — where the secret is a bit handed
 * to the attack object — these are real(istic) crypto kernels whose
 * memory and functional-unit footprint depends on a planted key, so
 * end-to-end key recovery can be demonstrated over the unXpec channel
 * against the whole defense zoo.
 *
 * Two programs, both emitted as assembler listings (cpu/assembler.hh)
 * so they exercise the text pipeline, the branch predictors, and much
 * longer programs than the hand-built gadgets:
 *
 *  - AES-128 T-table first round: 4 x 256-entry tables (derived from
 *    the FIPS-197 S-box) live in simulated memory one entry per cache
 *    line, and the measured round performs the key-dependent lookup
 *    T[b & 3][pt[b] ^ key[b]] under a mistrained bounds check. The
 *    key byte is reached out-of-bounds exactly like the unXpec
 *    gadget's secret, so training rounds only ever touch a zero
 *    training key. A Flush+Reload probe tail times every entry of the
 *    active table on the final round; under the unsafe baseline the
 *    transient install persists and pinpoints pt ^ key.
 *
 *  - RSA square-and-multiply: the exponent is scanned bit-serially;
 *    a transiently-read 1 bit redirects a trained "skip the multiply"
 *    branch into a multiply burst plus a multiplier-table load. The
 *    listing carries both receivers: a Flush+Reload probe of the
 *    multiplier line (cache channel) and a timed dependent-multiply
 *    chain (SpectreRewind-style FU contention, which survives
 *    cache-only defenses when the multiplier is non-pipelined).
 *
 * The harness pokes runtime parameters (key bytes, plaintext, byte
 * index, exponent bits) through the named data symbols the assembler
 * returns; see the k*Sym constants below.
 */

#ifndef UNXPEC_VICTIM_VICTIM_HH
#define UNXPEC_VICTIM_VICTIM_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "cpu/program.hh"

namespace unxpec {

/** Which victim kernel to build. */
enum class VictimKind { AesTtable, RsaSqMul };

/** Shape knobs shared by both victim listings. */
struct VictimConfig
{
    VictimKind kind = VictimKind::AesTtable;
    /** POISON loop length before the measured round. */
    unsigned mistrainIterations = 16;
    /** f(N) chase length feeding the bounds check. */
    unsigned conditionAccesses = 1;
    /** Dependent ALU padding after the chase: window length. */
    unsigned conditionPadding = 56;
    /** RSA: multiplies in the transient "multiply" step. Sized so the
     *  burst's reserved busy window on a non-pipelined multiplier
     *  (transientMuls x mulLatency from issue) outlasts the flushed
     *  f(N) chase (~memory latency + padding): the FU must still be
     *  busy when the post-squash contention probe issues. */
    unsigned transientMuls = 96;
    /** RSA: dependent multiplies in the contention probe. */
    unsigned probeMuls = 4;

    bool operator==(const VictimConfig &o) const
    {
        return kind == o.kind &&
               mistrainIterations == o.mistrainIterations &&
               conditionAccesses == o.conditionAccesses &&
               conditionPadding == o.conditionPadding &&
               transientMuls == o.transientMuls &&
               probeMuls == o.probeMuls;
    }
};

/** A generated victim: listing text plus the assembled program. */
struct VictimListing
{
    std::string source;                  //!< assembler text
    Program program;
    std::map<std::string, Addr> symbols; //!< data symbol -> address
    unsigned trials = 0;                 //!< mistrain rounds + 1

    /** Symbol address; fatal() when the listing lacks it. */
    Addr symbol(const std::string &name) const;
};

// Data-symbol names the harness pokes / reads (see the listing
// generators for the layout behind each).
inline constexpr const char *kAesTableSym = "ttab";
inline constexpr const char *kAesTrainKeySym = "ktab";
inline constexpr const char *kAesKeySym = "key";
inline constexpr const char *kAesPlaintextSym = "ptb";
inline constexpr const char *kAesTableBaseSym = "tsel";
inline constexpr const char *kAesFlushSym = "flushcell";
inline constexpr const char *kAesProbeOutSym = "probeout";
inline constexpr const char *kRsaTrainBitsSym = "dtab";
inline constexpr const char *kRsaExponentSym = "exp";
inline constexpr const char *kRsaMulTabSym = "multab";
inline constexpr const char *kRsaProbeOutSym = "probeout";
inline constexpr const char *kRsaContentionOutSym = "fuout";
inline constexpr const char *kIdxTabSym = "idxtab";
inline constexpr const char *kLatOutSym = "latout";

/** AES geometry: one table entry per cache line. */
inline constexpr unsigned kAesTableEntries = 256;
inline constexpr unsigned kAesNumTables = 4;
/** Bytes per table (entries * line size). */
std::size_t aesTableBytes();

/** RSA geometry: exponent bits recovered per run of the harness. */
inline constexpr unsigned kRsaExponentBits = 64;

/** The FIPS-197 S-box. */
const std::array<std::uint8_t, 256> &aesSbox();

/** T-table `table` (0..3) derived from the S-box (xtime rotations). */
std::uint32_t aesTtableEntry(unsigned table, unsigned index);

/** Build (and assemble) the configured victim listing. */
VictimListing buildVictim(const VictimConfig &cfg);

} // namespace unxpec

#endif // UNXPEC_VICTIM_VICTIM_HH
